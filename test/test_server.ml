(* Server tests: the concurrent session manager and the socket loop.

   The headline test is the acceptance bar of the api_redesign issue:
   32 threaded clients drive oracle-guided sessions over a Unix-domain
   socket concurrently, and every outcome must be bit-identical to the
   in-process [Session.run] with the same instance, seed and strategy.
   Alongside it: max-sessions backpressure (a saturated server answers
   Server_busy, it does not hang), idle-TTL eviction with an injected
   clock, Get_question idempotency, undo over the wire, and protocol
   error replies straight off [Service.handle_line]. *)

module Pr = Jim_api.Protocol
module Service = Jim_server.Service
module Wire = Jim_server.Wire
module Smoke = Jim_server.Smoke
module Netstats = Jim_server.Netstats
open Jim_core

let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jim-test-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server ?max_sessions ?idle_ttl ?(threads = 40) f =
  let path = fresh_socket () in
  let service = Service.create ?max_sessions ?idle_ttl () in
  let server = Wire.serve ~threads service (Wire.Unix_path path) in
  Fun.protect
    ~finally:(fun () -> Wire.shutdown server)
    (fun () -> f (Wire.Unix_path path) service)

(* ------------------------------------------------------------------ *)
(* Address syntax                                                      *)

let test_address_parsing () =
  let ok s expected =
    match Wire.address_of_string s with
    | Ok a ->
      Alcotest.(check string) (s ^ " parses") expected (Wire.address_to_string a)
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  let reject s =
    match Wire.address_of_string s with
    | Error _ -> ()
    | Ok a ->
      Alcotest.failf "%s accepted as %s" s (Wire.address_to_string a)
  in
  ok "127.0.0.1:9090" "127.0.0.1:9090";
  ok "localhost:80" "localhost:80";
  ok ":9090" "127.0.0.1:9090";
  ok "[::1]:9090" "[::1]:9090";
  ok "[fe80::1%eth0]:443" "[fe80::1%eth0]:443";
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  (* a bare IPv6 literal split at the last colon would silently read
     ::1:9090 as host "::1" — it must be refused, not guessed at *)
  reject "::1:9090";
  reject "2001:db8::1:80";
  reject "[::1]9090";
  reject "[::1]:";
  reject "[]:9090";
  reject "[::1:9090";
  reject "host:";
  reject "host:notaport";
  reject "host:70000";
  reject "nocolon";
  (* round-trip: to_string ∘ of_string = id on the printed form *)
  List.iter
    (fun a ->
      match Wire.address_of_string (Wire.address_to_string a) with
      | Ok a' ->
        Alcotest.(check string) "round-trip" (Wire.address_to_string a)
          (Wire.address_to_string a')
      | Error e -> Alcotest.failf "round-trip rejected: %s" e)
    [ Wire.Tcp ("::1", 9090); Wire.Tcp ("127.0.0.1", 0); Wire.Unix_path "/s" ]

(* ------------------------------------------------------------------ *)
(* Concurrency: the acceptance bar                                     *)

let check_reports reports n =
  Alcotest.(check int) "all clients reported" n (List.length reports);
  List.iter
    (fun r ->
      if not r.Smoke.ok then
        Alcotest.failf "seed %d (%s): %s" r.Smoke.seed r.Smoke.strategy
          r.Smoke.detail;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d asked questions" r.Smoke.seed)
        true (r.Smoke.questions > 0))
    reports

let test_smoke_32_clients () =
  with_server (fun address _ ->
      check_reports (Smoke.run ~clients:32 ~address ()) 32)

let test_smoke_32_clients_binary () =
  with_server (fun address _ ->
      check_reports (Smoke.run ~clients:32 ~framing:Wire.Binary ~address ()) 32)

(* Pipelined clients: 4 connections, 8 interleaved sessions each, so
   every connection keeps up to 8 requests in flight.  Outcomes stay
   bit-identical (the reorder buffer delivers replies in request
   order), and the wire counters must show the pipeline working:
   depth above 1, and responses sharing flushes. *)
let test_smoke_pipelined () =
  with_server (fun address _ ->
      let before = Netstats.snapshot () in
      check_reports (Smoke.run_pipelined ~clients:4 ~pipeline:8 ~address ()) 32;
      let after = Netstats.snapshot () in
      Alcotest.(check bool) "flushes counted" true
        (after.Netstats.flushes > before.Netstats.flushes);
      Alcotest.(check bool) "responses coalesced into shared flushes" true
        (after.Netstats.writes_coalesced > before.Netstats.writes_coalesced);
      Alcotest.(check bool) "pipelined depth above 1" true
        (after.Netstats.pipelined_depth_max >= 2))

(* The catalog acceptance bar: the same 32 concurrent clients, but all
   on ONE instance — a single shared catalog entry, one derivation, one
   scorer memo — must stay bit-identical to isolated in-process runs. *)
let test_smoke_32_clients_shared_entry () =
  with_server (fun address service ->
      check_reports (Smoke.run ~clients:32 ~instance:7 ~address ()) 32;
      let s = Jim_catalog.Catalog.stats (Service.catalog service) in
      Alcotest.(check int) "one shared entry" 1 s.Pr.entries;
      Alcotest.(check int) "derived once for 32 clients" 1 s.Pr.derivations;
      Alcotest.(check int) "fingerprinted once" 1 s.Pr.fingerprints;
      Alcotest.(check bool) "the other 31 starts were warm" true
        (s.Pr.hits >= 31);
      Alcotest.(check int) "ended sessions left nothing pinned" 0 s.Pr.pinned)

(* The register → start-by-fingerprint flow over the wire: no instance
   data on the session starts, counters prove the sharing. *)
let test_catalog_smoke_drill () =
  with_server (fun address _ ->
      match Smoke.catalog_smoke ~clients:4 ~address () with
      | Error e -> Alcotest.failf "catalog smoke: %s" e
      | Ok (reports, stats) ->
        check_reports reports 4;
        Alcotest.(check int) "one derivation" 1 stats.Pr.derivations;
        Alcotest.(check int) "one fingerprint" 1 stats.Pr.fingerprints;
        Alcotest.(check bool) "fingerprint starts hit the catalog" true
          (stats.Pr.hits >= 4))

(* The same request stream must produce byte-identical reply payloads
   under both framings — binary changes the delimiting, never the
   bytes.  One fresh server per framing, so session ids line up. *)
let test_framings_bit_identical () =
  let requests =
    [
      Pr.request_to_string
        (Pr.Start_session
           { source = Pr.Builtin "flights"; strategy = "random"; seed = 1 });
      Pr.request_to_string (Pr.Get_question { session = 1 });
      Pr.request_to_string (Pr.Undo { session = 1 });
      "garbage that is not json";
      Pr.request_to_string (Pr.Get_question { session = 999 });
      Pr.request_to_string (Pr.End_session { session = 1 });
      Pr.request_to_string (Pr.Get_question { session = 1 });
    ]
  in
  let replies framing =
    with_server (fun address _ ->
        match Wire.connect ~retries:50 ~framing address with
        | Error e -> Alcotest.failf "connect: %s" e
        | Ok c ->
          let rs =
            List.map
              (fun req ->
                match Wire.call_line c req with
                | Ok r -> r
                | Error e -> Alcotest.failf "call: %s" e)
              requests
          in
          Wire.close c;
          rs)
  in
  let line_replies = replies Wire.Line in
  let binary_replies = replies Wire.Binary in
  List.iteri
    (fun i (l, b) ->
      Alcotest.(check string)
        (Printf.sprintf "reply %d identical across framings" i)
        l b)
    (List.combine line_replies binary_replies)

(* A thousand parked connections must not starve active ones: park
   1000 idle clients, then run the full 32-client smoke through the
   same event loop. *)
let test_thousand_idle_connections () =
  with_server (fun address _ ->
      let before = Netstats.snapshot () in
      let idle =
        List.init 1000 (fun _ ->
            match Wire.connect ~retries:50 address with
            | Ok c -> c
            | Error e -> Alcotest.failf "idle connect: %s" e)
      in
      check_reports (Smoke.run ~clients:32 ~address ()) 32;
      (* the idle conns are still alive: ping one *)
      (match Wire.call_line (List.nth idle 500) "{}" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "idle conn died: %s" e);
      List.iter Wire.close idle;
      let after = Netstats.snapshot () in
      Alcotest.(check bool) "accepted >= 1032 more" true
        (after.Netstats.accepted - before.Netstats.accepted >= 1032))

(* ------------------------------------------------------------------ *)
(* Wire counters                                                       *)

let test_netstats_counters () =
  with_server (fun address _ ->
      let before = Netstats.snapshot () in
      (match Wire.connect ~retries:50 ~framing:Wire.Binary address with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
        (match Wire.call_line c "not json" with
        | Ok reply ->
          Alcotest.(check bool) "malformed payload still answered" true
            (String.length reply > 0)
        | Error e -> Alcotest.failf "call: %s" e);
        Wire.close c);
      (* close is asynchronous on the server side; poll briefly *)
      let rec settle tries =
        let s = Netstats.snapshot () in
        if s.Netstats.closed > before.Netstats.closed || tries = 0 then s
        else begin
          Thread.delay 0.05;
          settle (tries - 1)
        end
      in
      let after = settle 40 in
      Alcotest.(check bool) "accept counted" true
        (after.Netstats.accepted > before.Netstats.accepted);
      Alcotest.(check bool) "close counted" true
        (after.Netstats.closed > before.Netstats.closed);
      Alcotest.(check bool) "binary negotiation counted" true
        (after.Netstats.binary_conns > before.Netstats.binary_conns);
      Alcotest.(check bool) "malformed counted" true
        (after.Netstats.malformed > before.Netstats.malformed);
      Alcotest.(check bool) "request counted" true
        (after.Netstats.requests > before.Netstats.requests);
      Alcotest.(check bool) "bytes flowed" true
        (after.Netstats.bytes_in > before.Netstats.bytes_in
        && after.Netstats.bytes_out > before.Netstats.bytes_out))

(* On Linux the event loop must actually be on epoll, not the select
   fallback — the fallback exists for other platforms, and silently
   landing on it here would invalidate the 1k-connection claim. *)
let test_epoll_backend () =
  if Sys.file_exists "/proc/version" then begin
    let p = Jim_server.Epoll.create () in
    let backed = Jim_server.Epoll.backed_by_epoll p in
    Jim_server.Epoll.close p;
    Alcotest.(check bool) "epoll backend selected on Linux" true backed
  end

let test_server_busy () =
  with_server ~max_sessions:2 (fun address service ->
      (match Smoke.busy_check ~address ~fill:2 () with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* busy_check ended its sessions: capacity is free again *)
      Alcotest.(check int) "sessions cleaned up" 0 (Service.session_count service))

(* ------------------------------------------------------------------ *)
(* Service-level behaviour (no socket: direct handle calls)            *)

let start_flights service ~seed =
  match
    Service.handle service
      (Pr.Start_session
         { source = Pr.Builtin "flights"; strategy = "lookahead-entropy"; seed })
  with
  | Pr.Started { session; _ } -> session
  | other -> Alcotest.failf "start failed: %s" (Pr.response_to_string other)

let test_ttl_eviction () =
  let clock = ref 0. in
  let service = Service.create ~idle_ttl:10. ~now:(fun () -> !clock) () in
  let s1 = start_flights service ~seed:1 in
  clock := 8.;
  let s2 = start_flights service ~seed:2 in
  Alcotest.(check int) "two live" 2 (Service.session_count service);
  (* touching s1 at t=8 resets its idle clock *)
  (match Service.handle service (Pr.Get_question { session = s1 }) with
  | Pr.Question (Some _) -> ()
  | other -> Alcotest.failf "get failed: %s" (Pr.response_to_string other));
  clock := 17.;
  Alcotest.(check int) "nothing stale yet" 0 (Service.sweep service);
  clock := 19.5;
  (* s1 idle 11.5 s > TTL; s2 idle 11.5 s too *)
  Alcotest.(check int) "both evicted" 2 (Service.sweep service);
  match Service.handle service (Pr.Get_question { session = s2 }) with
  | Pr.Failed (Pr.Unknown_session id) -> Alcotest.(check int) "id echoed" s2 id
  | other -> Alcotest.failf "expected Unknown_session: %s" (Pr.response_to_string other)

let test_get_question_idempotent () =
  let service = Service.create () in
  let s = start_flights service ~seed:42 in
  let get () =
    match Service.handle service (Pr.Get_question { session = s }) with
    | Pr.Question (Some q) -> q
    | other -> Alcotest.failf "get failed: %s" (Pr.response_to_string other)
  in
  let q1 = get () in
  let q2 = get () in
  let q3 = get () in
  Alcotest.(check bool) "same class asked" true
    (q1.Pr.cls = q2.Pr.cls && q2.Pr.cls = q3.Pr.cls)

let test_answer_undo_over_service () =
  let service = Service.create () in
  let s = start_flights service ~seed:3 in
  let get () =
    match Service.handle service (Pr.Get_question { session = s }) with
    | Pr.Question (Some q) -> q
    | other -> Alcotest.failf "get failed: %s" (Pr.response_to_string other)
  in
  let q = get () in
  (match
     Service.handle service (Pr.Answer { session = s; cls = q.Pr.cls; label = State.Pos })
   with
  | Pr.Answered { asked = 1; _ } -> ()
  | other -> Alcotest.failf "answer failed: %s" (Pr.response_to_string other));
  (match Service.handle service (Pr.Undo { session = s }) with
  | Pr.Undone { asked = 0 } -> ()
  | other -> Alcotest.failf "undo failed: %s" (Pr.response_to_string other));
  (* a second undo has nothing to retract: typed engine error *)
  (match Service.handle service (Pr.Undo { session = s }) with
  | Pr.Failed (Pr.Engine Session.Nothing_to_undo) -> ()
  | other -> Alcotest.failf "expected Nothing_to_undo: %s" (Pr.response_to_string other));
  (* after the undo the same question comes back (state rolled back) *)
  let q' = get () in
  Alcotest.(check int) "question re-proposed" q.Pr.cls q'.Pr.cls;
  (* outcome events shrink with undo: answer twice, outcome has 2 events *)
  let answer_current () =
    let q = get () in
    match
      Service.handle service
        (Pr.Answer { session = s; cls = q.Pr.cls; label = State.Neg })
    with
    | Pr.Answered _ -> ()
    | other -> Alcotest.failf "answer failed: %s" (Pr.response_to_string other)
  in
  answer_current ();
  answer_current ();
  match Service.handle service (Pr.Result { session = s }) with
  | Pr.Outcome o ->
    Alcotest.(check int) "events track undo" 2 (List.length o.Session.events);
    Alcotest.(check int) "interactions track undo" 2 o.Session.interactions
  | other -> Alcotest.failf "result failed: %s" (Pr.response_to_string other)

let test_session_stats () =
  let service = Service.create () in
  let s = start_flights service ~seed:5 in
  (match Service.handle service (Pr.Get_question { session = s }) with
  | Pr.Question (Some q) -> (
    match
      Service.handle service
        (Pr.Answer { session = s; cls = q.Pr.cls; label = State.Pos })
    with
    | Pr.Answered _ -> ()
    | other -> Alcotest.failf "answer failed: %s" (Pr.response_to_string other))
  | other -> Alcotest.failf "get failed: %s" (Pr.response_to_string other));
  match Service.handle service (Pr.Stats { session = s }) with
  | Pr.Session_stats st ->
    Alcotest.(check int) "one label" 1 st.Pr.labeled;
    Alcotest.(check int) "totals add up" st.Pr.total
      (st.Pr.labeled + st.Pr.auto_determined + st.Pr.still_informative);
    Alcotest.(check bool) "scoring attributed to this session" true
      (st.Pr.scoring.Metrics.picks >= 1)
  | other -> Alcotest.failf "stats failed: %s" (Pr.response_to_string other)

let test_get_transcript () =
  let service = Service.create () in
  let s = start_flights service ~seed:11 in
  let answer_current () =
    match Service.handle service (Pr.Get_question { session = s }) with
    | Pr.Question (Some q) -> (
      match
        Service.handle service
          (Pr.Answer { session = s; cls = q.Pr.cls; label = State.Neg })
      with
      | Pr.Answered _ -> ()
      | other -> Alcotest.failf "answer failed: %s" (Pr.response_to_string other))
    | other -> Alcotest.failf "get failed: %s" (Pr.response_to_string other)
  in
  answer_current ();
  answer_current ();
  let transcript () =
    match Service.handle service (Pr.Get_transcript { session = s }) with
    | Pr.Transcript_text { text } -> (
      match Transcript.of_string text with
      | Ok t -> t
      | Error e -> Alcotest.failf "transcript unparseable: %s" e)
    | other ->
      Alcotest.failf "get_transcript failed: %s" (Pr.response_to_string other)
  in
  let t = transcript () in
  Alcotest.(check int) "flights arity" 5 t.Transcript.arity;
  Alcotest.(check int) "two labels recorded" 2
    (List.length t.Transcript.entries);
  (* the transcript shrinks with undo, like the engine *)
  (match Service.handle service (Pr.Undo { session = s }) with
  | Pr.Undone _ -> ()
  | other -> Alcotest.failf "undo failed: %s" (Pr.response_to_string other));
  let t' = transcript () in
  Alcotest.(check int) "undo drops a label" 1 (List.length t'.Transcript.entries);
  match Service.handle service (Pr.Get_transcript { session = 999 }) with
  | Pr.Failed (Pr.Unknown_session 999) -> ()
  | other ->
    Alcotest.failf "expected Unknown_session: %s" (Pr.response_to_string other)

let test_bad_requests () =
  let service = Service.create () in
  let line l =
    match Pr.response_of_string (Service.handle_line service l) with
    | Ok r -> r
    | Error e -> Alcotest.failf "reply unparseable: %s" (Pr.error_to_string e)
  in
  (match line "garbage" with
  | Pr.Failed (Pr.Bad_request _) -> ()
  | other -> Alcotest.failf "expected Bad_request: %s" (Pr.response_to_string other));
  (match line {|{"jim":7,"req":"undo","session":1}|} with
  | Pr.Failed (Pr.Unsupported_version 7) -> ()
  | other ->
    Alcotest.failf "expected Unsupported_version: %s" (Pr.response_to_string other));
  (match line {|{"jim":1,"req":"undo","session":999}|} with
  | Pr.Failed (Pr.Unknown_session 999) -> ()
  | other -> Alcotest.failf "expected Unknown_session: %s" (Pr.response_to_string other));
  (match
     Service.handle service
       (Pr.Start_session
          { source = Pr.Builtin "flights"; strategy = "nonesuch"; seed = 0 })
   with
  | Pr.Failed (Pr.Unknown_strategy _) -> ()
  | other ->
    Alcotest.failf "expected Unknown_strategy: %s" (Pr.response_to_string other));
  (match
     Service.handle service
       (Pr.Start_session
          { source = Pr.Builtin "narnia"; strategy = "random"; seed = 0 })
   with
  | Pr.Failed (Pr.Bad_source _) -> ()
  | other -> Alcotest.failf "expected Bad_source: %s" (Pr.response_to_string other));
  (match
     Service.handle service
       (Pr.Start_session
          {
            source =
              Pr.Synthetic
                { n_attrs = 3; n_tuples = 2; domain = 1; goal_rank = 1; seed = 0 };
            strategy = "random";
            seed = 0;
          })
   with
  | Pr.Failed (Pr.Bad_source _) -> ()
  | other ->
    Alcotest.failf "expected Bad_source (domain too small): %s"
      (Pr.response_to_string other));
  let s = start_flights service ~seed:9 in
  match
    Service.handle service (Pr.Answer { session = s; cls = 99; label = State.Pos })
  with
  | Pr.Failed (Pr.Bad_request _) -> ()
  | other ->
    Alcotest.failf "expected Bad_request (class range): %s"
      (Pr.response_to_string other)

let test_csv_inline_source () =
  let service = Service.create () in
  let csv = "a,b,c\n1,1,2\n1,2,2\n3,3,3\n" in
  match
    Service.handle service
      (Pr.Start_session
         { source = Pr.Csv_inline csv; strategy = "random"; seed = 0 })
  with
  | Pr.Started { arity = 3; tuples = 3; _ } -> ()
  | other -> Alcotest.failf "csv start failed: %s" (Pr.response_to_string other)

let () =
  Alcotest.run "server"
    [
      ( "addresses",
        [ Alcotest.test_case "parse and round-trip" `Quick test_address_parsing ] );
      ( "concurrency",
        [
          Alcotest.test_case "32 concurrent clients, bit-identical" `Slow
            test_smoke_32_clients;
          Alcotest.test_case "32 clients sharing one catalog entry" `Slow
            test_smoke_32_clients_shared_entry;
          Alcotest.test_case "register/start-by-fingerprint drill" `Quick
            test_catalog_smoke_drill;
          Alcotest.test_case "32 clients over binary framing" `Slow
            test_smoke_32_clients_binary;
          Alcotest.test_case "32 pipelined sessions, 8 deep per connection"
            `Slow test_smoke_pipelined;
          Alcotest.test_case "framings are byte-identical" `Quick
            test_framings_bit_identical;
          Alcotest.test_case "1000 idle connections don't starve the loop" `Slow
            test_thousand_idle_connections;
          Alcotest.test_case "saturated server answers Server_busy" `Quick
            test_server_busy;
        ] );
      ( "wire counters",
        [
          Alcotest.test_case "netstats record the loop's work" `Quick
            test_netstats_counters;
          Alcotest.test_case "epoll backend on Linux" `Quick test_epoll_backend;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "idle-TTL eviction" `Quick test_ttl_eviction;
          Alcotest.test_case "Get_question is idempotent" `Quick
            test_get_question_idempotent;
          Alcotest.test_case "answer / undo / result" `Quick
            test_answer_undo_over_service;
          Alcotest.test_case "per-session stats" `Quick test_session_stats;
          Alcotest.test_case "transcript over the wire" `Quick
            test_get_transcript;
        ] );
      ( "protocol errors",
        [
          Alcotest.test_case "typed failure replies" `Quick test_bad_requests;
          Alcotest.test_case "inline CSV source" `Quick test_csv_inline_source;
        ] );
    ]
