(* Wire-protocol tests: qcheck pins decode ∘ encode = id for every
   request and response constructor of Jim_api.Protocol (including the
   stable sub-encodings), plus the JSON layer's corner cases and the
   Strategy name table the protocol rides on. *)

module P = Jim_partition.Partition
module Json = Jim_api.Json
module Pr = Jim_api.Protocol
open Jim_core

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let gen_partition =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let rec build i maxv acc =
      if i >= n then return (P.of_rgs (Array.of_list (List.rev acc)))
      else
        let* v = int_bound (min (maxv + 1) (n - 1)) in
        build (i + 1) (max maxv v) (v :: acc)
    in
    build 0 (-1) [])

let gen_label = QCheck.Gen.oneofl [ State.Pos; State.Neg ]

let gen_status =
  QCheck.Gen.oneofl [ State.Certain_pos; State.Certain_neg; State.Informative ]

(* Strings exercise the escaper: quotes, backslashes, control chars,
   non-ASCII bytes. *)
let gen_string =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'Z'; '"'; '\\'; '\n'; '\t'; ','; ':';
                               '{'; '}'; '\000'; '\127'; '\xc3'; ' ' ])
      (int_bound 12))

(* Finite floats of varied magnitude plus the infinities and NaN — the
   codec must round-trip them all ([Float.equal nan nan] holds). *)
let gen_float =
  QCheck.Gen.(
    oneof
      [
        (let* m = int_range (-1000000) 1000000 in
         return (float_of_int m /. 7.));
        (let* e = int_range (-300) 300 in
         return (1.7 *. (10. ** float_of_int e)));
        oneofl [ 0.; -0.; Float.infinity; Float.neg_infinity; Float.nan ];
      ])

let gen_source =
  QCheck.Gen.(
    oneof
      [
        (let* name = oneofl [ "flights"; "setcards"; "nonesuch" ] in
         return (Pr.Builtin name));
        (let* n_attrs = int_range 1 9 in
         let* n_tuples = int_range 1 500 in
         let* domain = int_range 2 20 in
         let* goal_rank = int_range 0 5 in
         let* seed = int_range 0 10000 in
         return (Pr.Synthetic { n_attrs; n_tuples; domain; goal_rank; seed }));
        (let* text = gen_string in
         return (Pr.Csv_inline text));
        (let* fp = string_size ~gen:(oneofl [ '0'; '7'; 'a'; 'f' ]) (return 8) in
         return (Pr.Catalog fp));
      ])

let gen_request =
  QCheck.Gen.(
    let id = int_range 0 1000 in
    oneof
      [
        (let* source = gen_source in
         let* strategy =
           oneofl [ "random"; "lookahead-entropy"; "optimal"; "bogus" ]
         in
         let* seed = int_range 0 10000 in
         return (Pr.Start_session { source; strategy; seed }));
        (let* session = id in
         return (Pr.Get_question { session }));
        (let* session = id in
         let* k = int_range 0 20 in
         return (Pr.Top_questions { session; k }));
        (let* session = id in
         let* cls = int_range 0 50 in
         let* label = gen_label in
         return (Pr.Answer { session; cls; label }));
        (let* session = id in
         return (Pr.Undo { session }));
        (let* session = id in
         let* cls = int_range 0 50 in
         return (Pr.Explain { session; cls }));
        (let* session = id in
         return (Pr.Result { session }));
        (let* session = id in
         return (Pr.Stats { session }));
        (let* session = id in
         return (Pr.Get_transcript { session }));
        (let* session = id in
         return (Pr.End_session { session }));
        (let* source = gen_source in
         return (Pr.Register_instance { source }));
        return Pr.Catalog_stats;
        (let* session = id in
         let* source = gen_source in
         let* strategy = oneofl [ "random"; "lookahead-entropy" ] in
         let* seed = int_range 0 10000 in
         return (Pr.Start_pinned { session; source; strategy; seed }));
        (let* gen = int_range 0 50 in
         let* snapshot = option gen_string in
         return (Pr.Repl_install { gen; snapshot }));
        (let* gen = int_range 0 50 in
         return (Pr.Repl_rotate { gen }));
        (* records are raw JREC bytes on the real stream — gen_string
           exercises the escaper with quotes, control bytes and '\000' *)
        (let* records = list_size (int_bound 5) gen_string in
         return (Pr.Repl_batch { records }));
        return Pr.Repl_status;
        return Pr.Promote;
        return Pr.Ring_status;
        (let* session = id in
         return (Pr.Labeler_attach { session }));
        (let* session = id in
         let* labeler = int_range 1 50 in
         return (Pr.Labeler_poll { session; labeler }));
        (let* session = id in
         let* labeler = int_range 1 50 in
         let* round = int_range 1 100 in
         let* label = gen_label in
         return (Pr.Vote { session; labeler; round; label }));
        (let* session = id in
         return (Pr.Crowd_stats { session }));
      ])

let gen_question =
  QCheck.Gen.(
    let* cls = int_range 0 50 in
    let* row = int_range 0 500 in
    let* sg = gen_partition in
    return { Pr.cls; row; sg })

let gen_error =
  QCheck.Gen.(
    oneof
      [
        (let* m = gen_string in
         return (Pr.Bad_request m));
        (let* s = int_range 0 1000 in
         return (Pr.Unknown_session s));
        (let* m = gen_string in
         return (Pr.Unknown_strategy m));
        (let* m = gen_string in
         return (Pr.Bad_source m));
        oneofl
          [ Pr.Engine Session.Contradiction; Pr.Engine Session.Nothing_to_undo ];
        (let* active = int_range 0 100 in
         let* extra = int_bound 10 in
         return (Pr.Server_busy { active; max = active + extra }));
        (let* v = int_range 0 20 in
         return (Pr.Unsupported_version v));
        (let* fp = gen_string in
         return (Pr.Unknown_instance fp));
        (let* m = gen_string in
         return (Pr.Shard_unavailable m));
        (let* l = int_range 0 100 in
         return (Pr.Unknown_labeler l));
      ])

let gen_metrics =
  QCheck.Gen.(
    let nat = int_bound 100000 in
    let* meets = nat in
    let* classify_calls = nat in
    let* cache_hits = nat in
    let* cache_misses = nat in
    let* picks = nat in
    let* pick_time_ns = nat in
    let* last_pick_ns = nat in
    return
      {
        Metrics.meets;
        classify_calls;
        cache_hits;
        cache_misses;
        picks;
        pick_time_ns;
        last_pick_ns;
      })

let gen_event =
  QCheck.Gen.(
    let* step = int_range 1 50 in
    let* cls = int_range 0 50 in
    let* row = int_range 0 500 in
    let* sg = gen_partition in
    let* label = gen_label in
    let* decided_after = int_bound 50 in
    let* tuples_decided_after = int_bound 500 in
    let* vs_after = gen_float in
    return
      {
        Session.step;
        cls;
        row;
        sg;
        label;
        decided_after;
        tuples_decided_after;
        vs_after;
      })

let gen_outcome =
  QCheck.Gen.(
    let* query = gen_partition in
    let* events = list_size (int_bound 6) gen_event in
    let* interactions = int_bound 50 in
    let* contradiction = bool in
    return { Session.query; events; interactions; contradiction })

let gen_stats =
  QCheck.Gen.(
    let* labeled = int_bound 100 in
    let* auto_determined = int_bound 500 in
    let* still_informative = int_bound 500 in
    let* total = int_bound 1000 in
    let* version_space = gen_float in
    let* scoring = gen_metrics in
    return
      {
        Pr.labeled;
        auto_determined;
        still_informative;
        total;
        version_space;
        scoring;
      })

let gen_catalog_stats =
  QCheck.Gen.(
    let nat = int_bound 100000 in
    let* entries = nat in
    let* bytes = nat in
    let* pinned = nat in
    let* hits = nat in
    let* misses = nat in
    let* evictions = nat in
    let* fingerprints = nat in
    let* derivations = nat in
    return
      {
        Pr.entries;
        bytes;
        pinned;
        hits;
        misses;
        evictions;
        fingerprints;
        derivations;
      })

let gen_crowd_stats =
  QCheck.Gen.(
    let nat = int_bound 100000 in
    let* labelers = nat in
    let* votes = int_range 1 9 in
    let* weighted = bool in
    let* rounds = nat in
    let* paid_labels = nat in
    let* majority_flips = nat in
    let* timeouts = nat in
    let* re_asks = nat in
    return
      {
        Pr.labelers;
        votes;
        weighted;
        rounds;
        paid_labels;
        majority_flips;
        timeouts;
        re_asks;
      })

let gen_response =
  QCheck.Gen.(
    oneof
      [
        (let* session = int_range 0 1000 in
         let* arity = int_range 1 10 in
         let* classes = int_range 1 100 in
         let* tuples = int_range 1 1000 in
         let* strategy = oneofl [ "random"; "lookahead-entropy"; "optimal" ] in
         return (Pr.Started { session; arity; classes; tuples; strategy }));
        (let* q = option gen_question in
         return (Pr.Question q));
        (let* qs = list_size (int_bound 5) gen_question in
         return (Pr.Questions qs));
        (let* finished = bool in
         let* asked = int_bound 100 in
         let* decided_classes = int_bound 100 in
         let* decided_tuples = int_bound 1000 in
         return (Pr.Answered { finished; asked; decided_classes; decided_tuples }));
        (let* asked = int_bound 100 in
         return (Pr.Undone { asked }));
        (let* cls = int_bound 50 in
         let* status = gen_status in
         let* text = gen_string in
         return (Pr.Explanation { cls; status; text }));
        (let* o = gen_outcome in
         return (Pr.Outcome o));
        (let* s = gen_stats in
         return (Pr.Session_stats s));
        (let* text = gen_string in
         return (Pr.Transcript_text { text }));
        return Pr.Ended;
        (let* e = gen_error in
         return (Pr.Failed e));
        (let* fingerprint =
           string_size ~gen:(oneofl [ '0'; '7'; 'a'; 'f' ]) (return 8)
         in
         let* arity = int_range 1 10 in
         let* classes = int_range 1 100 in
         let* tuples = int_range 1 1000 in
         return (Pr.Registered { fingerprint; arity; classes; tuples }));
        (let* s = gen_catalog_stats in
         return (Pr.Catalog_info s));
        (let* gen = int_range 0 50 in
         let* records = int_bound 10000 in
         return (Pr.Repl_ok { gen; records }));
        (let* records = int_bound 10000 in
         let* bytes = int_bound 1000000 in
         return (Pr.Repl_lag { records; bytes }));
        (let* sessions = int_bound 100 in
         let* generation = int_range 0 50 in
         return (Pr.Promoted { sessions; generation }));
        (let* shards =
           list_size (int_bound 4)
             (let* shard = oneofl [ "s0"; "s1"; "shard-two" ] in
              let* promoted = bool in
              let* lag =
                option
                  (let* records = int_bound 1000 in
                   let* bytes = int_bound 100000 in
                   return (records, bytes))
              in
              return { Pr.shard; promoted; lag })
         in
         let* sessions = int_bound 1000 in
         return (Pr.Ring_info { shards; sessions }));
        (let* labeler = int_range 1 50 in
         let* votes = int_range 1 9 in
         return (Pr.Labeler_attached { labeler; votes }));
        (let* round = int_range 1 100 in
         let* question = option gen_question in
         return (Pr.Crowd_question { round; question }));
        (let* round = int_range 1 100 in
         let* counted = bool in
         let* outcome = option gen_label in
         return (Pr.Vote_ok { round; counted; outcome }));
        (let* s = gen_crowd_stats in
         return (Pr.Crowd_info s));
      ])

(* ------------------------------------------------------------------ *)
(* Equality (Partition via [P.equal], floats via [Float.equal] so NaN
   compares equal to itself)                                           *)

let source_eq a b =
  match (a, b) with
  | Pr.Builtin x, Pr.Builtin y -> x = y
  | ( Pr.Synthetic { n_attrs; n_tuples; domain; goal_rank; seed },
      Pr.Synthetic
        {
          n_attrs = n_attrs';
          n_tuples = n_tuples';
          domain = domain';
          goal_rank = goal_rank';
          seed = seed';
        } ) ->
    n_attrs = n_attrs' && n_tuples = n_tuples' && domain = domain'
    && goal_rank = goal_rank' && seed = seed'
  | Pr.Csv_inline x, Pr.Csv_inline y -> x = y
  | Pr.Catalog x, Pr.Catalog y -> x = y
  | _ -> false

let question_eq (a : Pr.question) (b : Pr.question) =
  a.cls = b.cls && a.row = b.row && P.equal a.sg b.sg

let request_eq a b =
  match (a, b) with
  | ( Pr.Start_session { source = s1; strategy = st1; seed = sd1 },
      Pr.Start_session { source = s2; strategy = st2; seed = sd2 } ) ->
    source_eq s1 s2 && st1 = st2 && sd1 = sd2
  | ( Pr.Answer { session = s1; cls = c1; label = l1 },
      Pr.Answer { session = s2; cls = c2; label = l2 } ) ->
    s1 = s2 && c1 = c2 && l1 = l2
  | ( Pr.Top_questions { session = s1; k = k1 },
      Pr.Top_questions { session = s2; k = k2 } ) ->
    s1 = s2 && k1 = k2
  | ( Pr.Explain { session = s1; cls = c1 },
      Pr.Explain { session = s2; cls = c2 } ) ->
    s1 = s2 && c1 = c2
  | Pr.Get_question { session = s1 }, Pr.Get_question { session = s2 }
  | Pr.Undo { session = s1 }, Pr.Undo { session = s2 }
  | Pr.Result { session = s1 }, Pr.Result { session = s2 }
  | Pr.Stats { session = s1 }, Pr.Stats { session = s2 }
  | Pr.Get_transcript { session = s1 }, Pr.Get_transcript { session = s2 }
  | Pr.End_session { session = s1 }, Pr.End_session { session = s2 } ->
    s1 = s2
  | ( Pr.Register_instance { source = s1 },
      Pr.Register_instance { source = s2 } ) ->
    source_eq s1 s2
  | Pr.Catalog_stats, Pr.Catalog_stats -> true
  | ( Pr.Start_pinned { session = i1; source = s1; strategy = st1; seed = sd1 },
      Pr.Start_pinned { session = i2; source = s2; strategy = st2; seed = sd2 }
    ) ->
    i1 = i2 && source_eq s1 s2 && st1 = st2 && sd1 = sd2
  | ( Pr.Repl_install { gen = g1; snapshot = sn1 },
      Pr.Repl_install { gen = g2; snapshot = sn2 } ) ->
    g1 = g2 && sn1 = sn2
  | Pr.Repl_rotate { gen = g1 }, Pr.Repl_rotate { gen = g2 } -> g1 = g2
  | Pr.Repl_batch { records = r1 }, Pr.Repl_batch { records = r2 } -> r1 = r2
  | Pr.Repl_status, Pr.Repl_status -> true
  | Pr.Promote, Pr.Promote -> true
  | Pr.Ring_status, Pr.Ring_status -> true
  | Pr.Labeler_attach { session = s1 }, Pr.Labeler_attach { session = s2 }
  | Pr.Crowd_stats { session = s1 }, Pr.Crowd_stats { session = s2 } ->
    s1 = s2
  | ( Pr.Labeler_poll { session = s1; labeler = l1 },
      Pr.Labeler_poll { session = s2; labeler = l2 } ) ->
    s1 = s2 && l1 = l2
  | ( Pr.Vote { session = s1; labeler = l1; round = r1; label = lb1 },
      Pr.Vote { session = s2; labeler = l2; round = r2; label = lb2 } ) ->
    s1 = s2 && l1 = l2 && r1 = r2 && lb1 = lb2
  | _ -> false

let event_eq (a : Session.event) (b : Session.event) =
  a.step = b.step && a.cls = b.cls && a.row = b.row && P.equal a.sg b.sg
  && a.label = b.label
  && a.decided_after = b.decided_after
  && a.tuples_decided_after = b.tuples_decided_after
  && Float.equal a.vs_after b.vs_after

let outcome_eq (a : Session.outcome) (b : Session.outcome) =
  P.equal a.query b.query
  && a.interactions = b.interactions
  && a.contradiction = b.contradiction
  && List.length a.events = List.length b.events
  && List.for_all2 event_eq a.events b.events

let stats_eq (a : Pr.session_stats) (b : Pr.session_stats) =
  a.labeled = b.labeled
  && a.auto_determined = b.auto_determined
  && a.still_informative = b.still_informative
  && a.total = b.total
  && Float.equal a.version_space b.version_space
  && a.scoring = b.scoring

let response_eq a b =
  match (a, b) with
  | ( Pr.Started { session = s1; arity = a1; classes = c1; tuples = t1; strategy = st1 },
      Pr.Started { session = s2; arity = a2; classes = c2; tuples = t2; strategy = st2 } ) ->
    s1 = s2 && a1 = a2 && c1 = c2 && t1 = t2 && st1 = st2
  | Pr.Question None, Pr.Question None -> true
  | Pr.Question (Some x), Pr.Question (Some y) -> question_eq x y
  | Pr.Questions xs, Pr.Questions ys ->
    List.length xs = List.length ys && List.for_all2 question_eq xs ys
  | ( Pr.Answered { finished = f1; asked = a1; decided_classes = c1; decided_tuples = t1 },
      Pr.Answered { finished = f2; asked = a2; decided_classes = c2; decided_tuples = t2 } ) ->
    f1 = f2 && a1 = a2 && c1 = c2 && t1 = t2
  | Pr.Undone { asked = a1 }, Pr.Undone { asked = a2 } -> a1 = a2
  | ( Pr.Explanation { cls = c1; status = s1; text = t1 },
      Pr.Explanation { cls = c2; status = s2; text = t2 } ) ->
    c1 = c2 && s1 = s2 && t1 = t2
  | Pr.Outcome x, Pr.Outcome y -> outcome_eq x y
  | Pr.Session_stats x, Pr.Session_stats y -> stats_eq x y
  | Pr.Transcript_text { text = t1 }, Pr.Transcript_text { text = t2 } ->
    t1 = t2
  | Pr.Ended, Pr.Ended -> true
  | Pr.Failed x, Pr.Failed y -> x = y
  | ( Pr.Registered { fingerprint = f1; arity = a1; classes = c1; tuples = t1 },
      Pr.Registered { fingerprint = f2; arity = a2; classes = c2; tuples = t2 }
    ) ->
    f1 = f2 && a1 = a2 && c1 = c2 && t1 = t2
  | Pr.Catalog_info x, Pr.Catalog_info y -> x = y
  | ( Pr.Repl_ok { gen = g1; records = r1 },
      Pr.Repl_ok { gen = g2; records = r2 } ) ->
    g1 = g2 && r1 = r2
  | ( Pr.Repl_lag { records = r1; bytes = b1 },
      Pr.Repl_lag { records = r2; bytes = b2 } ) ->
    r1 = r2 && b1 = b2
  | ( Pr.Promoted { sessions = s1; generation = g1 },
      Pr.Promoted { sessions = s2; generation = g2 } ) ->
    s1 = s2 && g1 = g2
  | ( Pr.Ring_info { shards = sh1; sessions = s1 },
      Pr.Ring_info { shards = sh2; sessions = s2 } ) ->
    sh1 = sh2 && s1 = s2
  | ( Pr.Labeler_attached { labeler = l1; votes = v1 },
      Pr.Labeler_attached { labeler = l2; votes = v2 } ) ->
    l1 = l2 && v1 = v2
  | ( Pr.Crowd_question { round = r1; question = q1 },
      Pr.Crowd_question { round = r2; question = q2 } ) ->
    r1 = r2
    && (match (q1, q2) with
       | None, None -> true
       | Some x, Some y -> question_eq x y
       | _ -> false)
  | ( Pr.Vote_ok { round = r1; counted = c1; outcome = o1 },
      Pr.Vote_ok { round = r2; counted = c2; outcome = o2 } ) ->
    r1 = r2 && c1 = c2 && o1 = o2
  | Pr.Crowd_info x, Pr.Crowd_info y -> x = y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)

let prop_request_roundtrip =
  qtest "request: decode ∘ encode = id"
    (QCheck.make ~print:Pr.request_to_string gen_request) (fun req ->
      match Pr.request_of_string (Pr.request_to_string req) with
      | Ok req' -> request_eq req req'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" (Pr.error_to_string e))

let prop_response_roundtrip =
  qtest "response: decode ∘ encode = id"
    (QCheck.make ~print:Pr.response_to_string gen_response) (fun resp ->
      match Pr.response_of_string (Pr.response_to_string resp) with
      | Ok resp' -> response_eq resp resp'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" (Pr.error_to_string e))

let prop_encoding_stable =
  (* re-encoding a decoded message is byte-identical: the encoding is
     canonical, so servers can compare and log lines directly *)
  qtest "response: encode ∘ decode ∘ encode = encode"
    (QCheck.make ~print:Pr.response_to_string gen_response) (fun resp ->
      let s = Pr.response_to_string resp in
      match Pr.response_of_string s with
      | Ok resp' -> Pr.response_to_string resp' = s
      | Error _ -> false)

let prop_source_roundtrip =
  (* exhaustive over all four instance_source constructors, Catalog
     included — the sub-encoding Start_session, Register_instance and
     the journal's Started events all ride on *)
  qtest "instance_source sub-encoding round-trips"
    (QCheck.make
       ~print:(fun s -> Json.to_string (Pr.source_to_json s))
       gen_source)
    (fun s ->
      match Pr.source_of_json (Pr.source_to_json s) with
      | Ok s' -> source_eq s s'
      | Error _ -> false)

let prop_partition_roundtrip =
  qtest "partition sub-encoding round-trips"
    (QCheck.make ~print:P.to_string gen_partition) (fun p ->
      match Pr.partition_of_json (Pr.partition_to_json p) with
      | Ok p' -> P.equal p p'
      | Error _ -> false)

let prop_outcome_roundtrip =
  qtest ~count:100 "outcome sub-encoding round-trips"
    (QCheck.make
       ~print:(fun o -> Json.to_string (Pr.outcome_to_json o))
       gen_outcome)
    (fun o ->
      match Pr.outcome_of_json (Pr.outcome_to_json o) with
      | Ok o' -> outcome_eq o o'
      | Error _ -> false)

let prop_json_float_roundtrip =
  qtest "json: floats round-trip bit-for-bit"
    (QCheck.make ~print:string_of_float gen_float) (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok v -> ( match Json.as_float v with Ok f' -> Float.equal f f' | Error _ -> false)
      | Error _ -> false)

let prop_json_string_roundtrip =
  qtest "json: strings round-trip through escaping"
    (QCheck.make ~print:String.escaped gen_string) (fun s ->
      match Json.of_string (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> s = s'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Version and malformed input                                         *)

let test_version_mismatch () =
  (match Pr.request_of_string {|{"jim":2,"req":"undo","session":1}|} with
  | Error (Pr.Unsupported_version 2) -> ()
  | _ -> Alcotest.fail "expected Unsupported_version 2");
  match Pr.response_of_string {|{"jim":99,"resp":"ended"}|} with
  | Error (Pr.Unsupported_version 99) -> ()
  | _ -> Alcotest.fail "expected Unsupported_version 99"

let test_malformed () =
  let bad = function
    | Error (Pr.Bad_request _) -> ()
    | Error e -> Alcotest.fail ("wrong error: " ^ Pr.error_to_string e)
    | Ok _ -> Alcotest.fail "malformed input decoded"
  in
  bad (Pr.request_of_string "not json at all");
  bad (Pr.request_of_string {|{"jim":1}|});
  bad (Pr.request_of_string {|{"jim":1,"req":"teleport"}|});
  bad (Pr.request_of_string {|{"jim":1,"req":"answer","session":1}|});
  bad (Pr.request_of_string {|[1,2,3]|});
  (* crowd messages: missing fields and bad labels are refused whole *)
  bad (Pr.request_of_string {|{"jim":1,"req":"vote","session":1}|});
  bad
    (Pr.request_of_string
       {|{"jim":1,"req":"vote","session":1,"labeler":2,"round":3,"label":"?"}|});
  bad (Pr.request_of_string {|{"jim":1,"req":"labeler_poll","session":1}|});
  (* the outcome field is mandatory — null for "round still open" *)
  bad
    (Pr.response_of_string
       {|{"jim":1,"resp":"vote_ok","round":1,"counted":true}|});
  (match
     Pr.response_of_string
       {|{"jim":1,"resp":"vote_ok","round":4,"counted":false,"outcome":null}|}
   with
  | Ok (Pr.Vote_ok { round = 4; counted = false; outcome = None }) -> ()
  | _ -> Alcotest.fail "null outcome should decode to None")

let test_repl_batch_errors () =
  (* The batch messages fail with the same pinned Bad_request strings
     the rest of the protocol uses — a malformed batch must never be
     partially applied, just refused with a greppable reason. *)
  let pin line expected =
    match Pr.request_of_string line with
    | Error e ->
      Alcotest.(check string) expected expected (Pr.error_to_string e)
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
  in
  pin {|{"jim":1,"req":"repl_batch"}|} {|bad request: missing field "records"|};
  pin
    {|{"jim":1,"req":"repl_batch","records":7}|}
    "bad request: expected an array, got 7";
  pin
    {|{"jim":1,"req":"repl_batch","records":["a",7]}|}
    "bad request: expected a string, got 7";
  (* Ring_info lag fields are additive but must travel as a pair. *)
  (match
     Pr.response_of_string
       {|{"jim":1,"resp":"ring_status","shards":[{"name":"s0","promoted":false,"lag_records":3}],"sessions":0}|}
   with
  | Error (Pr.Bad_request _ as e) ->
    Alcotest.(check string)
      "half a lag pair refused"
      "bad request: lag_records and lag_bytes must appear together"
      (Pr.error_to_string e)
  | _ -> Alcotest.fail "half a lag pair accepted");
  (* an empty batch is well-formed on the wire; senders never emit it *)
  match Pr.request_of_string {|{"jim":1,"req":"repl_batch","records":[]}|} with
  | Ok (Pr.Repl_batch { records = [] }) -> ()
  | _ -> Alcotest.fail "empty repl_batch should decode"

let test_label_encoding () =
  (* the wire uses the paper's +/- vocabulary; pin it *)
  Alcotest.(check string) "+" "\"+\"" (Json.to_string (Pr.label_to_json State.Pos));
  Alcotest.(check string) "-" "\"-\"" (Json.to_string (Pr.label_to_json State.Neg))

let test_json_trailing_garbage () =
  match Json.of_string "{} {}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let test_unicode_escapes () =
  (* \u escapes take exactly four hex digits from [0-9a-fA-F].
     [int_of_string "0x..."] would also accept underscores and sign
     characters ("0_41", "+041"), so the digits are decoded by hand —
     pin both the accepts and the rejects. *)
  (match Json.of_string {|"\u0041"|} with
  | Ok (Json.String "A") -> ()
  | Ok v -> Alcotest.fail ("\\u0041 decoded to " ^ Json.to_string v)
  | Error e -> Alcotest.fail ("\\u0041 rejected: " ^ e));
  (match Json.of_string {|"\uD83D\uDE00"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "surrogate pair decodes to UTF-8"
      "\xf0\x9f\x98\x80" s
  | Error e -> Alcotest.fail ("surrogate pair rejected: " ^ e)
  | Ok v -> Alcotest.fail ("surrogate pair decoded to " ^ Json.to_string v));
  let reject s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok v ->
      Alcotest.fail (Printf.sprintf "%s accepted as %s" s (Json.to_string v))
  in
  reject {|"\u0_41"|};
  reject {|"\u+041"|};
  reject {|"\u-041"|};
  reject {|"\u00G1"|};
  reject {|"\u 041"|};
  reject {|"\u004"|}

let test_error_strings () =
  (* error_to_string is documented stable, one shape per constructor —
     clients grep logs for these.  Pin every one. *)
  List.iter
    (fun (err, expected) ->
      Alcotest.(check string) expected expected (Pr.error_to_string err))
    [
      (Pr.Bad_request "no tag", "bad request: no tag");
      (Pr.Unknown_session 42, "unknown session 42");
      (Pr.Unknown_strategy "no such strategy", "no such strategy");
      (Pr.Bad_source "bad csv", "bad instance source: bad csv");
      (Pr.Unknown_instance "deadbeef", "unknown instance deadbeef");
      ( Pr.Engine Session.Contradiction,
        Session.error_to_string Session.Contradiction );
      ( Pr.Server_busy { active = 64; max = 64 },
        "server busy: 64/64 sessions active" );
      ( Pr.Unsupported_version 9,
        Printf.sprintf "unsupported protocol version 9 (this server speaks %d)"
          Pr.version );
      ( Pr.Shard_unavailable "s0 down",
        "shard unavailable: s0 down" );
      (Pr.Unknown_labeler 7, "unknown labeler 7");
    ]

(* ------------------------------------------------------------------ *)
(* Strategy name table                                                 *)

let test_strategy_roundtrip () =
  List.iter
    (fun name ->
      match Strategy.of_string name with
      | Ok s ->
        Alcotest.(check string)
          (name ^ " round-trips") name (Strategy.to_string s)
      | Error e -> Alcotest.fail e)
    Strategy.names;
  (match Strategy.of_string "lookahead2" with
  | Ok s ->
    Alcotest.(check string) "alias normalises" "lookahead-2" (Strategy.to_string s)
  | Error e -> Alcotest.fail e);
  match Strategy.of_string "nonesuch" with
  | Error msg ->
    Alcotest.(check bool) "error lists the catalogue" true
      (String.length msg > 0
      && String.exists (fun _ -> true) msg
      &&
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      has_sub msg "optimal")
  | Ok _ -> Alcotest.fail "unknown strategy accepted"

let () =
  Alcotest.run "api"
    [
      ( "roundtrip",
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          prop_encoding_stable;
          prop_source_roundtrip;
          prop_partition_roundtrip;
          prop_outcome_roundtrip;
          prop_json_float_roundtrip;
          prop_json_string_roundtrip;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "malformed input" `Quick test_malformed;
          Alcotest.test_case "repl batch errors" `Quick test_repl_batch_errors;
          Alcotest.test_case "label encoding" `Quick test_label_encoding;
          Alcotest.test_case "trailing garbage" `Quick test_json_trailing_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
          Alcotest.test_case "stable error strings" `Quick test_error_strings;
        ] );
      ( "strategy names",
        [ Alcotest.test_case "of_string/to_string" `Quick test_strategy_roundtrip ] );
    ]
