(* Fault-injection tests: the deterministic in-memory filesystem, the
   exhaustive simulated crash sweeps built on it, and the wire chaos
   proxy's failure classification.

   The headline replaces the old fork-free SIGKILL prefix sweeps:
   [Jim_fault.Sweep] drives a multi-session oracle workload through a
   durably persisted [Service] on [Memfs] and cuts the power at EVERY
   write boundary — plus torn-tail, failed-fsync, EIO and ENOSPC
   families — recovering and verifying both post-crash disk images
   in-process.  Hundreds of crash points per second, no processes, no
   real disk.  Alongside: a qcheck property pinning [Journal.scan]'s
   verdict on every single-byte mutation, idle-TTL eviction under
   persistence, the fault-plan DSL, and a chaos-proxied smoke run whose
   drops must classify as transport failures, never divergence.

   The slow variants (stride-1 fsync/EIO sweeps, the chunked crash
   sweep) only run with JIM_SLOW_TESTS=1 — see the CI chaos job. *)

module Pr = Jim_api.Protocol
module Service = Jim_server.Service
module Wire = Jim_server.Wire
module Smoke = Jim_server.Smoke
module Chaos = Jim_server.Chaos
module Store = Jim_store.Store
module Journal = Jim_store.Journal
module Event = Jim_store.Event
module Recovery = Jim_store.Recovery
module Plan = Jim_fault.Plan
module Memfs = Jim_fault.Memfs
module Sweep = Jim_fault.Sweep
open Jim_core

let slow_enabled =
  match Sys.getenv_opt "JIM_SLOW_TESTS" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let if_slow cases = if slow_enabled then cases else []

(* ------------------------------------------------------------------ *)
(* The fault plan DSL                                                  *)

let sample_plans =
  [
    Plan.none;
    { Plan.none with crash_write = Some (7, 3) };
    { Plan.none with fail_write = Some 3; write_chunk = Some 5 };
    { Plan.none with short_write = Some (5, 2); fail_fsync = Some 2 };
    { Plan.none with enospc_after = Some 4096 };
    {
      Plan.fail_write = Some 1;
      short_write = Some (2, 1);
      write_chunk = Some 3;
      fail_fsync = Some 4;
      enospc_after = Some 512;
      crash_write = Some (9, 0);
    };
  ]

let test_plan_roundtrip () =
  List.iter
    (fun p ->
      let s = Plan.to_string p in
      match Plan.of_string s with
      | Ok p' ->
        Alcotest.(check string) ("roundtrip: " ^ s) s (Plan.to_string p')
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    sample_plans;
  (match Plan.of_string "none" with
  | Ok p -> Alcotest.(check string) "none" "none" (Plan.to_string p)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Plan.of_string bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "frob=1"; "crash-write=x"; "fail-write"; "short-write=3"; "enospc=-1" ]

let test_chaos_plan_roundtrip () =
  List.iter
    (fun s ->
      match Chaos.plan_of_string s with
      | Ok p -> Alcotest.(check string) ("roundtrip: " ^ s) s (Chaos.plan_to_string p)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    [ "none"; "drop=5"; "drop=5,drop-lines=4"; "trickle=7,partial=3,stall=11"; "drop=2,delay-ms=0" ];
  List.iter
    (fun bad ->
      match Chaos.plan_of_string bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "drop"; "drop=0"; "chop=3"; "delay-ms=x" ]

(* ------------------------------------------------------------------ *)
(* Memfs semantics: the page-cache model the sweeps rely on            *)

let write_str file s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then go (off + file.Jim_store.Io.write buf off (len - off))
  in
  go 0

let read_on fs path =
  let io = Memfs.io fs in
  match io.Jim_store.Io.read_file path with
  | Ok data -> Some data
  | Error _ -> None

let test_memfs_page_cache () =
  let fs = Memfs.create () in
  let io = Memfs.io fs in
  io.Jim_store.Io.mkdir_p "/d";
  let f = io.Jim_store.Io.create "/d/a" in
  write_str f "hello";
  f.Jim_store.Io.fsync ();
  write_str f " world";
  (* cache view sees everything; the durable image only the fsynced
     prefix; the flushed image everything *)
  Alcotest.(check (option string)) "cache" (Some "hello world") (Memfs.file fs "/d/a");
  Alcotest.(check (option string))
    "durable image drops unsynced" (Some "hello")
    (Memfs.file (Memfs.durable_image fs) "/d/a");
  Alcotest.(check (option string))
    "flushed image keeps the tail" (Some "hello world")
    (Memfs.file (Memfs.flushed_image fs) "/d/a");
  f.Jim_store.Io.close ()

let test_memfs_rename_atomic () =
  let fs = Memfs.create () in
  let io = Memfs.io fs in
  io.Jim_store.Io.mkdir_p "/d";
  let f = io.Jim_store.Io.create "/d/a.tmp" in
  write_str f "payload";
  f.Jim_store.Io.fsync ();
  f.Jim_store.Io.close ();
  io.Jim_store.Io.rename "/d/a.tmp" "/d/a";
  let img = Memfs.durable_image fs in
  Alcotest.(check (option string)) "renamed content" (Some "payload")
    (Memfs.file img "/d/a");
  Alcotest.(check (option string)) "old name gone" None (Memfs.file img "/d/a.tmp");
  let entries = Array.to_list ((Memfs.io img).Jim_store.Io.readdir "/d") in
  Alcotest.(check bool) "readdir sees it" true
    (List.mem "a" entries && not (List.mem "a.tmp" entries))

let test_memfs_crash_write () =
  let plan = { Plan.none with crash_write = Some (2, 3) } in
  let fs = Memfs.create ~plan () in
  let io = Memfs.io fs in
  let f = io.Jim_store.Io.create "/a" in
  write_str f "first";
  f.Jim_store.Io.fsync ();
  (match write_str f "second" with
  | () -> Alcotest.fail "write survived the power cut"
  | exception Memfs.Power_cut -> ());
  (* the fs is dead now *)
  (match io.Jim_store.Io.read_file "/a" with
  | exception Memfs.Power_cut -> ()
  | Ok _ | Error _ -> Alcotest.fail "read survived the power cut");
  (* 3 bytes of the torn write reached the cache, none were synced *)
  Alcotest.(check (option string)) "flushed: torn tail" (Some "firstsec")
    (Memfs.file (Memfs.flushed_image fs) "/a");
  Alcotest.(check (option string)) "durable: cut at the barrier" (Some "first")
    (Memfs.file (Memfs.durable_image fs) "/a")

let test_memfs_enospc () =
  let plan = { Plan.none with enospc_after = Some 4 } in
  let fs = Memfs.create ~plan () in
  let io = Memfs.io fs in
  let f = io.Jim_store.Io.create "/a" in
  match write_str f "abcdefgh" with
  | () -> Alcotest.fail "wrote past the byte budget"
  | exception Unix.Unix_error (Unix.ENOSPC, _, _) ->
    (* the budgeted prefix was accepted before the disk filled *)
    Alcotest.(check (option string)) "accepted prefix" (Some "abcd")
      (read_on fs "/a")

(* ------------------------------------------------------------------ *)
(* The simulated crash sweeps: the acceptance bar                      *)

(* Every sweep family runs the same >= 50-event, two-strategy workload
   (Sweep.default: 7 sessions, lookahead-entropy/random) and verifies
   both post-crash disk images per faulted run; any contract violation
   raises Divergence with the provoking plan in the message. *)
let check_stats name ?(images_per_run = 2) (st : Sweep.stats) =
  if st.Sweep.events < 50 then
    Alcotest.failf "%s: only %d events journaled (need >= 50)" name
      st.Sweep.events;
  Alcotest.(check bool) (name ^ ": swept some points") true (st.Sweep.points > 0);
  Alcotest.(check int)
    (name ^ ": both images verified per run")
    (images_per_run * st.Sweep.runs)
    st.Sweep.images

let test_crash_sweep_every_boundary () =
  (* Power cut at EVERY write ordinal of the reference run, twice each:
     a clean cut at the boundary and a torn tail 3 bytes in. *)
  let st = Sweep.crash_sweep Sweep.default in
  check_stats "crash sweep" st;
  Alcotest.(check int) "clean cut + torn tail per boundary"
    (2 * st.Sweep.points) st.Sweep.runs

let test_fsync_sweep () =
  check_stats "fsync sweep" (Sweep.fsync_sweep ~stride:3 Sweep.default)

let test_write_error_sweep () =
  check_stats "write error sweep" (Sweep.write_error_sweep ~stride:3 Sweep.default)

let test_enospc_sweep () = check_stats "enospc sweep" (Sweep.enospc_sweep Sweep.default)

let test_chunk_run () =
  (* chunk=3 makes every record span many short writes; the retry loops
     must reassemble a bit-identical journal. *)
  check_stats "chunk run" (Sweep.chunk_run ~chunk:3 Sweep.default)

let test_crash_sweep_shared_catalog () =
  (* The same crash sweep, but every service — faulted runs and recovery
     verifications alike — resolves through one long-lived shared
     catalog: recoveries warm-start off shared entries (and shared
     scorer memos) and the bit-identity contract must hold unchanged.
     The whole sweep derives each of the 7 instances exactly once. *)
  let catalog = Jim_catalog.Catalog.create () in
  let st = Sweep.crash_sweep ~catalog ~stride:7 Sweep.default in
  check_stats "crash sweep (shared catalog)" st;
  let s = Jim_catalog.Catalog.stats catalog in
  Alcotest.(check int) "one entry per instance across the whole sweep"
    Sweep.default.Sweep.sessions s.Jim_api.Protocol.entries;
  Alcotest.(check int) "derived once per instance"
    Sweep.default.Sweep.sessions s.Jim_api.Protocol.derivations;
  Alcotest.(check bool) "hundreds of warm restarts" true
    (s.Jim_api.Protocol.hits > s.Jim_api.Protocol.misses)

let test_replicated_sweep () =
  (* The failover drill: a primary/standby pair joined by the journal
     stream, the primary power-cut at every 3rd write ordinal (clean cut
     + torn tail 3 bytes in), the standby promoted and held to the same
     three-part contract as a recovered disk image.  One promoted
     standby per run. *)
  let st = Sweep.replicated_sweep ~stride:3 Sweep.default in
  check_stats "replicated sweep" ~images_per_run:1 st;
  Alcotest.(check int) "clean cut + torn tail per boundary"
    (2 * st.Sweep.points) st.Sweep.runs

let test_crowd_crash_sweep () =
  (* The crowd-labeled workload under power cuts: every answer arrives
     as a 3-ballot unanimous vote, so each crash point lands at an
     aggregate-record boundary — mid-vote-collection.  Both post-crash
     images are recovered into a service WITHOUT crowd labeling: the
     journal must replay as plain answers (no ballot, no partial tally
     ever reaches disk) and resume bit-identically. *)
  let st = Sweep.crowd_crash_sweep ~stride:3 Sweep.default in
  check_stats "crowd crash sweep" st;
  Alcotest.(check int) "clean cut + torn tail per boundary"
    (2 * st.Sweep.points) st.Sweep.runs

let test_crowd_replicated_run () =
  (* The replication stream of a crowd-labeled primary carries only the
     journaled aggregates; the promoted standby (no crowd machinery)
     must resume every session bit-identically. *)
  check_stats "crowd replicated run" ~images_per_run:1
    (Sweep.crowd_replicated_run Sweep.default)

let test_crowd_crash_sweep_full () =
  check_stats "crowd crash sweep (stride 1)"
    (Sweep.crowd_crash_sweep Sweep.default)

(* Group commit under fault: the same sweeps with a positive commit
   window, so the store stages records and combines fsyncs — every
   crash point now lands at a batch boundary (applied=0) or tears the
   batch mid-write (applied=3).  The three-part recovery contract must
   hold identically; the replicated variant ships each batch as one
   [Repl_batch] and the standby must apply it atomically. *)

let windowed = { Sweep.default with Sweep.commit_window = 0.002 }

let test_crash_sweep_windowed () =
  let st = Sweep.crash_sweep ~stride:3 windowed in
  check_stats "crash sweep (group commit)" st

let test_fsync_sweep_windowed () =
  check_stats "fsync sweep (group commit)" (Sweep.fsync_sweep ~stride:3 windowed)

let test_replicated_sweep_windowed () =
  check_stats "replicated sweep (group commit)" ~images_per_run:1
    (Sweep.replicated_sweep ~stride:3 windowed)

(* Slow variants: no strides, plus crashes inside chunked writes. *)

let test_fsync_sweep_full () =
  check_stats "fsync sweep (stride 1)" (Sweep.fsync_sweep Sweep.default)

let test_write_error_sweep_full () =
  check_stats "write error sweep (stride 1)"
    (Sweep.write_error_sweep Sweep.default)

let test_crash_sweep_chunked () =
  (* write-chunk=3 multiplies the write boundaries ~25x; stride over
     them (coprime to the record structure) and add a mid-chunk tear. *)
  let st = Sweep.crash_sweep ~chunk:3 ~stride:37 ~applied:[ 0; 1 ] Sweep.default in
  check_stats "chunked crash sweep" st

let test_replicated_sweep_full () =
  (* Every write ordinal — the primary killed at every record boundary
     and torn mid-record, a promotion verified for each. *)
  check_stats "replicated sweep (stride 1)" ~images_per_run:1
    (Sweep.replicated_sweep Sweep.default)

let test_crash_sweep_windowed_full () =
  check_stats "crash sweep (group commit, stride 1)"
    (Sweep.crash_sweep windowed)

let test_replicated_sweep_windowed_full () =
  check_stats "replicated sweep (group commit, stride 1)" ~images_per_run:1
    (Sweep.replicated_sweep windowed)

(* ------------------------------------------------------------------ *)
(* qcheck: Journal.scan's verdict on every single-byte mutation        *)

let sg_pool =
  Array.map
    (fun s ->
      match Jim_partition.Partition.of_string s with
      | Ok p -> p
      | Error e -> failwith e)
    [| "{0}{1}{2}{3}{4}"; "{0,1}{2,3,4}"; "{0,2}{1}{3,4}"; "{0,1,2,3,4}" |]

let event_gen =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map
            (fun (session, seed) ->
              Event.Started
                {
                  session;
                  arity = 5;
                  source = Pr.Builtin "flights";
                  strategy = "random";
                  seed;
                  fingerprint = "cafe0001";
                })
            (pair (int_bound 9) (int_bound 99)) );
        ( 5,
          map
            (fun (session, cls, i) ->
              Event.Answered
                {
                  session;
                  cls;
                  sg = sg_pool.(i);
                  label = (if i mod 2 = 0 then State.Pos else State.Neg);
                })
            (triple (int_bound 9) (int_bound 9) (int_bound 3)) );
        (1, map (fun session -> Event.Undone { session }) (int_bound 9));
        (1, map (fun session -> Event.Ended { session }) (int_bound 9));
      ])

let mutation_arb =
  QCheck.make
    ~print:(fun (events, pos, xor) ->
      Printf.sprintf "%d events, byte %d xor 0x%02x" (List.length events) pos xor)
    QCheck.Gen.(
      triple (list_size (int_range 1 25) event_gen) (int_bound 99_999)
        (int_range 1 255))

(* Journal a random event sequence through the fault filesystem, flip
   one byte, and check the scan verdict: [Truncated] exactly when the
   damage lands in the final record (and then at the final record's
   offset, with the intact prefix returned); otherwise [`Corrupt] naming
   the offset of the record that was hit (0 for the file header). *)
let scan_classifies_mutations =
  QCheck.Test.make ~count:250 ~name:"single-byte damage: torn iff final record"
    mutation_arb (fun (events, pos, xor) ->
      let path = "/j.wal" in
      let fs = Memfs.create () in
      let io = Memfs.io fs in
      let j = Journal.create ~fsync:false ~io path in
      List.iter (fun ev -> Journal.append j (Event.to_string ev)) events;
      Journal.close j;
      let data =
        match Memfs.file fs path with
        | Some d -> d
        | None -> QCheck.Test.fail_report "journal vanished"
      in
      let offsets =
        match Journal.scan ~io path with
        | Ok (records, Journal.Complete) -> List.map fst records
        | Ok (_, Journal.Truncated _) ->
          QCheck.Test.fail_report "pristine journal reported torn"
        | Error (`Corrupt (off, m)) ->
          QCheck.Test.fail_reportf "pristine journal corrupt at %d: %s" off m
      in
      let size = String.length data in
      let i = pos mod size in
      let final = List.fold_left max 0 offsets in
      let victim =
        (* the record containing byte [i]; 0 for the file header *)
        if i < Journal.header_size then 0
        else
          List.fold_left
            (fun acc o -> if o <= i then max acc o else acc)
            Journal.header_size offsets
      in
      let mutated = Bytes.of_string data in
      Bytes.set mutated i (Char.chr (Char.code data.[i] lxor xor));
      let fs' = Memfs.create () in
      Memfs.set_file fs' path (Bytes.to_string mutated);
      match Journal.scan ~io:(Memfs.io fs') path with
      | Error (`Corrupt (off, _)) ->
        if off <> victim then
          QCheck.Test.fail_reportf
            "byte %d sits in the record at %d, corruption reported at %d" i
            victim off
        else true
      | Ok (records, Journal.Truncated { offset; _ }) ->
        if i < final then
          QCheck.Test.fail_reportf
            "byte %d damaged a non-final record (final starts at %d) yet \
             scan reports a torn tail — acknowledged history dropped"
            i final
        else if offset <> final then
          QCheck.Test.fail_reportf "torn at %d, final record starts at %d"
            offset final
        else if List.map fst records <> List.filter (fun o -> o < final) offsets
        then QCheck.Test.fail_report "torn-tail scan lost part of the prefix"
        else true
      | Ok (_, Journal.Complete) ->
        QCheck.Test.fail_reportf "byte %d flipped by 0x%02x scanned clean" i xor)

(* ------------------------------------------------------------------ *)
(* Idle-TTL eviction under persistence                                 *)

let oracle_of seed =
  let p =
    { Jim_workloads.Synthetic.n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }
  in
  Oracle.of_goal (Jim_workloads.Synthetic.generate p).Jim_workloads.Synthetic.goal

let start_on service ~seed ~strategy =
  match
    Service.handle service
      (Pr.Start_session
         {
           source =
             Pr.Synthetic
               { n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed };
           strategy;
           seed;
         })
  with
  | Pr.Started { session; _ } -> session
  | other -> Alcotest.failf "start failed: %s" (Pr.response_to_string other)

let answer_one service oracle id =
  match Service.handle service (Pr.Get_question { session = id }) with
  | Pr.Question None -> false
  | Pr.Question (Some { Pr.cls; sg; _ }) -> (
    match
      Service.handle service
        (Pr.Answer { session = id; cls; label = Oracle.label oracle sg })
    with
    | Pr.Answered _ -> true
    | other -> Alcotest.failf "answer failed: %s" (Pr.response_to_string other))
  | other -> Alcotest.failf "question failed: %s" (Pr.response_to_string other)

let test_ttl_sweep_persists () =
  let fs = Memfs.create () in
  let io = Memfs.io fs in
  let store, recovered =
    match Store.open_dir ~io "/data" with
    | Ok v -> v
    | Error e -> Alcotest.failf "open_dir: %s" e
  in
  Alcotest.(check int) "fresh store" 0 (List.length recovered.Recovery.sessions);
  let clock = ref 0.0 in
  let ended = Hashtbl.create 8 in
  let persist ev =
    (match ev with
    | Event.Ended { session } ->
      Hashtbl.replace ended session (1 + Option.value ~default:0 (Hashtbl.find_opt ended session))
    | _ -> ());
    Store.record store ev
  in
  let service =
    Service.create ~idle_ttl:60. ~now:(fun () -> !clock) ~persist ()
  in
  let a = start_on service ~seed:7 ~strategy:"random" in
  Alcotest.(check bool) "a answered" true (answer_one service (oracle_of 7) a);
  clock := 50.;
  let b = start_on service ~seed:8 ~strategy:"lookahead-entropy" in
  clock := 120.;
  (* touch b so only a is past the TTL when the sweeper runs *)
  Alcotest.(check bool) "b answered" true (answer_one service (oracle_of 8) b);
  clock := 130.;
  Alcotest.(check int) "one session evicted" 1 (Service.sweep service);
  Alcotest.(check (option int)) "eviction journaled Ended once" (Some 1)
    (Hashtbl.find_opt ended a);
  Alcotest.(check (option int)) "survivor not ended" None (Hashtbl.find_opt ended b);
  (match Service.handle service (Pr.Get_question { session = a }) with
  | Pr.Failed (Pr.Unknown_session _) -> ()
  | other ->
    Alcotest.failf "evicted session answered: %s" (Pr.response_to_string other));
  (* idempotent: a second sweep neither evicts nor re-journals *)
  Alcotest.(check int) "second sweep finds nothing" 0 (Service.sweep service);
  Alcotest.(check (option int)) "still exactly one Ended" (Some 1)
    (Hashtbl.find_opt ended a);
  Store.close store;
  (* restart over the same disk: the eviction survived the journal *)
  let store', recovered' =
    match Store.open_dir ~io "/data" with
    | Ok v -> v
    | Error e -> Alcotest.failf "reopen: %s" e
  in
  let ids = List.map (fun s -> s.Recovery.id) recovered'.Recovery.sessions in
  Alcotest.(check (list int)) "only the survivor recovered" [ b ] ids;
  let service' = Service.create ~persist:(Store.record store') () in
  (match Service.restore service' recovered' with
  | Ok n -> Alcotest.(check int) "one session restored" 1 n
  | Error e -> Alcotest.failf "restore: %s" e);
  (match Service.handle service' (Pr.Get_question { session = a }) with
  | Pr.Failed (Pr.Unknown_session _) -> ()
  | other ->
    Alcotest.failf "swept session resumed after restart: %s"
      (Pr.response_to_string other));
  Alcotest.(check bool) "survivor resumes" true
    (match Service.handle service' (Pr.Get_question { session = b }) with
    | Pr.Question _ -> true
    | _ -> false);
  Store.close store'

(* ------------------------------------------------------------------ *)
(* Chaos proxy end-to-end: drops classify as transport, never as       *)
(* divergence                                                          *)

let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jim-fault-%d-%d.sock" (Unix.getpid ()) !counter)

(* Shared by the line- and binary-framing cases: the fault modes apply
   at reply granularity under both, so the assertions are identical. *)
let chaos_proxy_smoke framing () =
  let upstream = Wire.Unix_path (fresh_socket ()) in
  let listen = Wire.Unix_path (fresh_socket ()) in
  let service = Service.create () in
  let server = Wire.serve ~threads:16 service upstream in
  let plan =
    (* delay-ms=0: exercise the ragged-delivery paths without sleeping *)
    match Chaos.plan_of_string "drop=3,trickle=5,partial=7,delay-ms=0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let proxy =
    match Chaos.start ~plan ~listen ~upstream () with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Chaos.stop proxy);
      Wire.shutdown server)
    (fun () ->
      let reports = Smoke.run ~clients:8 ~framing ~address:listen () in
      Alcotest.(check int) "all clients reported" 8 (List.length reports);
      let dropped, rest = List.partition (fun r -> r.Smoke.dropped) reports in
      List.iter
        (fun r ->
          if not r.Smoke.ok then
            Alcotest.failf "seed %d diverged through the proxy: %s"
              r.Smoke.seed r.Smoke.detail)
        rest;
      (* connections 3 and 6 of 8 hit the drop fault *)
      Alcotest.(check int) "two clients dropped" 2 (List.length dropped);
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d drop is transport-level" r.Smoke.seed)
            false r.Smoke.ok)
        dropped;
      let st = Chaos.stats proxy in
      Alcotest.(check int) "proxy saw every connection" 8 st.Chaos.connections;
      Alcotest.(check int) "proxy cut two" 2 st.Chaos.dropped;
      (* the ragged delivery modes really fired *)
      Alcotest.(check bool) "trickle fired" true (st.Chaos.trickled >= 1);
      Alcotest.(check bool) "partial fired" true (st.Chaos.chopped >= 1))

(* The pipelined drill through the proxy: each connection multiplexes 8
   sessions, so its requests arrive in coalesced bursts and the server's
   replies come back in batched frames.  The proxy relays those batched
   frames and cuts connection 3 of 4 at a reply boundary ([drop_lines] =
   2): all 8 of that connection's sessions must classify as transport
   drops, and every session on the surviving connections must stay
   bit-identical — batching must never turn a cut into a divergence. *)
let chaos_proxy_pipelined framing () =
  let upstream = Wire.Unix_path (fresh_socket ()) in
  let listen = Wire.Unix_path (fresh_socket ()) in
  let service = Service.create () in
  let server = Wire.serve ~threads:16 service upstream in
  let plan =
    match Chaos.plan_of_string "drop=3" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let proxy =
    match Chaos.start ~plan ~listen ~upstream () with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Chaos.stop proxy);
      Wire.shutdown server)
    (fun () ->
      let reports =
        Smoke.run_pipelined ~clients:4 ~pipeline:8 ~framing ~address:listen ()
      in
      Alcotest.(check int) "all sessions reported" 32 (List.length reports);
      let dropped, rest = List.partition (fun r -> r.Smoke.dropped) reports in
      List.iter
        (fun r ->
          if not r.Smoke.ok then
            Alcotest.failf "seed %d diverged through the proxy: %s"
              r.Smoke.seed r.Smoke.detail)
        rest;
      Alcotest.(check int) "the cut connection's 8 sessions dropped" 8
        (List.length dropped);
      let st = Chaos.stats proxy in
      Alcotest.(check int) "proxy saw every connection" 4 st.Chaos.connections;
      Alcotest.(check int) "proxy cut one" 1 st.Chaos.dropped)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    ([
       ( "plan",
         [
           Alcotest.test_case "DSL roundtrip and rejects" `Quick
             test_plan_roundtrip;
           Alcotest.test_case "chaos DSL roundtrip and rejects" `Quick
             test_chaos_plan_roundtrip;
         ] );
       ( "memfs",
         [
           Alcotest.test_case "page cache vs durable prefix" `Quick
             test_memfs_page_cache;
           Alcotest.test_case "rename is atomic and durable" `Quick
             test_memfs_rename_atomic;
           Alcotest.test_case "power cut mid-write tears the tail" `Quick
             test_memfs_crash_write;
           Alcotest.test_case "enospc honours the byte budget" `Quick
             test_memfs_enospc;
         ] );
       ( "sweep",
         [
           Alcotest.test_case "power cut at every write boundary" `Quick
             test_crash_sweep_every_boundary;
           Alcotest.test_case "failed fsync poisons, never loses" `Quick
             test_fsync_sweep;
           Alcotest.test_case "EIO on write poisons, never loses" `Quick
             test_write_error_sweep;
           Alcotest.test_case "disk full mid-record" `Quick test_enospc_sweep;
           Alcotest.test_case "short-write retries reassemble" `Quick
             test_chunk_run;
           Alcotest.test_case "crash sweep through a shared catalog" `Quick
             test_crash_sweep_shared_catalog;
           Alcotest.test_case "replicated pair: promote at crash points" `Quick
             test_replicated_sweep;
           Alcotest.test_case "crowd votes: crash at aggregate boundaries"
             `Quick test_crowd_crash_sweep;
           Alcotest.test_case "crowd votes: replicated standby bit-identity"
             `Quick test_crowd_replicated_run;
           Alcotest.test_case "group commit: crash at batch boundaries" `Quick
             test_crash_sweep_windowed;
           Alcotest.test_case "group commit: failed combined fsync" `Quick
             test_fsync_sweep_windowed;
           Alcotest.test_case "group commit: replicated batches, promote"
             `Quick test_replicated_sweep_windowed;
         ]
         @ if_slow
             [
               Alcotest.test_case "failed fsync, every ordinal" `Slow
                 test_fsync_sweep_full;
               Alcotest.test_case "EIO on write, every ordinal" `Slow
                 test_write_error_sweep_full;
               Alcotest.test_case "power cut inside chunked writes" `Slow
                 test_crash_sweep_chunked;
               Alcotest.test_case "crowd crash sweep, every ordinal" `Slow
                 test_crowd_crash_sweep_full;
               Alcotest.test_case "replicated pair, every ordinal" `Slow
                 test_replicated_sweep_full;
               Alcotest.test_case "group commit crash, every ordinal" `Slow
                 test_crash_sweep_windowed_full;
               Alcotest.test_case "group commit replicated, every ordinal"
                 `Slow test_replicated_sweep_windowed_full;
             ] );
       ( "journal",
         [ QCheck_alcotest.to_alcotest scan_classifies_mutations ] );
       ( "service",
         [
           Alcotest.test_case "idle TTL eviction journals Ended once" `Quick
             test_ttl_sweep_persists;
         ] );
       ( "chaos",
         [
           Alcotest.test_case "proxied smoke: drops are transport" `Quick
             (chaos_proxy_smoke Wire.Line);
           Alcotest.test_case "proxied smoke, binary frames" `Quick
             (chaos_proxy_smoke Wire.Binary);
           Alcotest.test_case "proxied pipelined smoke: cut at reply boundary"
             `Quick (chaos_proxy_pipelined Wire.Line);
           Alcotest.test_case "proxied pipelined smoke, binary frames" `Quick
             (chaos_proxy_pipelined Wire.Binary);
         ] );
     ]
    |> List.filter (fun (_, cases) -> cases <> []))
