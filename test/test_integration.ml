(* Cross-library integration tests: the whole pipeline from raw relations
   through denormalisation, interactive inference, SQL rendering, SQL
   re-execution and result comparison; plus TUI rendering smoke tests and
   failure injection. *)

module P = Jim_partition.Partition
module V = Jim_relational.Value
module T = Jim_relational.Tuple0
module R = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Database = Jim_relational.Database
module Csv = Jim_relational.Csv
module W = Jim_workloads
open Jim_core

let qtest ?(count = 30) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* End-to-end: infer -> SQL -> execute -> compare with goal join.      *)

let infer_and_reexecute spec =
  let db = W.Tpch.generate ~seed:6 W.Tpch.tiny in
  match W.Denorm.task_of_names db spec with
  | Error e -> Alcotest.fail e
  | Ok task ->
    let o =
      Session.run ~strategy:Strategy.lookahead_maximin
        ~oracle:(W.Denorm.oracle task) task.W.Denorm.instance
    in
    Alcotest.(check bool) "converged" false o.Session.contradiction;
    let cross =
      P.restrict o.Session.query ~allowed:task.W.Denorm.cross_only
    in
    let q = Jquery.make task.W.Denorm.schema cross in
    let sql = Jquery.to_sql ~from:task.W.Denorm.sources q in
    (match Database.exec db sql with
    | Error e -> Alcotest.fail ("re-execution failed: " ^ e)
    | Ok result ->
      let goal_result = W.Denorm.goal_join_result task in
      Alcotest.(check int) "same cardinality"
        (R.cardinality goal_result) (R.cardinality result);
      let sort r = List.sort T.compare (R.tuples r) in
      Alcotest.(check bool) "same contents" true
        (List.for_all2 T.equal (sort result) (sort goal_result)))

let test_pipeline_customer_orders () =
  infer_and_reexecute W.Tpch.fk_customer_orders

let test_pipeline_nation_chain () =
  infer_and_reexecute W.Tpch.fk_nation_chain

(* ------------------------------------------------------------------ *)
(* CSV road: dump the flights table, reload it, infer on the reload.   *)

let test_csv_to_inference () =
  let path = Filename.temp_file "jim_flights" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save W.Flights.instance path;
      match Csv.load_auto ~name:"packages" path with
      | Error e -> Alcotest.fail e
      | Ok rel ->
        let o =
          Session.run ~strategy:Strategy.lookahead_entropy
            ~oracle:(Oracle.of_goal W.Flights.q2) rel
        in
        Alcotest.(check bool) "Q2 recovered from CSV reload" true
          (P.equal o.Session.query W.Flights.q2))

(* ------------------------------------------------------------------ *)
(* The GAV-mapping rendering stays parseable and faithful.             *)

let test_gav_rendering () =
  let db = W.Tpch.generate ~seed:6 W.Tpch.tiny in
  match W.Denorm.task_of_names db W.Tpch.fk_customer_orders with
  | Error e -> Alcotest.fail e
  | Ok task ->
    let q = Jquery.make task.W.Denorm.schema task.W.Denorm.goal in
    let gav = Jquery.to_gav ~head:"m" q in
    (* Shared variable between the two atoms: x0 appears twice. *)
    Alcotest.(check bool) "head present" true
      (String.length gav > 0 && String.sub gav 0 2 = "m(");
    let occurrences needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i acc =
        if i + n > h then acc
        else if String.sub hay i n = needle then go (i + 1) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    Alcotest.(check bool) "join variable shared" true
      (occurrences "x0" gav >= 3)

(* ------------------------------------------------------------------ *)
(* Failure injection: noisy users and session resilience.              *)

let test_noisy_user_state_contradiction () =
  (* With manual (non-engine-filtered) labelling, a noisy user does hit
     contradictions, and State reports them instead of corrupting. *)
  let noisy =
    Oracle.noisy ~seed:11 ~flip_probability:0.45
      (Oracle.of_goal W.Flights.q2)
  in
  let hit = ref false in
  for seed = 1 to 20 do
    ignore seed;
    let st = ref (State.create 5) in
    (try
       for k = 1 to 12 do
         let sg = W.Flights.signature k in
         match State.add !st (Oracle.label noisy sg) sg with
         | Ok st' -> st := st'
         | Error `Contradiction -> begin
           hit := true;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  Alcotest.(check bool) "contradiction eventually reported" true !hit

let prop_mislabelled_runs_still_terminate =
  qtest ~count:30 "noisy runs terminate within class budget"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 500))
    (fun seed ->
      let inst =
        W.Synthetic.generate
          { W.Synthetic.default with W.Synthetic.n_tuples = 40; seed }
      in
      let noisy =
        Oracle.noisy ~seed ~flip_probability:0.3
          (Oracle.of_goal inst.W.Synthetic.goal)
      in
      let o =
        Session.run ~seed ~strategy:Strategy.local_lex ~oracle:noisy
          inst.W.Synthetic.relation
      in
      o.Session.interactions
      <= Array.length (Sigclass.classes inst.W.Synthetic.relation))

(* ------------------------------------------------------------------ *)
(* TUI smoke tests (rendering is pure string production).              *)

let test_render_table_plain () =
  Jim_tui.Ansi.enabled := false;
  let s = Jim_tui.Render.table W.Flights.instance in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l > 0 && l.[0] = '|') lines);
  (* 12 data rows + header + 3 separators + trailing -> >= 16 lines. *)
  Alcotest.(check bool) "row count" true
    (List.length (String.split_on_char '\n' s) >= 16)

let test_render_marks_and_strip () =
  Jim_tui.Ansi.enabled := true;
  let marks =
    Array.init 12 (fun i ->
        if i = 2 then Jim_tui.Render.Labeled_pos
        else if i = 3 then Jim_tui.Render.Grayed
        else Jim_tui.Render.Unlabeled)
  in
  let s = Jim_tui.Render.table ~marks W.Flights.instance in
  let stripped = Jim_tui.Ansi.strip s in
  Alcotest.(check bool) "ansi codes present when enabled" true
    (String.length s > String.length stripped);
  Jim_tui.Ansi.enabled := false;
  let plain = Jim_tui.Render.table ~marks W.Flights.instance in
  Alcotest.(check string) "strip = disabled rendering" plain stripped

let test_barchart () =
  let chart =
    Jim_tui.Barchart.render
      (Jim_tui.Barchart.of_counts [ ("a", 10); ("b", 5); ("no-bar", 0) ])
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' chart)
  in
  Alcotest.(check int) "three bars" 3 (List.length lines);
  let count_hashes l =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l
  in
  (match lines with
  | [ la; lb; lz ] ->
    Alcotest.(check int) "a full width" 40 (count_hashes la);
    Alcotest.(check int) "b half width" 20 (count_hashes lb);
    Alcotest.(check int) "zero empty" 0 (count_hashes lz)
  | _ -> Alcotest.fail "expected three lines");
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore
         (Jim_tui.Barchart.render
            [ { Jim_tui.Barchart.label = "x"; value = -1.0; annotation = "" } ]);
       false
     with Invalid_argument _ -> true)

let test_benefit_chart_savings () =
  let s = Jim_tui.Barchart.benefit ~baseline:("all", 12) [ ("jim", 3) ] in
  Alcotest.(check bool) "-75% shown" true
    (let needle = "-75%" in
     let rec contains i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

let test_progress_panel () =
  let eng = Session.create W.Flights.instance in
  let panel = Jim_tui.Progress.panel (Stats.of_engine eng) in
  Alcotest.(check bool) "panel renders" true (String.length panel > 0)

let test_prompt_scripted () =
  let src = Jim_tui.Prompt.of_list [ "junk"; "Y"; "n"; "q" ] in
  let devnull = open_out "/dev/null" in
  Fun.protect
    ~finally:(fun () -> close_out devnull)
    (fun () ->
      Alcotest.(check bool) "junk then yes" true
        (Jim_tui.Prompt.ask_label ~out:devnull src "?" = Jim_tui.Prompt.Yes);
      Alcotest.(check bool) "no" true
        (Jim_tui.Prompt.ask_label ~out:devnull src "?" = Jim_tui.Prompt.No);
      Alcotest.(check bool) "quit" true
        (Jim_tui.Prompt.ask_label ~out:devnull src "?" = Jim_tui.Prompt.Quit);
      Alcotest.(check bool) "eof is quit" true
        (Jim_tui.Prompt.ask_label ~out:devnull src "?" = Jim_tui.Prompt.Quit))

(* ------------------------------------------------------------------ *)
(* Engine view consistency: grayed rows are exactly the non-informative
   ones.                                                               *)

let test_engine_view_marks () =
  Jim_tui.Ansi.enabled := false;
  let eng = Session.create W.Flights.instance in
  (match
     Session.answer eng
       (Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature 12)))
       State.Pos
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected");
  let view = Jim_tui.Render.engine_view eng W.Flights.instance in
  (* (3), (4), (7), (12) decided -> grayed '.' marks; count them. *)
  let dots =
    String.fold_left (fun acc c -> if c = '.' then acc + 1 else acc) 0 view
  in
  Alcotest.(check int) "four grayed rows" 4 dots

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "customer-orders end to end" `Quick
            test_pipeline_customer_orders;
          Alcotest.test_case "nation chain end to end" `Quick
            test_pipeline_nation_chain;
          Alcotest.test_case "csv -> inference" `Quick test_csv_to_inference;
          Alcotest.test_case "gav rendering" `Quick test_gav_rendering;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "noisy user contradiction surfaces" `Quick
            test_noisy_user_state_contradiction;
          prop_mislabelled_runs_still_terminate;
        ] );
      ( "tui",
        [
          Alcotest.test_case "plain table" `Quick test_render_table_plain;
          Alcotest.test_case "marks and strip" `Quick
            test_render_marks_and_strip;
          Alcotest.test_case "barchart" `Quick test_barchart;
          Alcotest.test_case "benefit savings" `Quick
            test_benefit_chart_savings;
          Alcotest.test_case "progress panel" `Quick test_progress_panel;
          Alcotest.test_case "scripted prompt" `Quick test_prompt_scripted;
          Alcotest.test_case "engine view marks" `Quick test_engine_view_marks;
        ] );
    ]
