(* Tests for the relational substrate: values, schemas, tuples, relations,
   indexes, CSV, expressions, SQL lexer/parser/printer, algebra, database. *)

module V = Jim_relational.Value
module Schema = Jim_relational.Schema
module T = Jim_relational.Tuple0
module R = Jim_relational.Relation
module Index = Jim_relational.Index
module Csv = Jim_relational.Csv
module Expr = Jim_relational.Expr
module Sql_lexer = Jim_relational.Sql_lexer
module Sql_parser = Jim_relational.Sql_parser
module Sql_print = Jim_relational.Sql_print
module Database = Jim_relational.Database
module P = Jim_partition.Partition

let value = Alcotest.testable V.pp V.identical
let partition = Alcotest.testable P.pp P.equal

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let test_value_equal_null () =
  Alcotest.(check bool) "null <> null (SQL equal)" false V.(equal Null Null);
  Alcotest.(check bool) "null == null (identical)" true V.(identical Null Null);
  Alcotest.(check bool) "1 = 1" true V.(equal (Int 1) (Int 1));
  Alcotest.(check bool) "1 <> 1.0 (typed)" false V.(equal (Int 1) (Float 1.0))

let test_value_compare_order () =
  let sorted =
    List.sort V.compare
      V.[ Str "b"; Int 2; Null; Float 1.5; Int 1; Str "a"; Bool true ]
  in
  Alcotest.(check (list value))
    "null, ints, floats, strings, bools"
    V.[ Null; Int 1; Int 2; Float 1.5; Str "a"; Str "b"; Bool true ]
    sorted

let test_value_parse () =
  Alcotest.(check value) "int" (V.Int 42) (Result.get_ok (V.parse V.Tint "42"));
  Alcotest.(check value) "empty is null" V.Null
    (Result.get_ok (V.parse V.Tint ""));
  Alcotest.(check bool) "bad int" true (Result.is_error (V.parse V.Tint "4x"));
  Alcotest.(check value) "date" (V.date 2014 9 1)
    (Result.get_ok (V.parse V.Tdate "2014-09-01"));
  Alcotest.(check bool) "bad date" true
    (Result.is_error (V.parse V.Tdate "2014-02-30"));
  Alcotest.(check value) "bool yes" (V.Bool true)
    (Result.get_ok (V.parse V.Tbool "Yes"))

let test_value_parse_auto () =
  Alcotest.(check value) "auto int" (V.Int 7) (V.parse_auto "7");
  Alcotest.(check value) "auto float" (V.Float 7.5) (V.parse_auto "7.5");
  Alcotest.(check value) "auto bool" (V.Bool false) (V.parse_auto "false");
  Alcotest.(check value) "auto date" (V.date 1999 12 31)
    (V.parse_auto "1999-12-31");
  Alcotest.(check value) "auto string" (V.Str "NYC") (V.parse_auto "NYC")

let test_value_date_validation () =
  Alcotest.check_raises "month 13"
    (Invalid_argument "Value.date: impossible date") (fun () ->
      ignore (V.date 2020 13 1));
  Alcotest.(check value) "leap day ok" (V.date 2020 2 29) (V.date 2020 2 29);
  Alcotest.check_raises "non-leap feb 29"
    (Invalid_argument "Value.date: impossible date") (fun () ->
      ignore (V.date 2021 2 29))

let test_value_arith () =
  Alcotest.(check value) "int add" (V.Int 5) V.(add (Int 2) (Int 3));
  Alcotest.(check value) "mixed mul" (V.Float 5.0) V.(mul (Int 2) (Float 2.5));
  Alcotest.(check value) "null absorbs" V.Null V.(add Null (Int 1));
  Alcotest.(check value) "int div by zero is null" V.Null
    V.(div (Int 1) (Int 0))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let abc = Schema.of_list [ ("a", V.Tint); ("b", V.Tstring); ("c", V.Tint) ]

let test_schema_find () =
  Alcotest.(check (option int)) "b at 1" (Some 1) (Schema.find abc "b");
  Alcotest.(check (option int)) "missing" None (Schema.find abc "z");
  let q = Schema.qualify "r" abc in
  Alcotest.(check (option int)) "qualified exact" (Some 2) (Schema.find q "r.c");
  Alcotest.(check (option int)) "bare resolves" (Some 2) (Schema.find q "c")

let test_schema_ambiguous_bare () =
  let s = Schema.concat_qualified [ ("x", abc); ("y", abc) ] in
  Alcotest.(check (option int)) "ambiguous bare is None" None (Schema.find s "a");
  Alcotest.(check (option int)) "qualified ok" (Some 3) (Schema.find s "y.a")

let test_schema_duplicate () =
  Alcotest.(check bool) "duplicate raises" true
    (try
       ignore (Schema.of_list [ ("a", V.Tint); ("a", V.Tint) ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tuples and signatures                                               *)

let test_tuple_signature () =
  let t = T.make V.[ Str "x"; Str "y"; Str "x"; Str "y"; Str "z" ] in
  Alcotest.(check partition) "signature groups equal values"
    (P.of_blocks 5 [ [ 0; 2 ]; [ 1; 3 ] ])
    (T.signature t);
  let all_distinct = T.make V.[ Int 1; Int 2; Int 3 ] in
  Alcotest.(check partition) "distinct -> bottom" (P.bottom 3)
    (T.signature all_distinct);
  let all_same = T.make V.[ Int 1; Int 1; Int 1 ] in
  Alcotest.(check partition) "constant -> top" (P.top 3)
    (T.signature all_same)

let test_tuple_signature_nulls () =
  (* Signatures use identity, so two Nulls share a block. *)
  let t = T.make V.[ Null; Int 1; Null ] in
  Alcotest.(check partition) "nulls grouped"
    (P.of_blocks 3 [ [ 0; 2 ] ])
    (T.signature t)

let test_tuple_satisfies () =
  let t = T.make V.[ Str "a"; Str "b"; Str "a" ] in
  Alcotest.(check bool) "holds" true (T.satisfies (P.of_pairs 3 [ (0, 2) ]) t);
  Alcotest.(check bool) "fails" false (T.satisfies (P.of_pairs 3 [ (0, 1) ]) t);
  Alcotest.(check bool) "empty predicate selects" true
    (T.satisfies (P.bottom 3) t)

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)

let nums =
  R.of_rows ~name:"nums"
    (Schema.of_list [ ("k", V.Tint); ("v", V.Tstring) ])
    V.[
        [ Int 1; Str "one" ];
        [ Int 2; Str "two" ];
        [ Int 3; Str "three" ];
        [ Int 2; Str "two" ];
      ]

let test_relation_make_checks () =
  let s = Schema.of_list [ ("k", V.Tint) ] in
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (R.of_rows s V.[ [ Int 1; Int 2 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "type mismatch" true
    (try
       ignore (R.of_rows s V.[ [ Str "x" ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "null ok" 1 (R.cardinality (R.of_rows s V.[ [ Null ] ]))

let test_relation_select_project () =
  let r = R.select (fun t -> T.get t 0 = V.Int 2) nums in
  Alcotest.(check int) "two rows" 2 (R.cardinality r);
  let p = R.project_names [ "v" ] nums in
  Alcotest.(check int) "arity 1" 1 (R.arity p);
  Alcotest.(check string) "name kept" "nums" (R.name p)

let test_relation_distinct_sort () =
  let d = R.distinct nums in
  Alcotest.(check int) "distinct drops dup" 3 (R.cardinality d);
  let s = R.sort_by ~desc:true [ 0 ] nums in
  Alcotest.(check value) "desc first" (V.Int 3) (T.get (R.tuple s 0) 0)

let test_relation_product () =
  let a =
    R.of_rows ~name:"a"
      (Schema.of_list [ ("x", V.Tint) ])
      V.[ [ Int 1 ]; [ Int 2 ] ]
  in
  let b =
    R.of_rows ~name:"b"
      (Schema.of_list [ ("y", V.Tint) ])
      V.[ [ Int 3 ]; [ Int 4 ] ]
  in
  let p = R.product a b in
  Alcotest.(check int) "4 rows" 4 (R.cardinality p);
  Alcotest.(check (array string))
    "qualified schema" [| "a.x"; "b.y" |]
    (Schema.names (R.schema p));
  Alcotest.(check value) "row0 left" (V.Int 1) (T.get (R.tuple p 0) 0);
  Alcotest.(check value) "row1 right" (V.Int 4) (T.get (R.tuple p 1) 1)

let test_relation_equi_join () =
  let a =
    R.of_rows ~name:"a"
      (Schema.of_list [ ("x", V.Tint); ("t", V.Tstring) ])
      V.[ [ Int 1; Str "u" ]; [ Int 2; Str "v" ]; [ Null; Str "w" ] ]
  in
  let b =
    R.of_rows ~name:"b"
      (Schema.of_list [ ("y", V.Tint) ])
      V.[ [ Int 2 ]; [ Int 2 ]; [ Null ] ]
  in
  let j = R.equi_join ~on:[ (0, 0) ] a b in
  (* Only x=2 matches, twice; nulls never join. *)
  Alcotest.(check int) "2 rows" 2 (R.cardinality j);
  Alcotest.(check value) "joined value" (V.Int 2) (T.get (R.tuple j 0) 0);
  let ps =
    R.select (fun t -> V.equal (T.get t 0) (T.get t 2)) (R.product a b)
  in
  Alcotest.(check bool) "join = select over product" true
    (R.equal_contents (R.make (R.schema ps) (R.tuples j)) ps)

let test_relation_set_ops () =
  let s = Schema.of_list [ ("x", V.Tint) ] in
  let a = R.of_rows ~name:"a" s V.[ [ Int 1 ]; [ Int 2 ]; [ Int 2 ] ] in
  let b = R.of_rows ~name:"b" s V.[ [ Int 2 ]; [ Int 3 ] ] in
  Alcotest.(check int) "union distinct" 3 (R.cardinality (R.union a b));
  Alcotest.(check int) "diff" 1 (R.cardinality (R.diff a b));
  Alcotest.(check int) "intersect" 2 (R.cardinality (R.intersect a b))

let test_relation_sample_deterministic () =
  let big =
    R.of_rows ~name:"big"
      (Schema.of_list [ ("x", V.Tint) ])
      (List.init 100 (fun i -> [ V.Int i ]))
  in
  let s1 = R.sample ~seed:5 10 big and s2 = R.sample ~seed:5 10 big in
  Alcotest.(check bool) "same seed same sample" true (R.equal_contents s1 s2);
  Alcotest.(check int) "size" 10 (R.cardinality s1);
  let xs = List.map (fun t -> T.get t 0) (R.tuples s1) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> V.compare a b < 0 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "row order preserved" true (increasing xs)

let test_relation_group_by () =
  let g =
    R.group_by [ 1 ]
      [ ("n", R.Count); ("min_k", R.Min 0); ("max_k", R.Max 0) ]
      nums
  in
  Alcotest.(check int) "three groups" 3 (R.cardinality g);
  let row_two = List.find (fun t -> T.get t 0 = V.Str "two") (R.tuples g) in
  Alcotest.(check value) "count" (V.Int 2) (T.get row_two 1);
  Alcotest.(check value) "min" (V.Int 2) (T.get row_two 2)

let test_relation_avg_nulls () =
  let r =
    R.of_rows ~name:"r"
      (Schema.of_list [ ("g", V.Tint); ("x", V.Tint) ])
      V.[ [ Int 1; Int 10 ]; [ Int 1; Null ]; [ Int 1; Int 20 ] ]
  in
  let g = R.group_by [ 0 ] [ ("avg", R.Avg 1) ] r in
  Alcotest.(check value) "null-skipping avg" (V.Float 15.0)
    (T.get (R.tuple g 0) 1)

let test_relation_satisfying () =
  let r =
    R.of_rows ~name:"r"
      (Schema.of_list [ ("x", V.Tstring); ("y", V.Tstring) ])
      V.[ [ Str "a"; Str "a" ]; [ Str "a"; Str "b" ] ]
  in
  Alcotest.(check int) "one satisfying row" 1
    (R.cardinality (R.satisfying (P.top 2) r))

(* ------------------------------------------------------------------ *)
(* Index                                                               *)

let test_index () =
  let ix = Index.build nums [ 0 ] in
  Alcotest.(check (list int)) "k=2 rows" [ 1; 3 ] (Index.lookup ix [ V.Int 2 ]);
  Alcotest.(check (list int)) "k=9 rows" [] (Index.lookup ix [ V.Int 9 ]);
  Alcotest.(check int) "distinct keys" 3 (List.length (Index.distinct_keys ix));
  Alcotest.(check (list int)) "lookup_tuple" [ 1; 3 ]
    (Index.lookup_tuple ix (R.tuple nums 1))

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let test_csv_parse_simple () =
  Alcotest.(check (list (list string)))
    "basic"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_string "a,b\n1,2\n")

let test_csv_parse_quoted () =
  Alcotest.(check (list (list string)))
    "quotes, embedded comma/newline/quote"
    [ [ "x,y"; "he said \"hi\""; "two\nlines" ] ]
    (Csv.parse_string "\"x,y\",\"he said \"\"hi\"\"\",\"two\nlines\"\n")

let test_csv_roundtrip () =
  let rows = [ [ "plain"; "with,comma" ]; [ "with\"quote"; "multi\nline" ] ] in
  Alcotest.(check (list (list string)))
    "roundtrip" rows
    (Csv.parse_string (Csv.print_string rows))

let test_csv_crlf_and_last_line () =
  Alcotest.(check (list (list string)))
    "crlf + no trailing newline"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse_string "a,b\r\nc,d")

let test_csv_final_empty_quoted_field () =
  (* Regression: a final row consisting solely of an empty quoted field
     used to be dropped (the buffer was empty and no field had been
     flushed, so the trailing flush never fired). *)
  Alcotest.(check (list (list string)))
    "lone empty quoted field"
    [ [ "" ] ]
    (Csv.parse_string "\"\"");
  Alcotest.(check (list (list string)))
    "final row is an empty quoted field"
    [ [ "a"; "b" ]; [ "" ] ]
    (Csv.parse_string "a,b\n\"\"");
  Alcotest.(check (list (list string)))
    "empty quoted field after comma"
    [ [ "a"; "" ] ]
    (Csv.parse_string "a,\"\"")

let test_csv_load_save () =
  let path = Filename.temp_file "jimtest" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save nums path;
      match Csv.load ~name:"nums" (R.schema nums) path with
      | Error e -> Alcotest.fail e
      | Ok r ->
        Alcotest.(check bool) "roundtrip contents" true (R.equal_contents r nums))

let test_csv_load_auto_types () =
  let path = Filename.temp_file "jimtest" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "id,price,name,flag,day\n\
         1,2.5,x,true,2020-01-02\n\
         2,3,y,false,2021-03-04\n";
      close_out oc;
      match Csv.load_auto path with
      | Error e -> Alcotest.fail e
      | Ok r ->
        Alcotest.(check (array string))
          "names"
          [| "id"; "price"; "name"; "flag"; "day" |]
          (Schema.names (R.schema r));
        let tys = Schema.types (R.schema r) in
        Alcotest.(check bool) "types inferred" true
          (tys = [| V.Tint; V.Tfloat; V.Tstring; V.Tbool; V.Tdate |]))

let test_csv_header_mismatch () =
  let path = Filename.temp_file "jimtest" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "wrong,header\n1,x\n";
      close_out oc;
      Alcotest.(check bool) "error" true
        (Result.is_error (Csv.load (R.schema nums) path)))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let xy = Schema.of_list [ ("x", V.Tint); ("y", V.Tint); ("s", V.Tstring) ]
let t0 = T.make V.[ Int 3; Int 5; Str "a" ]

let test_expr_eval () =
  let e = Expr.(Cmp (Lt, Col 0, Col 1)) in
  Alcotest.(check bool) "3 < 5" true (Expr.eval_bool e t0);
  let e2 = Expr.(Cmp (Eq, Add (Col 0, Const (V.Int 2)), Col 1)) in
  Alcotest.(check bool) "3+2 = 5" true (Expr.eval_bool e2 t0)

let test_expr_null_semantics () =
  let tn = T.make V.[ Null; Int 5; Str "a" ] in
  let cmp = Expr.(Cmp (Eq, Col 0, Col 1)) in
  Alcotest.(check value) "null = x is null" V.Null (Expr.eval cmp tn);
  Alcotest.(check bool) "where drops null" false (Expr.eval_bool cmp tn);
  Alcotest.(check value) "null or true" (V.Bool true)
    (Expr.eval Expr.(Or (cmp, Const (V.Bool true))) tn);
  Alcotest.(check value) "null and false" (V.Bool false)
    (Expr.eval Expr.(And (cmp, Const (V.Bool false))) tn);
  Alcotest.(check value) "is null" (V.Bool true)
    (Expr.eval Expr.(IsNull (Col 0)) tn)

let test_expr_typecheck () =
  Alcotest.(check bool) "ok" true
    (Result.is_ok (Expr.typecheck xy Expr.(Cmp (Eq, Col 0, Col 1))));
  Alcotest.(check bool) "int vs string" true
    (Result.is_error (Expr.typecheck xy Expr.(Cmp (Eq, Col 0, Col 2))));
  Alcotest.(check bool) "arith on string" true
    (Result.is_error (Expr.typecheck xy Expr.(Add (Col 2, Col 0))));
  Alcotest.(check bool) "col out of range" true
    (Result.is_error (Expr.typecheck xy (Expr.Col 7)))

let test_expr_of_partition () =
  let p = P.of_blocks 3 [ [ 0; 1 ] ] in
  let e = Expr.of_partition p in
  Alcotest.(check bool) "selects equal" true
    (Expr.eval_bool e (T.make V.[ Int 1; Int 1; Str "z" ]));
  Alcotest.(check bool) "rejects unequal" false
    (Expr.eval_bool e (T.make V.[ Int 1; Int 2; Str "z" ]))

(* ------------------------------------------------------------------ *)
(* SQL: lexer, parser, printer                                         *)

let test_lexer () =
  match Sql_lexer.tokenize "SELECT a.x, 'it''s' FROM t WHERE x <= 4.5" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
    (* SELECT a.x , 'it''s' FROM t WHERE x <= 4.5 EOF = 11 tokens *)
    Alcotest.(check int) "token count" 11 (List.length toks);
    Alcotest.(check bool) "string unescaped" true
      (List.mem (Sql_lexer.STRING "it's") toks);
    Alcotest.(check bool) "float" true (List.mem (Sql_lexer.FLOAT 4.5) toks)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (Result.is_error (Sql_lexer.tokenize "SELECT 'oops"));
  Alcotest.(check bool) "bad char" true
    (Result.is_error (Sql_lexer.tokenize "SELECT #"))

let test_parser_roundtrip () =
  let cases =
    [
      "SELECT * FROM t";
      "SELECT DISTINCT a, b AS c FROM t, u WHERE a = b AND c < 3";
      "SELECT * FROM t AS x, t AS y WHERE x.a = y.a ORDER BY a DESC LIMIT 5";
      "SELECT * FROM t WHERE NOT (a = 1 OR b = 2)";
      "SELECT * FROM t WHERE a IS NULL";
      "SELECT * FROM t WHERE a + 1 = b * 2";
    ]
  in
  List.iter
    (fun sql ->
      match Sql_parser.parse sql with
      | Error e -> Alcotest.fail (sql ^ " -> " ^ e)
      | Ok q -> (
        let printed = Sql_print.query_to_string q in
        match Sql_parser.parse printed with
        | Error e -> Alcotest.fail (printed ^ " -> " ^ e)
        | Ok q2 ->
          Alcotest.(check string)
            ("stable print: " ^ sql)
            printed
            (Sql_print.query_to_string q2)))
    cases

let test_parser_errors () =
  List.iter
    (fun sql ->
      Alcotest.(check bool)
        ("rejects: " ^ sql)
        true
        (Result.is_error (Sql_parser.parse sql)))
    [
      "SELECT";
      "SELECT * FROM";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t LIMIT x";
      "FROM t SELECT *";
      "SELECT * FROM t WHERE a = )";
      "SELECT * FROM t alias extra";
    ]

let test_parse_expr_precedence () =
  match Sql_parser.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | Error e -> Alcotest.fail e
  | Ok e -> (
    match e with
    | Jim_relational.Sql_ast.Eor (_, Jim_relational.Sql_ast.Eand (_, _)) -> ()
    | _ -> Alcotest.fail "expected OR(_, AND(_, _))")

(* ------------------------------------------------------------------ *)
(* Algebra + Database: SQL end to end                                  *)

let db =
  Database.of_relations
    [
      R.of_rows ~name:"emp"
        (Schema.of_list
           [ ("eid", V.Tint); ("name", V.Tstring); ("dept", V.Tint) ])
        V.[
            [ Int 1; Str "ada"; Int 10 ];
            [ Int 2; Str "bob"; Int 20 ];
            [ Int 3; Str "eve"; Int 10 ];
          ];
      R.of_rows ~name:"dept"
        (Schema.of_list [ ("did", V.Tint); ("dname", V.Tstring) ])
        V.[ [ Int 10; Str "lab" ]; [ Int 20; Str "ops" ] ];
    ]

let exec sql =
  match Database.exec db sql with
  | Ok r -> r
  | Error e -> Alcotest.fail (sql ^ " -> " ^ e)

let test_sql_select_where () =
  let r = exec "SELECT * FROM emp WHERE dept = 10" in
  Alcotest.(check int) "two lab members" 2 (R.cardinality r)

let test_sql_join () =
  let r =
    exec "SELECT * FROM emp, dept WHERE emp.dept = dept.did AND dname = 'lab'"
  in
  Alcotest.(check int) "lab join" 2 (R.cardinality r);
  Alcotest.(check int) "arity 5" 5 (R.arity r)

let test_sql_projection_order_limit () =
  let r = exec "SELECT name FROM emp ORDER BY name DESC LIMIT 2" in
  Alcotest.(check int) "limit" 2 (R.cardinality r);
  Alcotest.(check value) "desc order" (V.Str "eve") (T.get (R.tuple r 0) 0)

let test_sql_self_join_alias () =
  let r = exec "SELECT * FROM emp AS a, emp AS b WHERE a.dept = b.dept" in
  (* dept 10: 2x2, dept 20: 1x1 -> 5 rows *)
  Alcotest.(check int) "self join" 5 (R.cardinality r)

let test_sql_errors () =
  List.iter
    (fun sql ->
      Alcotest.(check bool)
        ("error: " ^ sql)
        true
        (Result.is_error (Database.exec db sql)))
    [
      "SELECT * FROM nope";
      "SELECT zzz FROM emp";
      "SELECT * FROM emp WHERE name = 3";
      "SELECT * FROM emp, emp";
      "SELECT * FROM emp WHERE nope = 1";
    ]

let test_sql_group_by () =
  let r =
    exec "SELECT dept, COUNT(*) AS n, MIN(name) AS first FROM emp GROUP BY dept \
          ORDER BY dept"
  in
  Alcotest.(check int) "two groups" 2 (R.cardinality r);
  Alcotest.(check (array string))
    "output schema" [| "dept"; "n"; "first" |]
    (Schema.names (R.schema r));
  Alcotest.(check value) "dept 10 count" (V.Int 2) (T.get (R.tuple r 0) 1);
  Alcotest.(check value) "dept 10 min name" (V.Str "ada")
    (T.get (R.tuple r 0) 2)

let test_sql_aggregate_whole_table () =
  let r = exec "SELECT COUNT(*) AS n, SUM(eid) AS total FROM emp" in
  Alcotest.(check int) "one row" 1 (R.cardinality r);
  Alcotest.(check value) "count" (V.Int 3) (T.get (R.tuple r 0) 0);
  Alcotest.(check value) "sum" (V.Int 6) (T.get (R.tuple r 0) 1)

let test_sql_group_by_join () =
  let r =
    exec
      "SELECT dname, COUNT(*) AS staff FROM emp, dept WHERE emp.dept = \
       dept.did GROUP BY dname ORDER BY staff DESC"
  in
  Alcotest.(check int) "two rows" 2 (R.cardinality r);
  Alcotest.(check value) "lab first" (V.Str "lab") (T.get (R.tuple r 0) 0);
  Alcotest.(check value) "lab staff" (V.Int 2) (T.get (R.tuple r 0) 1)

let test_sql_group_by_errors () =
  List.iter
    (fun sql ->
      Alcotest.(check bool)
        ("error: " ^ sql)
        true
        (Result.is_error (Database.exec db sql)))
    [
      "SELECT name, COUNT(*) FROM emp GROUP BY dept";
      "SELECT *, COUNT(*) FROM emp";
      "SELECT SUM(name) FROM emp";
      "SELECT SUM(*) FROM emp";
      "SELECT COUNT(*) FROM emp GROUP BY nope";
    ]

let test_sql_group_by_roundtrip () =
  let sql = "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept" in
  match Sql_parser.parse sql with
  | Error e -> Alcotest.fail e
  | Ok q ->
    Alcotest.(check string) "print roundtrip" sql (Sql_print.query_to_string q)

let test_push_joins_equivalence () =
  (* The EquiJoin pushdown must not change results: compare against the
     same condition written with inequalities (which cannot be pushed). *)
  let joined = exec "SELECT * FROM emp, dept WHERE emp.dept = dept.did" in
  let via_ineq =
    exec
      "SELECT * FROM emp, dept WHERE emp.dept <= dept.did AND emp.dept >= \
       dept.did"
  in
  Alcotest.(check bool) "same rows" true (R.equal_contents joined via_ineq)

(* ------------------------------------------------------------------ *)
(* Differential property tests: the SQL compiler (with its equi-join
   pushdown) against a naive reference evaluator, on random queries.    *)

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Random conjunctive WHERE clauses over the emp x dept product schema:
   equality/comparison atoms between columns of compatible type or a
   column and a constant drawn from the data. *)
let full_schema =
  Schema.concat_qualified
    [
      ("emp", R.schema (Database.find_exn db "emp"));
      ("dept", R.schema (Database.find_exn db "dept"));
    ]

let product_rows =
  let emp = Database.find_exn db "emp" and dept = Database.find_exn db "dept" in
  List.concat_map
    (fun te -> List.map (fun td -> T.concat te td) (R.tuples dept))
    (R.tuples emp)

let gen_atom =
  let n = Schema.arity full_schema in
  let tys = Schema.types full_schema in
  QCheck.Gen.(
    let* a = int_bound (n - 1) in
    let compatible =
      List.filter (fun b -> b <> a && tys.(b) = tys.(a)) (List.init n Fun.id)
    in
    let* use_const = bool in
    let* op = oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Geq ] in
    if use_const || compatible = [] then
      (* Constant drawn from the actual column values. *)
      let vals = List.map (fun t -> T.get t a) product_rows in
      let* v = oneofl vals in
      return (Expr.Cmp (op, Expr.Col a, Expr.Const v))
    else
      let* b = oneofl compatible in
      return (Expr.Cmp (op, Expr.Col a, Expr.Col b)))

let gen_where = QCheck.Gen.(list_size (int_range 1 4) gen_atom)

let expr_to_sql_ast e =
  (* Render the generated Expr back into the SQL AST via column names. *)
  let names = Schema.names full_schema in
  let rec go = function
    | Expr.Cmp (op, a, b) ->
      let cmp =
        match op with
        | Expr.Eq -> Jim_relational.Sql_ast.Ceq
        | Expr.Neq -> Jim_relational.Sql_ast.Cneq
        | Expr.Lt -> Jim_relational.Sql_ast.Clt
        | Expr.Leq -> Jim_relational.Sql_ast.Cleq
        | Expr.Gt -> Jim_relational.Sql_ast.Cgt
        | Expr.Geq -> Jim_relational.Sql_ast.Cgeq
      in
      Jim_relational.Sql_ast.Ecmp (cmp, go a, go b)
    | Expr.Col i -> Jim_relational.Sql_ast.Ecol names.(i)
    | Expr.Const (V.Int i) -> Jim_relational.Sql_ast.Eint i
    | Expr.Const (V.Str s) -> Jim_relational.Sql_ast.Estr s
    | Expr.Const (V.Float f) -> Jim_relational.Sql_ast.Enum f
    | Expr.Const (V.Bool b) -> Jim_relational.Sql_ast.Ebool b
    | Expr.Const V.Null -> Jim_relational.Sql_ast.Enull
    | Expr.And (a, b) -> Jim_relational.Sql_ast.Eand (go a, go b)
    | _ -> assert false (* generator produces none of the rest *)
  in
  go e

let prop_compiler_differential =
  qtest ~count:300 "SQL compiler = naive evaluation (random conjunctions)"
    (QCheck.make
       ~print:(fun atoms ->
         String.concat " AND "
           (List.map (Expr.to_string full_schema) atoms))
       gen_where)
    (fun atoms ->
      let where = Expr.conj atoms in
      (* Reference: filter the raw product. *)
      let expected = List.filter (Expr.eval_bool where) product_rows in
      (* Compiled: through the SQL pipeline (pushdown included). *)
      let ast_where =
        match List.map expr_to_sql_ast atoms with
        | [] -> assert false
        | e :: rest ->
          List.fold_left
            (fun acc e' -> Jim_relational.Sql_ast.Eand (acc, e'))
            e rest
      in
      let q =
        Jim_relational.Sql_ast.simple_select ~where:ast_where [ "emp"; "dept" ]
      in
      match
        Result.bind
          (Jim_relational.Algebra.compile (Database.catalog db) q)
          (Jim_relational.Algebra.run (Database.catalog db))
      with
      | Error e -> QCheck.Test.fail_report e
      | Ok got ->
        let norm rows = List.sort T.compare rows in
        let a = norm expected and b = norm (R.tuples got) in
        List.length a = List.length b && List.for_all2 T.equal a b)

let prop_parser_total_on_printed =
  (* Printing any compiled-accepted query and re-parsing never fails and
     is idempotent. *)
  qtest ~count:200 "print/parse idempotent on generated queries"
    (QCheck.make
       ~print:(fun atoms ->
         String.concat " AND " (List.map (Expr.to_string full_schema) atoms))
       gen_where)
    (fun atoms ->
      let ast_where =
        match List.map expr_to_sql_ast atoms with
        | [] -> assert false
        | e :: rest ->
          List.fold_left
            (fun acc e' -> Jim_relational.Sql_ast.Eand (acc, e'))
            e rest
      in
      let q =
        Jim_relational.Sql_ast.simple_select ~where:ast_where [ "emp"; "dept" ]
      in
      let printed = Sql_print.query_to_string q in
      match Sql_parser.parse printed with
      | Error _ -> false
      | Ok q2 -> String.equal printed (Sql_print.query_to_string q2))

let prop_select_fusion =
  qtest ~count:200 "select fusion"
    (QCheck.make
       ~print:(fun (a, b) ->
         Expr.to_string full_schema a ^ " ; " ^ Expr.to_string full_schema b)
       QCheck.Gen.(pair gen_atom gen_atom))
    (fun (p, q) ->
      let rel =
        R.make ~name:"prod" full_schema product_rows
      in
      let lhs = R.select (Expr.eval_bool p) (R.select (Expr.eval_bool q) rel) in
      let rhs = R.select (Expr.eval_bool (Expr.And (p, q))) rel in
      R.equal_contents lhs rhs)

let prop_distinct_idempotent =
  qtest ~count:100 "distinct idempotent"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 20))
    (fun k ->
      let rel =
        R.make ~name:"prod" full_schema
          (List.filteri (fun i _ -> i mod (k + 1) <> 1) product_rows)
      in
      R.equal_contents (R.distinct rel) (R.distinct (R.distinct rel)))

let prop_group_by_counts =
  qtest ~count:100 "group counts sum to cardinality"
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(int_bound (Schema.arity full_schema - 1)))
    (fun key ->
      let rel = R.make ~name:"prod" full_schema product_rows in
      let g = R.group_by [ key ] [ ("n", R.Count) ] rel in
      let total =
        R.fold
          (fun acc t ->
            match T.get t 1 with V.Int n -> acc + n | _ -> acc)
          0 g
      in
      total = R.cardinality rel)

let algebra_props =
  [
    prop_compiler_differential;
    prop_parser_total_on_printed;
    prop_select_fusion;
    prop_distinct_idempotent;
    prop_group_by_counts;
  ]

(* ------------------------------------------------------------------ *)
(* CSV save/load round-trip on random relations whose cells exercise
   every quoting rule: separators, quotes, CR/LF, embedded newlines.    *)

let csv_rt_schema =
  Schema.of_list [ ("id", V.Tint); ("note", V.Tstring); ("tag", V.Tstring) ]

let gen_cell_text =
  (* Non-empty by construction: an empty string parses back as Null, a
     deliberate asymmetry of [Value.parse] this property must not trip
     over. *)
  QCheck.Gen.(
    oneof
      [
        oneofl
          [
            "plain"; "with,comma"; "with\"quote"; "\"quoted\""; "multi\nline";
            "crlf\r\nrow"; " padded "; "he said \"\"hi\"\""; ",,,"; "\r"; "\n";
          ];
        map
          (fun s -> "s" ^ s)
          (string_size ~gen:(oneofl [ 'a'; 'z'; ','; '"'; '\n'; '\r'; ' ' ])
             (int_bound 6));
      ])

let gen_csv_rows =
  QCheck.Gen.(
    let cell ty =
      match ty with
      | V.Tint ->
        oneof [ return V.Null; map (fun i -> V.Int i) (int_range (-1000) 1000) ]
      | _ -> oneof [ return V.Null; map (fun s -> V.Str s) gen_cell_text ]
    in
    list_size (int_bound 12)
      (flatten_l
         (List.map
            (fun c -> cell c.Schema.cty)
            (Schema.columns csv_rt_schema))))

let prop_csv_save_load_roundtrip =
  qtest "csv: save ∘ load = id (quoting edge cases)"
    (QCheck.make
       ~print:(fun rows ->
         Csv.print_string
           (List.map (List.map V.to_string) rows))
       gen_csv_rows)
    (fun rows ->
      let rel = R.of_rows ~name:"roundtrip" csv_rt_schema rows in
      let path = Filename.temp_file "jimcsvrt" ".csv" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Csv.save rel path;
          match Csv.load ~name:"roundtrip" csv_rt_schema path with
          | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
          | Ok rel' -> R.equal_contents rel' rel))

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "null equality" `Quick test_value_equal_null;
          Alcotest.test_case "total order" `Quick test_value_compare_order;
          Alcotest.test_case "typed parse" `Quick test_value_parse;
          Alcotest.test_case "auto parse" `Quick test_value_parse_auto;
          Alcotest.test_case "date validation" `Quick test_value_date_validation;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
        ] );
      ( "schema",
        [
          Alcotest.test_case "find / qualify" `Quick test_schema_find;
          Alcotest.test_case "ambiguous bare name" `Quick
            test_schema_ambiguous_bare;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "signature" `Quick test_tuple_signature;
          Alcotest.test_case "signature of nulls" `Quick
            test_tuple_signature_nulls;
          Alcotest.test_case "satisfies" `Quick test_tuple_satisfies;
        ] );
      ( "relation",
        [
          Alcotest.test_case "construction checks" `Quick
            test_relation_make_checks;
          Alcotest.test_case "select/project" `Quick test_relation_select_project;
          Alcotest.test_case "distinct/sort" `Quick test_relation_distinct_sort;
          Alcotest.test_case "product" `Quick test_relation_product;
          Alcotest.test_case "equi-join" `Quick test_relation_equi_join;
          Alcotest.test_case "set operations" `Quick test_relation_set_ops;
          Alcotest.test_case "deterministic sample" `Quick
            test_relation_sample_deterministic;
          Alcotest.test_case "group by" `Quick test_relation_group_by;
          Alcotest.test_case "avg skips nulls" `Quick test_relation_avg_nulls;
          Alcotest.test_case "satisfying" `Quick test_relation_satisfying;
        ] );
      ("index", [ Alcotest.test_case "hash index" `Quick test_index ]);
      ( "csv",
        [
          Alcotest.test_case "parse simple" `Quick test_csv_parse_simple;
          Alcotest.test_case "parse quoted" `Quick test_csv_parse_quoted;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "crlf / last line" `Quick
            test_csv_crlf_and_last_line;
          Alcotest.test_case "final empty quoted field" `Quick
            test_csv_final_empty_quoted_field;
          Alcotest.test_case "load/save file" `Quick test_csv_load_save;
          Alcotest.test_case "load_auto infers types" `Quick
            test_csv_load_auto_types;
          Alcotest.test_case "header mismatch" `Quick test_csv_header_mismatch;
          prop_csv_save_load_roundtrip;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "null semantics" `Quick test_expr_null_semantics;
          Alcotest.test_case "typecheck" `Quick test_expr_typecheck;
          Alcotest.test_case "of_partition" `Quick test_expr_of_partition;
        ] );
      ( "sql-parse",
        [
          Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
          Alcotest.test_case "parse/print roundtrip" `Quick
            test_parser_roundtrip;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
          Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
        ] );
      ( "sql-exec",
        [
          Alcotest.test_case "select/where" `Quick test_sql_select_where;
          Alcotest.test_case "join" `Quick test_sql_join;
          Alcotest.test_case "project/order/limit" `Quick
            test_sql_projection_order_limit;
          Alcotest.test_case "self join with aliases" `Quick
            test_sql_self_join_alias;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "group by" `Quick test_sql_group_by;
          Alcotest.test_case "whole-table aggregates" `Quick
            test_sql_aggregate_whole_table;
          Alcotest.test_case "group by over join" `Quick test_sql_group_by_join;
          Alcotest.test_case "group by errors" `Quick test_sql_group_by_errors;
          Alcotest.test_case "group by print roundtrip" `Quick
            test_sql_group_by_roundtrip;
          Alcotest.test_case "join pushdown equivalence" `Quick
            test_push_joins_equivalence;
        ] );
      ("algebra-props", algebra_props);
    ]
