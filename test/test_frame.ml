(* The binary frame codec, held to the standard a network parser needs:
   encode/decode round-trips for arbitrary payloads (newlines, NULs,
   large blobs — bytes the line framing could never carry), and total
   decoding — every prefix of a valid stream yields the decoded frames
   then [Need_more], never an exception; garbage yields [Junk] with a
   reason, never a hang-sized length to wait on. *)

module Frame = Jim_server.Frame

(* Decode every complete frame from [s] starting at [off]; returns the
   payloads and the verdict on the remainder. *)
let drain s =
  let rec go off acc =
    match Frame.decode_string s ~off with
    | Frame.Frame (payload, used) -> go (off + used) (payload :: acc)
    | Frame.Need_more -> (List.rev acc, `Need_more (String.length s - off))
    | Frame.Junk msg -> (List.rev acc, `Junk msg)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let test_roundtrip_simple () =
  let payload = {|{"v":1,"op":"get_question","session":3}|} in
  let s = Frame.to_string payload in
  Alcotest.(check int) "frame size" (Frame.header_size + String.length payload)
    (String.length s);
  match drain s with
  | [ got ], `Need_more 0 -> Alcotest.(check string) "payload" payload got
  | _ -> Alcotest.fail "expected exactly one frame"

let test_roundtrip_hostile_bytes () =
  (* The whole point of binary framing: payloads the line protocol
     cannot carry. *)
  [ ""; "\n"; "a\nb"; String.make 3 '\000'; "JIMBIN 1"; String.make 100_000 'x' ]
  |> List.iter (fun payload ->
         match drain (Frame.to_string payload) with
         | [ got ], `Need_more 0 ->
           Alcotest.(check string) "payload survives" payload got
         | _ -> Alcotest.fail "expected exactly one frame")

let test_concatenated_frames () =
  let payloads = [ "alpha"; ""; "gamma\n"; "{\"k\":0}" ] in
  let s = String.concat "" (List.map Frame.to_string payloads) in
  match drain s with
  | got, `Need_more 0 ->
    Alcotest.(check (list string)) "all frames decoded" payloads got
  | _ -> Alcotest.fail "stream ended badly"

let test_length_bomb () =
  (* A length field past max_payload must be Junk immediately — a parser
     that waits for 2^31 bytes is a resource-exhaustion bug. *)
  let bomb = "\xff\xff\xff\x7f" in
  (match Frame.decode_string bomb ~off:0 with
  | Frame.Junk _ -> ()
  | Frame.Frame _ -> Alcotest.fail "decoded a 2 GiB length as a frame"
  | Frame.Need_more -> Alcotest.fail "waiting on a 2 GiB frame");
  (* Negative when read as a signed 32-bit value. *)
  match Frame.decode_string "\x00\x00\x00\x80" ~off:0 with
  | Frame.Junk _ -> ()
  | _ -> Alcotest.fail "negative length accepted"

let test_encode_refuses_oversize () =
  match Frame.to_string (String.make (Frame.max_payload + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoded a payload past max_payload"

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)

let payload_gen =
  QCheck.Gen.(
    frequency
      [
        (4, string_size (int_range 0 64));
        (2, string_size ~gen:(return '\n') (int_range 1 4));
        (2, string_size ~gen:(char_range '\000' '\255') (int_range 0 256));
        (1, string_size (int_range 4000 70_000));
      ])

let payloads_arb =
  QCheck.make
    ~print:(fun ps ->
      String.concat "," (List.map (Printf.sprintf "%S") ps))
    QCheck.Gen.(list_size (int_range 1 5) payload_gen)

let roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"encode/decode round-trips any payloads"
    payloads_arb (fun payloads ->
      let s = String.concat "" (List.map Frame.to_string payloads) in
      match drain s with
      | got, `Need_more 0 -> got = payloads
      | _, `Need_more n ->
        QCheck.Test.fail_reportf "%d undecoded trailing bytes" n
      | _, `Junk msg -> QCheck.Test.fail_reportf "valid stream judged junk: %s" msg)

(* Every prefix of a valid stream: the decoder must return exactly the
   frames wholly inside the prefix, then Need_more — never Junk, never
   an exception, never a frame it invented. *)
let prefix_prop =
  QCheck.Test.make ~count:100 ~name:"every truncation decodes cleanly"
    payloads_arb (fun payloads ->
      let s = String.concat "" (List.map Frame.to_string payloads) in
      let whole, _ = drain s in
      let n = String.length s in
      (* every prefix for short streams; sampled stride for large ones *)
      let stride = max 1 (n / 512) in
      let rec check cut =
        if cut >= n then true
        else begin
          let got, verdict = drain (String.sub s 0 cut) in
          (match verdict with
          | `Junk msg ->
            QCheck.Test.fail_reportf "prefix %d/%d judged junk: %s" cut n msg
          | `Need_more _ -> ());
          let expected_complete =
            (* frames whose encoding ends at or before [cut] *)
            let rec take acc consumed = function
              | [] -> List.rev acc
              | p :: rest ->
                let stop = consumed + Frame.header_size + String.length p in
                if stop <= cut then take (p :: acc) stop rest
                else List.rev acc
            in
            take [] 0 whole
          in
          if got <> expected_complete then
            QCheck.Test.fail_reportf
              "prefix %d/%d: decoded %d frames, expected %d" cut n
              (List.length got)
              (List.length expected_complete)
          else check (cut + stride)
        end
      in
      check 0)

let garbage_gen =
  (* Strings that are overwhelmingly not valid frames — decode must
     classify (Junk or Need_more or short Frame), never raise. *)
  QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 64))

let garbage_prop =
  QCheck.Test.make ~count:500 ~name:"arbitrary bytes never crash the decoder"
    (QCheck.make ~print:(Printf.sprintf "%S") garbage_gen)
    (fun s ->
      let rec go off guard =
        if guard = 0 then
          QCheck.Test.fail_report "decoder loops without consuming"
        else
          match Frame.decode_string s ~off with
          | Frame.Frame (_, used) ->
            if used <= 0 then
              QCheck.Test.fail_report "frame consumed nothing"
            else if off + used > String.length s then
              QCheck.Test.fail_report "frame consumed past the end"
            else go (off + used) (guard - 1)
          | Frame.Need_more | Frame.Junk _ -> true
      in
      go 0 (String.length s + 1))

let () =
  Alcotest.run "frame"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip_simple;
          Alcotest.test_case "hostile bytes" `Quick test_roundtrip_hostile_bytes;
          Alcotest.test_case "concatenated frames" `Quick test_concatenated_frames;
          Alcotest.test_case "length bomb is junk" `Quick test_length_bomb;
          Alcotest.test_case "oversize encode refused" `Quick
            test_encode_refuses_oversize;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ roundtrip_prop; prefix_prop; garbage_prop ] );
    ]
