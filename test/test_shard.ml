(* The sharded serve tier: consistent-hash ring properties (determinism
   and the qcheck remap-stability bound), durable router placement
   across restarts, the router proxying a full multi-client smoke on
   both framings (bit-identical to direct serve — Smoke's own oracle is
   the bar), catalog routing by fingerprint with aggregated stats, and
   an in-process kill-and-promote failover: acked history survives on
   the promoted standby, mutating requests in the failover window get
   [Shard_unavailable] (at-most-once), and the resumed session finishes
   bit-identical to the uninterrupted reference run. *)

module P = Jim_api.Protocol
module Service = Jim_server.Service
module Wire = Jim_server.Wire
module Smoke = Jim_server.Smoke
module Store = Jim_store.Store
module Memfs = Jim_fault.Memfs
module Ring = Jim_shard.Ring
module Rlog = Jim_shard.Rlog
module Router = Jim_shard.Router
module Standby = Jim_shard.Standby
module Repl = Jim_shard.Repl
open Jim_core

(* ------------------------------------------------------------------ *)
(* Ring: determinism and stability                                     *)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

let placement_map ring ks =
  List.map
    (fun k ->
      match Ring.place ring k with
      | Some m -> (k, m)
      | None -> Alcotest.failf "empty ring placed nothing for %s" k)
    ks

let test_ring_deterministic () =
  let members = [ "shard-b"; "shard-a"; "shard-c" ] in
  let r1 = Ring.create members in
  (* same membership set, different construction order and route *)
  let r2 = Ring.create (List.rev members) in
  let r3 = Ring.remove (Ring.add r1 "shard-x") "shard-x" in
  let ks = keys 1000 in
  let p1 = placement_map r1 ks in
  Alcotest.(check bool) "order-independent" true (p1 = placement_map r2 ks);
  Alcotest.(check bool) "add/remove returns to identity" true
    (p1 = placement_map r3 ks);
  Alcotest.(check (list string)) "members sorted distinct"
    [ "shard-a"; "shard-b"; "shard-c" ]
    (Ring.members r1);
  (* every member owns something at 1000 keys / 64 vnodes *)
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " owns keys") true
        (List.exists (fun (_, o) -> o = m) p1))
    (Ring.members r1)

let test_ring_empty_and_args () =
  Alcotest.(check bool) "empty ring places nothing" true
    (Ring.place (Ring.create []) "k" = None);
  (match Ring.create ~vnodes:0 [ "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "vnodes=0 accepted");
  Alcotest.(check (list string)) "duplicates collapse" [ "a" ]
    (Ring.members (Ring.create [ "a"; "a"; "a" ]))

let ring_arb =
  QCheck.make
    ~print:(fun (n, pick) -> Printf.sprintf "%d members, pick %d" n pick)
    QCheck.Gen.(pair (int_range 2 8) (int_bound 100))

let n_keys = 400

(* Removing one member must move exactly the keys it owned (everything
   else stays put); adding one must move keys only TO it, and only
   about 1/(n+1) of them. *)
let ring_remove_stability =
  QCheck.Test.make ~count:60 ~name:"removal moves only the victim's keys"
    ring_arb (fun (n, pick) ->
      let members = List.init n (Printf.sprintf "shard-%d") in
      let victim = Printf.sprintf "shard-%d" (pick mod n) in
      let before = Ring.create members in
      let after = Ring.remove before victim in
      List.for_all
        (fun k ->
          match (Ring.place before k, Ring.place after k) with
          | Some o, Some o' -> o = victim || o' = o
          | _ -> false)
        (keys n_keys))

let ring_add_stability =
  QCheck.Test.make ~count:60 ~name:"addition moves ~1/(n+1), all to the joiner"
    ring_arb (fun (n, _) ->
      let members = List.init n (Printf.sprintf "shard-%d") in
      let before = Ring.create members in
      let after = Ring.add before "shard-new" in
      let moved = ref 0 in
      let ok =
        List.for_all
          (fun k ->
            match (Ring.place before k, Ring.place after k) with
            | Some o, Some o' ->
              if o' <> o then begin
                incr moved;
                o' = "shard-new"
              end
              else true
            | _ -> false)
          (keys n_keys)
      in
      (* expected n_keys/(n+1); 3x + slack keeps the bound sharp enough
         to catch a broken hash without flaking on vnode variance *)
      ok && !moved <= (3 * n_keys / (n + 1)) + 5)

(* ------------------------------------------------------------------ *)
(* Rlog codec                                                          *)

let test_rlog_roundtrip () =
  List.iter
    (fun e ->
      let s = Rlog.to_string e in
      match Rlog.of_string s with
      | Ok e' -> Alcotest.(check bool) ("roundtrip " ^ s) true (e = e')
      | Error m -> Alcotest.failf "parse %s: %s" s m)
    [
      Rlog.Member_added "s1";
      Rlog.Member_removed "s1";
      Rlog.Placed { session = 42; shard = "s2" };
      Rlog.Released { session = 42 };
      Rlog.Failed_over { shard = "s2" };
    ];
  match Rlog.of_string {|{"rl":"frob"}|} with
  | Ok _ -> Alcotest.fail "accepted unknown entry"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Router helpers: in-process shard upstreams                          *)

let service_upstream name svc =
  Router.upstream ~name (fun line ->
      Ok (fst (Service.handle_line_status svc line)))

let call router req =
  let line, _ = Router.handle_line router (P.request_to_string req) in
  match P.response_of_string line with
  | Ok r -> r
  | Error e -> Alcotest.failf "unparseable reply: %s" (P.error_to_string e)

let synthetic seed =
  P.Synthetic { n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }

let oracle_of seed =
  let p =
    {
      Jim_workloads.Synthetic.n_attrs = 5;
      n_tuples = 40;
      domain = 8;
      goal_rank = 2;
      seed;
    }
  in
  Oracle.of_goal
    (Jim_workloads.Synthetic.generate p).Jim_workloads.Synthetic.goal

let expected_of ~seed ~strategy =
  let p =
    {
      Jim_workloads.Synthetic.n_attrs = 5;
      n_tuples = 40;
      domain = 8;
      goal_rank = 2;
      seed;
    }
  in
  let inst = Jim_workloads.Synthetic.generate p in
  let strat =
    match Strategy.of_string strategy with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Session.run ~seed ~strategy:strat
    ~oracle:(Oracle.of_goal inst.Jim_workloads.Synthetic.goal)
    inst.Jim_workloads.Synthetic.relation

let start router ~seed ~strategy =
  match
    call router (P.Start_session { source = synthetic seed; strategy; seed })
  with
  | P.Started { session; _ } -> session
  | other -> Alcotest.failf "start: %s" (P.response_to_string other)

let answer_one router oracle id =
  match call router (P.Get_question { session = id }) with
  | P.Question None -> false
  | P.Question (Some { P.cls; sg; _ }) -> (
    match
      call router
        (P.Answer { session = id; cls; label = Oracle.label oracle sg })
    with
    | P.Answered _ -> true
    | other -> Alcotest.failf "answer: %s" (P.response_to_string other))
  | other -> Alcotest.failf "question: %s" (P.response_to_string other)

let result_of router id =
  match call router (P.Result { session = id }) with
  | P.Outcome o -> o
  | other -> Alcotest.failf "result: %s" (P.response_to_string other)

let mk_router ?io ?dir names_and_services =
  match
    Router.create ?io ?dir
      ~shards:
        (List.map (fun (n, s) -> service_upstream n s) names_and_services)
      ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "router: %s" e

(* ------------------------------------------------------------------ *)
(* Router: placement, journal, restart determinism                     *)

let test_router_spreads_and_journals () =
  let fs = Memfs.create () in
  let io = Memfs.io fs in
  let shards = List.init 3 (fun i -> (Printf.sprintf "s%d" i, Service.create ())) in
  let router = mk_router ~io ~dir:"/router" shards in
  let sessions = 24 in
  let ids =
    List.init sessions (fun i ->
        start router ~seed:(100 + i) ~strategy:"random")
  in
  let placed = List.map (fun id -> (id, Router.placement router id)) ids in
  List.iter
    (fun (id, p) ->
      if p = None then Alcotest.failf "session %d has no placement" id)
    placed;
  (* consistent hashing spreads 24 sessions over 3 shards *)
  let owners =
    List.sort_uniq compare (List.filter_map snd placed)
  in
  Alcotest.(check bool) "more than one shard used" true (List.length owners > 1);
  Alcotest.(check int) "router counts the placements" sessions
    (Router.session_count router);
  (* requests route by pin: every session answers where it lives *)
  List.iter
    (fun id ->
      match call router (P.Get_question { session = id }) with
      | P.Question _ -> ()
      | other -> Alcotest.failf "routed question: %s" (P.response_to_string other))
    ids;
  (* ring status reflects membership and load *)
  (match call router P.Ring_status with
  | P.Ring_info { shards = members; sessions = n } ->
    Alcotest.(check int) "three members" 3 (List.length members);
    Alcotest.(check int) "sessions counted" sessions n;
    List.iter
      (fun { P.promoted; lag; _ } ->
        Alcotest.(check bool) "nothing promoted" false promoted;
        Alcotest.(check bool) "no standby, no lag" true (lag = None))
      members
  | other -> Alcotest.failf "ring_status: %s" (P.response_to_string other));
  (* end releases the placement and journals it *)
  let victim = List.hd ids in
  (match call router (P.End_session { session = victim }) with
  | P.Ended -> ()
  | other -> Alcotest.failf "end: %s" (P.response_to_string other));
  Alcotest.(check (option string)) "placement released" None
    (Router.placement router victim);
  (* restart over the same journal: every surviving placement is
     rebuilt identically, and the ended session stays gone *)
  Router.close router;
  let router' = mk_router ~io ~dir:"/router" shards in
  Alcotest.(check int) "placements survive restart" (sessions - 1)
    (Router.session_count router');
  List.iter
    (fun (id, before) ->
      if id <> victim then
        Alcotest.(check (option string))
          (Printf.sprintf "session %d placed identically" id)
          before
          (Router.placement router' id))
    placed;
  Alcotest.(check (option string)) "released stays released" None
    (Router.placement router' victim);
  (* fresh ids never collide with journaled ones *)
  let fresh = start router' ~seed:999 ~strategy:"random" in
  Alcotest.(check bool) "fresh id past journaled ids" true
    (List.for_all (fun id -> fresh > id) ids)

let test_router_rejects_internal () =
  let router = mk_router [ ("s0", Service.create ()) ] in
  (match
     call router
       (P.Start_pinned
          { session = 9; source = synthetic 1; strategy = "random"; seed = 1 })
   with
  | P.Failed (P.Bad_request _) -> ()
  | other -> Alcotest.failf "start_pinned: %s" (P.response_to_string other));
  (match call router P.Promote with
  | P.Failed (P.Bad_request _) -> ()
  | other -> Alcotest.failf "promote: %s" (P.response_to_string other));
  match call router (P.Get_question { session = 123 }) with
  | P.Failed (P.Unknown_session 123) -> ()
  | other -> Alcotest.failf "unplaced session: %s" (P.response_to_string other)

(* ------------------------------------------------------------------ *)
(* Router over the wire: proxied smoke, both framings; catalog routing *)

let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jim-shard-%d-%d.sock" (Unix.getpid ()) !counter)

let with_wire_router shards f =
  let router = mk_router shards in
  let addr = Wire.Unix_path (fresh_socket ()) in
  let server = Wire.serve_handler (Router.handle_line router) addr in
  Fun.protect
    ~finally:(fun () ->
      Wire.shutdown server;
      Router.close router)
    (fun () -> f router addr)

let smoke_through_router framing () =
  let shards = List.init 2 (fun i -> (Printf.sprintf "s%d" i, Service.create ())) in
  with_wire_router shards (fun _router addr ->
      let reports = Smoke.run ~clients:32 ~framing ~address:addr () in
      Alcotest.(check int) "all clients reported" 32 (List.length reports);
      List.iter
        (fun r ->
          if not r.Smoke.ok then
            Alcotest.failf "seed %d diverged through the router: %s"
              r.Smoke.seed r.Smoke.detail)
        reports)

let test_catalog_through_router () =
  let shards = List.init 3 (fun i -> (Printf.sprintf "s%d" i, Service.create ())) in
  with_wire_router shards (fun router addr ->
      match Smoke.catalog_smoke ~clients:4 ~address:addr () with
      | Error e -> Alcotest.fail e
      | Ok (reports, stats) ->
        List.iter
          (fun r ->
            if not r.Smoke.ok then
              Alcotest.failf "catalog seed %d diverged: %s" r.Smoke.seed
                r.Smoke.detail)
          reports;
        (* one registration, every session a warm start off it — and all
           on ONE shard, because catalog traffic routes by fingerprint *)
        Alcotest.(check int) "one entry across all shards" 1
          stats.P.entries;
        Alcotest.(check bool) "warm starts hit" true (stats.P.hits >= 4);
        let with_entries =
          List.filter
            (fun (_, svc) ->
              (Jim_catalog.Catalog.stats (Service.catalog svc)).P.entries > 0)
            shards
        in
        Alcotest.(check int) "catalog entry lives on exactly one shard" 1
          (List.length with_entries);
        ignore router)

(* ------------------------------------------------------------------ *)
(* Failover: kill the primary mid-session, promote, resume             *)

let test_failover_kill_and_promote () =
  let seed = 4242 and strategy = "lookahead-entropy" in
  let oracle = oracle_of seed in
  let expected = expected_of ~seed ~strategy in
  (* primary: store + service on its own fs, streaming to a standby *)
  let fs_p = Memfs.create () in
  let store, _ =
    match Store.open_dir ~io:(Memfs.io fs_p) "/data" with
    | Ok v -> v
    | Error e -> Alcotest.failf "open_dir: %s" e
  in
  let fs_b = Memfs.create () in
  let stb = Standby.create ~io:(Memfs.io fs_b) ~dir:"/standby" () in
  let repl =
    match Repl.attach store (Repl.of_standby stb) with
    | Ok r -> r
    | Error e -> Alcotest.failf "attach: %s" e
  in
  let svc_p =
    Service.create
      ~persist:(fun ev ->
        Store.record store ev;
        Repl.send repl ev)
      ()
  in
  let killed = ref false in
  let acked = ref 0 in
  let promote () =
    match Standby.promote stb with
    | Error e -> Error e
    | Ok (store', recovered) -> (
      let svc' = Service.create ~persist:(Store.record store') () in
      match Service.restore svc' recovered with
      | Error e -> Error e
      | Ok _ -> Ok (fun line -> Ok (fst (Service.handle_line_status svc' line))))
  in
  let up =
    Router.upstream ~name:"s0" ~promote (fun line ->
        if !killed then Error "connection refused (killed)"
        else Ok (fst (Service.handle_line_status svc_p line)))
  in
  let router =
    match Router.create ~shards:[ up ] () with
    | Ok r -> r
    | Error e -> Alcotest.failf "router: %s" e
  in
  let id = start router ~seed ~strategy in
  (* half the session through the primary *)
  for _ = 1 to 4 do
    if answer_one router oracle id then incr acked
  done;
  Alcotest.(check int) "four answers acked" 4 !acked;
  (* SIGKILL the primary.  The first request in the window is mutating:
     the router promotes but must NOT retry it (at-most-once). *)
  killed := true;
  (match
     call router (P.Answer { session = id; cls = 0; label = State.Pos })
   with
  | P.Failed (P.Shard_unavailable _) -> ()
  | other ->
    Alcotest.failf "mutating request during failover: %s"
      (P.response_to_string other));
  (* ring status shows the promotion *)
  (match call router P.Ring_status with
  | P.Ring_info { shards = [ { P.shard = "s0"; promoted; _ } ]; _ } ->
    Alcotest.(check bool) "promoted flag" true promoted
  | other -> Alcotest.failf "ring_status: %s" (P.response_to_string other));
  (* every acked answer survived onto the promoted standby *)
  (match call router (P.Stats { session = id }) with
  | P.Session_stats st ->
    Alcotest.(check int) "acked answers survived" !acked st.P.labeled
  | other -> Alcotest.failf "stats: %s" (P.response_to_string other));
  (* ... and the session resumes to the bit-identical outcome *)
  while answer_one router oracle id do
    ()
  done;
  Alcotest.(check bool) "resumed outcome bit-identical" true
    (Smoke.outcome_equal (result_of router id) expected);
  Router.close router;
  Standby.close stb

(* A non-mutating request in the failover window is retried
   transparently: the client never sees the crash. *)
let test_failover_transparent_read () =
  let seed = 77 and strategy = "random" in
  let oracle = oracle_of seed in
  let expected = expected_of ~seed ~strategy in
  let fs_b = Memfs.create () in
  let stb = Standby.create ~io:(Memfs.io fs_b) ~dir:"/standby" () in
  let fs_p = Memfs.create () in
  let store, _ =
    match Store.open_dir ~io:(Memfs.io fs_p) "/data" with
    | Ok v -> v
    | Error e -> Alcotest.failf "open_dir: %s" e
  in
  let repl =
    match Repl.attach store (Repl.of_standby stb) with
    | Ok r -> r
    | Error e -> Alcotest.failf "attach: %s" e
  in
  let svc_p =
    Service.create
      ~persist:(fun ev ->
        Store.record store ev;
        Repl.send repl ev)
      ()
  in
  let killed = ref false in
  let promote () =
    match Standby.promote stb with
    | Error e -> Error e
    | Ok (store', recovered) -> (
      let svc' = Service.create ~persist:(Store.record store') () in
      match Service.restore svc' recovered with
      | Error e -> Error e
      | Ok _ -> Ok (fun line -> Ok (fst (Service.handle_line_status svc' line))))
  in
  let up =
    Router.upstream ~name:"s0" ~promote (fun line ->
        if !killed then Error "connection refused (killed)"
        else Ok (fst (Service.handle_line_status svc_p line)))
  in
  let router =
    match Router.create ~shards:[ up ] () with
    | Ok r -> r
    | Error e -> Alcotest.failf "router: %s" e
  in
  let id = start router ~seed ~strategy in
  ignore (answer_one router oracle id);
  killed := true;
  (* Get_question retries transparently onto the promoted standby *)
  (match call router (P.Get_question { session = id }) with
  | P.Question _ -> ()
  | other ->
    Alcotest.failf "read during failover: %s" (P.response_to_string other));
  while answer_one router oracle id do
    ()
  done;
  Alcotest.(check bool) "outcome bit-identical" true
    (Smoke.outcome_equal (result_of router id) expected);
  Router.close router;
  Standby.close stb

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "placement is a pure function of membership"
            `Quick test_ring_deterministic;
          Alcotest.test_case "empty ring, bad vnodes, duplicates" `Quick
            test_ring_empty_and_args;
          QCheck_alcotest.to_alcotest ring_remove_stability;
          QCheck_alcotest.to_alcotest ring_add_stability;
        ] );
      ( "rlog",
        [ Alcotest.test_case "entry codec roundtrip" `Quick test_rlog_roundtrip ] );
      ( "router",
        [
          Alcotest.test_case "placements spread, journal, survive restart"
            `Quick test_router_spreads_and_journals;
          Alcotest.test_case "internal messages rejected at the front" `Quick
            test_router_rejects_internal;
        ] );
      ( "wire",
        [
          Alcotest.test_case "32-client smoke through the router (line)"
            `Quick
            (smoke_through_router Wire.Line);
          Alcotest.test_case "32-client smoke through the router (binary)"
            `Quick
            (smoke_through_router Wire.Binary);
          Alcotest.test_case "catalog routes by fingerprint, stats aggregate"
            `Quick test_catalog_through_router;
        ] );
      ( "failover",
        [
          Alcotest.test_case "kill, promote, at-most-once, bit-identical"
            `Quick test_failover_kill_and_promote;
          Alcotest.test_case "reads retry transparently across failover"
            `Quick test_failover_transparent_read;
        ] );
    ]
