(* Instance-catalog tests: the once-per-entry invariants (fingerprint
   and derivation counted exactly once no matter how many sessions
   start), physical sharing of interned entries, warm-started engines
   pinned bit-identical to cold per-session engines (qcheck), LRU
   eviction with pinned entries exempt, and the eviction + re-register
   round-trip. *)

module Catalog = Jim_catalog.Catalog
module Service = Jim_server.Service
module Smoke = Jim_server.Smoke
module P = Jim_api.Protocol
module W = Jim_workloads
open Jim_core

let qtest ?(count = 30) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let synthetic ?(n_tuples = 40) seed =
  P.Synthetic { n_attrs = 5; n_tuples; domain = 8; goal_rank = 2; seed }

let params_of = function
  | P.Synthetic { n_attrs; n_tuples; domain; goal_rank; seed } ->
    { W.Synthetic.n_attrs; n_tuples; domain; goal_rank; seed }
  | _ -> assert false

let resolve_ok cat src =
  match Catalog.resolve cat src with
  | Ok e -> e
  | Error err -> Alcotest.failf "resolve: %s" (P.error_to_string err)

(* ------------------------------------------------------------------ *)
(* Once-per-entry counters                                             *)

let test_fingerprint_once () =
  let cat = Catalog.create () in
  let src = synthetic 11 in
  let n = 10 in
  let entries = List.init n (fun _ -> resolve_ok cat src) in
  let s = Catalog.stats cat in
  Alcotest.(check int) "fingerprinted exactly once" 1 s.P.fingerprints;
  Alcotest.(check int) "derived exactly once" 1 s.P.derivations;
  Alcotest.(check int) "one miss" 1 s.P.misses;
  Alcotest.(check int) "rest were hits" (n - 1) s.P.hits;
  Alcotest.(check int) "one entry" 1 s.P.entries;
  Alcotest.(check int) "all pinned" n s.P.pinned;
  List.iter (Catalog.release cat) entries;
  Alcotest.(check int) "all released" 0 (Catalog.stats cat).P.pinned

(* The service must inherit the invariant: many sessions, one
   fingerprint, one derivation — the PR-6 per-session fingerprinting is
   the bug this pins closed. *)
let test_service_fingerprint_once () =
  let cat = Catalog.create () in
  let service = Service.create ~catalog:cat () in
  let n = 8 in
  let sessions =
    List.init n (fun i ->
        match
          Service.handle service
            (P.Start_session
               { source = synthetic 11; strategy = "random"; seed = i })
        with
        | P.Started { session; _ } -> session
        | other -> Alcotest.failf "start: %s" (P.response_to_string other))
  in
  let s = Catalog.stats cat in
  Alcotest.(check int) "8 sessions, 1 fingerprint" 1 s.P.fingerprints;
  Alcotest.(check int) "8 sessions, 1 derivation" 1 s.P.derivations;
  Alcotest.(check int) "every session pins" n s.P.pinned;
  List.iter
    (fun id -> ignore (Service.handle service (P.End_session { session = id })))
    sessions;
  Alcotest.(check int) "ended sessions unpin" 0 (Catalog.stats cat).P.pinned;
  Alcotest.(check int) "entry stays warm" 1 (Catalog.stats cat).P.entries

let test_physical_sharing () =
  let cat = Catalog.create () in
  let a = resolve_ok cat (synthetic 3) in
  let b = resolve_ok cat (synthetic 3) in
  Alcotest.(check bool) "same entry" true (a == b);
  Alcotest.(check bool) "same classes array" true (a.Catalog.classes == b.Catalog.classes);
  Alcotest.(check bool) "same scorer cache" true (a.Catalog.cache == b.Catalog.cache)

(* Two different concrete sources carrying the same data alias to one
   entry: fingerprinted twice (each source once), derived once.  The
   texts differ ("01" vs "1") but load to the same typed relation, so
   the canonical CSVs — and hence the fingerprints — coincide. *)
let test_alias_same_data () =
  let cat = Catalog.create () in
  let a = resolve_ok cat (P.Csv_inline "a,b\n1,2\n3,4\n") in
  let b = resolve_ok cat (P.Csv_inline "a,b\n01,2\n3,4\n") in
  Alcotest.(check bool) "aliased to the same entry" true (a == b);
  let s = Catalog.stats cat in
  Alcotest.(check int) "two sources fingerprinted" 2 s.P.fingerprints;
  Alcotest.(check int) "one derivation" 1 s.P.derivations;
  Alcotest.(check int) "one entry" 1 s.P.entries;
  Catalog.release cat a;
  Catalog.release cat b

(* ------------------------------------------------------------------ *)
(* Warm engines = cold engines, bit for bit                            *)

(* The property the shared scorer memo must satisfy: an engine built off
   a (possibly already-warm) catalog entry runs the same questions to
   the same outcome as a private cold engine.  Runs each pick twice
   through the shared entry so the second run reads a populated memo. *)
let prop_warm_bit_identical =
  qtest "warm-started engines bit-identical to cold runs"
    QCheck.(
      make
        ~print:(fun (inst, seed, strat) ->
          Printf.sprintf "instance %d, seed %d, %s" inst seed strat)
        Gen.(
          let* inst = int_range 0 5 in
          let* seed = int_range 0 1000 in
          let* strat =
            oneofl [ "lookahead-entropy"; "random"; "lookahead-maximin" ]
          in
          return (inst, seed, strat)))
    (fun (inst, seed, strat) ->
      let cat = Catalog.create () in
      let source = synthetic ~n_tuples:30 inst in
      let gen = W.Synthetic.generate (params_of source) in
      let oracle = Oracle.of_goal gen.W.Synthetic.goal in
      let strategy =
        match Strategy.of_string strat with
        | Ok s -> s
        | Error m -> QCheck.Test.fail_report m
      in
      let cold =
        Session.run ~seed ~strategy ~oracle gen.W.Synthetic.relation
      in
      let entry = resolve_ok cat source in
      let warm () =
        Session.run_engine ~seed ~strategy ~oracle (Catalog.engine entry)
      in
      let first = warm () in
      let second = warm () in
      Catalog.release cat entry;
      Smoke.outcome_equal cold first && Smoke.outcome_equal cold second)

(* ------------------------------------------------------------------ *)
(* Eviction                                                            *)

let test_eviction_lru () =
  let clock = ref 0.0 in
  let tick () = clock := !clock +. 1.0; !clock in
  let cat = Catalog.create ~max_entries:2 ~now:(fun () -> tick ()) () in
  let fp_of src =
    let e = resolve_ok cat src in
    let fp = e.Catalog.fingerprint in
    Catalog.release cat e;
    fp
  in
  let fp_a = fp_of (synthetic 1) in
  let _fp_b = fp_of (synthetic 2) in
  let _fp_c = fp_of (synthetic 3) in
  let s = Catalog.stats cat in
  Alcotest.(check int) "capped at two entries" 2 s.P.entries;
  Alcotest.(check int) "one eviction" 1 s.P.evictions;
  (* A was least recently used — it is the one gone *)
  (match Catalog.resolve cat (P.Catalog fp_a) with
  | Error (P.Unknown_instance fp) ->
    Alcotest.(check string) "miss names the fingerprint" fp_a fp
  | Ok _ -> Alcotest.fail "evicted entry still resolvable by fingerprint"
  | Error err -> Alcotest.failf "wrong error: %s" (P.error_to_string err));
  (* re-registering the same data gets the same fingerprint and makes
     the handle live again *)
  let again = resolve_ok cat (synthetic 1) in
  Alcotest.(check string) "re-register reproduces the fingerprint" fp_a
    again.Catalog.fingerprint;
  let by_fp = resolve_ok cat (P.Catalog fp_a) in
  Alcotest.(check bool) "fingerprint handle live again" true (again == by_fp);
  Catalog.release cat again;
  Catalog.release cat by_fp

let test_pinned_exempt_from_eviction () =
  let cat = Catalog.create ~max_entries:2 () in
  let a = resolve_ok cat (synthetic 1) in
  let b = resolve_ok cat (synthetic 2) in
  let c = resolve_ok cat (synthetic 3) in
  (* all three pinned: over cap, but nothing evictable *)
  let s = Catalog.stats cat in
  Alcotest.(check int) "pinned entries exceed the cap" 3 s.P.entries;
  Alcotest.(check int) "no eviction while pinned" 0 s.P.evictions;
  Catalog.release cat a;
  (* the next intern can now evict the one unpinned entry *)
  let d = resolve_ok cat (synthetic 4) in
  let s = Catalog.stats cat in
  Alcotest.(check int) "unpinned entry evicted" 1 s.P.evictions;
  Alcotest.(check int) "still over cap only by pins" 3 s.P.entries;
  List.iter (Catalog.release cat) [ b; c; d ]

(* Registration pins nothing: the Registered reply leaves the entry warm
   but immediately evictable, and a session by fingerprint then pins. *)
let test_register_then_start () =
  let service = Service.create () in
  let cat = Service.catalog service in
  let fp =
    match
      Service.handle service (P.Register_instance { source = synthetic 5 })
    with
    | P.Registered { fingerprint; arity; classes; tuples } ->
      Alcotest.(check int) "arity" 5 arity;
      Alcotest.(check bool) "classes counted" true (classes > 0);
      Alcotest.(check int) "tuples" 40 tuples;
      fingerprint
    | other -> Alcotest.failf "register: %s" (P.response_to_string other)
  in
  Alcotest.(check int) "registration leaves nothing pinned" 0
    (Catalog.stats cat).P.pinned;
  (match
     Service.handle service
       (P.Start_session { source = P.Catalog fp; strategy = "random"; seed = 1 })
   with
  | P.Started _ -> ()
  | other -> Alcotest.failf "start by fingerprint: %s" (P.response_to_string other));
  Alcotest.(check int) "session pins the entry" 1 (Catalog.stats cat).P.pinned;
  match
    Service.handle service
      (P.Start_session
         { source = P.Catalog "deadbeef"; strategy = "random"; seed = 1 })
  with
  | P.Failed (P.Unknown_instance "deadbeef") -> ()
  | other -> Alcotest.failf "bogus fingerprint: %s" (P.response_to_string other)

let () =
  Alcotest.run "catalog"
    [
      ( "counters",
        [
          Alcotest.test_case "fingerprint/derive once" `Quick
            test_fingerprint_once;
          Alcotest.test_case "once per entry across sessions" `Quick
            test_service_fingerprint_once;
          Alcotest.test_case "physical sharing" `Quick test_physical_sharing;
          Alcotest.test_case "alias on identical data" `Quick
            test_alias_same_data;
        ] );
      ("determinism", [ prop_warm_bit_identical ]);
      ( "eviction",
        [
          Alcotest.test_case "LRU by idle time" `Quick test_eviction_lru;
          Alcotest.test_case "pinned entries exempt" `Quick
            test_pinned_exempt_from_eviction;
          Alcotest.test_case "register then start by fingerprint" `Quick
            test_register_then_start;
        ] );
    ]
