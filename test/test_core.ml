(* Tests for the inference core: signature classes, the knowledge state,
   the version space (against brute-force oracles), informativeness,
   strategies, the optimal policy, sessions, interaction modes, minimal
   queries, statistics and query rendering.

   The central correctness property — State.classify agrees with the
   brute-force definition of informativeness over the whole lattice — is
   checked both on hand-picked cases and with qcheck over random label
   sequences. *)

module P = Jim_partition.Partition
module Penum = Jim_partition.Penum
module V = Jim_relational.Value
module T = Jim_relational.Tuple0
module R = Jim_relational.Relation
module Schema = Jim_relational.Schema
module W = Jim_workloads
open Jim_core

let partition = Alcotest.testable P.pp P.equal

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Random partitions of size n (as in test_partition). *)
let gen_partition_sized n =
  QCheck.Gen.(
    let* rgs =
      let rec build i maxv acc =
        if i >= n then return (List.rev acc)
        else
          let* v = int_bound (min (maxv + 1) (n - 1)) in
          build (i + 1) (max maxv v) (v :: acc)
      in
      build 0 (-1) []
    in
    return (P.of_rgs (Array.of_list rgs)))

(* A random consistent labelling scenario over n attributes: a goal
   partition plus a list of tuple signatures, labelled by the goal. *)
let gen_scenario n =
  QCheck.Gen.(
    let* goal = gen_partition_sized n in
    let* sigs = list_size (int_range 1 8) (gen_partition_sized n) in
    return (goal, sigs))

let arb_scenario n =
  QCheck.make
    ~print:(fun (g, sigs) ->
      "goal " ^ P.to_string g ^ " sigs "
      ^ String.concat " " (List.map P.to_string sigs))
    (gen_scenario n)

let state_of_scenario (goal, sigs) =
  List.fold_left
    (fun st sg ->
      let lbl = if P.refines goal sg then State.Pos else State.Neg in
      State.add_exn st lbl sg)
    (State.create (P.size goal))
    sigs

(* Brute force: all consistent predicates by scanning the whole lattice. *)
let brute_consistent n st =
  let out = ref [] in
  Penum.iter_all n (fun q -> if State.consistent st q then out := q :: !out);
  !out

(* ------------------------------------------------------------------ *)
(* Sigclass                                                            *)

let test_sigclass_grouping () =
  let rel =
    R.of_rows ~name:"r"
      (Schema.of_list [ ("a", V.Tstring); ("b", V.Tstring) ])
      V.[
          [ Str "x"; Str "x" ];
          [ Str "y"; Str "z" ];
          [ Str "q"; Str "q" ];
          [ Str "y"; Str "z" ];
        ]
  in
  let classes = Sigclass.classes rel in
  (* Rows 0 and 2 share signature {0,1}; rows 1 and 3 share bottom. *)
  Alcotest.(check int) "two classes" 2 (Array.length classes);
  Alcotest.(check (list int)) "class 0 rows" [ 0; 2 ] classes.(0).Sigclass.rows;
  Alcotest.(check (list int)) "class 1 rows" [ 1; 3 ] classes.(1).Sigclass.rows;
  Alcotest.(check int) "total rows" 4 (Sigclass.total_rows classes);
  Alcotest.(check int) "representative" 0
    (Sigclass.representative classes.(0));
  Alcotest.(check (option int)) "find" (Some 1)
    (Sigclass.find classes (P.bottom 2));
  Alcotest.(check (option int)) "find missing" None
    (Sigclass.find (Sigclass.of_signatures [ P.bottom 3 ]) (P.top 3))

(* ------------------------------------------------------------------ *)
(* State                                                               *)

let test_state_initial () =
  let st = State.create 4 in
  Alcotest.(check partition) "canonical is top" (P.top 4) (State.canonical st);
  (* Everything is consistent initially. *)
  Penum.iter_all 4 (fun q ->
      Alcotest.(check bool) (P.to_string q) true (State.consistent st q))

let test_state_positive_meets () =
  let st = State.create 4 in
  let s1 = P.of_blocks 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let s2 = P.of_blocks 4 [ [ 0; 1; 2 ] ] in
  let st = State.add_exn st State.Pos s1 in
  let st = State.add_exn st State.Pos s2 in
  Alcotest.(check partition) "meet of sigs"
    (P.of_blocks 4 [ [ 0; 1 ] ])
    (State.canonical st)

let test_state_contradictions () =
  let st = State.create 3 in
  let sg = P.of_blocks 3 [ [ 0; 1 ] ] in
  (* Negative then positive with the same signature: the positive makes
     s = sg, which the stored negative swallows. *)
  let st = State.add_exn st State.Neg sg in
  (match State.add st State.Pos sg with
  | Error `Contradiction -> ()
  | Ok _ -> Alcotest.fail "expected contradiction");
  (* Positive then negative with the same signature. *)
  let st2 = State.add_exn (State.create 3) State.Pos sg in
  (match State.add st2 State.Neg sg with
  | Error `Contradiction -> ()
  | Ok _ -> Alcotest.fail "expected contradiction");
  (* A negative above the current s: s <= sig means contradiction. *)
  let st3 = State.add_exn (State.create 3) State.Pos sg in
  match State.add st3 State.Neg (P.top 3) with
  | Error `Contradiction -> ()
  | Ok _ -> Alcotest.fail "expected contradiction (negative above s)"

let test_state_negative_redundancy () =
  (* A negative dominated by an existing one must not grow the store. *)
  let st = State.create 4 in
  let big = P.of_blocks 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let small = P.of_blocks 4 [ [ 0; 1 ] ] in
  let st = State.add_exn st State.Neg big in
  let st = State.add_exn st State.Neg small in
  Alcotest.(check int) "one effective negative" 1
    (List.length st.State.negatives);
  Alcotest.(check partition) "the dominating one" big
    (List.hd st.State.negatives)

let test_state_arity_mismatch () =
  let st = State.create 4 in
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       ignore (State.add st State.Pos (P.top 3));
       false
     with Invalid_argument _ -> true)

let prop_state_consistency_brute =
  (* The normal-form consistency test equals the defining one: q is
     consistent iff q <= every positive signature and q is not <= any
     negative signature. *)
  qtest "State.consistent = definition" (arb_scenario 5)
    (fun ((goal, sigs) as sc) ->
      let st = state_of_scenario sc in
      let pos, neg =
        List.partition (fun sg -> P.refines goal sg) sigs
      in
      let ok = ref true in
      Penum.iter_all 5 (fun q ->
          let def =
            List.for_all (fun sg -> P.refines q sg) pos
            && not (List.exists (fun sg -> P.refines q sg) neg)
          in
          if State.consistent st q <> def then ok := false);
      !ok)

let prop_goal_always_consistent =
  qtest "the goal survives its own labels" (arb_scenario 6)
    (fun ((goal, _) as sc) ->
      let st = state_of_scenario sc in
      State.consistent st goal)

let prop_classify_brute =
  (* classify agrees with the brute-force three-way split of the lattice. *)
  qtest "State.classify = brute force" (arb_scenario 5)
    (fun ((_, _) as sc) ->
      let st = state_of_scenario sc in
      let consistent = brute_consistent 5 st in
      QCheck.assume (consistent <> []);
      let ok = ref true in
      Penum.iter_all 5 (fun sg ->
          let selects = List.filter (fun q -> P.refines q sg) consistent in
          let expected =
            if List.length selects = List.length consistent then
              State.Certain_pos
            else if selects = [] then State.Certain_neg
            else State.Informative
          in
          if State.classify st sg <> expected then ok := false);
      !ok)

let prop_informative_label_shrinks_vs =
  (* Labelling an informative signature strictly shrinks the version
     space, whichever consistent answer is given. *)
  qtest "informative labels strictly shrink the version space"
    (arb_scenario 5) (fun sc ->
      let st = state_of_scenario sc in
      let before = List.length (brute_consistent 5 st) in
      QCheck.assume (before > 0);
      let ok = ref true in
      Penum.iter_all 5 (fun sg ->
          if State.classify st sg = State.Informative then
            List.iter
              (fun lbl ->
                match State.add st lbl sg with
                | Ok st' ->
                  let after = List.length (brute_consistent 5 st') in
                  if not (after < before && after >= 1) then ok := false
                | Error `Contradiction ->
                  (* An informative tuple admits both answers. *)
                  ok := false)
              [ State.Pos; State.Neg ]);
      !ok)

(* ------------------------------------------------------------------ *)
(* Version space                                                       *)

let prop_vs_count_brute =
  qtest "Version_space.count = brute force" (arb_scenario 5) (fun sc ->
      let st = state_of_scenario sc in
      Version_space.count st
      = float_of_int (List.length (brute_consistent 5 st)))

let prop_vs_enumerate_brute =
  qtest ~count:100 "Version_space.enumerate = brute force" (arb_scenario 5)
    (fun sc ->
      let st = state_of_scenario sc in
      let a = List.sort P.compare (Version_space.enumerate st) in
      let b = List.sort P.compare (brute_consistent 5 st) in
      List.length a = List.length b && List.for_all2 P.equal a b)

let test_vs_singleton_on () =
  let open W.Flights in
  let st =
    List.fold_left
      (fun st (k, lbl) -> State.add_exn st lbl (signature k))
      (State.create 5)
      [ (3, State.Pos); (7, State.Neg); (8, State.Neg) ]
  in
  let classes = Sigclass.classes instance in
  Alcotest.(check bool) "done" true (Version_space.is_singleton_on st classes);
  let st_partial = State.add_exn (State.create 5) State.Pos (signature 3) in
  Alcotest.(check bool) "not done" false
    (Version_space.is_singleton_on st_partial classes)

let test_vs_equivalence_classes () =
  (* After (3)+ on the flights instance the four consistent predicates
     fall into distinct instance-equivalence classes. *)
  let open W.Flights in
  let st = State.add_exn (State.create 5) State.Pos (signature 3) in
  let classes = Sigclass.classes instance in
  let eq = Version_space.equivalence_classes st classes in
  Alcotest.(check int) "4 consistent predicates" 4
    (List.fold_left (fun acc (_, qs) -> acc + List.length qs) 0 eq);
  Alcotest.(check bool) "more than one equivalence class" true
    (List.length eq > 1)

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)

let mk_ctx st classes rng_seed =
  let informative = ref [] in
  Array.iteri
    (fun i (c : Sigclass.cls) ->
      if State.classify st c.Sigclass.sg = State.Informative then
        informative := i :: !informative)
    classes;
  {
    Strategy.state = st;
    classes;
    informative = Array.of_list (List.rev !informative);
    cache = Scorer.new_cache ();
    rng = Random.State.make [| rng_seed |];
  }

let test_strategies_contract () =
  (* Every strategy returns an informative class, or None iff none left. *)
  let classes = Sigclass.classes W.Flights.instance in
  let st0 = State.create 5 in
  List.iter
    (fun strat ->
      let ctx = mk_ctx st0 classes 1 in
      (match strat.Strategy.pick ctx with
      | None -> Alcotest.fail (strat.Strategy.name ^ ": no pick on fresh state")
      | Some c ->
        Alcotest.(check bool)
          (strat.Strategy.name ^ " picks informative")
          true
          (Array.mem c ctx.Strategy.informative));
      (* Finished state: inference over, nothing to pick. *)
      let st_done =
        List.fold_left
          (fun st (k, l) -> State.add_exn st l (W.Flights.signature k))
          st0
          [ (3, State.Pos); (7, State.Neg); (8, State.Neg) ]
      in
      let ctx_done = mk_ctx st_done classes 1 in
      Alcotest.(check bool)
        (strat.Strategy.name ^ " returns None when done")
        true
        (strat.Strategy.pick ctx_done = None))
    (Strategy.all @ [ Strategy.optimal () ])

let test_strategy_find () =
  Alcotest.(check bool) "find existing" true
    (Strategy.find "lookahead-entropy" <> None);
  Alcotest.(check bool) "find missing" true (Strategy.find "nope" = None)

let test_decided_counts_bounds () =
  let classes = Sigclass.classes W.Flights.instance in
  let st = State.create 5 in
  let ctx = mk_ctx st classes 1 in
  let inf_list = Array.to_list ctx.Strategy.informative in
  List.iter
    (fun c ->
      let p, n = Strategy.decided_counts st classes inf_list c in
      let total = List.length inf_list in
      Alcotest.(check bool) "counts within bounds" true
        (p >= 1 && p <= total && n >= 1 && n <= total))
    inf_list

let test_hypothetical_branches () =
  let st = State.create 5 in
  let sg = W.Flights.signature 3 in
  (match Strategy.hypothetical st sg with
  | Some _, Some _ -> ()
  | _ -> Alcotest.fail "fresh state: both branches live");
  (* After (3)+ the class of (3) is certain positive: the negative branch
     contradicts. *)
  let st' = State.add_exn st State.Pos sg in
  match Strategy.hypothetical st' sg with
  | Some _, None -> ()
  | _ -> Alcotest.fail "expected dead negative branch"

let prop_scorer_matches_reference =
  (* The memoised scorer agrees with the unmemoised list-based reference
     implementations kept in Strategy. *)
  qtest ~count:120 "scorer counts = unmemoised reference" (arb_scenario 5)
    (fun (goal, sigs) ->
      let k = List.length sigs / 2 in
      let labelled = List.filteri (fun i _ -> i < k) sigs in
      let st = state_of_scenario (goal, labelled) in
      let classes = Sigclass.of_signatures sigs in
      let sc = Scorer.of_state st classes in
      let inf = Array.to_list (Scorer.informative sc) in
      List.for_all
        (fun c ->
          Scorer.decided_counts sc c = Strategy.decided_counts st classes inf c
          && Scorer.decided_cards sc c
             = Strategy.decided_cards st classes inf c)
        inf)

let prop_parallel_pick_equivalence =
  (* Scoring candidates across 4 domains picks the exact question
     sequence of the sequential scan, for every strategy. *)
  qtest ~count:25 "parallel scorer = sequential picks" (arb_scenario 5)
    (fun (goal, sigs) ->
      let classes = Sigclass.of_signatures sigs in
      let oracle = Oracle.of_goal goal in
      let strategies = Strategy.all @ [ Strategy.lookahead2 () ] in
      let run () =
        List.map
          (fun strat ->
            Session.run_classes ~seed:7 ~strategy:strat ~oracle ~n:5 classes)
          strategies
      in
      Scorer.set_domains 1;
      let seq = run () in
      Scorer.set_domains 4;
      let par = run () in
      Scorer.set_domains 1;
      List.for_all2
        (fun (a : Session.outcome) (b : Session.outcome) ->
          compare a.Session.events b.Session.events = 0
          && P.equal a.Session.query b.Session.query)
        seq par)

let test_entropy_wide_instance () =
  (* Regression: on instances wide enough that Version_space.count
     saturates to infinity, the entropy score used to degenerate
     (inf /. inf = NaN) and the argmax silently returned the first
     informative class.  Build a 250-attribute chain a ⊏ b ⊏ c whose
     branch version spaces all overflow; the maximin fallback must pick
     the middle class (index 2), not the first. *)
  let n = 250 in
  let block len = P.of_pairs n (List.init (len - 1) (fun i -> (i, i + 1))) in
  let a = block 220 and b = block 221 and c = block 222 in
  let classes = Sigclass.of_signatures [ a; c; b ] in
  let st = State.create n in
  let ctx = mk_ctx st classes 1 in
  (* All branch version spaces are non-finite, so the entropy itself is
     unusable on every candidate... *)
  let sc = Strategy.scorer_of ctx in
  Array.iter
    (fun i ->
      let vp, vn = Scorer.vs_split sc i in
      Alcotest.(check bool) "branch VS overflows" false
        (Float.is_finite (vp +. vn)))
    ctx.Strategy.informative;
  (* ...and the maximin fallback separates the candidates:
     min(p,n) = 1, 1, 2 for classes 0 (= a), 1 (= c), 2 (= b). *)
  Alcotest.(check (option int)) "entropy picks the middle of the chain"
    (Some 2)
    (Strategy.lookahead_entropy.Strategy.pick ctx)

(* ------------------------------------------------------------------ *)
(* Optimal                                                             *)

let test_optimal_flights () =
  let classes = Sigclass.classes W.Flights.instance in
  let d = Optimal.worst_case_depth (State.create 5) classes in
  (* The paper's walkthrough uses 3 labels; the optimal policy cannot
     need more than the number of classes and at least log2 of the
     number of instance-equivalence outcomes. *)
  Alcotest.(check bool) "depth sane" true (d >= 2 && d <= 6);
  (* Every heuristic strategy, against every goal, needs at least ...
     the optimal worst case is a lower bound on the worst-case of any
     strategy. *)
  List.iter
    (fun strat ->
      let worst = ref 0 in
      Penum.iter_all 5 (fun goal ->
          let o =
            Session.run ~strategy:strat ~oracle:(Oracle.of_goal goal)
              W.Flights.instance
          in
          worst := max !worst o.Session.interactions);
      Alcotest.(check bool)
        (strat.Strategy.name ^ " worst >= optimal")
        true (!worst >= d))
    Strategy.all

let test_optimal_matches_its_own_bound () =
  (* Driving sessions with the optimal strategy never exceeds the
     announced worst-case depth. *)
  let classes = Sigclass.classes W.Flights.instance in
  let d = Optimal.worst_case_depth (State.create 5) classes in
  let strat = Strategy.optimal () in
  Penum.iter_all 5 (fun goal ->
      let o =
        Session.run ~strategy:strat ~oracle:(Oracle.of_goal goal)
          W.Flights.instance
      in
      Alcotest.(check bool)
        ("goal " ^ P.to_string goal)
        true
        (o.Session.interactions <= d))

let test_optimal_too_large () =
  let inst =
    W.Synthetic.generate
      { W.Synthetic.default with W.Synthetic.n_attrs = 8; n_tuples = 120; seed = 1 }
  in
  let classes = Sigclass.classes inst.W.Synthetic.relation in
  Alcotest.(check bool) "raises Too_large" true
    (try
       ignore (Optimal.worst_case_depth ~max_states:50 (State.create 8) classes);
       false
     with Optimal.Too_large -> true)

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)

let test_oracle_goal () =
  let o = Oracle.of_goal W.Flights.q1 in
  Alcotest.(check bool) "selects (3)" true
    (Oracle.label_tuple o (W.Flights.tuple 3) = State.Pos);
  Alcotest.(check bool) "rejects (1)" true
    (Oracle.label_tuple o (W.Flights.tuple 1) = State.Neg);
  Alcotest.(check bool) "goal recorded" true
    (match Oracle.goal o with Some g -> P.equal g W.Flights.q1 | None -> false)

let test_oracle_noisy_flips () =
  let honest = Oracle.of_goal W.Flights.q1 in
  let always_flip = Oracle.noisy ~seed:1 ~flip_probability:1.0 honest in
  Alcotest.(check bool) "flipped" true
    (Oracle.label always_flip (W.Flights.signature 3) = State.Neg);
  let never_flip = Oracle.noisy ~seed:1 ~flip_probability:0.0 honest in
  Alcotest.(check bool) "not flipped" true
    (Oracle.label never_flip (W.Flights.signature 3) = State.Pos)

(* ------------------------------------------------------------------ *)
(* Session                                                             *)

let prop_session_converges =
  (* On random instances, every strategy terminates with a query
     instance-equivalent to the goal, asking at most #classes
     questions. *)
  let arb =
    QCheck.make
      ~print:(fun (goal, sigs) ->
        P.to_string goal ^ " / " ^ string_of_int (List.length sigs))
      QCheck.Gen.(
        let* goal = gen_partition_sized 5 in
        let* sigs = list_size (int_range 1 15) (gen_partition_sized 5) in
        return (goal, sigs))
  in
  qtest ~count:100 "sessions converge to instance-equivalence" arb
    (fun (goal, sigs) ->
      let classes = Sigclass.of_signatures sigs in
      List.for_all
        (fun strat ->
          let o =
            Session.run_classes ~strategy:strat ~oracle:(Oracle.of_goal goal)
              ~n:5 classes
          in
          (not o.Session.contradiction)
          && o.Session.interactions <= Array.length classes
          && List.for_all
               (fun sg -> P.refines o.Session.query sg = P.refines goal sg)
               sigs)
        Strategy.all)

let test_session_engine_stepwise () =
  let eng = Session.create W.Flights.instance in
  Alcotest.(check bool) "not finished" false (Session.finished eng);
  Alcotest.(check int) "nothing asked" 0 (Session.asked eng);
  (* Drive manually with the entropy strategy against goal Q2. *)
  let rng = Random.State.make [| 0 |] in
  let oracle = Oracle.of_goal W.Flights.q2 in
  let steps = ref 0 in
  while not (Session.finished eng) do
    incr steps;
    if !steps > 12 then Alcotest.fail "engine failed to terminate";
    match Session.question eng Strategy.lookahead_entropy rng with
    | None -> Alcotest.fail "question on unfinished engine"
    | Some ci ->
      let sg = (Session.classes eng).(ci).Sigclass.sg in
      (match Session.answer eng ci (Oracle.label oracle sg) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "sound oracle contradicted")
  done;
  Alcotest.(check int) "asked = steps" !steps (Session.asked eng);
  Alcotest.(check partition) "result is Q2" W.Flights.q2 (Session.result eng)

let test_closed_loop_never_contradicts () =
  (* In the closed loop a contradiction is impossible by construction:
     the engine only asks informative classes, and an informative class
     admits both answers.  Even a label-flipping adversary cannot derail
     a run - it can only steer it to a different (consistent) query. *)
  let adversary =
    Oracle.noisy ~seed:3 ~flip_probability:0.5 (Oracle.of_goal W.Flights.q2)
  in
  for seed = 1 to 10 do
    let o =
      Session.run ~seed ~strategy:Strategy.random ~oracle:adversary
        W.Flights.instance
    in
    Alcotest.(check bool) "no contradiction possible" false
      o.Session.contradiction
  done

let test_session_contradiction_detected () =
  (* Mislabelling a tuple the state already forces IS detected: after
     (12)+ the class of (3) is certainly positive; answering it with -
     must be rejected and leave the engine untouched. *)
  let eng = Session.create W.Flights.instance in
  let class_of k =
    Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature k))
  in
  (match Session.answer eng (class_of 12) State.Pos with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "consistent label rejected");
  Alcotest.(check bool) "(3) is now certain positive" true
    (Session.status eng (class_of 3) = State.Certain_pos);
  (match Session.answer eng (class_of 3) State.Neg with
  | Error Session.Contradiction -> ()
  | Ok () | Error Session.Nothing_to_undo ->
    Alcotest.fail "contradictory label accepted");
  Alcotest.(check int) "engine unchanged" 1 (Session.asked eng)

let test_session_top_questions () =
  let eng = Session.create W.Flights.instance in
  let rng = Random.State.make [| 0 |] in
  let top = Session.top_questions eng Strategy.lookahead_entropy rng 3 in
  Alcotest.(check int) "3 distinct proposals" 3
    (List.length (List.sort_uniq compare top));
  List.iter
    (fun ci ->
      Alcotest.(check bool) "proposal informative" true
        (Session.status eng ci = State.Informative))
    top

let test_top_questions_preference_order () =
  (* top_questions returns k distinct classes in strategy-preference
     order: the sequence produced by repeatedly picking from the
     informative set with the already-proposed classes masked out. *)
  let classes = Sigclass.classes W.Flights.instance in
  let st = State.create 5 in
  let strat = Strategy.lookahead_maximin in
  let k = 3 in
  let expected =
    let masked = Array.make (Array.length classes) false in
    let rec go acc j =
      if j = k then List.rev acc
      else begin
        let informative = ref [] in
        Array.iteri
          (fun i (c : Sigclass.cls) ->
            if
              (not masked.(i))
              && State.classify st c.Sigclass.sg = State.Informative
            then informative := i :: !informative)
          classes;
        let ctx =
          {
            Strategy.state = st;
            classes;
            informative = Array.of_list (List.rev !informative);
            cache = Scorer.new_cache ();
            rng = Random.State.make [| 0 |];
          }
        in
        match strat.Strategy.pick ctx with
        | None -> List.rev acc
        | Some c ->
          masked.(c) <- true;
          go (c :: acc) (j + 1)
      end
    in
    go [] 0
  in
  let eng = Session.create W.Flights.instance in
  let rng = Random.State.make [| 0 |] in
  let got = Session.top_questions eng strat rng k in
  Alcotest.(check (list int)) "preference order" expected got;
  Alcotest.(check int) "k distinct classes" k
    (List.length (List.sort_uniq compare got))

(* ------------------------------------------------------------------ *)
(* Interaction modes                                                   *)

let test_modes_agreement () =
  (* All four modes infer instance-equivalent queries. *)
  let goal = W.Flights.q2 in
  let oracle = Oracle.of_goal goal in
  let inst = W.Flights.instance in
  let order = List.init 12 (fun i -> i) in
  let reports =
    [
      Interaction.mode1_label_all ~order ~oracle inst;
      Interaction.mode2_gray_out ~order ~oracle inst;
      Interaction.mode3_top_k ~k:2 ~strategy:Strategy.local_lex ~oracle inst;
      Interaction.mode4_interactive ~strategy:Strategy.local_lex ~oracle inst;
    ]
  in
  List.iter
    (fun (r : Interaction.report) ->
      Alcotest.(check bool)
        (r.Interaction.mode ^ " equivalent")
        true
        (Jquery.equivalent_on
           (Jquery.make W.Flights.schema r.Interaction.query)
           (Jquery.make W.Flights.schema goal)
           inst))
    reports;
  (* Mode 1 labels everything. *)
  Alcotest.(check int) "mode1 labels all" 12
    (List.nth reports 0).Interaction.labels_given

let test_mode2_reversed_order () =
  (* The user's order matters for mode 2 but the result does not. *)
  let goal = W.Flights.q1 in
  let oracle = Oracle.of_goal goal in
  let inst = W.Flights.instance in
  let fwd =
    Interaction.mode2_gray_out ~order:(List.init 12 (fun i -> i)) ~oracle inst
  in
  let bwd =
    Interaction.mode2_gray_out
      ~order:(List.rev (List.init 12 (fun i -> i)))
      ~oracle inst
  in
  Alcotest.(check bool) "both equivalent to goal" true
    (Jquery.equivalent_on
       (Jquery.make W.Flights.schema fwd.Interaction.query)
       (Jquery.make W.Flights.schema bwd.Interaction.query)
       inst)

(* ------------------------------------------------------------------ *)
(* Minimal (most general) queries                                      *)

let test_minimal_no_negatives () =
  let st = State.add_exn (State.create 4) State.Pos (P.top 4) in
  Alcotest.(check (list partition)) "bottom only" [ P.bottom 4 ]
    (Minimal.most_general st)

let prop_minimal_correct =
  qtest ~count:150 "most_general = brute-force minimal consistent"
    (arb_scenario 5) (fun sc ->
      let st = state_of_scenario sc in
      let consistent = brute_consistent 5 st in
      let brute_minimal =
        List.filter
          (fun q ->
            not
              (List.exists
                 (fun q' -> (not (P.equal q q')) && P.refines q' q)
                 consistent))
          consistent
        |> List.sort P.compare
      in
      let computed = List.sort P.compare (Minimal.most_general st) in
      List.length brute_minimal = List.length computed
      && List.for_all2 P.equal brute_minimal computed)

let test_minimal_flights () =
  (* After (3)+ and (8)-, consistent = {(2,4)} and Q2; most general is
     {(2,4)} alone (Airline = Discount). *)
  let st =
    List.fold_left
      (fun st (k, l) -> State.add_exn st l (W.Flights.signature k))
      (State.create 5)
      [ (3, State.Pos); (8, State.Neg) ]
  in
  Alcotest.(check (list partition))
    "most general"
    [ P.of_pairs 5 [ (2, 4) ] ]
    (Minimal.most_general st)

(* ------------------------------------------------------------------ *)
(* Stats and Jquery                                                    *)

let test_stats_engine () =
  let eng = Session.create W.Flights.instance in
  let s0 = Stats.of_engine eng in
  Alcotest.(check int) "nothing labeled" 0 s0.Stats.labeled;
  Alcotest.(check int) "12 total" 12 s0.Stats.total;
  (match
     Session.answer eng
       (Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature 3)))
       State.Pos
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected");
  let s1 = Stats.of_engine eng in
  Alcotest.(check int) "one labeled" 1 s1.Stats.labeled;
  (* (4) went certain for free. *)
  Alcotest.(check int) "one auto" 1 s1.Stats.auto_determined;
  Alcotest.(check (float 0.001)) "vs = 4" 4.0 s1.Stats.version_space

let test_jquery_rendering () =
  let q = Jquery.make W.Flights.schema W.Flights.q2 in
  Alcotest.(check string) "where" "To = City AND Airline = Discount"
    (Jquery.to_where q);
  Alcotest.(check string) "sql"
    "SELECT * FROM packages WHERE To = City AND Airline = Discount"
    (Jquery.to_sql ~from:[ "packages" ] q);
  let empty = Jquery.make W.Flights.schema (P.bottom 5) in
  Alcotest.(check string) "empty predicate" "TRUE" (Jquery.to_where empty);
  Alcotest.(check int) "eval count" 2
    (R.cardinality (Jquery.eval q W.Flights.instance))

let test_jquery_sql_roundtrip () =
  (* to_sql output parses back through the SQL front end. *)
  let q = Jquery.make W.Flights.schema W.Flights.q2 in
  let sql = Jquery.to_sql ~from:[ "packages" ] q in
  Alcotest.(check bool) "parses" true
    (Result.is_ok (Jim_relational.Sql_parser.parse sql))

let test_jquery_arity_mismatch () =
  Alcotest.(check bool) "make checks size" true
    (try
       ignore (Jquery.make W.Flights.schema (P.top 3));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "core"
    [
      ( "sigclass",
        [ Alcotest.test_case "grouping" `Quick test_sigclass_grouping ] );
      ( "state",
        [
          Alcotest.test_case "initial" `Quick test_state_initial;
          Alcotest.test_case "positives meet" `Quick test_state_positive_meets;
          Alcotest.test_case "contradictions" `Quick test_state_contradictions;
          Alcotest.test_case "negative redundancy" `Quick
            test_state_negative_redundancy;
          Alcotest.test_case "arity mismatch" `Quick test_state_arity_mismatch;
          prop_state_consistency_brute;
          prop_goal_always_consistent;
          prop_classify_brute;
          prop_informative_label_shrinks_vs;
        ] );
      ( "version-space",
        [
          prop_vs_count_brute;
          prop_vs_enumerate_brute;
          Alcotest.test_case "singleton-on detection" `Quick
            test_vs_singleton_on;
          Alcotest.test_case "equivalence classes" `Quick
            test_vs_equivalence_classes;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "contract" `Quick test_strategies_contract;
          Alcotest.test_case "find" `Quick test_strategy_find;
          Alcotest.test_case "decided counts bounds" `Quick
            test_decided_counts_bounds;
          Alcotest.test_case "hypothetical branches" `Quick
            test_hypothetical_branches;
          Alcotest.test_case "entropy fallback on wide instance" `Quick
            test_entropy_wide_instance;
        ] );
      ( "scorer",
        [ prop_scorer_matches_reference; prop_parallel_pick_equivalence ] );
      ( "optimal",
        [
          Alcotest.test_case "flights depth + lower bound" `Slow
            test_optimal_flights;
          Alcotest.test_case "respects own bound" `Slow
            test_optimal_matches_its_own_bound;
          Alcotest.test_case "too large guard" `Quick test_optimal_too_large;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "goal labelling" `Quick test_oracle_goal;
          Alcotest.test_case "noise injection" `Quick test_oracle_noisy_flips;
        ] );
      ( "session",
        [
          prop_session_converges;
          Alcotest.test_case "stepwise engine" `Quick
            test_session_engine_stepwise;
          Alcotest.test_case "closed loop never contradicts" `Quick
            test_closed_loop_never_contradicts;
          Alcotest.test_case "contradiction detected" `Quick
            test_session_contradiction_detected;
          Alcotest.test_case "top questions" `Quick test_session_top_questions;
          Alcotest.test_case "top questions preference order" `Quick
            test_top_questions_preference_order;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "four modes agree" `Quick test_modes_agreement;
          Alcotest.test_case "mode 2 order-insensitive result" `Quick
            test_mode2_reversed_order;
        ] );
      ( "minimal",
        [
          Alcotest.test_case "no negatives" `Quick test_minimal_no_negatives;
          prop_minimal_correct;
          Alcotest.test_case "flights case" `Quick test_minimal_flights;
        ] );
      ( "stats+jquery",
        [
          Alcotest.test_case "engine stats" `Quick test_stats_engine;
          Alcotest.test_case "rendering" `Quick test_jquery_rendering;
          Alcotest.test_case "sql roundtrip" `Quick test_jquery_sql_roundtrip;
          Alcotest.test_case "arity mismatch" `Quick test_jquery_arity_mismatch;
        ] );
    ]
