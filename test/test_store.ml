(* Store tests: the write-ahead journal, snapshots and crash recovery.

   The headline is the fault-injection sweep: a full oracle-driven session
   is journaled, then the journal is cut at EVERY record boundary (plus
   torn mid-record variants) as if SIGKILL had landed there; each prefix
   must recover — every acknowledged answer intact — and the resumed
   session must finish bit-identical to the uninterrupted in-process
   [Session.run].  Alongside: record framing (torn tail vs mid-log
   corruption, the latter failing with the byte offset), group-commit
   concurrency, snapshot rotation and checksums, undo replay, ended
   sessions staying dead, and fingerprint drift detection. *)

module Pr = Jim_api.Protocol
module Service = Jim_server.Service
module Smoke = Jim_server.Smoke
module Store = Jim_store.Store
module Journal = Jim_store.Journal
module Event = Jim_store.Event
module Snapshot = Jim_store.Snapshot
module Recovery = Jim_store.Recovery
module Crc32 = Jim_store.Crc32
module W = Jim_workloads
open Jim_core

(* ------------------------------------------------------------------ *)
(* Scratch directories and file helpers                                *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jim-store-test-%d-%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* ------------------------------------------------------------------ *)
(* Oracle-driven sessions over a Service (in-process, no socket)       *)

let params seed =
  { W.Synthetic.n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }

let source_of seed =
  let p = params seed in
  Pr.Synthetic
    {
      n_attrs = p.W.Synthetic.n_attrs;
      n_tuples = p.W.Synthetic.n_tuples;
      domain = p.W.Synthetic.domain;
      goal_rank = p.W.Synthetic.goal_rank;
      seed = p.W.Synthetic.seed;
    }

let oracle_of seed =
  Oracle.of_goal (W.Synthetic.generate (params seed)).W.Synthetic.goal

let expected_outcome ~seed ~strategy =
  let inst = W.Synthetic.generate (params seed) in
  let strat =
    match Strategy.of_string strategy with Ok s -> s | Error m -> failwith m
  in
  Session.run ~seed ~strategy:strat
    ~oracle:(Oracle.of_goal inst.W.Synthetic.goal)
    inst.W.Synthetic.relation

let start service ~seed ~strategy =
  match
    Service.handle service
      (Pr.Start_session { source = source_of seed; strategy; seed })
  with
  | Pr.Started { session; _ } -> session
  | other -> Alcotest.failf "start failed: %s" (Pr.response_to_string other)

(* Answer up to [rounds] questions ([-1]: to completion); how many were
   answered. *)
let drive service session oracle rounds =
  let rec loop asked =
    if asked = rounds then asked
    else
      match Service.handle service (Pr.Get_question { session }) with
      | Pr.Question None -> asked
      | Pr.Question (Some { Pr.cls; sg; _ }) -> (
        match
          Service.handle service
            (Pr.Answer { session; cls; label = Oracle.label oracle sg })
        with
        | Pr.Answered _ -> loop (asked + 1)
        | other ->
          Alcotest.failf "answer failed: %s" (Pr.response_to_string other))
      | other -> Alcotest.failf "get failed: %s" (Pr.response_to_string other)
  in
  loop 0

let result_of service session =
  match Service.handle service (Pr.Result { session }) with
  | Pr.Outcome o -> o
  | other -> Alcotest.failf "result failed: %s" (Pr.response_to_string other)

let labeled_of service session =
  match Service.handle service (Pr.Stats { session }) with
  | Pr.Session_stats st -> st.Pr.labeled
  | other -> Alcotest.failf "stats failed: %s" (Pr.response_to_string other)

let open_store ?snapshot_every dir =
  match Store.open_dir ~fsync:false ?snapshot_every dir with
  | Ok (store, recovered) -> (store, recovered)
  | Error e -> Alcotest.failf "open_dir %s: %s" dir e

let durable_service ?snapshot_every dir =
  let store, recovered = open_store ?snapshot_every dir in
  let service = Service.create ~persist:(Store.record store) () in
  (match Service.restore service recovered with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restore: %s" e);
  (service, store, recovered)

(* ------------------------------------------------------------------ *)
(* CRC32                                                               *)

let test_crc32_kat () =
  (* The CRC-32/IEEE check value from the ROCKSOFT model catalogue. *)
  Alcotest.(check int32)
    "check value" 0xcbf43926l
    (Crc32.digest_string "123456789");
  Alcotest.(check string) "hex" "cbf43926"
    (Crc32.to_hex (Crc32.digest_string "123456789"));
  Alcotest.(check int32) "empty" 0l (Crc32.digest_string "");
  (* incremental digest equals one-shot *)
  let s = "the quick brown fox" in
  let part =
    Crc32.digest ~crc:(Crc32.digest_string (String.sub s 0 7))
      (Bytes.of_string s) 7
      (String.length s - 7)
  in
  Alcotest.(check int32) "incremental" (Crc32.digest_string s) part

(* ------------------------------------------------------------------ *)
(* Event codec                                                         *)

let sample_events =
  let sg =
    match Jim_partition.Partition.of_string "{0,2}{1}{3,4}" with
    | Ok p -> p
    | Error e -> failwith e
  in
  [
    Event.Started
      {
        session = 3;
        arity = 5;
        source = source_of 42;
        strategy = "lookahead-entropy";
        seed = 7;
        fingerprint = "deadbeef";
      };
    Event.Started
      {
        session = 1;
        arity = 5;
        source = Pr.Builtin "flights";
        strategy = "random";
        seed = 0;
        fingerprint = "00000000";
      };
    Event.Started
      {
        session = 9;
        arity = 3;
        source = Pr.Csv_inline "a,b,c\n1,\"x,\"\"y\"\new line\",2\n";
        strategy = "random";
        seed = 12;
        fingerprint = "cafe0001";
      };
    Event.Answered { session = 3; cls = 4; sg; label = State.Pos };
    Event.Answered { session = 1; cls = 0; sg; label = State.Neg };
    Event.Undone { session = 3 };
    Event.Ended { session = 1 };
  ]

let event_eq a b =
  match (a, b) with
  | ( Event.Started
        { session; arity; source; strategy; seed; fingerprint },
      Event.Started
        {
          session = session';
          arity = arity';
          source = source';
          strategy = strategy';
          seed = seed';
          fingerprint = fingerprint';
        } ) ->
    session = session' && arity = arity' && strategy = strategy'
    && seed = seed' && fingerprint = fingerprint'
    && Pr.request_to_string
         (Pr.Start_session { source; strategy = ""; seed = 0 })
       = Pr.request_to_string
           (Pr.Start_session { source = source'; strategy = ""; seed = 0 })
  | ( Event.Answered { session; cls; sg; label },
      Event.Answered
        { session = session'; cls = cls'; sg = sg'; label = label' } ) ->
    session = session' && cls = cls'
    && Jim_partition.Partition.equal sg sg'
    && label = label'
  | Event.Undone { session }, Event.Undone { session = session' }
  | Event.Ended { session }, Event.Ended { session = session' } ->
    session = session'
  | _ -> false

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      let s = Event.to_string ev in
      Alcotest.(check bool)
        ("single line: " ^ s)
        false
        (String.contains s '\n');
      match Event.of_string s with
      | Error e -> Alcotest.failf "decode %s: %s" s e
      | Ok ev' ->
        Alcotest.(check bool) ("roundtrip: " ^ s) true (event_eq ev ev'))
    sample_events

(* ------------------------------------------------------------------ *)
(* Journal framing                                                     *)

let sample_payloads =
  [ "alpha"; ""; "a longer payload with spaces"; "\x00\x01binary\xff"; "z" ]

let write_sample_journal path =
  let j = Journal.create ~fsync:false path in
  List.iter (Journal.append j) sample_payloads;
  Journal.close j

let test_journal_roundtrip () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      match Journal.scan path with
      | Error (`Corrupt (off, m)) -> Alcotest.failf "corrupt at %d: %s" off m
      | Ok (records, tail) ->
        Alcotest.(check bool) "complete tail" true (tail = Journal.Complete);
        Alcotest.(check (list string))
          "payloads in order" sample_payloads
          (List.map snd records);
        (* offsets are strictly increasing and start at the file header *)
        let offsets = List.map fst records in
        Alcotest.(check int) "first offset" Journal.header_size
          (List.hd offsets);
        Alcotest.(check bool) "offsets increase" true
          (List.for_all2 ( < ) offsets (List.tl offsets @ [ max_int ])))

let test_journal_reopen_append () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      (match Journal.open_append ~fsync:false path with
      | Error e -> Alcotest.fail e
      | Ok j ->
        Journal.append j "appended after reopen";
        Journal.close j);
      match Journal.scan path with
      | Error _ -> Alcotest.fail "scan after reopen"
      | Ok (records, tail) ->
        Alcotest.(check bool) "complete" true (tail = Journal.Complete);
        Alcotest.(check (list string))
          "old + new"
          (sample_payloads @ [ "appended after reopen" ])
          (List.map snd records))

(* The record codec the replication stream ships: encode_record's bytes
   are exactly what append writes, and decode_record refuses anything
   but one intact record. *)
let test_record_codec () =
  List.iter
    (fun payload ->
      let r = Journal.encode_record payload in
      Alcotest.(check string) "record magic leads" Journal.record_magic
        (String.sub r 0 (String.length Journal.record_magic));
      (match Journal.decode_record r with
      | Ok p -> Alcotest.(check string) "roundtrip" payload p
      | Error e -> Alcotest.failf "decode: %s" e);
      (* single-byte damage is rejected, wherever it lands *)
      let i = String.length r / 2 in
      let mutated = Bytes.of_string r in
      Bytes.set mutated i (Char.chr (Char.code r.[i] lxor 0x40));
      (match Journal.decode_record (Bytes.to_string mutated) with
      | Ok _ -> Alcotest.failf "damaged byte %d decoded" i
      | Error _ -> ());
      (* so are truncation and trailing garbage: exactly one record *)
      (match Journal.decode_record (String.sub r 0 (String.length r - 1)) with
      | Ok _ -> Alcotest.fail "truncated record decoded"
      | Error _ -> ());
      match Journal.decode_record (r ^ "x") with
      | Ok _ -> Alcotest.fail "trailing garbage decoded"
      | Error _ -> ())
    sample_payloads;
  (* encoded records are byte-identical to what append writes: a
     standby appending received records builds the same file *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let rebuilt =
        "JIMWAL01" ^ String.concat "" (List.map Journal.encode_record sample_payloads)
      in
      Alcotest.(check string) "file = header + encoded records" data rebuilt)

(* The streaming iterator a primary ships its journal with. *)
let test_journal_tail () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      let end_off =
        match Journal.tail path ~from_offset:0 with
        | Error e -> Alcotest.fail e
        | Ok (records, end_off) ->
          Alcotest.(check (list string))
            "everything from offset 0" sample_payloads (List.map snd records);
          end_off
      in
      (* resuming at the end yields nothing and holds position *)
      (match Journal.tail path ~from_offset:end_off with
      | Ok ([], e) -> Alcotest.(check int) "position stable" end_off e
      | Ok (rs, _) -> Alcotest.failf "%d unexpected records" (List.length rs)
      | Error e -> Alcotest.fail e);
      (* append more: tailing from the old end sees exactly the new *)
      (match Journal.open_append ~fsync:false path with
      | Error e -> Alcotest.fail e
      | Ok j ->
        Journal.append j "new-1";
        Journal.append j "new-2";
        Journal.close j);
      let end2 =
        match Journal.tail path ~from_offset:end_off with
        | Error e -> Alcotest.fail e
        | Ok (rs, end2) ->
          Alcotest.(check (list string))
            "only the new records" [ "new-1"; "new-2" ] (List.map snd rs);
          Alcotest.(check bool) "offset advanced" true (end2 > end_off);
          end2
      in
      (* a torn final record ends the durable prefix — not an error *)
      Unix.truncate path (end2 - 3);
      match Journal.tail path ~from_offset:end_off with
      | Error e -> Alcotest.failf "torn tail errored: %s" e
      | Ok (rs, e) ->
        Alcotest.(check (list string))
          "torn record withheld" [ "new-1" ] (List.map snd rs);
        Alcotest.(check bool) "end before the tear" true (e < end2))

let test_journal_group_commit () =
  (* Concurrent appenders with real fsync: every payload must land
     exactly once (the group-commit leader/follower dance loses none). *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      let j = Journal.create ~fsync:true path in
      let n_threads = 4 and per_thread = 25 in
      let spawn t =
        Thread.create
          (fun () ->
            for i = 0 to per_thread - 1 do
              Journal.append j (Printf.sprintf "t%d-%d" t i)
            done)
          ()
      in
      let threads = List.init n_threads spawn in
      List.iter Thread.join threads;
      Journal.close j;
      match Journal.scan path with
      | Error (`Corrupt (off, m)) -> Alcotest.failf "corrupt at %d: %s" off m
      | Ok (records, tail) ->
        Alcotest.(check bool) "complete" true (tail = Journal.Complete);
        let got = List.sort compare (List.map snd records) in
        let want =
          List.sort compare
            (List.concat_map
               (fun t ->
                 List.init per_thread (fun i -> Printf.sprintf "t%d-%d" t i))
               (List.init n_threads Fun.id))
        in
        Alcotest.(check (list string)) "all payloads, once each" want got)

let test_journal_windowed_group_commit () =
  (* Adaptive group commit (--commit-window): staged appends drain as
     combined writes under one fsync barrier.  A multi-payload
     append_many forms one batch deterministically; concurrent
     appenders must still land every payload exactly once, and the
     batch counters must account for every record. *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      let j = Journal.create ~fsync:true ~window:0.002 path in
      let bulk = List.init 5 (Printf.sprintf "bulk-%d") in
      Journal.append_many j bulk;
      let s = Journal.batch_stats j in
      Alcotest.(check bool) "append_many forms one batch of 5" true
        (s.Journal.max_batch >= 5);
      let n_threads = 8 and per_thread = 25 in
      let spawn t =
        Thread.create
          (fun () ->
            for i = 0 to per_thread - 1 do
              Journal.append j (Printf.sprintf "t%d-%d" t i)
            done)
          ()
      in
      let threads = List.init n_threads spawn in
      List.iter Thread.join threads;
      Journal.close j;
      let s = Journal.batch_stats j in
      let total = 5 + (n_threads * per_thread) in
      Alcotest.(check int) "every record went through a batch" total
        s.Journal.records;
      Alcotest.(check int) "histogram sums to the batch count"
        s.Journal.batches
        (Array.fold_left ( + ) 0 s.Journal.by_size);
      match Journal.scan path with
      | Error (`Corrupt (off, m)) -> Alcotest.failf "corrupt at %d: %s" off m
      | Ok (records, tail) ->
        Alcotest.(check bool) "complete" true (tail = Journal.Complete);
        let got = List.sort compare (List.map snd records) in
        let want =
          List.sort compare
            (bulk
            @ List.concat_map
                (fun t ->
                  List.init per_thread (fun i -> Printf.sprintf "t%d-%d" t i))
                (List.init n_threads Fun.id))
        in
        Alcotest.(check (list string)) "all payloads, once each" want got)

let test_journal_torn_batch () =
  (* A combined (batched) append cut at any byte must behave exactly
     like the same records written one by one: a clean prefix of whole
     records plus one torn tail — never corruption, never a record
     from the middle of the batch without its predecessors. *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      let payloads = List.init 6 (Printf.sprintf "batched-%d") in
      let j = Journal.create ~fsync:true ~window:0.002 path in
      Journal.append_many j payloads;
      Journal.close j;
      let data = read_file path in
      let full = String.length data in
      let cut = Filename.concat dir "cut.wal" in
      for k = 0 to full do
        write_file cut (String.sub data 0 k);
        match Journal.scan cut with
        | Error (`Corrupt (off, m)) ->
          Alcotest.failf "batch prefix %d/%d corrupt at %d: %s" k full off m
        | Ok (records, _tail) ->
          let got = List.map snd records in
          let want = List.filteri (fun i _ -> i < List.length got) payloads in
          Alcotest.(check (list string))
            (Printf.sprintf "prefix %d: clean prefix of the batch" k)
            want got
      done)

let test_journal_torn_tail_every_prefix () =
  (* Cut the file at every byte length: a crash prefix must never read as
     corrupt — only complete or torn — and truncating the torn tail must
     leave a clean journal holding a prefix of the records. *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      let data = read_file path in
      let full = String.length data in
      let cut = Filename.concat dir "cut.wal" in
      for k = 0 to full do
        write_file cut (String.sub data 0 k);
        match Journal.scan cut with
        | Error (`Corrupt (off, m)) ->
          Alcotest.failf "prefix %d/%d read as corrupt at %d: %s" k full off m
        | Ok (records, tail) -> (
          let payloads = List.map snd records in
          let is_prefix =
            List.length payloads <= List.length sample_payloads
            && List.for_all2 ( = ) payloads
                 (List.filteri
                    (fun i _ -> i < List.length payloads)
                    sample_payloads)
          in
          Alcotest.(check bool)
            (Printf.sprintf "prefix %d: records are a prefix" k)
            true is_prefix;
          match tail with
          | Journal.Complete -> ()
          | Journal.Truncated { offset; bytes } ->
            Alcotest.(check int)
              (Printf.sprintf "prefix %d: torn bytes" k)
              (k - offset) bytes;
            (match Journal.truncate cut offset with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            (match Journal.scan cut with
            | Ok (records', Journal.Complete) when offset >= Journal.header_size
              ->
              Alcotest.(check int)
                (Printf.sprintf "prefix %d: clean after cut" k)
                (List.length records) (List.length records')
            | Ok (_, Journal.Truncated { offset = 0; _ })
              when offset < Journal.header_size ->
              ()  (* partial file header: still torn-at-0 until recreated *)
            | Ok _ -> Alcotest.failf "prefix %d: still torn after cut" k
            | Error (`Corrupt (off, m)) ->
              Alcotest.failf "prefix %d: corrupt after cut at %d: %s" k off m))
      done)

let test_journal_midlog_corruption () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      let data = Bytes.of_string (read_file path) in
      (* Locate record 3 of 5 and flip a payload byte. *)
      let offsets =
        match Journal.scan path with
        | Ok (records, _) -> List.map fst records
        | Error _ -> Alcotest.fail "scan of pristine journal"
      in
      let victim = List.nth offsets 2 in
      let payload_pos = victim + 13 (* record header *) in
      Bytes.set data payload_pos
        (Char.chr (Char.code (Bytes.get data payload_pos) lxor 0x01));
      write_file path (Bytes.to_string data);
      (match Journal.scan path with
      | Error (`Corrupt (off, reason)) ->
        Alcotest.(check int) "corruption located at the record" victim off;
        Alcotest.(check bool) "reason names the CRC" true
          (let lower = String.lowercase_ascii reason in
           let rec has i =
             i + 3 <= String.length lower && (String.sub lower i 3 = "crc" || has (i + 1))
           in
           has 0)
      | Ok _ -> Alcotest.fail "mid-log corruption read back as valid");
      (* The same bytes at the END of the log are torn, not corrupt: the
         final record is the one a crash can legitimately mangle. *)
      let last = List.nth offsets 4 in
      let tail_data = Bytes.sub data 0 (Bytes.length data) in
      (* undo the mid-log flip, flip a byte in the last record instead *)
      Bytes.set tail_data payload_pos
        (Char.chr (Char.code (Bytes.get tail_data payload_pos) lxor 0x01));
      Bytes.set tail_data (last + 13)
        (Char.chr (Char.code (Bytes.get tail_data (last + 13)) lxor 0x01));
      write_file path (Bytes.to_string tail_data);
      match Journal.scan path with
      | Ok (records, Journal.Truncated { offset; _ }) ->
        Alcotest.(check int) "torn at the last record" last offset;
        Alcotest.(check int) "records before the tear" 4 (List.length records)
      | Ok (_, Journal.Complete) -> Alcotest.fail "bad final CRC read as clean"
      | Error (`Corrupt (off, m)) ->
        Alcotest.failf "final-record damage must be torn, got corrupt at %d: %s"
          off m)

let test_journal_corrupt_length () =
  (* A length field damaged in place points past EOF, which looks exactly
     like a torn tail — except real records follow it.  Mid-log it must
     be refused (truncating would drop acknowledged history); on the
     final record it is indistinguishable from a torn append and is cut. *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j.wal" in
      write_sample_journal path;
      let pristine = read_file path in
      let offsets =
        match Journal.scan path with
        | Ok (records, _) -> List.map fst records
        | Error _ -> Alcotest.fail "scan of pristine journal"
      in
      let smash_length data off =
        (* little-endian 0x7fffffff: far past EOF *)
        Bytes.set data (off + 5) '\xff';
        Bytes.set data (off + 6) '\xff';
        Bytes.set data (off + 7) '\xff';
        Bytes.set data (off + 8) '\x7f'
      in
      let victim = List.nth offsets 1 in
      let data = Bytes.of_string pristine in
      smash_length data victim;
      write_file path (Bytes.to_string data);
      (match Journal.scan path with
      | Error (`Corrupt (off, reason)) ->
        Alcotest.(check int) "located at the damaged record" victim off;
        Alcotest.(check bool) "reason names the length" true
          (let lower = String.lowercase_ascii reason in
           let needle = "length" in
           let rec has i =
             i + String.length needle <= String.length lower
             && (String.sub lower i (String.length needle) = needle
                || has (i + 1))
           in
           has 0)
      | Ok (_, Journal.Truncated { offset; _ }) ->
        Alcotest.failf "mid-log length damage read as torn at %d" offset
      | Ok (_, Journal.Complete) ->
        Alcotest.fail "mid-log length damage read as clean");
      (* the same damage on the last record: torn, cut there *)
      let last = List.nth offsets (List.length offsets - 1) in
      let data = Bytes.of_string pristine in
      smash_length data last;
      write_file path (Bytes.to_string data);
      match Journal.scan path with
      | Ok (records, Journal.Truncated { offset; _ }) ->
        Alcotest.(check int) "torn at the last record" last offset;
        Alcotest.(check int) "records before the tear"
          (List.length offsets - 1)
          (List.length records)
      | Ok (_, Journal.Complete) ->
        Alcotest.fail "bad final length read as clean"
      | Error (`Corrupt (off, m)) ->
        Alcotest.failf
          "final-record length damage must be torn, got corrupt at %d: %s" off
          m)

(* ------------------------------------------------------------------ *)
(* Snapshot format                                                     *)

let sample_snapshot () =
  let sg s =
    match Jim_partition.Partition.of_string s with
    | Ok p -> p
    | Error e -> failwith e
  in
  {
    Snapshot.next_id = 7;
    sessions =
      [
        {
          Snapshot.id = 2;
          source = source_of 42;
          strategy = "lookahead-entropy";
          seed = 11;
          fingerprint = "0badf00d";
          transcript =
            {
              Transcript.arity = 5;
              entries =
                [
                  { Transcript.sg = sg "{0,2}{1}{3}{4}"; label = State.Pos };
                  { Transcript.sg = sg "{0}{1,4}{2}{3}"; label = State.Neg };
                ];
              result = None;
            };
        };
        {
          Snapshot.id = 5;
          source = Pr.Csv_inline "a,b\n1,1\n2,3\n";
          strategy = "random";
          seed = 3;
          fingerprint = "11223344";
          transcript =
            { Transcript.arity = 2; entries = []; result = None };
        };
      ];
  }

let test_snapshot_roundtrip () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "snapshot.1" in
      let snap = sample_snapshot () in
      (match Snapshot.write path snap with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Snapshot.load path with
      | Error e -> Alcotest.fail e
      | Ok snap' ->
        Alcotest.(check int) "next_id" snap.Snapshot.next_id
          snap'.Snapshot.next_id;
        Alcotest.(check (list int))
          "session ids"
          (List.map (fun s -> s.Snapshot.id) snap.Snapshot.sessions)
          (List.map (fun s -> s.Snapshot.id) snap'.Snapshot.sessions);
        List.iter2
          (fun (a : Snapshot.session) (b : Snapshot.session) ->
            Alcotest.(check string) "strategy" a.strategy b.strategy;
            Alcotest.(check int) "seed" a.seed b.seed;
            Alcotest.(check string) "fingerprint" a.fingerprint b.fingerprint;
            Alcotest.(check int)
              "labels"
              (List.length a.transcript.Transcript.entries)
              (List.length b.transcript.Transcript.entries))
          snap.Snapshot.sessions snap'.Snapshot.sessions)

let test_snapshot_checksum () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "snapshot.1" in
      (match Snapshot.write path (sample_snapshot ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let data = Bytes.of_string (read_file path) in
      (* flip a byte well inside the body *)
      Bytes.set data 20 (Char.chr (Char.code (Bytes.get data 20) lxor 0x04));
      write_file path (Bytes.to_string data);
      match Snapshot.load path with
      | Error e ->
        Alcotest.(check bool) "names the checksum" true
          (let lower = String.lowercase_ascii e in
           let needle = "checksum" in
           let rec has i =
             i + String.length needle <= String.length lower
             && (String.sub lower i (String.length needle) = needle
                || has (i + 1))
           in
           has 0)
      | Ok _ -> Alcotest.fail "tampered snapshot loaded")

(* ------------------------------------------------------------------ *)
(* The fault-injection sweep: SIGKILL at every record boundary          *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Journal a complete oracle-driven session into [dir], return the raw
   journal bytes (the store is closed, so the bytes are final). *)
let journaled_run dir ~seed ~strategy =
  let store, recovered = open_store dir in
  Alcotest.(check int) "fresh dir" 0
    (List.length recovered.Recovery.sessions);
  let service = Service.create ~persist:(Store.record store) () in
  let session = start service ~seed ~strategy in
  let _ = drive service session (oracle_of seed) (-1) in
  (* deliberately no End_session: the crash happens with the session live *)
  Store.close store;
  read_file (Recovery.journal_path dir 0)

(* Count the surviving labels in a prefix of the journal (answers minus
   the undos that popped them): what Stats must report after recovery. *)
let surviving_labels records =
  List.fold_left
    (fun n (_, payload) ->
      match Event.of_string payload with
      | Ok (Event.Answered _) -> n + 1
      | Ok (Event.Undone _) -> max 0 (n - 1)
      | _ -> n)
    0 records

let recover_and_finish dir ~seed ~strategy =
  let service, store, recovered = durable_service dir in
  let acked =
    match Journal.scan (Recovery.journal_path dir 0) with
    | Ok (records, _) -> surviving_labels records
    | Error (`Corrupt (off, m)) -> Alcotest.failf "corrupt at %d: %s" off m
  in
  (match recovered.Recovery.sessions with
  | [] ->
    Alcotest.(check int) "no acked answers lost (empty store)" 0 acked;
    let session = start service ~seed ~strategy in
    let _ = drive service session (oracle_of seed) (-1) in
    let got = result_of service session in
    Store.close store;
    Alcotest.(check bool)
      "fresh run after empty recovery is bit-identical" true
      (Smoke.outcome_equal (expected_outcome ~seed ~strategy) got)
  | [ rs ] ->
    let session = rs.Recovery.id in
    Alcotest.(check int) "every acked answer recovered" acked
      (labeled_of service session);
    let _ = drive service session (oracle_of seed) (-1) in
    let got = result_of service session in
    Store.close store;
    Alcotest.(check bool) "resumed outcome bit-identical" true
      (Smoke.outcome_equal (expected_outcome ~seed ~strategy) got)
  | _ -> Alcotest.fail "one session was journaled, several recovered")

let kill_sweep ~seed ~strategy =
  with_dir (fun dir ->
      let data = journaled_run dir ~seed ~strategy in
      rm_rf dir;
      (* Kill points: every record boundary, plus torn variants landing
         inside the next record's header and payload. *)
      let boundaries =
        with_dir (fun tmp ->
            Unix.mkdir tmp 0o755;
            let p = Filename.concat tmp "full.wal" in
            write_file p data;
            match Journal.scan p with
            | Ok (records, _) ->
              List.map fst records @ [ String.length data ]
            | Error _ -> Alcotest.fail "pristine journal unreadable")
      in
      let kill_points =
        List.concat_map
          (fun b -> [ b; min (String.length data) (b + 5); min (String.length data) (b + 14) ])
          boundaries
        |> List.sort_uniq compare
      in
      List.iter
        (fun k ->
          with_dir (fun dir ->
              Unix.mkdir dir 0o755;
              write_file (Recovery.journal_path dir 0) (String.sub data 0 k);
              recover_and_finish dir ~seed ~strategy))
        kill_points)

let test_kill_sweep_random () = kill_sweep ~seed:101 ~strategy:"random"

let test_kill_sweep_lookahead () =
  kill_sweep ~seed:100 ~strategy:"lookahead-entropy"

(* ------------------------------------------------------------------ *)
(* Mid-log corruption refuses recovery, naming the byte offset          *)

let test_recovery_rejects_midlog_corruption () =
  with_dir (fun dir ->
      let data = journaled_run dir ~seed:103 ~strategy:"random" in
      rm_rf dir;
      Unix.mkdir dir 0o755;
      let victim =
        (* second record's payload: mid-log for any multi-answer session *)
        let tmp = Filename.concat dir "probe.wal" in
        write_file tmp data;
        match Journal.scan tmp with
        | Ok (records, _) -> fst (List.nth records 1)
        | Error _ -> Alcotest.fail "pristine journal unreadable"
      in
      let bytes = Bytes.of_string data in
      Bytes.set bytes (victim + 13)
        (Char.chr (Char.code (Bytes.get bytes (victim + 13)) lxor 0x80));
      write_file (Recovery.journal_path dir 0) (Bytes.to_string bytes);
      (match Recovery.load dir with
      | Ok _ -> Alcotest.fail "corrupted journal recovered"
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error names byte offset %d: %s" victim e)
          true
          (contains ~needle:(Printf.sprintf "byte offset %d" victim) e));
      match Store.open_dir ~fsync:false dir with
      | Ok _ -> Alcotest.fail "store opened over corruption"
      | Error e ->
        Alcotest.(check bool) "open_dir carries the same diagnostic" true
          (contains ~needle:(Printf.sprintf "byte offset %d" victim) e))

(* ------------------------------------------------------------------ *)
(* Snapshot rotation and recovery through generations                  *)

let test_snapshot_rotation () =
  with_dir (fun dir ->
      let seed_a = 104 and seed_b = 105 in
      let store, _ = open_store ~snapshot_every:4 dir in
      let service = Service.create ~persist:(Store.record store) () in
      let sa = start service ~seed:seed_a ~strategy:"random" in
      let sb = start service ~seed:seed_b ~strategy:"random" in
      let a_done = drive service sa (oracle_of seed_a) 2 in
      let b_done = drive service sb (oracle_of seed_b) 2 in
      Alcotest.(check int) "a answered 2" 2 a_done;
      Alcotest.(check int) "b answered 2" 2 b_done;
      (* 2 starts + 4 answers with snapshot_every 4: at least one
         compaction has happened *)
      Alcotest.(check bool) "generation advanced" true
        (Store.generation store >= 1);
      let g = Store.generation store in
      Alcotest.(check bool) "old generation swept" true
        (not (Sys.file_exists (Recovery.journal_path dir 0)) || g = 0);
      Alcotest.(check bool) "snapshot exists" true
        (Sys.file_exists (Recovery.snapshot_path dir g));
      Store.close store;
      (* recover through the snapshot and finish both sessions *)
      let service', store', recovered = durable_service ~snapshot_every:4 dir in
      Alcotest.(check int) "both sessions recovered" 2
        (List.length recovered.Recovery.sessions);
      Alcotest.(check int) "a's answers survived compaction" 2
        (labeled_of service' sa);
      Alcotest.(check int) "b's answers survived compaction" 2
        (labeled_of service' sb);
      let _ = drive service' sa (oracle_of seed_a) (-1) in
      let _ = drive service' sb (oracle_of seed_b) (-1) in
      let ga = result_of service' sa and gb = result_of service' sb in
      Store.close store';
      Alcotest.(check bool) "a bit-identical across generations" true
        (Smoke.outcome_equal
           (expected_outcome ~seed:seed_a ~strategy:"random") ga);
      Alcotest.(check bool) "b bit-identical across generations" true
        (Smoke.outcome_equal
           (expected_outcome ~seed:seed_b ~strategy:"random") gb))

let test_forced_checkpoint () =
  with_dir (fun dir ->
      let store, _ = open_store dir in
      let service = Service.create ~persist:(Store.record store) () in
      let s = start service ~seed:106 ~strategy:"random" in
      let _ = drive service s (oracle_of 106) 2 in
      Store.checkpoint store;
      Alcotest.(check int) "rotated to generation 1" 1 (Store.generation store);
      Alcotest.(check int) "fresh journal is empty" 0 (Store.record_count store);
      Store.close store;
      let service', store', _ = durable_service dir in
      Alcotest.(check int) "answers restored from the snapshot alone" 2
        (labeled_of service' s);
      let _ = drive service' s (oracle_of 106) (-1) in
      let got = result_of service' s in
      Store.close store';
      Alcotest.(check bool) "outcome preserved" true
        (Smoke.outcome_equal
           (expected_outcome ~seed:106 ~strategy:"random") got))

(* ------------------------------------------------------------------ *)
(* Undo replay, ended sessions, id monotonicity, fingerprints           *)

let test_undo_replayed () =
  with_dir (fun dir ->
      (* Reference: the same answer/undo sequence on a purely in-memory
         service (which the acceptance criteria pin as the baseline). *)
      let script service session oracle =
        let _ = drive service session oracle 2 in
        (match Service.handle service (Pr.Undo { session }) with
        | Pr.Undone _ -> ()
        | other -> Alcotest.failf "undo failed: %s" (Pr.response_to_string other));
        let _ = drive service session oracle 1 in
        ()
      in
      let seed = 107 in
      let reference = Service.create () in
      let rs = start reference ~seed ~strategy:"random" in
      script reference rs (oracle_of seed);
      let store, _ = open_store dir in
      let durable = Service.create ~persist:(Store.record store) () in
      let ds = start durable ~seed ~strategy:"random" in
      script durable ds (oracle_of seed);
      Store.close store;  (* crash here: 3 answers, 1 undo journaled *)
      let durable', store', recovered = durable_service dir in
      Alcotest.(check int) "session survived" 1
        (List.length recovered.Recovery.sessions);
      Alcotest.(check int) "undo collapsed one answer" 2
        (labeled_of durable' ds);
      let _ = drive reference rs (oracle_of seed) (-1) in
      let _ = drive durable' ds (oracle_of seed) (-1) in
      let want = result_of reference rs and got = result_of durable' ds in
      Store.close store';
      Alcotest.(check bool)
        "undone history replays bit-identical to the in-memory service" true
        (Smoke.outcome_equal want got))

let test_ended_sessions_stay_dead () =
  with_dir (fun dir ->
      let store, _ = open_store dir in
      let service = Service.create ~persist:(Store.record store) () in
      let s1 = start service ~seed:108 ~strategy:"random" in
      let s2 = start service ~seed:109 ~strategy:"random" in
      let _ = drive service s1 (oracle_of 108) (-1) in
      (match Service.handle service (Pr.End_session { session = s1 }) with
      | Pr.Ended -> ()
      | other -> Alcotest.failf "end failed: %s" (Pr.response_to_string other));
      Store.close store;
      let service', store', recovered = durable_service dir in
      Alcotest.(check (list int))
        "only the live session comes back" [ s2 ]
        (List.map
           (fun (s : Recovery.session) -> s.Recovery.id)
           recovered.Recovery.sessions);
      (match Service.handle service' (Pr.Get_question { session = s1 }) with
      | Pr.Failed (Pr.Unknown_session _) -> ()
      | other ->
        Alcotest.failf "ended session answered: %s" (Pr.response_to_string other));
      (* ids never recycle across the crash *)
      let s3 = start service' ~seed:110 ~strategy:"random" in
      Store.close store';
      Alcotest.(check bool)
        (Printf.sprintf "fresh id %d > %d" s3 s2)
        true (s3 > s2))

let test_post_ended_events_tolerated () =
  (* Journals written before the Answer/End_session race was fixed can
     hold an answer/undo (or a duplicate Ended) after a session's Ended.
     The live shadow drops those silently, so replay must too — while an
     event for a session that was *never* started stays a hard error. *)
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let sg =
        match Jim_partition.Partition.of_string "{0,1}{2,3,4}" with
        | Ok p -> p
        | Error e -> failwith e
      in
      let jpath = Recovery.journal_path dir 0 in
      let j = Journal.create ~fsync:false jpath in
      List.iter
        (fun ev -> Journal.append j (Event.to_string ev))
        [
          Event.Started
            {
              session = 1;
              arity = 5;
              source = source_of 42;
              strategy = "random";
              seed = 7;
              fingerprint = "feedface";
            };
          Event.Answered { session = 1; cls = 0; sg; label = State.Pos };
          Event.Ended { session = 1 };
          Event.Answered { session = 1; cls = 1; sg; label = State.Neg };
          Event.Undone { session = 1 };
          Event.Ended { session = 1 };
        ];
      Journal.close j;
      (match Recovery.load dir with
      | Error e -> Alcotest.failf "post-Ended events broke recovery: %s" e
      | Ok r ->
        Alcotest.(check (list int))
          "session stays ended" []
          (List.map
             (fun (s : Recovery.session) -> s.Recovery.id)
             r.Recovery.sessions));
      let j =
        match Journal.open_append ~fsync:false jpath with
        | Ok j -> j
        | Error e -> Alcotest.fail e
      in
      Journal.append j
        (Event.to_string
           (Event.Answered { session = 99; cls = 0; sg; label = State.Pos }));
      Journal.close j;
      match Recovery.load dir with
      | Ok _ -> Alcotest.fail "answer for a never-started session recovered"
      | Error e ->
        Alcotest.(check bool)
          ("names the session: " ^ e)
          true
          (contains ~needle:"unknown session 99" e))

let test_fingerprint_drift_refused () =
  with_dir (fun dir ->
      let store, _ = open_store dir in
      Store.record store
        (Event.Started
           {
             session = 1;
             arity = 5;
             source = Pr.Builtin "flights";
             strategy = "random";
             seed = 0;
             fingerprint = "00000000";  (* not flights' real fingerprint *)
           });
      Store.close store;
      let store', recovered = open_store dir in
      let service = Service.create () in
      match Service.restore service recovered with
      | Ok _ ->
        Store.close store';
        Alcotest.fail "drifted instance restored"
      | Error e ->
        Store.close store';
        Alcotest.(check bool)
          ("error names the fingerprint: " ^ e)
          true
          (contains ~needle:"fingerprint" e))

let test_fingerprint_canonical () =
  let rel = W.Flights.instance in
  let fp = Store.fingerprint rel in
  Alcotest.(check string) "stable across calls" fp (Store.fingerprint rel);
  Alcotest.(check int) "8 hex digits" 8 (String.length fp);
  let other =
    Store.fingerprint (W.Setcards.pair_instance ())
  in
  Alcotest.(check bool) "different instances differ" true (fp <> other)

let () =
  Alcotest.run "store"
    [
      ("crc32", [ Alcotest.test_case "known answers" `Quick test_crc32_kat ]);
      ( "event",
        [ Alcotest.test_case "codec roundtrip" `Quick test_event_roundtrip ] );
      ( "journal",
        [
          Alcotest.test_case "append/scan roundtrip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "reopen for append" `Quick
            test_journal_reopen_append;
          Alcotest.test_case "record codec: roundtrip, damage, framing" `Quick
            test_record_codec;
          Alcotest.test_case "tail streams from an offset" `Quick
            test_journal_tail;
          Alcotest.test_case "windowed group commit batches and counts"
            `Quick test_journal_windowed_group_commit;
          Alcotest.test_case "torn combined append is a clean prefix" `Quick
            test_journal_torn_batch;
          Alcotest.test_case "group commit under threads" `Quick
            test_journal_group_commit;
          Alcotest.test_case "every byte prefix is torn, never corrupt" `Quick
            test_journal_torn_tail_every_prefix;
          Alcotest.test_case "mid-log vs final-record damage" `Quick
            test_journal_midlog_corruption;
          Alcotest.test_case "corrupt length field never truncates mid-log"
            `Quick test_journal_corrupt_length;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "write/load roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "checksum rejects tampering" `Quick
            test_snapshot_checksum;
          Alcotest.test_case "rotation across generations" `Quick
            test_snapshot_rotation;
          Alcotest.test_case "forced checkpoint" `Quick test_forced_checkpoint;
        ] );
      ( "recovery",
        (* The on-disk prefix-cut sweeps are superseded by the simulated
           crash sweeps in test_fault (every write boundary, two disk
           images per cut, no real disk) — they stay as a slow
           cross-check that the real filesystem behaves like Memfs. *)
        (if match Sys.getenv_opt "JIM_SLOW_TESTS" with
            | None | Some "" | Some "0" -> false
            | Some _ -> true
         then
           [
             Alcotest.test_case "prefix-cut sweep, random strategy" `Slow
               test_kill_sweep_random;
             Alcotest.test_case "prefix-cut sweep, lookahead strategy" `Slow
               test_kill_sweep_lookahead;
           ]
         else [])
        @ [
          Alcotest.test_case "mid-log corruption names its byte offset" `Quick
            test_recovery_rejects_midlog_corruption;
          Alcotest.test_case "undo history replays exactly" `Quick
            test_undo_replayed;
          Alcotest.test_case "ended sessions stay dead, ids never recycle"
            `Quick test_ended_sessions_stay_dead;
          Alcotest.test_case "post-Ended events are dropped, like the shadow"
            `Quick test_post_ended_events_tolerated;
          Alcotest.test_case "fingerprint drift is refused" `Quick
            test_fingerprint_drift_refused;
          Alcotest.test_case "fingerprint is canonical" `Quick
            test_fingerprint_canonical;
        ] );
    ]
