(* Tests for the extension modules: Explain (status certificates), Crowd
   (majority-vote labelling), Teaching (omniscient teaching sets),
   Lookahead2 (depth-2 strategy) and Fd (constraint discovery). *)

module P = Jim_partition.Partition
module Penum = Jim_partition.Penum
module V = Jim_relational.Value
module R = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Fd = Jim_relational.Fd
module W = Jim_workloads
open Jim_core

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let gen_partition_sized n =
  QCheck.Gen.(
    let* rgs =
      let rec build i maxv acc =
        if i >= n then return (List.rev acc)
        else
          let* v = int_bound (min (maxv + 1) (n - 1)) in
          build (i + 1) (max maxv v) (v :: acc)
      in
      build 0 (-1) []
    in
    return (P.of_rgs (Array.of_list rgs)))

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)

let test_explain_flights () =
  let eng = Session.create W.Flights.instance in
  let class_of k =
    Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature k))
  in
  (match Session.answer eng (class_of 12) State.Pos with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected");
  (* (3) became certain positive: the witness must be the (12) label. *)
  (match Session.explain_row eng (W.Flights.row 3) with
  | Explain.Forced_positive [ w ] ->
    Alcotest.(check bool) "witness is sig(12)" true
      (P.equal w (W.Flights.signature 12))
  | _ -> Alcotest.fail "expected a one-positive witness");
  (* (8) is still open: the certificate carries two disagreeing
     predicates. *)
  match Session.explain_row eng (W.Flights.row 8) with
  | Explain.Open_question (sel, rej) ->
    Alcotest.(check bool) "selector selects" true
      (P.refines sel (W.Flights.signature 8));
    Alcotest.(check bool) "rejector rejects" false
      (P.refines rej (W.Flights.signature 8))
  | _ -> Alcotest.fail "expected an open question"

let test_explain_negative_certificate () =
  let eng = Session.create W.Flights.instance in
  let class_of k =
    Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature k))
  in
  (match Session.answer eng (class_of 12) State.Neg with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected");
  (* (1) becomes certain negative; the blame is the (12) negative. *)
  match Session.explain_row eng (W.Flights.row 1) with
  | Explain.Forced_negative u ->
    Alcotest.(check bool) "covering negative is sig(12)" true
      (P.equal u (W.Flights.signature 12))
  | _ -> Alcotest.fail "expected forced negative"

let prop_explain_certificates_check =
  (* Whatever the labels, every class's certificate verifies. *)
  let arb =
    QCheck.make
      ~print:(fun (g, sigs) ->
        P.to_string g ^ " / " ^ String.concat " " (List.map P.to_string sigs))
      QCheck.Gen.(
        let* goal = gen_partition_sized 5 in
        let* sigs = list_size (int_range 1 8) (gen_partition_sized 5) in
        return (goal, sigs))
  in
  qtest "explanations always check out" arb (fun (goal, sigs) ->
      let positives =
        List.filter (fun sg -> P.refines goal sg) sigs
      in
      let st =
        List.fold_left
          (fun st sg ->
            let lbl = if P.refines goal sg then State.Pos else State.Neg in
            State.add_exn st lbl sg)
          (State.create 5) sigs
      in
      let ok = ref true in
      Penum.iter_all 5 (fun sg ->
          let why = Explain.explain st ~positives sg in
          if not (Explain.check st sg why) then ok := false;
          (* The certificate kind must match the classification. *)
          let matches =
            match (why, State.classify st sg) with
            | Explain.Forced_positive _, State.Certain_pos
            | Explain.Forced_negative _, State.Certain_neg
            | Explain.Open_question _, State.Informative -> true
            | _ -> false
          in
          if not matches then ok := false);
      !ok)

let test_explain_rejects_wrong_positives () =
  let st = State.add_exn (State.create 5) State.Pos (W.Flights.signature 3) in
  Alcotest.(check bool) "mismatched positives rejected" true
    (try
       ignore (Explain.explain st ~positives:[] (W.Flights.signature 4));
       false
     with Invalid_argument _ -> true)

let test_explain_to_string () =
  let st = State.add_exn (State.create 5) State.Pos (W.Flights.signature 3) in
  let why =
    Explain.explain st
      ~positives:[ W.Flights.signature 3 ]
      (W.Flights.signature 4)
  in
  let s = Explain.to_string W.Flights.schema why in
  Alcotest.(check bool) "mentions forcing" true
    (String.length s > 0
    && String.sub s 0 6 = "forced")

(* ------------------------------------------------------------------ *)
(* Crowd                                                               *)

let test_crowd_validation () =
  let worker = Oracle.of_goal W.Flights.q2 in
  Alcotest.(check bool) "even votes rejected" true
    (try
       ignore
         (Crowd.run ~votes:2 ~strategy:Strategy.local_lex ~worker
            W.Flights.instance);
       false
     with Invalid_argument _ -> true)

let test_crowd_perfect_worker () =
  let worker = Oracle.of_goal W.Flights.q2 in
  let o =
    Crowd.run ~votes:3 ~strategy:Strategy.local_lex ~worker W.Flights.instance
  in
  Alcotest.(check bool) "query correct" true
    (P.equal o.Crowd.session.Session.query W.Flights.q2);
  Alcotest.(check int) "cost = 3x questions" (o.Crowd.questions * 3)
    o.Crowd.paid_labels;
  Alcotest.(check int) "no dissent" 0 o.Crowd.majority_flips

let test_crowd_redundancy_helps () =
  (* With 20% worker error, majority-of-5 recovers the goal much more
     often than a single vote. *)
  let goal = W.Flights.q2 in
  let trials = 40 in
  let successes votes =
    let ok = ref 0 in
    for seed = 1 to trials do
      let worker =
        Oracle.noisy ~seed ~flip_probability:0.2 (Oracle.of_goal goal)
      in
      let o =
        Crowd.run ~seed ~votes ~strategy:Strategy.local_lex ~worker
          W.Flights.instance
      in
      let inferred = Jquery.make W.Flights.schema o.Crowd.session.Session.query in
      let wanted = Jquery.make W.Flights.schema goal in
      if
        (not o.Crowd.session.Session.contradiction)
        && Jquery.equivalent_on inferred wanted W.Flights.instance
      then incr ok
    done;
    !ok
  in
  let s1 = successes 1 and s5 = successes 5 in
  Alcotest.(check bool)
    (Printf.sprintf "votes=5 (%d/%d) beats votes=1 (%d/%d)" s5 trials s1 trials)
    true (s5 > s1)

(* ------------------------------------------------------------------ *)
(* Teaching                                                            *)

let test_teaching_flights () =
  let classes = Sigclass.classes W.Flights.instance in
  let lesson = Teaching.greedy ~goal:W.Flights.q2 classes in
  Alcotest.(check bool) "greedy lesson is a teaching set" true
    (Teaching.is_teaching_set ~goal:W.Flights.q2 classes
       (List.map fst lesson));
  (* The paper teaches Q2 with 3 labels; greedy should match that. *)
  Alcotest.(check bool)
    (Printf.sprintf "greedy size %d <= 3" (List.length lesson))
    true
    (List.length lesson <= 3);
  match Teaching.exact_minimum ~goal:W.Flights.q2 classes with
  | None -> Alcotest.fail "exact minimum not found"
  | Some minimum ->
    Alcotest.(check int) "minimum teaching set for Q2" 3 (List.length minimum);
    Alcotest.(check bool) "greedy matches minimum here" true
      (List.length lesson = List.length minimum)

let prop_teaching_sound =
  qtest ~count:60 "greedy teaching sets always teach"
    (QCheck.make
       ~print:(fun (g, sigs) ->
         P.to_string g ^ " / " ^ string_of_int (List.length sigs))
       QCheck.Gen.(
         let* goal = gen_partition_sized 5 in
         let* sigs = list_size (int_range 1 10) (gen_partition_sized 5) in
         return (goal, sigs)))
    (fun (goal, sigs) ->
      let classes = Sigclass.of_signatures sigs in
      let lesson = Teaching.greedy ~goal classes in
      Teaching.is_teaching_set ~goal classes (List.map fst lesson))

let prop_teaching_lower_bounds_sessions =
  (* The exact minimum teaching set cannot be larger than what any
     interactive strategy used: sessions end with teaching sets too. *)
  qtest ~count:30 "exact minimum <= session interactions"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 200))
    (fun seed ->
      let inst =
        W.Synthetic.generate
          {
            W.Synthetic.n_attrs = 4;
            n_tuples = 15;
            domain = 8;
            goal_rank = 2;
            seed;
          }
      in
      let classes = Sigclass.classes inst.W.Synthetic.relation in
      match Teaching.exact_minimum ~max_size:5 ~goal:inst.W.Synthetic.goal classes with
      | None -> QCheck.assume_fail ()
      | Some minimum ->
        let o =
          Session.run ~strategy:Strategy.local_lex
            ~oracle:(Oracle.of_goal inst.W.Synthetic.goal)
            inst.W.Synthetic.relation
        in
        List.length minimum <= o.Session.interactions)

(* ------------------------------------------------------------------ *)
(* Lookahead2                                                          *)

let test_lookahead2_contract () =
  let strat = Strategy.lookahead2 () in
  let o =
    Session.run ~strategy:strat ~oracle:(Oracle.of_goal W.Flights.q2)
      W.Flights.instance
  in
  Alcotest.(check bool) "converges" false o.Session.contradiction;
  Alcotest.(check bool) "reasonable count" true (o.Session.interactions <= 6);
  Alcotest.(check bool) "query equivalent" true
    (Jquery.equivalent_on
       (Jquery.make W.Flights.schema o.Session.query)
       (Jquery.make W.Flights.schema W.Flights.q2)
       W.Flights.instance)

let test_lookahead2_on_synthetic () =
  (* Depth 2 should never be dramatically worse than depth 1 on
     moderately complex instances (averaged). *)
  let total1 = ref 0 and total2 = ref 0 in
  for seed = 1 to 6 do
    let inst =
      W.Synthetic.generate
        {
          W.Synthetic.n_attrs = 6;
          n_tuples = 50;
          domain = 8;
          goal_rank = 3;
          seed;
        }
    in
    let run strat =
      (Session.run ~strategy:strat
         ~oracle:(Oracle.of_goal inst.W.Synthetic.goal)
         inst.W.Synthetic.relation)
        .Session.interactions
    in
    total1 := !total1 + run Strategy.lookahead_maximin;
    total2 := !total2 + run (Strategy.lookahead2 ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "depth2 (%d) within 1.5x of depth1 (%d)" !total2 !total1)
    true
    (float_of_int !total2 <= 1.5 *. float_of_int !total1)

(* ------------------------------------------------------------------ *)
(* Undo                                                                *)

let test_undo_roundtrip () =
  let eng = Session.create W.Flights.instance in
  let class_of k =
    Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature k))
  in
  Alcotest.(check bool) "empty undo refused" true
    (Session.undo eng = Error Session.Nothing_to_undo);
  let statuses_before =
    Array.init 12 (fun r -> Session.row_status eng r)
  in
  (match Session.answer eng (class_of 12) State.Pos with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected");
  Alcotest.(check bool) "something changed" true
    (Array.exists
       (fun r -> Session.row_status eng r <> statuses_before.(r))
       (Array.init 12 Fun.id));
  (match Session.undo eng with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "undo refused");
  Alcotest.(check int) "asked rolled back" 0 (Session.asked eng);
  Array.iteri
    (fun r s ->
      Alcotest.(check bool)
        (Printf.sprintf "row %d status restored" r)
        true
        (Session.row_status eng r = s))
    statuses_before;
  Alcotest.(check int) "history empty" 0 (List.length (Session.history eng))

let prop_undo_inverse =
  (* answer ; undo is the identity on the observable engine state, from
     any reachable state. *)
  qtest ~count:50 "undo inverts answer from any reachable state"
    (QCheck.make
       ~print:(fun (g, ks) ->
         P.to_string g ^ " after "
         ^ String.concat "," (List.map string_of_int ks))
       QCheck.Gen.(
         let* goal = gen_partition_sized 5 in
         let* prefix = list_size (int_bound 4) (int_range 1 12) in
         return (goal, prefix)))
    (fun (goal, prefix) ->
      let eng = Session.create W.Flights.instance in
      let oracle = Oracle.of_goal goal in
      let class_of k =
        Option.get
          (Sigclass.find (Session.classes eng) (W.Flights.signature k))
      in
      (* Drive a consistent prefix (skip labels that are already forced
         the other way, which a sound user cannot produce). *)
      List.iter
        (fun k ->
          let sg = W.Flights.signature k in
          ignore (Session.answer eng (class_of k) (Oracle.label oracle sg)))
        prefix;
      let key () =
        (State.key (Session.state eng),
         Session.asked eng,
         List.length (Session.history eng))
      in
      let before = key () in
      (* Answer any informative class, then undo. *)
      match Session.informative eng with
      | [] -> true
      | ci :: _ ->
        let sg = (Session.classes eng).(ci).Sigclass.sg in
        (match Session.answer eng ci (Oracle.label oracle sg) with
        | Ok () -> (
          match Session.undo eng with
          | Ok () -> key () = before
          | Error _ -> false)
        | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Disjunctive                                                         *)

let test_disjunctive_semantics () =
  (* To = City OR Airline = Discount on the flights instance: rows
     selected by either conjunct. *)
  let u = [ P.of_pairs 5 [ (1, 3) ]; P.of_pairs 5 [ (2, 4) ] ] in
  let selected = Disjunctive.eval u W.Flights.instance in
  let q1_rows = R.satisfying (P.of_pairs 5 [ (1, 3) ]) W.Flights.instance in
  let q_ad_rows = R.satisfying (P.of_pairs 5 [ (2, 4) ]) W.Flights.instance in
  Alcotest.(check int) "union cardinality"
    (R.cardinality (R.union q1_rows q_ad_rows))
    (R.cardinality selected);
  Alcotest.(check bool) "empty union selects nothing" true
    (R.cardinality (Disjunctive.eval [] W.Flights.instance) = 0);
  Alcotest.(check bool) "bottom disjunct selects everything" true
    (R.cardinality (Disjunctive.eval [ P.bottom 5 ] W.Flights.instance) = 12)

let test_disjunctive_normalise () =
  let q1 = P.of_pairs 5 [ (1, 3) ] in
  let u = Disjunctive.normalise [ W.Flights.q2; q1 ] in
  (* Q2 ⊒ Q1 is subsumed: Q1 ⊑ Q2 so Q2's cone is inside Q1's. *)
  Alcotest.(check int) "subsumed disjunct dropped" 1 (List.length u);
  Alcotest.(check bool) "kept the general one" true
    (P.equal (List.hd u) q1)

let test_disjunctive_to_where () =
  let u = [ P.of_pairs 5 [ (1, 3) ]; P.of_pairs 5 [ (2, 4) ] ] in
  Alcotest.(check string) "where"
    "(To = City) OR (Airline = Discount)"
    (Disjunctive.to_where W.Flights.schema u);
  Alcotest.(check string) "false" "FALSE"
    (Disjunctive.to_where W.Flights.schema []);
  Alcotest.(check string) "true absorbs" "TRUE"
    (Disjunctive.to_where W.Flights.schema [ P.bottom 5; W.Flights.q2 ])

let test_disjunctive_inference_flights () =
  let goal = [ P.of_pairs 5 [ (1, 3) ]; P.of_pairs 5 [ (2, 4) ] ] in
  let o =
    Disjunctive.run ~oracle:(Disjunctive.oracle_of_union goal)
      W.Flights.instance
  in
  Alcotest.(check bool) "no contradiction" false o.Disjunctive.contradiction;
  Alcotest.(check bool) "under 12 questions" true
    (o.Disjunctive.interactions < 12);
  (* Instance-equivalence of the learned union. *)
  Array.iter
    (fun sg ->
      Alcotest.(check bool) "agrees on every signature" true
        (Disjunctive.selects o.Disjunctive.union sg
        = Disjunctive.selects goal sg))
    (R.signatures W.Flights.instance)

let prop_disjunctive_converges =
  qtest ~count:60 "disjunctive runs converge to instance-equivalence"
    (QCheck.make
       ~print:(fun (g, sigs) ->
         string_of_int (List.length g) ^ " disjuncts / "
         ^ string_of_int (List.length sigs))
       QCheck.Gen.(
         let* disjuncts = list_size (int_range 1 3) (gen_partition_sized 5) in
         let* sigs = list_size (int_range 1 12) (gen_partition_sized 5) in
         return (disjuncts, sigs)))
    (fun (goal, sigs) ->
      let rel =
        (* Materialise an instance whose signatures are [sigs]: use int
           tuples built from each signature's blocks. *)
        let tuple_of sg =
          Array.init 5 (fun i -> Jim_relational.Value.Int (P.rep sg i))
        in
        R.make ~name:"synth"
          (Schema.of_list
             (List.init 5 (fun i ->
                  (Printf.sprintf "a%d" i, Jim_relational.Value.Tint))))
          (List.map tuple_of sigs)
      in
      let o =
        Disjunctive.run ~oracle:(Disjunctive.oracle_of_union goal) rel
      in
      (not o.Disjunctive.contradiction)
      && List.for_all
           (fun sg ->
             Disjunctive.selects o.Disjunctive.union sg
             = Disjunctive.selects goal sg)
           sigs)

let test_disjunctive_contradiction () =
  let st = Disjunctive.create 5 in
  let st =
    match Disjunctive.add st State.Neg (W.Flights.signature 3) with
    | Ok st -> st
    | Error `Contradiction -> Alcotest.fail "unexpected"
  in
  (* sig(3) negative forces everything below it negative; a positive on a
     refinement of sig(3) contradicts.  sig(4) = sig(3). *)
  Alcotest.(check bool) "contradiction detected" true
    (Disjunctive.add st State.Pos (W.Flights.signature 4)
    = Error `Contradiction)

(* ------------------------------------------------------------------ *)
(* Transcript                                                          *)

let test_transcript_roundtrip () =
  let o =
    Session.run ~strategy:Strategy.lookahead_entropy
      ~oracle:(Oracle.of_goal W.Flights.q2) W.Flights.instance
  in
  let t = Transcript.of_outcome ~n:5 o in
  let text = Transcript.to_string t in
  match Transcript.of_string text with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "arity" 5 t'.Transcript.arity;
    Alcotest.(check int) "entries"
      (List.length t.Transcript.entries)
      (List.length t'.Transcript.entries);
    Alcotest.(check string) "stable print" text (Transcript.to_string t')

let test_transcript_replay () =
  let o =
    Session.run ~strategy:Strategy.local_lex
      ~oracle:(Oracle.of_goal W.Flights.q2) W.Flights.instance
  in
  let t = Transcript.of_outcome ~n:5 o in
  let eng = Session.create W.Flights.instance in
  (match Transcript.replay t eng with
  | Ok () -> ()
  | Error `Contradiction -> Alcotest.fail "replay contradicted"
  | Error `Arity_mismatch -> Alcotest.fail "arity mismatch");
  Alcotest.(check bool) "replayed to completion" true (Session.finished eng);
  Alcotest.(check bool) "same query" true
    (P.equal (Session.result eng) o.Session.query)

let test_transcript_engine_history () =
  let eng = Session.create W.Flights.instance in
  let class_of k =
    Option.get (Sigclass.find (Session.classes eng) (W.Flights.signature k))
  in
  List.iter
    (fun (k, l) ->
      match Session.answer eng (class_of k) l with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "unexpected")
    [ (3, State.Pos); (7, State.Neg); (8, State.Neg) ];
  let t = Transcript.of_engine eng in
  Alcotest.(check int) "three entries" 3 (List.length t.Transcript.entries);
  Alcotest.(check bool) "finished engine records result" true
    (match t.Transcript.result with
    | Some r -> P.equal r W.Flights.q2
    | None -> false)

let test_transcript_errors () =
  List.iter
    (fun text ->
      Alcotest.(check bool)
        ("rejects: " ^ String.escaped text)
        true
        (Result.is_error (Transcript.of_string text)))
    [
      "";
      "not-a-transcript";
      "jim-transcript 1\n";
      "jim-transcript 1\narity 0\n";
      "jim-transcript 1\narity 5\nlabel {0}{1}{2}{3}{4} ?\n";
      "jim-transcript 1\narity 5\nlabel {0}{1}{2} +\n";
      "jim-transcript 1\narity 5\nresult {0}{1}{2}{3}{4}\nlabel {0}{1}{2}{3}{4} +\n";
    ]

let test_transcript_replay_arity_mismatch () =
  let t =
    { Transcript.arity = 3; entries = []; result = None }
  in
  let eng = Session.create W.Flights.instance in
  Alcotest.(check bool) "arity mismatch" true
    (Transcript.replay t eng = Error `Arity_mismatch)

let test_partition_of_string () =
  let partition_r =
    Alcotest.testable
      (fun fmt r ->
        match r with
        | Ok p -> P.pp fmt p
        | Error e -> Format.pp_print_string fmt e)
      (fun a b ->
        match (a, b) with
        | Ok p, Ok q -> P.equal p q
        | Error _, Error _ -> true
        | _ -> false)
  in
  Alcotest.check partition_r "roundtrip"
    (Ok (P.of_blocks 5 [ [ 1; 3 ]; [ 2; 4 ] ]))
    (P.of_string "{0}{1,3}{2,4}");
  Alcotest.check partition_r "any block order"
    (Ok (P.of_blocks 3 [ [ 0; 2 ] ]))
    (P.of_string "{1}{0,2}");
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (Result.is_error (P.of_string s)))
    [ "{0}{0}"; "{0}{2}"; "{0,1"; "{}"; "nope"; "{0,x}" ]

(* ------------------------------------------------------------------ *)
(* Fd                                                                  *)

let people =
  R.of_rows ~name:"people"
    (Schema.of_list
       [
         ("id", V.Tint);
         ("email", V.Tstring);
         ("city", V.Tstring);
         ("zip", V.Tint);
       ])
    V.[
        [ Int 1; Str "a@x"; Str "lille"; Int 59000 ];
        [ Int 2; Str "b@x"; Str "lille"; Int 59000 ];
        [ Int 3; Str "c@x"; Str "paris"; Int 75001 ];
        [ Int 4; Str "d@x"; Str "paris"; Int 75001 ];
      ]

let test_unary_fds () =
  let fds = Fd.unary_fds people in
  (* id -> everything; email -> everything; city <-> zip. *)
  Alcotest.(check bool) "id -> city" true (List.mem (0, 2) fds);
  Alcotest.(check bool) "city -> zip" true (List.mem (2, 3) fds);
  Alcotest.(check bool) "zip -> city" true (List.mem (3, 2) fds);
  Alcotest.(check bool) "city -/-> id" false (List.mem (2, 0) fds)

let test_holds_fd_composite () =
  Alcotest.(check bool) "{city,zip} -> city" true
    (Fd.holds_fd people ~lhs:[ 2; 3 ] ~rhs:2);
  Alcotest.(check bool) "{city} -> id fails" false
    (Fd.holds_fd people ~lhs:[ 2 ] ~rhs:0)

let test_minimal_keys () =
  let keys = Fd.minimal_keys people in
  Alcotest.(check bool) "id is a key" true (List.mem [ 0 ] keys);
  Alcotest.(check bool) "email is a key" true (List.mem [ 1 ] keys);
  Alcotest.(check bool) "no superset of id listed" false
    (List.exists (fun k -> List.mem 0 k && List.length k > 1) keys);
  Alcotest.(check bool) "city alone is not a key" false (List.mem [ 2 ] keys)

let test_inclusion_and_suggestions () =
  let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
  let orders = Jim_relational.Database.find_exn db "orders" in
  let customer = Jim_relational.Database.find_exn db "customer" in
  let o_cust = Schema.find_exn (R.schema orders) "o_custkey" in
  let c_key = Schema.find_exn (R.schema customer) "c_custkey" in
  Alcotest.(check (float 0.0001)) "fk inclusion is total" 1.0
    (Fd.inclusion orders o_cust customer c_key);
  let suggestions = Fd.suggest_join_pairs ~threshold:0.95 customer orders in
  Alcotest.(check bool) "fk pair suggested" true
    (List.exists (fun (a, b, _) -> a = c_key && b = o_cust) suggestions)

let test_inclusion_empty_column () =
  let empty =
    R.of_rows ~name:"e" (Schema.of_list [ ("x", V.Tint) ]) V.[ [ Null ] ]
  in
  Alcotest.(check (float 0.0)) "vacuous inclusion" 1.0
    (Fd.inclusion empty 0 people 0)

let () =
  Alcotest.run "extensions"
    [
      ( "explain",
        [
          Alcotest.test_case "flights certificates" `Quick test_explain_flights;
          Alcotest.test_case "negative certificate" `Quick
            test_explain_negative_certificate;
          prop_explain_certificates_check;
          Alcotest.test_case "rejects mismatched positives" `Quick
            test_explain_rejects_wrong_positives;
          Alcotest.test_case "rendering" `Quick test_explain_to_string;
        ] );
      ( "crowd",
        [
          Alcotest.test_case "validation" `Quick test_crowd_validation;
          Alcotest.test_case "perfect worker" `Quick test_crowd_perfect_worker;
          Alcotest.test_case "redundancy helps noisy workers" `Slow
            test_crowd_redundancy_helps;
        ] );
      ( "teaching",
        [
          Alcotest.test_case "flights lesson" `Quick test_teaching_flights;
          prop_teaching_sound;
          prop_teaching_lower_bounds_sessions;
        ] );
      ( "lookahead2",
        [
          Alcotest.test_case "contract" `Quick test_lookahead2_contract;
          Alcotest.test_case "vs depth 1" `Slow test_lookahead2_on_synthetic;
        ] );
      ( "undo",
        [
          Alcotest.test_case "roundtrip" `Quick test_undo_roundtrip;
          prop_undo_inverse;
        ] );
      ( "disjunctive",
        [
          Alcotest.test_case "semantics" `Quick test_disjunctive_semantics;
          Alcotest.test_case "normalise" `Quick test_disjunctive_normalise;
          Alcotest.test_case "to_where" `Quick test_disjunctive_to_where;
          Alcotest.test_case "inference on flights" `Quick
            test_disjunctive_inference_flights;
          prop_disjunctive_converges;
          Alcotest.test_case "contradiction" `Quick
            test_disjunctive_contradiction;
        ] );
      ( "transcript",
        [
          Alcotest.test_case "roundtrip" `Quick test_transcript_roundtrip;
          Alcotest.test_case "replay" `Quick test_transcript_replay;
          Alcotest.test_case "engine history" `Quick
            test_transcript_engine_history;
          Alcotest.test_case "parse errors" `Quick test_transcript_errors;
          Alcotest.test_case "replay arity mismatch" `Quick
            test_transcript_replay_arity_mismatch;
          Alcotest.test_case "partition of_string" `Quick
            test_partition_of_string;
        ] );
      ( "fd",
        [
          Alcotest.test_case "unary fds" `Quick test_unary_fds;
          Alcotest.test_case "composite fds" `Quick test_holds_fd_composite;
          Alcotest.test_case "minimal keys" `Quick test_minimal_keys;
          Alcotest.test_case "inclusion + suggestions" `Quick
            test_inclusion_and_suggestions;
          Alcotest.test_case "inclusion of empty column" `Quick
            test_inclusion_empty_column;
        ] );
    ]
