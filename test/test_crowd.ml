(* Crowd-scale noisy labeling: vote aggregation, the per-session vote
   coordinator, and the fan-out crowd path end to end.

   Layers under test, bottom up:
   - [Jim_core.Votes]: weighted majority + the Laplace accuracy
     estimator, with the bit-identity property (uniform weights = exact
     majority) qcheck'd.
   - [Jim_core.Crowd] / [Jim_core.Teaching] error paths.
   - [Jim_server.Coordinator]: the round state machine driven with a
     hand clock — quorum close, straggler deadline, ties, stale ballots.
   - [Jim_server.Service]: the wire-visible crowd protocol in-process —
     pinned guard strings, and the headline qcheck that a perfect crowd
     of any odd size leaves the session bit-identical to the in-process
     [Session.run].
   - Convergence under noise: an error-rate x votes grid; at per-labeler
     error <= 0.2 with votes = 5 every seeded run must infer the goal
     predicate.
   - Recovery: a crowd session restored from its journal (which holds
     only absorbed aggregates) re-attaches fresh labelers and finishes
     bit-identically.
   - The real wire: [Smoke.crowd_run] against a served crowd session,
     and the stalled-reply regression (a server that stalls classifies
     as a transport drop, never divergence). *)

module P = Jim_partition.Partition
module Pr = Jim_api.Protocol
module Service = Jim_server.Service
module Coordinator = Jim_server.Coordinator
module Wire = Jim_server.Wire
module Smoke = Jim_server.Smoke
module Chaos = Jim_server.Chaos
module Store = Jim_store.Store
module Recovery = Jim_store.Recovery
module Memfs = Jim_fault.Memfs
module W = Jim_workloads
open Jim_core

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let partition s =
  match P.of_string s with Ok p -> p | Error e -> Alcotest.fail e

let expect_invalid_arg what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

(* ------------------------------------------------------------------ *)
(* Votes: weighted majority and the accuracy estimator                 *)

let test_tally_validation () =
  expect_invalid_arg "empty ballots" (fun () -> Votes.tally []);
  expect_invalid_arg "zero weight" (fun () ->
      Votes.tally [ (State.Pos, 1.); (State.Neg, 0.) ]);
  expect_invalid_arg "negative weight" (fun () ->
      Votes.tally [ (State.Pos, -0.5) ]);
  (* an exact tie elects nobody but reports the dissent *)
  let v = Votes.tally [ (State.Pos, 1.); (State.Neg, 1.) ] in
  Alcotest.(check bool) "tie: no label" true (v.Votes.label = None);
  Alcotest.(check bool) "tie: dissent" true v.Votes.dissent

let gen_ballots =
  (* odd-length label lists, 1 to 9 ballots *)
  QCheck.Gen.(
    let* k = int_range 0 4 in
    list_size
      (return ((2 * k) + 1))
      (oneofl [ State.Pos; State.Neg ]))

let prop_uniform_weights_equal_majority =
  qtest ~count:300 "uniform-weight tally = exact majority, bit for bit"
    (QCheck.make
       ~print:(fun ls ->
         String.concat ""
           (List.map (function State.Pos -> "+" | State.Neg -> "-") ls))
       gen_ballots)
    (fun labels ->
      let weighted = Votes.tally (List.map (fun l -> (l, 0.5)) labels) in
      let exact = Votes.majority labels in
      weighted.Votes.label = exact.Votes.label
      && weighted.Votes.dissent = exact.Votes.dissent
      (* odd ballot count: somebody always wins *)
      && exact.Votes.label <> None)

let test_estimator_laplace () =
  let e = Votes.Estimator.create () in
  let a = Votes.Estimator.add e in
  let b = Votes.Estimator.add e in
  Alcotest.(check int) "ids are 1-based" 1 a;
  Alcotest.(check int) "then 2" 2 b;
  Alcotest.(check int) "count" 2 (Votes.Estimator.count e);
  Alcotest.(check bool) "known" true (Votes.Estimator.known e b);
  Alcotest.(check bool) "unknown" false (Votes.Estimator.known e 3);
  Alcotest.(check (float 0.) ) "fresh weight is 1/2" 0.5
    (Votes.Estimator.weight e a);
  (* (agreed + 1) / (voted + 2): two agreements, one dissent *)
  Votes.Estimator.record e a ~agreed:true;
  Votes.Estimator.record e a ~agreed:true;
  Votes.Estimator.record e a ~agreed:false;
  Alcotest.(check (float 1e-9)) "3 rounds: (2+1)/(3+2)" 0.6
    (Votes.Estimator.weight e a);
  Alcotest.(check (pair int int)) "counts" (2, 3) (Votes.Estimator.counts e a);
  Votes.Estimator.record e b ~agreed:false;
  Alcotest.(check (float 1e-9)) "dissenter sinks below 1/2" (1. /. 3.)
    (Votes.Estimator.weight e b);
  expect_invalid_arg "weight of unknown id" (fun () ->
      Votes.Estimator.weight e 9)

(* ------------------------------------------------------------------ *)
(* Crowd and Teaching error paths                                      *)

let test_crowd_votes_validation () =
  let worker = Oracle.of_goal W.Flights.q2 in
  List.iter
    (fun votes ->
      match
        Crowd.run ~votes ~strategy:Strategy.local_lex ~worker
          W.Flights.instance
      with
      | exception Invalid_argument m ->
        Alcotest.(check string)
          (Printf.sprintf "votes=%d pinned message" votes)
          "Crowd.run: votes must be odd and positive" m
      | _ -> Alcotest.failf "votes=%d accepted" votes)
    [ 0; 2; -3 ]

let test_crowd_perfect_worker_identity () =
  (* A perfect worker makes every aggregate the goal label, whatever the
     redundancy: the crowd loop must be bit-identical to [Session.run]
     and pay exactly [questions * votes] labels without dissent. *)
  let worker = Oracle.of_goal W.Flights.q2 in
  let reference =
    Session.run ~seed:5 ~strategy:Strategy.local_lex ~oracle:worker
      W.Flights.instance
  in
  List.iter
    (fun votes ->
      let o =
        Crowd.run ~seed:5 ~votes ~strategy:Strategy.local_lex ~worker
          W.Flights.instance
      in
      Alcotest.(check bool)
        (Printf.sprintf "votes=%d bit-identical" votes)
        true
        (Smoke.outcome_equal o.Crowd.session reference);
      Alcotest.(check int) "paid = questions * votes"
        (o.Crowd.questions * votes) o.Crowd.paid_labels;
      Alcotest.(check int) "no flips" 0 o.Crowd.majority_flips)
    [ 1; 3; 5 ]

let test_teaching_error_paths () =
  let classes =
    Sigclass.of_signatures
      [ partition "{0}{1}{2}"; partition "{0,1}{2}"; partition "{0,1,2}" ]
  in
  (* arity mismatch between the goal and the signatures *)
  expect_invalid_arg "is_teaching_set arity mismatch" (fun () ->
      Teaching.is_teaching_set ~goal:(partition "{0}{1}") classes [ 0; 1 ]);
  expect_invalid_arg "greedy arity mismatch" (fun () ->
      Teaching.greedy ~goal:(partition "{0}{1}") classes);
  (* out-of-range class index *)
  expect_invalid_arg "bad class index" (fun () ->
      Teaching.is_teaching_set ~goal:(partition "{0,1}{2}") classes [ 7 ]);
  (* the contradictory-label raise the teaching code defends with *)
  (match
     State.add_exn
       (State.add_exn (State.create 3) State.Pos (partition "{0,1}{2}"))
       State.Neg (partition "{0,1,2}")
   with
  | exception Invalid_argument m ->
    Alcotest.(check string) "pinned add_exn message"
      "State.add_exn: contradictory label" m
  | _ -> Alcotest.fail "contradictory label accepted")

let gen_partition_sized n =
  QCheck.Gen.(
    let rec build i maxv acc =
      if i >= n then return (P.of_rgs (Array.of_list (List.rev acc)))
      else
        let* v = int_bound (min (maxv + 1) (n - 1)) in
        build (i + 1) (max maxv v) (v :: acc)
    in
    build 0 (-1) [])

let prop_greedy_vs_exact_minimum =
  (* When the exhaustive search finds a minimum, it must be a valid
     teaching set no larger than greedy's — and greedy's must be valid
     too.  (The reverse bound is what makes greedy a useful upper
     estimate of teaching dimension.) *)
  qtest ~count:60 "exact minimum teaches and bounds greedy from below"
    (QCheck.make
       ~print:(fun (g, sigs) ->
         P.to_string g ^ " / " ^ string_of_int (List.length sigs))
       QCheck.Gen.(
         let* goal = gen_partition_sized 4 in
         let* sigs = list_size (int_range 1 8) (gen_partition_sized 4) in
         return (goal, sigs)))
    (fun (goal, sigs) ->
      let classes = Sigclass.of_signatures sigs in
      let greedy = Teaching.greedy ~goal classes in
      if not (Teaching.is_teaching_set ~goal classes (List.map fst greedy))
      then QCheck.Test.fail_report "greedy lesson does not teach";
      match Teaching.exact_minimum ~max_size:8 ~goal classes with
      | None -> QCheck.Test.fail_report "no minimum up to the class count"
      | Some minimum ->
        Teaching.is_teaching_set ~goal classes (List.map fst minimum)
        && List.length minimum <= List.length greedy)

(* ------------------------------------------------------------------ *)
(* Coordinator: the round state machine, hand-driven clock             *)

let cfg ?(votes = 3) ?(timeout = 10.) ?(weighted = false) () =
  { Coordinator.votes; timeout; weighted }

let test_coordinator_validation () =
  List.iter
    (fun votes ->
      match Coordinator.create ~now:0. (cfg ~votes ()) with
      | exception Invalid_argument m ->
        Alcotest.(check string) "pinned votes message"
          "Coordinator: votes must be odd and positive" m
      | _ -> Alcotest.failf "votes=%d accepted" votes)
    [ 0; 2; -1 ];
  match Coordinator.create ~now:0. (cfg ~timeout:0. ()) with
  | exception Invalid_argument m ->
    Alcotest.(check string) "pinned timeout message"
      "Coordinator: timeout must be positive" m
  | _ -> Alcotest.fail "timeout=0 accepted"

let attach3 co = (Coordinator.attach co, Coordinator.attach co, Coordinator.attach co)

let test_coordinator_quorum_close () =
  let co = Coordinator.create ~now:0. (cfg ()) in
  let a, b, c = attach3 co in
  Alcotest.(check int) "quorum" 3 (Coordinator.quorum co);
  Alcotest.(check int) "round starts at 1" 1 (Coordinator.round co);
  Alcotest.(check bool) "unknown labeler" true
    (Coordinator.vote ~now:1. co ~labeler:99 ~round:1 ~label:State.Pos
    = `Unknown);
  (match Coordinator.vote ~now:1. co ~labeler:a ~round:1 ~label:State.Pos with
  | `Counted Coordinator.Wait -> ()
  | _ -> Alcotest.fail "first ballot should count and wait");
  (* duplicate and wrong-round ballots are stale, not errors *)
  Alcotest.(check bool) "duplicate is stale" true
    (Coordinator.vote ~now:1. co ~labeler:a ~round:1 ~label:State.Neg
    = `Stale);
  Alcotest.(check bool) "wrong round is stale" true
    (Coordinator.vote ~now:1. co ~labeler:b ~round:7 ~label:State.Pos
    = `Stale);
  (match Coordinator.vote ~now:2. co ~labeler:b ~round:1 ~label:State.Neg with
  | `Counted Coordinator.Wait -> ()
  | _ -> Alcotest.fail "second ballot should count and wait");
  (match Coordinator.vote ~now:3. co ~labeler:c ~round:1 ~label:State.Pos with
  | `Counted (Coordinator.Aggregate State.Pos) -> ()
  | _ -> Alcotest.fail "quorum ballot should close 2-1 for +");
  (* the service journals the aggregate, then reports back *)
  Coordinator.absorbed ~now:3. co State.Pos;
  Alcotest.(check int) "round bumped" 2 (Coordinator.round co);
  let st = Coordinator.stats co in
  Alcotest.(check int) "one round closed" 1 st.Pr.rounds;
  Alcotest.(check int) "three labels paid" 3 st.Pr.paid_labels;
  Alcotest.(check int) "the dissenter was overruled" 1 st.Pr.majority_flips;
  Alcotest.(check int) "no timeouts" 0 st.Pr.timeouts;
  Alcotest.(check (pair int int)) "dissenter's accuracy evidence" (0, 1)
    (Coordinator.accuracy co b);
  Alcotest.(check (pair int int)) "agreeing labeler credited" (1, 1)
    (Coordinator.accuracy co a)

let test_coordinator_deadline () =
  let co = Coordinator.create ~now:0. (cfg ~votes:5 ~timeout:10. ()) in
  let a, b, _ = attach3 co in
  Alcotest.(check bool) "before the deadline: wait" true
    (Coordinator.expire ~now:5. co = Coordinator.Wait);
  (* no ballots at the deadline: silently reset, same round *)
  Alcotest.(check bool) "empty round resets" true
    (Coordinator.expire ~now:11. co = Coordinator.Wait);
  Alcotest.(check int) "round unchanged" 1 (Coordinator.round co);
  ignore (Coordinator.vote ~now:12. co ~labeler:a ~round:1 ~label:State.Neg);
  ignore (Coordinator.vote ~now:13. co ~labeler:b ~round:1 ~label:State.Neg);
  (* two of five ballots, decisive tally: the deadline closes short *)
  (match Coordinator.expire ~now:22. co with
  | Coordinator.Aggregate State.Neg -> ()
  | _ -> Alcotest.fail "decisive-at-deadline should close short");
  Coordinator.absorbed ~now:22. co State.Neg;
  let st = Coordinator.stats co in
  Alcotest.(check int) "timeout counted" 1 st.Pr.timeouts;
  Alcotest.(check int) "two labels paid" 2 st.Pr.paid_labels;
  Alcotest.(check int) "unanimous: no flip" 0 st.Pr.majority_flips;
  (* tied at the deadline: re-ask, ballots discarded *)
  ignore (Coordinator.vote ~now:23. co ~labeler:a ~round:2 ~label:State.Pos);
  ignore (Coordinator.vote ~now:24. co ~labeler:b ~round:2 ~label:State.Neg);
  Alcotest.(check bool) "tied-at-deadline waits" true
    (Coordinator.expire ~now:40. co = Coordinator.Wait);
  Alcotest.(check int) "tie re-asks a fresh round" 3 (Coordinator.round co);
  let st = Coordinator.stats co in
  Alcotest.(check int) "re-ask counted" 1 st.Pr.re_asks;
  Alcotest.(check int) "discarded ballots are not paid" 2 st.Pr.paid_labels

let test_coordinator_rejected_reasks () =
  let co = Coordinator.create ~now:0. (cfg ~votes:1 ()) in
  let a = Coordinator.attach co in
  (match Coordinator.vote ~now:1. co ~labeler:a ~round:1 ~label:State.Pos with
  | `Counted (Coordinator.Aggregate State.Pos) -> ()
  | _ -> Alcotest.fail "singleton quorum closes at once");
  Coordinator.rejected ~now:1. co;
  Alcotest.(check int) "rejection re-asks" 2 (Coordinator.round co);
  let st = Coordinator.stats co in
  Alcotest.(check int) "nothing paid for a rejected aggregate" 0
    st.Pr.paid_labels;
  Alcotest.(check int) "no round closed" 0 st.Pr.rounds;
  Alcotest.(check int) "re-ask counted" 1 st.Pr.re_asks;
  Alcotest.(check (pair int int)) "no accuracy evidence either" (0, 0)
    (Coordinator.accuracy co a)

let test_coordinator_weighted_uniform () =
  (* Fresh labelers all weigh 1/2, so the weighted 3-2 split must elect
     the count majority exactly — the Votes bit-identity surfacing at
     the coordinator level. *)
  let co = Coordinator.create ~now:0. (cfg ~votes:5 ~weighted:true ()) in
  let ids = Array.init 5 (fun _ -> Coordinator.attach co) in
  let label i = if i < 3 then State.Pos else State.Neg in
  let closed = ref None in
  Array.iteri
    (fun i l ->
      match
        Coordinator.vote ~now:1. co ~labeler:l ~round:1 ~label:(label i)
      with
      | `Counted (Coordinator.Aggregate lab) -> closed := Some lab
      | `Counted Coordinator.Wait -> ()
      | _ -> Alcotest.fail "ballot refused")
    ids;
  Alcotest.(check bool) "weighted uniform elects the count majority" true
    (!closed = Some State.Pos)

(* ------------------------------------------------------------------ *)
(* Service: the crowd protocol in-process                              *)

let synth_source seed =
  Pr.Synthetic { n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }

let goal_of seed =
  (W.Synthetic.generate (Smoke.synthetic_params seed)).W.Synthetic.goal

let reference_run ~seed ~strategy =
  let inst = W.Synthetic.generate (Smoke.synthetic_params seed) in
  let strategy =
    match Strategy.of_string strategy with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Session.run ~seed ~strategy
    ~oracle:(Oracle.of_goal inst.W.Synthetic.goal)
    inst.W.Synthetic.relation

let start_synth service ~seed ~strategy =
  match
    Service.handle service
      (Pr.Start_session { source = synth_source seed; strategy; seed })
  with
  | Pr.Started { session; _ } -> session
  | other -> Alcotest.failf "start: %s" (Pr.response_to_string other)

let crowd_config ?(weighted = false) votes =
  { Coordinator.votes; timeout = 3600.; weighted }

(* Drive one crowd session in-process: each labeler [k] draws its own
   label from [oracles.(k)] — exactly one draw per round it sees, fresh
   draws whenever a round is re-asked.  Returns when the session has
   converged; [max_rounds] guards against a livelocked grid cell. *)
let drive_crowd_session ?(max_rounds = 5000) service session oracles =
  let labelers =
    Array.map
      (fun _ ->
        match Service.handle service (Pr.Labeler_attach { session }) with
        | Pr.Labeler_attached { labeler; _ } -> labeler
        | other -> failwith ("attach: " ^ Pr.response_to_string other))
      oracles
  in
  let rec loop n =
    if n > max_rounds then failwith "crowd session did not converge";
    match
      Service.handle service
        (Pr.Labeler_poll { session; labeler = labelers.(0) })
    with
    | Pr.Crowd_question { question = None; _ } -> ()
    | Pr.Crowd_question { round; question = Some { Pr.sg; _ } } ->
      Array.iteri
        (fun k l ->
          let label = Oracle.label oracles.(k) sg in
          match
            Service.handle service (Pr.Vote { session; labeler = l; round; label })
          with
          | Pr.Vote_ok _ -> ()
          | other -> failwith ("vote: " ^ Pr.response_to_string other))
        labelers;
      loop (n + 1)
    | other -> failwith ("poll: " ^ Pr.response_to_string other)
  in
  loop 0;
  let stats =
    match Service.handle service (Pr.Crowd_stats { session }) with
    | Pr.Crowd_info s -> s
    | other -> failwith ("stats: " ^ Pr.response_to_string other)
  in
  let outcome =
    match Service.handle service (Pr.Result { session }) with
    | Pr.Outcome o -> o
    | other -> failwith ("result: " ^ Pr.response_to_string other)
  in
  (outcome, stats)

let test_pinned_guard_strings () =
  (* Without crowd labeling, every crowd message is refused with the
     documented reason. *)
  let plain = Service.create () in
  let s = start_synth plain ~seed:3 ~strategy:"random" in
  let expect_bad req expected =
    match Service.handle plain req with
    | Pr.Failed (Pr.Bad_request _ as e) ->
      Alcotest.(check string) expected expected (Pr.error_to_string e)
    | other -> Alcotest.failf "accepted: %s" (Pr.response_to_string other)
  in
  let disabled =
    "bad request: crowd labeling disabled (start the server with --votes)"
  in
  expect_bad (Pr.Labeler_attach { session = s }) disabled;
  expect_bad (Pr.Labeler_poll { session = s; labeler = 1 }) disabled;
  expect_bad
    (Pr.Vote { session = s; labeler = 1; round = 1; label = State.Pos })
    disabled;
  expect_bad (Pr.Crowd_stats { session = s }) disabled;
  (* With crowd labeling, direct answers and undo are refused. *)
  let crowd = Service.create ~crowd:(crowd_config 3) () in
  let s = start_synth crowd ~seed:3 ~strategy:"random" in
  let expect_bad req expected =
    match Service.handle crowd req with
    | Pr.Failed (Pr.Bad_request _ as e) ->
      Alcotest.(check string) expected expected (Pr.error_to_string e)
    | other -> Alcotest.failf "accepted: %s" (Pr.response_to_string other)
  in
  expect_bad
    (Pr.Answer { session = s; cls = 0; label = State.Pos })
    "bad request: session is crowd-labeled: answers arrive by vote";
  expect_bad (Pr.Undo { session = s })
    "bad request: session is crowd-labeled: undo is disabled";
  (* and an unregistered labeler gets the typed error *)
  match Service.handle crowd (Pr.Labeler_poll { session = s; labeler = 42 }) with
  | Pr.Failed (Pr.Unknown_labeler 42 as e) ->
    Alcotest.(check string) "pinned unknown-labeler string"
      "unknown labeler 42" (Pr.error_to_string e)
  | other -> Alcotest.failf "poll accepted: %s" (Pr.response_to_string other)

let prop_perfect_crowd_bit_identical =
  (* The headline property: a perfect crowd of any odd size — weighted
     or not — leaves the wire-visible session bit-identical to the
     in-process [Session.run] with the same seed and strategy, because
     every aggregate is the goal label. *)
  qtest ~count:40 "perfect crowd = Session.run, any odd quorum"
    (QCheck.make
       ~print:(fun (seed, votes, weighted, strategy) ->
         Printf.sprintf "seed=%d votes=%d weighted=%b %s" seed votes weighted
           strategy)
       QCheck.Gen.(
         let* seed = int_range 1 150 in
         let* votes = oneofl [ 1; 3; 5 ] in
         let* weighted = bool in
         let* strategy = oneofl [ "random"; "lookahead-entropy" ] in
         return (seed, votes, weighted, strategy)))
    (fun (seed, votes, weighted, strategy) ->
      let service = Service.create ~crowd:(crowd_config ~weighted votes) () in
      let s = start_synth service ~seed ~strategy in
      let oracles =
        Array.init votes (fun _ -> Oracle.of_goal (goal_of seed))
      in
      let outcome, stats = drive_crowd_session service s oracles in
      if not (Smoke.outcome_equal outcome (reference_run ~seed ~strategy))
      then QCheck.Test.fail_report "crowd outcome diverges from Session.run";
      stats.Pr.paid_labels = votes * stats.Pr.rounds
      && stats.Pr.rounds = outcome.Session.interactions
      && stats.Pr.majority_flips = 0
      && stats.Pr.timeouts = 0
      && stats.Pr.re_asks = 0
      && stats.Pr.labelers = votes)

(* ------------------------------------------------------------------ *)
(* Convergence under noise: the error-rate x votes grid                *)

let noisy_oracles ~seed ~votes ~error =
  Array.init votes (fun k ->
      let goal = Oracle.of_goal (goal_of seed) in
      if error = 0. then goal
      else Oracle.noisy ~seed:((100 * seed) + k + 1) ~flip_probability:error goal)

(* One grid cell: does the crowd infer the goal predicate?  Everything
   is seeded, so each cell is deterministic and replayable. *)
let converges ~seed ~votes ~error ~weighted =
  let service = Service.create ~crowd:(crowd_config ~weighted votes) () in
  let s = start_synth service ~seed ~strategy:"lookahead-entropy" in
  let outcome, stats =
    drive_crowd_session service s (noisy_oracles ~seed ~votes ~error)
  in
  let reference = reference_run ~seed ~strategy:"lookahead-entropy" in
  (P.equal outcome.Session.query reference.Session.query, stats)

let test_convergence_grid () =
  let seeds = [ 3; 11 ] in
  let cells = ref [] in
  List.iter
    (fun seed ->
      List.iter
        (fun error ->
          List.iter
            (fun votes ->
              List.iter
                (fun weighted ->
                  let ok, stats = converges ~seed ~votes ~error ~weighted in
                  cells := (seed, error, votes, weighted, ok, stats) :: !cells)
                [ false; true ])
            [ 1; 3; 5 ])
        [ 0.; 0.1; 0.2 ])
    seeds;
  List.iter
    (fun (seed, error, votes, weighted, ok, (stats : Pr.crowd_stats)) ->
      let name =
        Printf.sprintf "seed=%d error=%g votes=%d weighted=%b" seed error
          votes weighted
      in
      (* noiseless cells must converge whatever the quorum *)
      if error = 0. then begin
        Alcotest.(check bool) (name ^ ": noiseless converges") true ok;
        Alcotest.(check int) (name ^ ": noiseless never re-asks") 0
          stats.Pr.re_asks
      end;
      (* the acceptance bar: error <= 0.2 with votes=5 always infers the
         goal predicate, on every seeded run of the grid *)
      if votes = 5 then
        Alcotest.(check bool) (name ^ ": votes=5 rides out the noise") true ok;
      Alcotest.(check int) (name ^ ": every closed round paid its quorum")
        (votes * stats.Pr.rounds) stats.Pr.paid_labels)
    !cells;
  (* noise must actually have bitten somewhere: the harness is not
     accidentally running perfect labelers *)
  let flips =
    List.fold_left
      (fun acc (_, _, _, _, _, (s : Pr.crowd_stats)) ->
        acc + s.Pr.majority_flips)
      0 !cells
  in
  Alcotest.(check bool) "seeded errors produced dissenting ballots" true
    (flips > 0)

(* ------------------------------------------------------------------ *)
(* Recovery: the journal holds only aggregates; labelers re-attach     *)

let test_crowd_recovery_reattach () =
  let fs = Memfs.create () in
  let io = Memfs.io fs in
  let seed = 5 in
  let open_store () =
    match Store.open_dir ~io "/data" with
    | Ok v -> v
    | Error e -> Alcotest.failf "open_dir: %s" e
  in
  let store, _ = open_store () in
  let service =
    Service.create ~persist:(Store.record store) ~crowd:(crowd_config 3) ()
  in
  let s = start_synth service ~seed ~strategy:"lookahead-entropy" in
  let oracles = Array.init 3 (fun _ -> Oracle.of_goal (goal_of seed)) in
  (* answer the first three rounds by vote, then "crash" *)
  let labelers =
    Array.map
      (fun _ ->
        match Service.handle service (Pr.Labeler_attach { session = s }) with
        | Pr.Labeler_attached { labeler; _ } -> labeler
        | other -> Alcotest.failf "attach: %s" (Pr.response_to_string other))
      oracles
  in
  for _ = 1 to 3 do
    match
      Service.handle service (Pr.Labeler_poll { session = s; labeler = labelers.(0) })
    with
    | Pr.Crowd_question { round; question = Some { Pr.sg; _ } } ->
      Array.iteri
        (fun k l ->
          let label = Oracle.label oracles.(k) sg in
          ignore
            (Service.handle service (Pr.Vote { session = s; labeler = l; round; label })))
        labelers
    | other -> Alcotest.failf "poll: %s" (Pr.response_to_string other)
  done;
  Store.close store;
  (* restart over the same disk into a fresh crowd service *)
  let store', recovered = open_store () in
  let service' =
    Service.create ~persist:(Store.record store') ~crowd:(crowd_config 3) ()
  in
  (match Service.restore service' recovered with
  | Ok n -> Alcotest.(check int) "one session restored" 1 n
  | Error e -> Alcotest.failf "restore: %s" e);
  let id =
    match recovered.Recovery.sessions with
    | [ sess ] ->
      Alcotest.(check int) "three aggregates journaled, nothing else" 3
        (List.length sess.Recovery.steps);
      sess.Recovery.id
    | l -> Alcotest.failf "%d sessions recovered" (List.length l)
  in
  (* the coordinator died with the process: old labeler ids are gone *)
  (match
     Service.handle service' (Pr.Labeler_poll { session = id; labeler = labelers.(0) })
   with
  | Pr.Failed (Pr.Unknown_labeler _) -> ()
  | other ->
    Alcotest.failf "stale labeler survived recovery: %s"
      (Pr.response_to_string other));
  (* fresh labelers attach and finish the session bit-identically *)
  let outcome, stats = drive_crowd_session service' id oracles in
  Alcotest.(check bool) "resumed crowd session bit-identical" true
    (Smoke.outcome_equal outcome
       (reference_run ~seed ~strategy:"lookahead-entropy"));
  Alcotest.(check int) "replayed rounds are not re-counted"
    (outcome.Session.interactions - 3) stats.Pr.rounds;
  Store.close store'

(* ------------------------------------------------------------------ *)
(* The real wire: crowd smoke and the stalled-reply regression         *)

let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jim-crowd-%d-%d.sock" (Unix.getpid ()) !counter)

let test_wire_crowd_smoke () =
  let address = Wire.Unix_path (fresh_socket ()) in
  let service = Service.create ~crowd:(crowd_config 3) () in
  let server = Wire.serve ~threads:16 service address in
  Fun.protect
    ~finally:(fun () -> Wire.shutdown server)
    (fun () ->
      let r =
        Smoke.crowd_run ~address ~seed:11 ~strategy:"lookahead-entropy"
          ~labelers:(List.init 3 Smoke.perfect_labeler)
          ()
      in
      if not r.Smoke.creport.Smoke.ok then
        Alcotest.failf "crowd smoke failed: %s" r.Smoke.creport.Smoke.detail;
      match r.Smoke.crowd with
      | None -> Alcotest.fail "no crowd stats harvested"
      | Some st ->
        Alcotest.(check int) "3 labelers attached" 3 st.Pr.labelers;
        Alcotest.(check bool) "rounds closed" true (st.Pr.rounds > 0);
        Alcotest.(check int) "paid = 3 per round" (3 * st.Pr.rounds)
          st.Pr.paid_labels;
        Alcotest.(check int) "perfect crowd never flips" 0
          st.Pr.majority_flips)

let test_stalled_reply_is_dropped () =
  (* The receive-timeout regression: a proxy that stalls every reply
     long past the client's receive timeout must classify as a transport
     drop — never as divergence, never as a hang. *)
  let upstream = Wire.Unix_path (fresh_socket ()) in
  let listen = Wire.Unix_path (fresh_socket ()) in
  let service = Service.create () in
  let server = Wire.serve ~threads:4 service upstream in
  let plan =
    match Chaos.plan_of_string "stall=1,delay-ms=300" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let proxy =
    match Chaos.start ~plan ~listen ~upstream () with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Chaos.stop proxy);
      Wire.shutdown server)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let r =
        Smoke.drive_one ~receive_timeout:0.3 ~address:listen ~seed:4
          ~strategy:"random" ()
      in
      Alcotest.(check bool) "classified as a transport drop" true
        r.Smoke.dropped;
      Alcotest.(check bool) "not reported ok" false r.Smoke.ok;
      (* and it was the timeout that fired, not a 3 s stall ridden out *)
      Alcotest.(check bool) "timed out promptly" true
        (Unix.gettimeofday () -. t0 < 2.5))

let () =
  Alcotest.run "crowd"
    [
      ( "votes",
        [
          Alcotest.test_case "tally validation and ties" `Quick
            test_tally_validation;
          prop_uniform_weights_equal_majority;
          Alcotest.test_case "Laplace accuracy estimator" `Quick
            test_estimator_laplace;
        ] );
      ( "core error paths",
        [
          Alcotest.test_case "Crowd.run rejects even/non-positive votes"
            `Quick test_crowd_votes_validation;
          Alcotest.test_case "perfect worker = Session.run, any redundancy"
            `Quick test_crowd_perfect_worker_identity;
          Alcotest.test_case "Teaching raises on malformed input" `Quick
            test_teaching_error_paths;
          prop_greedy_vs_exact_minimum;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "config validation" `Quick
            test_coordinator_validation;
          Alcotest.test_case "quorum close, stale ballots, accuracy" `Quick
            test_coordinator_quorum_close;
          Alcotest.test_case "straggler deadline: reset, close short, tie"
            `Quick test_coordinator_deadline;
          Alcotest.test_case "rejected aggregate re-asks unpaid" `Quick
            test_coordinator_rejected_reasks;
          Alcotest.test_case "weighted uniform = count majority" `Quick
            test_coordinator_weighted_uniform;
        ] );
      ( "service",
        [
          Alcotest.test_case "pinned guard strings" `Quick
            test_pinned_guard_strings;
          prop_perfect_crowd_bit_identical;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "error-rate x votes grid" `Slow
            test_convergence_grid;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "journal holds aggregates only; re-attach"
            `Quick test_crowd_recovery_reattach;
        ] );
      ( "wire",
        [
          Alcotest.test_case "crowd smoke over the socket" `Quick
            test_wire_crowd_smoke;
          Alcotest.test_case "stalled reply classifies as dropped" `Quick
            test_stalled_reply_is_dropped;
        ] );
    ]
