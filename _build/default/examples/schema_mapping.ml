(* Schema-mapping inference by example (Section 1: "our join queries can
   be eventually seen as simple GAV mappings", citing EIRENE): a
   non-expert user labels tuples of the product of two source relations
   and JIM emits the GAV mapping populating the target relation.

   Run with: dune exec examples/schema_mapping.exe *)

module W = Jim_workloads
module Relation = Jim_relational.Relation
module Database = Jim_relational.Database
open Jim_core

let () =
  let db = W.Tpch.generate ~seed:9 W.Tpch.tiny in
  match
    W.Denorm.task_of_names ~sample:250 ~seed:17 db W.Tpch.fk_customer_orders
  with
  | Error e -> failwith e
  | Ok task ->
    let oracle = W.Denorm.oracle task in
    let outcome =
      Session.run ~strategy:Strategy.lookahead_maximin ~oracle
        task.W.Denorm.instance
    in
    let cross =
      Jim_partition.Partition.restrict outcome.Session.query
        ~allowed:task.W.Denorm.cross_only
    in
    let q = Jquery.make task.W.Denorm.schema cross in

    Printf.printf "Labelled examples: %d\n\n" outcome.Session.interactions;
    Printf.printf "Inferred GAV mapping:\n  %s\n\n"
      (Jquery.to_gav ~head:"customer_orders" q);
    Printf.printf "Equivalent SQL:\n  %s\n\n"
      (Jquery.to_sql ~from:task.W.Denorm.sources q);

    (* Materialise the target relation through the relational substrate's
       own SQL engine and check it against the goal join. *)
    let sql = Jquery.to_sql ~from:task.W.Denorm.sources q in
    (match Database.exec db sql with
    | Error e -> failwith e
    | Ok result ->
      let goal_result = W.Denorm.goal_join_result task in
      Printf.printf "Target instance: %d tuples (goal join: %d)\n"
        (Relation.cardinality result)
        (Relation.cardinality goal_result);
      Printf.printf "Contents match goal join: %b\n"
        (List.length (Relation.tuples result)
         = List.length (Relation.tuples goal_result)
        && List.for_all2 Jim_relational.Tuple0.equal
             (List.sort Jim_relational.Tuple0.compare (Relation.tuples result))
             (List.sort Jim_relational.Tuple0.compare
                (Relation.tuples goal_result))))
