(* Joining sets of pictures (Section 3, part 3 / Fig. 5): infer "select
   the pairs of pictures having the same color and the same shading" over
   pairs of Set cards, labelling a handful of proposed pairs.

   Run with: dune exec examples/set_cards.exe *)

module S = Jim_workloads.Setcards
module Relation = Jim_relational.Relation
open Jim_core

let run_goal name goal =
  (* A sampled pair table stands in for the attendee's screen: 400 pairs
     out of the 81x81 deck product. *)
  let instance = S.pair_instance ~sample:400 ~seed:5 () in
  let oracle = Oracle.of_goal goal in
  let outcome =
    Session.run ~strategy:Strategy.lookahead_entropy ~oracle instance
  in
  Printf.printf "Goal: %s\n" name;
  Printf.printf "  predicate          : %s\n"
    (Jim_tui.Render.partition_line S.pair_schema goal);
  Printf.printf "  pairs on screen    : %d\n" (Relation.cardinality instance);
  Printf.printf "  questions asked    : %d\n" outcome.Session.interactions;
  List.iter
    (fun (e : Session.event) ->
      Printf.printf "    %s  -> %s\n"
        (S.pair_to_string (Relation.tuple instance e.Session.row))
        (match e.Session.label with State.Pos -> "yes" | State.Neg -> "no"))
    outcome.Session.events;
  let inferred = Jquery.make S.pair_schema outcome.Session.query in
  let wanted = Jquery.make S.pair_schema goal in
  Printf.printf "  inferred           : %s\n"
    (Jim_tui.Render.partition_line S.pair_schema outcome.Session.query);
  Printf.printf "  matches goal on it : %b\n\n"
    (Jquery.equivalent_on inferred wanted instance)

let () =
  Printf.printf "Deck: %d cards; features: number, symbol, shading, colour\n\n"
    (Relation.cardinality S.deck);
  run_goal "same colour and same shading" (S.same [ "colour"; "shading" ]);
  run_goal "same symbol" (S.same [ "symbol" ]);
  run_goal "identical cards"
    (S.same [ "number"; "symbol"; "shading"; "colour" ])
