(* Beyond single equi-joins: the travel agent now wants packages where
   the hotel is in the destination city OR the hotel grants a discount
   for the airline flown - a union of two join predicates.

   JIM's conjunctive hypothesis space cannot express this; the
   Disjunctive learner works over unions (equivalently, monotone concepts
   on the signature lattice) with the same membership-query interface.

   Run with: dune exec examples/disjunctive_packages.exe *)

module P = Jim_partition.Partition
module F = Jim_workloads.Flights
module Relation = Jim_relational.Relation
open Jim_core

let () =
  let goal =
    [
      P.of_pairs 5 [ (F.to_, F.city) ];          (* To = City *)
      P.of_pairs 5 [ (F.airline, F.discount) ];  (* Airline = Discount *)
    ]
  in
  Printf.printf "Goal: %s\n\n" (Disjunctive.to_where F.schema goal);
  print_string (Jim_tui.Render.table F.instance);

  let oracle = Disjunctive.oracle_of_union goal in
  let o = Disjunctive.run ~strategy:`Maximin ~oracle F.instance in

  Printf.printf "\nInferred in %d questions: %s\n" o.Disjunctive.interactions
    (Disjunctive.to_where F.schema o.Disjunctive.union);

  let result = Disjunctive.eval o.Disjunctive.union F.instance in
  Printf.printf "\nSelected packages (%d):\n" (Relation.cardinality result);
  print_string (Jim_tui.Render.table ~row_numbers:false result);

  (* Contrast: the best conjunctive approximation the classic learner
     would reach against the same oracle.  The conjunctive state treats
     the union's labels as a (consistent!) conjunctive labelling only if
     one exists; here the positives' meet selects too much or too
     little. *)
  let conj =
    Session.run ~strategy:Strategy.lookahead_entropy
      ~oracle:(Oracle.of_fun (fun sg ->
           if Disjunctive.selects goal sg then State.Pos else State.Neg))
      F.instance
  in
  let conj_result = Relation.satisfying conj.Session.query F.instance in
  Printf.printf
    "\nA conjunctive-only learner against the same answers would return\n\
     \"%s\" (%d rows) - %s.\n"
    (Jim_tui.Render.partition_line F.schema conj.Session.query)
    (Relation.cardinality conj_result)
    (if conj.Session.contradiction then
       "after detecting that no single predicate fits"
     else "missing part of the union");
  assert (
    Array.for_all
      (fun sg ->
        Disjunctive.selects o.Disjunctive.union sg = Disjunctive.selects goal sg)
      (Relation.signatures F.instance))
