examples/tpch_crowd.mli:
