examples/quickstart.mli:
