examples/disjunctive_packages.mli:
