examples/travel_packages.mli:
