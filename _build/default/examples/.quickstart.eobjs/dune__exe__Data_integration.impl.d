examples/data_integration.ml: Array Explain Jim_core Jim_partition Jim_relational Jim_workloads Jquery List Oracle Printf Random Session Sigclass Strategy String
