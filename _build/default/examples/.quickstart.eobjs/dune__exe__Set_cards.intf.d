examples/set_cards.mli:
