examples/quickstart.ml: Jim_core Jim_partition Jim_relational Jim_tui Jim_workloads Jquery List Oracle Printf Session State Strategy
