examples/schema_mapping.ml: Jim_core Jim_partition Jim_relational Jim_workloads Jquery List Printf Session Strategy
