examples/travel_packages.ml: Interaction Jim_core Jim_relational Jim_tui Jim_workloads Jquery List Option Oracle Printf Session Sigclass State Stats Strategy
