examples/schema_mapping.mli:
