examples/disjunctive_packages.ml: Array Disjunctive Jim_core Jim_partition Jim_relational Jim_tui Jim_workloads Oracle Printf Session State Strategy
