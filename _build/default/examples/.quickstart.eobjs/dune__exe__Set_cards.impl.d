examples/set_cards.ml: Jim_core Jim_relational Jim_tui Jim_workloads Jquery List Oracle Printf Session State Strategy
