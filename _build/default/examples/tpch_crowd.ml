(* Crowdsourced join specification over disparate sources (the paper's
   Section 1 motivation): the tables come from a TPC-H-style database,
   the "crowd" is asked yes/no membership questions about tuples of the
   denormalised product, and JIM recovers the foreign-key join predicate
   — each saved question is money saved on the crowdsourcing platform.

   Run with: dune exec examples/tpch_crowd.exe *)

module W = Jim_workloads
module Relation = Jim_relational.Relation
open Jim_core

let run_task db name spec =
  match W.Denorm.task_of_names ~sample:300 ~seed:3 db spec with
  | Error e -> failwith e
  | Ok task ->
    let oracle = W.Denorm.oracle task in
    Printf.printf "Task: %s\n" name;
    Printf.printf "  sources      : %s\n"
      (String.concat ", " task.W.Denorm.sources);
    Printf.printf "  product rows : %d (sampled for labelling: %d)\n"
      (List.fold_left
         (fun acc r ->
           acc * Relation.cardinality (Jim_relational.Database.find_exn db r))
         1 task.W.Denorm.sources)
      (Relation.cardinality task.W.Denorm.instance);
    let per_strategy =
      List.map
        (fun strat ->
          let o = Session.run ~strategy:strat ~oracle task.W.Denorm.instance in
          (strat.Strategy.name, o))
        [ Strategy.local_specific; Strategy.lookahead_entropy; Strategy.random ]
    in
    List.iter
      (fun (nm, (o : Session.outcome)) ->
        Printf.printf "  %-18s: %2d crowd questions\n" nm
          o.Session.interactions)
      per_strategy;
    let _, best = List.hd per_strategy in
    (* The predicate, cleaned to cross-relation atoms only, as SQL. *)
    let cross =
      Jim_partition.Partition.restrict best.Session.query
        ~allowed:task.W.Denorm.cross_only
    in
    let q = Jquery.make task.W.Denorm.schema cross in
    Printf.printf "  inferred join : %s\n\n"
      (Jquery.to_sql ~from:task.W.Denorm.sources q)

let () =
  let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
  Printf.printf "TPC-H-lite database: %s\n\n"
    (String.concat ", " (Jim_relational.Database.names db));
  run_task db "customer-orders foreign key" W.Tpch.fk_customer_orders;
  run_task db "orders-lineitem foreign key" W.Tpch.fk_orders_lineitem;
  run_task db "region-nation-customer chain" W.Tpch.fk_nation_chain
