(* Quickstart: the public API in one page.

   We load the paper's flight&hotel table, pretend to be a user whose
   goal is Q2 (To = City AND Airline = Discount), and let JIM infer the
   join predicate with a handful of yes/no answers.

   Run with: dune exec examples/quickstart.exe *)

module Partition = Jim_partition.Partition
module F = Jim_workloads.Flights
open Jim_core

let () =
  (* 1. The instance: any Jim_relational.Relation.t works; here, Fig. 1. *)
  let instance = F.instance in
  Printf.printf "Instance: %d tuples over %d attributes\n\n"
    (Jim_relational.Relation.cardinality instance)
    (Jim_relational.Relation.arity instance);
  print_string (Jim_tui.Render.table instance);

  (* 2. The user: a labelling oracle.  Interactive applications plug a
     human in instead (see bin/jim_cli.ml); experiments use a goal
     query. *)
  let goal = F.q2 in
  let oracle = Oracle.of_goal goal in

  (* 3. Run the interactive loop of Fig. 2 under a strategy. *)
  let strategy = Strategy.lookahead_entropy in
  let outcome = Session.run ~strategy ~oracle instance in

  Printf.printf "\nGoal      : %s\n"
    (Jim_tui.Render.partition_line F.schema goal);
  Printf.printf "Inferred  : %s\n"
    (Jim_tui.Render.partition_line F.schema outcome.Session.query);
  Printf.printf "Questions : %d (instance has %d tuples)\n\n"
    outcome.Session.interactions
    (Jim_relational.Relation.cardinality instance);

  List.iter
    (fun (e : Session.event) ->
      Printf.printf "  step %d: tuple (%d) -> %s   [%d/12 tuples decided]\n"
        e.Session.step (e.Session.row + 1)
        (match e.Session.label with State.Pos -> "+" | State.Neg -> "-")
        e.Session.tuples_decided_after)
    outcome.Session.events;

  (* 4. Render the inferred predicate as SQL over the source relations. *)
  let q = Jquery.make F.schema outcome.Session.query in
  Printf.printf "\nAs SQL    : %s\n" (Jquery.to_sql ~from:[ "packages" ] q);

  (* 5. And evaluate it: the package list the user wanted. *)
  let result = Jquery.eval q instance in
  Printf.printf "\nJoin result (%d tuples):\n"
    (Jim_relational.Relation.cardinality result);
  print_string (Jim_tui.Render.table ~row_numbers:false result);

  (* The inferred query selects exactly what the goal selects. *)
  assert (
    Jquery.equivalent_on q (Jquery.make F.schema goal) instance);
  print_endline "\nInferred query is instance-equivalent to the goal. \xE2\x9C\x93"
