module Partition = Jim_partition.Partition
module Lattice = Jim_partition.Lattice
module Penum = Jim_partition.Penum

let count (st : State.t) =
  Lattice.down_minus_count ~top:st.s ~excluded:st.negatives

let log_count st =
  let c = count st in
  if c <= 0.0 then neg_infinity else log c

let is_singleton_on st classes =
  Array.for_all
    (fun (c : Sigclass.cls) -> State.classify st c.sg <> State.Informative)
    classes

let enumerate (st : State.t) =
  if Penum.count_below st.s > 1e6 then
    invalid_arg "Version_space.enumerate: ideal too large";
  let out = ref [] in
  Penum.iter_below st.s (fun q -> if State.consistent st q then out := q :: !out);
  List.rev !out

let mem = State.consistent

let equivalence_classes st classes =
  let preds = enumerate st in
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun q ->
      let bitmap =
        Array.map
          (fun (c : Sigclass.cls) -> Partition.refines q c.sg)
          classes
      in
      let key = Array.to_list bitmap in
      match Hashtbl.find_opt tbl key with
      | Some (bm, qs) -> Hashtbl.replace tbl key (bm, q :: qs)
      | None ->
        Hashtbl.add tbl key (bitmap, [ q ]);
        order := key :: !order)
    preds;
  List.rev_map
    (fun key ->
      let bm, qs = Hashtbl.find tbl key in
      (bm, List.rev qs))
    !order
