(** The four types of interaction from Fig. 3 of the paper, as closed-loop
    simulations.  All four run against the same engine and oracle; what
    differs is who chooses the next tuple and which tuples are visible:

    1. the user labels tuples in her own order, no help;
    2. same, but tuples that became uninformative are grayed out and the
       user skips them;
    3. the system proposes the top-[k] informative tuples per round;
    4. the system proposes exactly the most informative tuple (the core
       interactive scenario of Fig. 2).

    The user's "own order" is a row permutation supplied by the caller
    (experiments use row order or a seeded shuffle).  Each mode reports
    the number of labels the user produced, which is what Fig. 4's
    "benefit of using a strategy" chart compares. *)

type report = {
  mode : string;
  labels_given : int;       (** interactions performed by the user *)
  auto_determined : int;    (** tuples decided without being labelled *)
  total_tuples : int;
  query : Jim_partition.Partition.t;
}

val mode1_label_all :
  order:int list -> oracle:Oracle.t -> Jim_relational.Relation.t -> report
(** The user labels every tuple in [order] (she has no way to know when
    the goal is determined). *)

val mode2_gray_out :
  order:int list -> oracle:Oracle.t -> Jim_relational.Relation.t -> report
(** The user follows [order] but skips grayed-out tuples, stopping when
    everything is decided. *)

val mode3_top_k :
  k:int -> ?seed:int -> strategy:Strategy.t -> oracle:Oracle.t ->
  Jim_relational.Relation.t -> report
(** Rounds of [k] proposed tuples, all labelled (the round's remaining
    proposals may already be decided by earlier answers in the round —
    they still cost a label, which is the point of mode 4). *)

val mode4_interactive :
  ?seed:int -> strategy:Strategy.t -> oracle:Oracle.t ->
  Jim_relational.Relation.t -> report
(** One most-informative tuple at a time; the minimum-effort mode. *)
