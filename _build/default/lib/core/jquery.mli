(** Join queries: an inferred predicate made presentable — equality atoms
    over named attributes, SQL text, and evaluation over the instance.

    The paper's §1 points out that JIM's inferred joins "can be eventually
    seen as simple GAV mappings"; {!to_gav} prints that reading. *)

type t = {
  pred : Jim_partition.Partition.t;
  schema : Jim_relational.Schema.t;  (** attribute names for the predicate's positions *)
}

val make : Jim_relational.Schema.t -> Jim_partition.Partition.t -> t
(** Raises [Invalid_argument] if sizes disagree. *)

val atoms : t -> (string * string) list
(** Spanning equality atoms (representative = member), by block. *)

val to_where : t -> string
(** ["t.To = h.City AND t.Airline = h.Discount"]; ["TRUE"] for the empty
    predicate. *)

val to_sql : from:string list -> t -> string
(** A complete [SELECT * FROM ... WHERE ...] statement. *)

val to_sql_query : from:string list -> t -> Jim_relational.Sql_ast.query
(** Same, as an AST (re-executable via {!Jim_relational.Database.exec}
    when the FROM relations' qualified schemas concatenate to [schema]). *)

val to_gav : head:string -> t -> string
(** GAV-mapping reading: ["m(...) :- r1(...), r2(...), x = y, ..."]. *)

val eval : t -> Jim_relational.Relation.t -> Jim_relational.Relation.t
(** Rows of the (denormalised) instance selected by the predicate. *)

val selects : t -> Jim_relational.Tuple0.t -> bool

val equivalent_on : t -> t -> Jim_relational.Relation.t -> bool
(** Instance-equivalence: do the two predicates select the same rows? *)

val pp : Format.formatter -> t -> unit
