module Partition = Jim_partition.Partition
module Relation = Jim_relational.Relation

type cls = { sg : Partition.t; rows : int list; card : int }

let group sigs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iteri
    (fun i sg ->
      let key = Partition.to_string sg in
      match Hashtbl.find_opt tbl key with
      | Some (sg', rows) -> Hashtbl.replace tbl key (sg', i :: rows)
      | None ->
        Hashtbl.add tbl key (sg, [ i ]);
        order := key :: !order)
    sigs;
  let mk key =
    let sg, rows = Hashtbl.find tbl key in
    let rows = List.rev rows in
    { sg; rows; card = List.length rows }
  in
  (* !order holds keys latest-first; rev_map restores first-occurrence
     order. *)
  Array.of_list (List.rev_map mk !order)

let of_signatures sigs = group sigs

let classes r = group (Array.to_list (Relation.signatures r))

let singletons r =
  Array.mapi
    (fun i sg -> { sg; rows = [ i ]; card = 1 })
    (Relation.signatures r)

let representative c = match c.rows with [] -> assert false | r :: _ -> r

let total_rows cs = Array.fold_left (fun acc c -> acc + c.card) 0 cs

let find cs sg =
  let n = Array.length cs in
  let rec go i =
    if i >= n then None
    else if Partition.equal cs.(i).sg sg then Some i
    else go (i + 1)
  in
  go 0
