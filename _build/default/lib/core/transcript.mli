(** Session transcripts: a line-based, human-readable audit log of an
    inference run, parseable back for replay.

    Use cases: auditing what a crowd was asked (and billed for),
    resuming an interrupted labelling session on the same instance, and
    regression-testing interaction traces.

    Format (one record per line, [#] starts a comment):
    {v
    jim-transcript 1
    arity 5
    label {0}{1,3}{2,4}{...} +        # signature, answer
    label {0,1}{2}{3}{4} -
    result {0}{1,3}{2,4}
    v} *)

type entry = { sg : Jim_partition.Partition.t; label : State.label }

type t = {
  arity : int;
  entries : entry list;               (** chronological *)
  result : Jim_partition.Partition.t option;
}

val of_outcome : n:int -> Session.outcome -> t

val of_engine : Session.t -> t
(** Not supported for engines driven through raw {!Session.answer} calls
    interleaved with external state changes — records the questions the
    engine absorbed, in order.  (The engine keeps enough history for
    this.) *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Inverse of {!to_string}; tolerant of comments and blank lines. *)

val replay :
  t -> Session.t -> (unit, [ `Contradiction | `Arity_mismatch ]) result
(** Feed the transcript's labels into a fresh engine over the {e same}
    instance (or any instance with the same attribute count).  Labels
    whose class no longer exists on the instance are applied directly at
    the state level via the signature, so replay works across instance
    revisions that preserve arity. *)
