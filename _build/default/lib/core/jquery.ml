module Partition = Jim_partition.Partition
module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Tuple0 = Jim_relational.Tuple0
module Sql_ast = Jim_relational.Sql_ast

type t = { pred : Partition.t; schema : Schema.t }

let make schema pred =
  if Partition.size pred <> Schema.arity schema then
    invalid_arg "Jquery.make: predicate size differs from schema arity";
  { pred; schema }

let atoms q =
  let names = Schema.names q.schema in
  List.concat_map
    (fun block ->
      match block with
      | [] | [ _ ] -> []
      | r :: rest -> List.map (fun m -> (names.(r), names.(m))) rest)
    (Partition.nontrivial_blocks q.pred)

let to_where q =
  match atoms q with
  | [] -> "TRUE"
  | ats -> String.concat " AND " (List.map (fun (a, b) -> a ^ " = " ^ b) ats)

let to_sql ~from q =
  Printf.sprintf "SELECT * FROM %s WHERE %s" (String.concat ", " from)
    (to_where q)

let to_sql_query ~from q =
  let where =
    match atoms q with
    | [] -> None
    | ats ->
      let eqs =
        List.map (fun (a, b) -> Sql_ast.Ecmp (Sql_ast.Ceq, Ecol a, Ecol b)) ats
      in
      (match eqs with
      | [] -> None
      | e :: rest ->
        Some (List.fold_left (fun acc e' -> Sql_ast.Eand (acc, e')) e rest))
  in
  Sql_ast.simple_select ?where from

let to_gav ~head q =
  let names = Schema.names q.schema in
  (* Group attribute positions by the relation part of their qualified
     name, preserving order; unqualified attributes form one body atom
     over the whole schema. *)
  let rel_of name =
    match String.index_opt name '.' with
    | None -> "r"
    | Some i -> String.sub name 0 i
  in
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun nm ->
      let r = rel_of nm in
      if not (Hashtbl.mem tbl r) then begin
        Hashtbl.add tbl r ();
        order := r :: !order
      end)
    names;
  let rels = List.rev !order in
  let var i = Printf.sprintf "x%d" (Partition.rep q.pred i) in
  let body_atom r =
    let vars = ref [] in
    Array.iteri (fun i nm -> if rel_of nm = r then vars := var i :: !vars) names;
    Printf.sprintf "%s(%s)" r (String.concat ", " (List.rev !vars))
  in
  let head_vars = List.init (Array.length names) var |> List.sort_uniq compare in
  Printf.sprintf "%s(%s) :- %s" head
    (String.concat ", " head_vars)
    (String.concat ", " (List.map body_atom rels))

let eval q rel = Relation.satisfying q.pred rel

let selects q t = Tuple0.satisfies q.pred t

let equivalent_on a b rel =
  Relation.equal_contents (eval a rel) (eval b rel)

let pp fmt q = Format.pp_print_string fmt (to_where q)
