module Partition = Jim_partition.Partition
module Lattice = Jim_partition.Lattice
module Relation = Jim_relational.Relation
module Tuple0 = Jim_relational.Tuple0
module Schema = Jim_relational.Schema

type union = Partition.t list

let selects u sg = List.exists (fun d -> Partition.refines d sg) u

let eval u rel =
  Relation.select (fun t -> selects u (Tuple0.signature t)) rel

let normalise u = Lattice.minimal_elements u

let to_where schema u =
  let names = Schema.names schema in
  let disjunct d =
    let atoms =
      List.concat_map
        (fun block ->
          match block with
          | [] | [ _ ] -> []
          | r :: rest -> List.map (fun m -> names.(r) ^ " = " ^ names.(m)) rest)
        (Partition.nontrivial_blocks d)
    in
    match atoms with
    | [] -> "TRUE"
    | _ -> String.concat " AND " atoms
  in
  match normalise u with
  | [] -> "FALSE"
  | [ d ] -> disjunct d
  | ds -> String.concat " OR " (List.map (fun d -> "(" ^ disjunct d ^ ")") ds)

type state = {
  n : int;
  minimal_pos : union;
  maximal_neg : union;
}

let create n = { n; minimal_pos = []; maximal_neg = [] }

let classify st sg =
  if List.exists (fun p -> Partition.refines p sg) st.minimal_pos then
    State.Certain_pos
  else if List.exists (fun u -> Partition.refines sg u) st.maximal_neg then
    State.Certain_neg
  else State.Informative

let add st label sg =
  if Partition.size sg <> st.n then
    invalid_arg "Disjunctive.add: arity mismatch";
  match (label, classify st sg) with
  | State.Pos, State.Certain_neg | State.Neg, State.Certain_pos ->
    Error `Contradiction
  | State.Pos, _ ->
    Ok { st with minimal_pos = Lattice.minimal_elements (sg :: st.minimal_pos) }
  | State.Neg, _ ->
    Ok { st with maximal_neg = Lattice.maximal_elements (sg :: st.maximal_neg) }

let result st = st.minimal_pos

type outcome = {
  union : union;
  interactions : int;
  contradiction : bool;
}

let oracle_of_union u =
  Oracle.of_fun (fun sg -> if selects u sg then State.Pos else State.Neg)

let run ?(seed = 0) ?(strategy = `Maximin) ~oracle rel =
  let classes = Sigclass.classes rel in
  let rng = Random.State.make [| seed |] in
  let informative st =
    Array.to_list
      (Array.of_seq
         (Seq.filter
            (fun i -> classify st classes.(i).Sigclass.sg = State.Informative)
            (Seq.init (Array.length classes) Fun.id)))
  in
  let decided_if st sg label =
    match add st label sg with
    | Error `Contradiction -> Array.length classes
    | Ok st' ->
      Array.fold_left
        (fun acc (c : Sigclass.cls) ->
          if classify st' c.sg <> State.Informative then acc + 1 else acc)
        0 classes
  in
  let pick st = function
    | [] -> None
    | candidates -> (
      match strategy with
      | `Random ->
        Some (List.nth candidates (Random.State.int rng (List.length candidates)))
      | `Maximin ->
        let score i =
          let sg = classes.(i).Sigclass.sg in
          min (decided_if st sg State.Pos) (decided_if st sg State.Neg)
        in
        let best =
          List.fold_left
            (fun (bi, bs) i ->
              let s = score i in
              if s > bs then (i, s) else (bi, bs))
            (List.hd candidates, score (List.hd candidates))
            (List.tl candidates)
        in
        Some (fst best))
  in
  let rec loop st count =
    match pick st (informative st) with
    | None -> { union = result st; interactions = count; contradiction = false }
    | Some i ->
      let sg = classes.(i).Sigclass.sg in
      let label = Oracle.label oracle sg in
      (match add st label sg with
      | Ok st' -> loop st' (count + 1)
      | Error `Contradiction ->
        { union = result st; interactions = count; contradiction = true })
  in
  loop (create (Relation.arity rel)) 0
