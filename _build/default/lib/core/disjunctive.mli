(** Disjunctive join predicates: finite unions of equi-join predicates,
    the natural "future work" extension of JIM's hypothesis space.

    A union [U = θ₁ ∨ … ∨ θₖ] selects tuple [t] iff some [θᵢ] refines
    [sig t].  The set of signatures a union accepts is exactly an
    {e upward-closed} set in the refinement order — and conversely every
    upward-closed set is a finite union of principal filters — so
    learning unions from membership queries is monotone concept learning
    over the partition lattice:

    - a positive example [σ⁺] forces every [σ ⊒ σ⁺] positive,
    - a negative example [σ⁻] forces every [σ ⊑ σ⁻] negative,
    - a signature is informative iff neither applies.

    The learner keeps the minimal positive and maximal negative
    antichains; when no informative signature class remains, the minimal
    positive signatures {e are} the inferred union (restricted to the
    instance, as always, up to instance-equivalence).

    Conjunctive JIM is the [k = 1] case, where the meet-closure of the
    hypothesis space buys much stronger pruning; the E9 bench quantifies
    the price of disjunction. *)

type union = Jim_partition.Partition.t list
(** Disjuncts; [[]] is the empty union (selects nothing),
    [[Partition.bottom n]] selects everything. *)

val selects : union -> Jim_partition.Partition.t -> bool
(** Does the union accept a tuple with this signature? *)

val eval : union -> Jim_relational.Relation.t -> Jim_relational.Relation.t

val normalise : union -> union
(** Minimal antichain: drop disjuncts subsumed by more general ones. *)

val to_where : Jim_relational.Schema.t -> union -> string
(** ["(To = City) OR (Airline = Discount AND From = City)"]; ["FALSE"]
    for the empty union, ["TRUE"] when a disjunct is the empty
    predicate. *)

(** {1 Learning state} *)

type state = private {
  n : int;
  minimal_pos : union;  (** minimal positive signatures (antichain) *)
  maximal_neg : union;  (** maximal negative signatures (antichain) *)
}

val create : int -> state

val add :
  state -> State.label -> Jim_partition.Partition.t ->
  (state, [ `Contradiction ]) result

val classify : state -> Jim_partition.Partition.t -> State.status

val result : state -> union
(** The inferred union: the minimal positive antichain. *)

(** {1 Interactive loop} *)

type outcome = {
  union : union;
  interactions : int;
  contradiction : bool;
}

val oracle_of_union : union -> Oracle.t

val run :
  ?seed:int ->
  ?strategy:[ `Random | `Maximin ] ->
  oracle:Oracle.t ->
  Jim_relational.Relation.t ->
  outcome
(** Fig.-2-style loop over the monotone hypothesis space (default
    strategy [`Maximin]: maximise the guaranteed number of classes
    decided). *)
