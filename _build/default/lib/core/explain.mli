(** Explanations: {e why} is a tuple grayed out (or not)?

    The demo grays out uninformative tuples; this module produces the
    certificate behind each graying decision, so the interface can answer
    "why can't I label this one?".  Certificates are checkable objects,
    not prose: tests verify each one against the definition it claims to
    witness. *)

type why =
  | Forced_positive of Jim_partition.Partition.t list
      (** Signatures of already-labelled positives whose meet refines this
          tuple's signature: every predicate selecting all of them selects
          this tuple too.  A minimal such subset is returned. *)
  | Forced_negative of Jim_partition.Partition.t
      (** A stored negative signature [u] with [s ∧ sig ⊑ u]: any predicate
          selecting this tuple would also select that negative example. *)
  | Open_question of
      Jim_partition.Partition.t * Jim_partition.Partition.t
      (** Two consistent predicates disagreeing on the tuple:
          (one that selects it, one that rejects it). *)

val explain :
  State.t ->
  positives:Jim_partition.Partition.t list ->
  Jim_partition.Partition.t ->
  why
(** [explain st ~positives sg] produces the certificate for the tuple
    signature [sg]; [positives] are the signatures of the positive
    examples labelled so far (the state only stores their meet, the
    explanation wants actual witnesses).  Raises [Invalid_argument] when
    [positives] is inconsistent with [st] (their meet differs from the
    state's [s]).

    The [Open_question] witnesses are the canonical [s] when it selects
    the tuple (rejector: a maximal consistent predicate outside the
    tuple's cone) or vice versa. *)

val check : State.t -> Jim_partition.Partition.t -> why -> bool
(** Verify a certificate against its definition: forced-positive subsets
    must meet below the signature; the forced-negative must cover the
    meet; open-question witnesses must be consistent and disagree. *)

val to_string : Jim_relational.Schema.t -> why -> string
(** Human-readable rendering with attribute names. *)
