(** Simulated users.  The demo paper notes that in the companion paper's
    experiments "the user providing the examples is in fact a program that
    labels tuples w.r.t. a goal join query" — this module is that program.
    A real human plugs in through {!of_fun} (see the CLI). *)

type t

val label : t -> Jim_partition.Partition.t -> State.label
(** Label a tuple given its signature. *)

val label_tuple : t -> Jim_relational.Tuple0.t -> State.label

val of_goal : Jim_partition.Partition.t -> t
(** The sound user with goal predicate [θ*]: positive iff [θ* ⊑ sig]. *)

val goal : t -> Jim_partition.Partition.t option

val of_fun : (Jim_partition.Partition.t -> State.label) -> t

val noisy : seed:int -> flip_probability:float -> t -> t
(** Wraps an oracle so each answer is flipped independently with the given
    probability — failure injection for contradiction handling. *)
