type outcome = {
  session : Session.outcome;
  questions : int;
  paid_labels : int;
  majority_flips : int;
}

let majority votes worker sg =
  let pos = ref 0 in
  for _ = 1 to votes do
    if Oracle.label worker sg = State.Pos then incr pos
  done;
  let label = if 2 * !pos > votes then State.Pos else State.Neg in
  let unanimous = !pos = 0 || !pos = votes in
  (label, not unanimous)

let run ?seed ~votes ~strategy ~worker rel =
  if votes <= 0 || votes mod 2 = 0 then
    invalid_arg "Crowd.run: votes must be odd and positive";
  let questions = ref 0 and flips = ref 0 in
  let voting =
    Oracle.of_fun (fun sg ->
        incr questions;
        let label, overruled = majority votes worker sg in
        if overruled then incr flips;
        label)
  in
  let session = Session.run ?seed ~strategy ~oracle:voting rel in
  {
    session;
    questions = !questions;
    paid_labels = !questions * votes;
    majority_flips = !flips;
  }
