module Partition = Jim_partition.Partition
module Tuple0 = Jim_relational.Tuple0

type t = {
  label_fn : Partition.t -> State.label;
  goal : Partition.t option;
}

let label o sg = o.label_fn sg
let label_tuple o t = label o (Tuple0.signature t)

let of_goal g =
  {
    label_fn =
      (fun sg -> if Partition.refines g sg then State.Pos else State.Neg);
    goal = Some g;
  }

let goal o = o.goal

let of_fun f = { label_fn = f; goal = None }

let noisy ~seed ~flip_probability inner =
  let rng = Random.State.make [| seed |] in
  {
    label_fn =
      (fun sg ->
        let honest = inner.label_fn sg in
        if Random.State.float rng 1.0 < flip_probability then
          match honest with State.Pos -> State.Neg | State.Neg -> State.Pos
        else honest);
    goal = None;
  }
