lib/core/explain.mli: Jim_partition Jim_relational State
