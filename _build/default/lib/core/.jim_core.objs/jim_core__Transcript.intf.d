lib/core/transcript.mli: Jim_partition Session State
