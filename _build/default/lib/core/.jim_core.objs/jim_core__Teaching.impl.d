lib/core/teaching.ml: Array Jim_partition List Sigclass State
