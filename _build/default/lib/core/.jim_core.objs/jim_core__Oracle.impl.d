lib/core/oracle.ml: Jim_partition Jim_relational Random State
