lib/core/minimal.mli: Jim_partition State
