lib/core/disjunctive.mli: Jim_partition Jim_relational Oracle State
