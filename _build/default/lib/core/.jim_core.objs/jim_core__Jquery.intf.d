lib/core/jquery.mli: Format Jim_partition Jim_relational
