lib/core/crowd.ml: Oracle Session State
