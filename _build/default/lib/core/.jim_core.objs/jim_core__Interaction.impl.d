lib/core/interaction.ml: Array Jim_partition Jim_relational List Oracle Printf Random Session Sigclass State
