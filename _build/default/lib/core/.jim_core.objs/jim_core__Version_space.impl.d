lib/core/version_space.ml: Array Hashtbl Jim_partition List Sigclass State
