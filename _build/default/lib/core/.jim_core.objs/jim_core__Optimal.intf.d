lib/core/optimal.mli: Sigclass State Strategy
