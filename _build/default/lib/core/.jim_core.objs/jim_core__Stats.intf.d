lib/core/stats.mli: Format Session
