lib/core/lookahead2.mli: Strategy
