lib/core/oracle.mli: Jim_partition Jim_relational State
