lib/core/disjunctive.ml: Array Fun Jim_partition Jim_relational List Oracle Random Seq Sigclass State String
