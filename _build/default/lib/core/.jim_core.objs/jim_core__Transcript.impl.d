lib/core/transcript.ml: Buffer Jim_partition List Printf Result Session State String
