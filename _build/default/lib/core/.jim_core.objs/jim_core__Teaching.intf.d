lib/core/teaching.mli: Jim_partition Sigclass State
