lib/core/stats.ml: Array Format List Printf Session Sigclass State Version_space
