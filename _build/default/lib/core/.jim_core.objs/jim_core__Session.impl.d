lib/core/session.ml: Array Explain Jim_partition Jim_relational List Oracle Random Sigclass State Strategy Version_space
