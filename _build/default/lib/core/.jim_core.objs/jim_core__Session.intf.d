lib/core/session.mli: Explain Jim_partition Jim_relational Oracle Random Sigclass State Strategy
