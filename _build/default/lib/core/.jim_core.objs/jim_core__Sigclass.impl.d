lib/core/sigclass.ml: Array Hashtbl Jim_partition Jim_relational List
