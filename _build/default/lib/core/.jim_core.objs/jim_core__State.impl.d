lib/core/state.ml: Format Jim_partition List String
