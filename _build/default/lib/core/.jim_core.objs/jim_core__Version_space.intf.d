lib/core/version_space.mli: Jim_partition Sigclass State
