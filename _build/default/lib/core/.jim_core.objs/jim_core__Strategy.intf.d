lib/core/strategy.mli: Jim_partition Random Sigclass State
