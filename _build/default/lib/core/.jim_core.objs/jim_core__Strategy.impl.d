lib/core/strategy.ml: Array Jim_partition List Random Sigclass State String Version_space
