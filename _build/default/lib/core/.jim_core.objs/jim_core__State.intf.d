lib/core/state.mli: Format Jim_partition
