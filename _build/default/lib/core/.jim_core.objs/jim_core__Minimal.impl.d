lib/core/minimal.ml: Jim_partition List Set State Stdlib
