lib/core/jquery.ml: Array Format Hashtbl Jim_partition Jim_relational List Printf String
