lib/core/explain.ml: Jim_partition Jim_relational List State String
