lib/core/optimal.ml: Array Hashtbl List Sigclass State Strategy
