lib/core/lookahead2.ml: Array List Sigclass State Strategy
