lib/core/sigclass.mli: Jim_partition Jim_relational
