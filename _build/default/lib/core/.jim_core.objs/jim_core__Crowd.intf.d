lib/core/crowd.mli: Jim_relational Oracle Session Strategy
