lib/core/interaction.mli: Jim_partition Jim_relational Oracle Strategy
