module Partition = Jim_partition.Partition
module Lattice = Jim_partition.Lattice
module Schema = Jim_relational.Schema

type why =
  | Forced_positive of Partition.t list
  | Forced_negative of Partition.t
  | Open_question of Partition.t * Partition.t

(* Greedy minimisation: drop any positive whose removal keeps the meet
   below the signature.  The result is minimal (no member removable), not
   necessarily minimum. *)
let minimise_positive_witness n positives sg =
  let covers subset = Partition.refines (Lattice.meet_all n subset) sg in
  assert (covers positives);
  let rec shrink kept = function
    | [] -> List.rev kept
    | p :: rest ->
      if covers (List.rev_append kept rest) then shrink kept rest
      else shrink (p :: kept) rest
  in
  shrink [] positives

let explain (st : State.t) ~positives sg =
  let n = st.State.n in
  if not (Partition.equal (Lattice.meet_all n positives) st.State.s) then
    invalid_arg "Explain.explain: positives do not match the state";
  match State.classify st sg with
  | State.Certain_pos -> Forced_positive (minimise_positive_witness n positives sg)
  | State.Certain_neg ->
    let m = Partition.meet st.State.s sg in
    let u =
      List.find (fun u -> Partition.refines m u) st.State.negatives
    in
    Forced_negative u
  | State.Informative ->
    (* Not certain-positive: s itself rejects the tuple.  Not
       certain-negative: s ∧ sig is a consistent predicate and selects
       it. *)
    let selector = Partition.meet st.State.s sg in
    Open_question (selector, st.State.s)

let check (st : State.t) sg = function
  | Forced_positive witnesses ->
    (* The quoted positives force the selection... and they must actually
       be at least as specific as the state knows (each within ↑s is not
       required — they are example signatures, so s ⊑ each). *)
    List.for_all (fun w -> Partition.refines st.State.s w) witnesses
    && Partition.refines (Lattice.meet_all st.State.n witnesses) sg
  | Forced_negative u ->
    List.exists (Partition.equal u) st.State.negatives
    && Partition.refines (Partition.meet st.State.s sg) u
  | Open_question (selector, rejector) ->
    State.consistent st selector
    && State.consistent st rejector
    && Partition.refines selector sg
    && not (Partition.refines rejector sg)

let to_string schema why =
  let names = Schema.names schema in
  let render p =
    let s = Partition.to_string_names names p in
    if Partition.is_bottom p then "(no equalities)" else s
  in
  match why with
  | Forced_positive [] ->
    "selected by every predicate (all its attributes are pairwise equal)"
  | Forced_positive ws ->
    "forced positive: any predicate selecting the labelled example(s) "
    ^ String.concat ", " (List.map render ws)
    ^ " must select this tuple"
  | Forced_negative u ->
    "forced negative: selecting it would also select the rejected example "
    ^ render u
  | Open_question (selector, rejector) ->
    "still informative: " ^ render selector ^ " selects it but "
    ^ render rejector ^ " does not"
