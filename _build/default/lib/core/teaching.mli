(** Teaching sets: how few labels would an {e omniscient} teacher need?

    A teaching set for a goal predicate on an instance is a set of
    (tuple, goal-label) pairs after which no informative tuple remains —
    i.e. any consistent learner must output an instance-equivalent
    predicate.  Its minimum size is a lower bound for non-adaptive
    labelling and a natural yardstick for the interactive strategies
    (which must discover the labels one question at a time). *)

val is_teaching_set :
  goal:Jim_partition.Partition.t ->
  Sigclass.cls array ->
  int list ->
  bool
(** [is_teaching_set ~goal classes chosen]: do the goal-labels of the
    chosen classes decide every class of the instance?  Raises
    [Invalid_argument] if the goal's labelling of [chosen] is itself
    inconsistent (impossible for genuine goal labellings). *)

val greedy :
  goal:Jim_partition.Partition.t ->
  Sigclass.cls array ->
  (int * State.label) list
(** Greedy omniscient teacher: repeatedly give the goal-label that
    decides the most still-informative classes.  Returns the lesson in
    teaching order; always a valid teaching set. *)

val exact_minimum :
  ?max_size:int ->
  goal:Jim_partition.Partition.t ->
  Sigclass.cls array ->
  (int * State.label) list option
(** Smallest teaching set, by exhaustive search over subsets of
    increasing size (exponential; [None] if nothing up to [max_size],
    default 6, works — the greedy answer bounds the true minimum from
    above anyway). *)
