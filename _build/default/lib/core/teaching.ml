module Partition = Jim_partition.Partition

let goal_label goal sg =
  if Partition.refines goal sg then State.Pos else State.Neg

let state_after ~goal classes chosen =
  List.fold_left
    (fun st c ->
      let sg = classes.(c).Sigclass.sg in
      match State.add st (goal_label goal sg) sg with
      | Ok st' -> st'
      | Error `Contradiction ->
        invalid_arg "Teaching: goal labels are inconsistent")
    (State.create (Partition.size goal))
    chosen

let all_decided st classes =
  Array.for_all
    (fun (c : Sigclass.cls) -> State.classify st c.sg <> State.Informative)
    classes

let is_teaching_set ~goal classes chosen =
  all_decided (state_after ~goal classes chosen) classes

let greedy ~goal classes =
  let n = Partition.size goal in
  let rec go st lesson =
    if all_decided st classes then List.rev lesson
    else begin
      (* Pick the informative class whose goal-label decides the most
         classes.  Ties break on first occurrence. *)
      let best = ref None in
      Array.iteri
        (fun c (cls : Sigclass.cls) ->
          if State.classify st cls.sg = State.Informative then begin
            let st' = State.add_exn st (goal_label goal cls.sg) cls.sg in
            let decided = ref 0 in
            Array.iter
              (fun (c2 : Sigclass.cls) ->
                if State.classify st' c2.sg <> State.Informative then
                  incr decided)
              classes;
            match !best with
            | Some (_, _, d) when d >= !decided -> ()
            | _ -> best := Some (c, st', !decided)
          end)
        classes;
      match !best with
      | None -> List.rev lesson (* unreachable: not all decided *)
      | Some (c, st', _) ->
        go st' ((c, goal_label goal classes.(c).Sigclass.sg) :: lesson)
    end
  in
  go (State.create n) []

let exact_minimum ?(max_size = 6) ~goal classes =
  let k = Array.length classes in
  let label c = goal_label goal classes.(c).Sigclass.sg in
  (* Subsets of [0..k-1] of given size, in lexicographic order. *)
  let rec subsets size from acc found =
    match !found with
    | Some _ -> ()
    | None ->
      if size = 0 then begin
        let chosen = List.rev acc in
        if is_teaching_set ~goal classes chosen then found := Some chosen
      end
      else
        for c = from to k - size do
          if !found = None then subsets (size - 1) (c + 1) (c :: acc) found
        done
  in
  let rec try_size size =
    if size > max_size || size > k then None
    else begin
      let found = ref None in
      subsets size 0 [] found;
      match !found with
      | Some chosen -> Some (List.map (fun c -> (c, label c)) chosen)
      | None -> try_size (size + 1)
    end
  in
  if is_teaching_set ~goal classes [] then Some [] else try_size 1
