(* Depth-2 maximin.  For candidate c:
     score2(c) = min over consistent answers a of
                   decided(c, a) + best one-step maximin in state(c, a)
   The follow-up term is 0 when the answer already finishes the session. *)

let informative_of st classes =
  let out = ref [] in
  Array.iteri
    (fun i (c : Sigclass.cls) ->
      if State.classify st c.Sigclass.sg = State.Informative then
        out := i :: !out)
    classes;
  List.rev !out

let one_step_maximin st classes informative c =
  let p, n = Strategy.decided_counts st classes informative c in
  min p n

let best_one_step st classes =
  let informative = informative_of st classes in
  List.fold_left
    (fun acc c -> max acc (one_step_maximin st classes informative c))
    0 informative

let strategy ?(beam = 8) () =
  let pick (ctx : Strategy.ctx) =
    match ctx.Strategy.informative with
    | [] -> None
    | informative ->
      (* Beam: keep the candidates with the best one-step maximin. *)
      let scored =
        List.map
          (fun c ->
            (c, one_step_maximin ctx.Strategy.state ctx.Strategy.classes informative c))
          informative
      in
      let beam_set =
        List.sort (fun (_, a) (_, b) -> compare b a) scored
        |> List.filteri (fun i _ -> i < beam)
        |> List.map fst
      in
      let score2 c =
        let sg = ctx.Strategy.classes.(c).Sigclass.sg in
        let st_pos, st_neg = Strategy.hypothetical ctx.Strategy.state sg in
        let arm label_state =
          match label_state with
          | None -> max_int (* impossible answer does not constrain the min *)
          | Some st' ->
            let decided =
              List.fold_left
                (fun acc i ->
                  if
                    State.classify st'
                      ctx.Strategy.classes.(i).Sigclass.sg
                    <> State.Informative
                  then acc + 1
                  else acc)
                0 informative
            in
            decided + best_one_step st' ctx.Strategy.classes
        in
        min (arm st_pos) (arm st_neg)
      in
      let best =
        List.fold_left
          (fun (bc, bs) c ->
            let s = score2 c in
            if s > bs then (c, s) else (bc, bs))
          (List.hd beam_set, score2 (List.hd beam_set))
          (List.tl beam_set)
      in
      Some (fst best)
  in
  {
    Strategy.name = "lookahead-2";
    descr = "two-step maximin lookahead (beam-limited)";
    kind = `Lookahead;
    pick;
  }
