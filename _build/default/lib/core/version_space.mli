(** The version space: the set of predicates consistent with a
    {!State.t}, i.e. [↓s] minus the ideals of the stored negatives.

    Counting is exact (inclusion–exclusion over the negative antichain,
    in floating point); enumeration is exhaustive and only for small
    attribute counts (brute-force oracles in tests, the optimal
    strategy). *)

val count : State.t -> float
(** Number of consistent predicates; [0.] exactly on contradiction,
    [>= 1.] otherwise ([s] itself is always consistent). *)

val log_count : State.t -> float

val is_singleton_on : State.t -> Sigclass.cls array -> bool
(** Have the labels pinned the goal down {e on this instance} — is there
    no informative class left?  (This is JIM's termination test: unique
    up to instance-equivalence, not unique in the lattice.) *)

val enumerate : State.t -> Jim_partition.Partition.t list
(** All consistent predicates, by filtering [↓s].  Raises
    [Invalid_argument] when the ideal is unreasonably large (guard:
    [count > 1e6]). *)

val mem : State.t -> Jim_partition.Partition.t -> bool
(** Alias of {!State.consistent}. *)

val equivalence_classes :
  State.t -> Sigclass.cls array -> (bool array * Jim_partition.Partition.t list) list
(** Partition the consistent predicates by the subset of signature classes
    they select (instance-equivalence).  Enumerative — small states only.
    Each element is (selection bitmap over classes, predicates). *)
