(** Signature classes: the instance grouped by tuple signature.

    Two tuples with the same signature are indistinguishable to every
    equi-join predicate, so the inference engine works on signature
    classes weighted by multiplicity instead of raw rows.  The number of
    classes is bounded by [Bell arity] and in practice tiny compared to
    the instance. *)

type cls = {
  sg : Jim_partition.Partition.t;  (** the shared signature *)
  rows : int list;                 (** row numbers in the source relation, ascending *)
  card : int;                      (** [List.length rows] *)
}

val classes : Jim_relational.Relation.t -> cls array
(** Classes ordered by first occurrence in the relation. *)

val of_signatures : Jim_partition.Partition.t list -> cls array
(** Build classes from bare signatures (row [i] is signature [i] of the
    list); convenient for synthetic workloads and tests. *)

val singletons : Jim_relational.Relation.t -> cls array
(** One class per row, {e without} merging equal signatures — the
    ungrouped baseline the grouping ablation bench compares against.
    Semantically interchangeable with {!classes} (the engine may just
    ask about duplicate signatures it could have pruned). *)

val representative : cls -> int
(** Smallest row number of the class. *)

val total_rows : cls array -> int

val find : cls array -> Jim_partition.Partition.t -> int option
(** Index of the class carrying the given signature. *)
