module Partition = Jim_partition.Partition
module Lattice = Jim_partition.Lattice

module PairSet = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

(* All minimal hitting sets of [sets] (each a PairSet).  Classic
   branch-and-prune: branch on the elements of the first set not yet hit,
   then discard non-minimal results. *)
let minimal_hitting_sets sets =
  let rec go chosen remaining acc =
    match remaining with
    | [] -> PairSet.of_list chosen :: acc
    | d :: rest ->
      if List.exists (fun e -> PairSet.mem e d) chosen then
        go chosen rest acc
      else
        PairSet.fold (fun e acc -> go (e :: chosen) rest acc) d acc
  in
  let candidates = go [] sets [] in
  List.filter
    (fun h ->
      not
        (List.exists
           (fun h' -> (not (PairSet.equal h h')) && PairSet.subset h' h)
           candidates))
    candidates
  |> List.sort_uniq PairSet.compare

let most_general (st : State.t) =
  let n = st.State.n in
  match st.State.negatives with
  | [] -> [ Partition.bottom n ]
  | negs ->
    let s_pairs = PairSet.of_list (Partition.pairs st.State.s) in
    let diffs =
      List.map
        (fun u -> PairSet.diff s_pairs (PairSet.of_list (Partition.pairs u)))
        negs
    in
    if List.exists PairSet.is_empty diffs then
      (* A negative swallowed s: contradiction, empty version space. *)
      []
    else
      minimal_hitting_sets diffs
      |> List.map (fun h -> Partition.of_pairs n (PairSet.elements h))
      |> Lattice.minimal_elements

let describe st = (State.canonical st, most_general st)
