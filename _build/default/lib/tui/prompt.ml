type source = { mutable next : unit -> string option }

let stdin_source =
  {
    next =
      (fun () ->
        match input_line stdin with
        | line -> Some line
        | exception End_of_file -> None);
  }

let of_list answers =
  let remaining = ref answers in
  {
    next =
      (fun () ->
        match !remaining with
        | [] -> None
        | a :: rest ->
          remaining := rest;
          Some a);
  }

let read_line src = src.next ()

type answer = Yes | No | Quit | Help | Undo

let ask_label ?(out = stdout) src question =
  let rec go () =
    Printf.fprintf out "%s [y/n/u/q] " question;
    flush out;
    match read_line src with
    | None -> Quit
    | Some line -> (
      match String.lowercase_ascii (String.trim line) with
      | "y" | "yes" | "+" -> Yes
      | "n" | "no" | "-" -> No
      | "q" | "quit" -> Quit
      | "h" | "help" | "?" -> Help
      | "u" | "undo" -> Undo
      | _ ->
        Printf.fprintf out
          "please answer y (in the join), n (not), u (undo), or q.\n";
        go ())
  in
  go ()
