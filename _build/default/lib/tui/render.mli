(** Table rendering for the interactive screens of Fig. 3: the instance
    with a label column ([+]/[-]/blank), uninformative rows grayed out,
    and the proposed tuple highlighted. *)

type row_mark = Unlabeled | Labeled_pos | Labeled_neg | Grayed | Proposed

val table :
  ?marks:row_mark array ->
  ?row_numbers:bool ->
  Jim_relational.Relation.t ->
  string
(** Box-drawn table of the relation; [marks.(i)] styles row [i].
    [row_numbers] (default true) adds the paper-style (1)-(n) column. *)

val engine_view : Jim_core.Session.t -> Jim_relational.Relation.t -> string
(** Render the instance according to the engine's current knowledge:
    certain rows grayed (with their forced label shown), informative rows
    plain. *)

val partition_line :
  Jim_relational.Schema.t -> Jim_partition.Partition.t -> string
(** One-line rendering of a predicate over named attributes
    ("To = City AND Airline = Discount"; "TRUE" when empty). *)
