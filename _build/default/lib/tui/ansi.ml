type style =
  | Bold
  | Dim
  | Underline
  | Reverse
  | Fg_red
  | Fg_green
  | Fg_yellow
  | Fg_blue
  | Fg_magenta
  | Fg_cyan
  | Fg_gray

let enabled = ref (Unix.isatty Unix.stdout)

let code = function
  | Bold -> "1"
  | Dim -> "2"
  | Underline -> "4"
  | Reverse -> "7"
  | Fg_red -> "31"
  | Fg_green -> "32"
  | Fg_yellow -> "33"
  | Fg_blue -> "34"
  | Fg_magenta -> "35"
  | Fg_cyan -> "36"
  | Fg_gray -> "90"

let style styles text =
  if (not !enabled) || styles = [] then text
  else
    Printf.sprintf "\027[%sm%s\027[0m"
      (String.concat ";" (List.map code styles))
      text

let strip s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '\027' && i + 1 < n && s.[i + 1] = '[' then skip (i + 2)
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  and skip i =
    if i >= n then ()
    else if (s.[i] >= '0' && s.[i] <= '9') || s.[i] = ';' then skip (i + 1)
    else go (i + 1)
  in
  go 0;
  Buffer.contents buf

let visible_length s = String.length (strip s)
