(** The statistics panel the demo keeps on screen: labelled /
    auto-determined percentages and the shrinking version space. *)

val line : Jim_core.Stats.t -> string
(** One-line summary for the status bar. *)

val panel : Jim_core.Stats.t -> string
(** Multi-line panel with a proportion bar. *)
