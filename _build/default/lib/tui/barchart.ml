type bar = { label : string; value : float; annotation : string }

let render ?(width = 40) ?(unit_label = "") bars =
  let maxv = List.fold_left (fun m b -> Float.max m b.value) 0.0 bars in
  let label_w =
    List.fold_left (fun m b -> max m (String.length b.label)) 0 bars
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun b ->
      if b.value < 0.0 then invalid_arg "Barchart.render: negative value";
      let len =
        if maxv <= 0.0 then 0
        else int_of_float (Float.round (b.value /. maxv *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s%s %s%s\n" label_w b.label
           (String.make len '#')
           (String.make (width - len) ' ')
           b.annotation unit_label))
    bars;
  Buffer.contents buf

let of_counts counts =
  List.map
    (fun (label, v) ->
      { label; value = float_of_int v; annotation = string_of_int v })
    counts

let benefit ~baseline others =
  let base_label, base_count = baseline in
  let bars =
    {
      label = base_label;
      value = float_of_int base_count;
      annotation = Printf.sprintf "%d (baseline)" base_count;
    }
    :: List.map
         (fun (label, v) ->
           let saving =
             if base_count = 0 then 0.0
             else
               100.0 *. float_of_int (base_count - v) /. float_of_int base_count
           in
           {
             label;
             value = float_of_int v;
             annotation = Printf.sprintf "%d (-%.0f%%)" v saving;
           })
         others
  in
  render ~unit_label:" interactions" bars
