(** ANSI terminal styling.  Styling is applied through {!style} so that a
    single [enabled := false] (dumb terminals, test capture) turns the
    whole UI into plain text without changing layout code. *)

type style =
  | Bold
  | Dim        (** the "grayed out" rendering of uninformative tuples *)
  | Underline
  | Reverse
  | Fg_red
  | Fg_green
  | Fg_yellow
  | Fg_blue
  | Fg_magenta
  | Fg_cyan
  | Fg_gray

val enabled : bool ref
(** Defaults to [true] iff stdout is a TTY. *)

val style : style list -> string -> string
(** Wrap text in escape codes (identity when disabled). *)

val strip : string -> string
(** Remove all ANSI escape sequences. *)

val visible_length : string -> int
(** Length in characters once escapes are stripped (ASCII-oriented;
    multi-byte sequences count per byte). *)
