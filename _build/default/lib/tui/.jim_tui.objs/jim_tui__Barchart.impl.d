lib/tui/barchart.ml: Buffer Float List Printf String
