lib/tui/ansi.mli:
