lib/tui/prompt.mli:
