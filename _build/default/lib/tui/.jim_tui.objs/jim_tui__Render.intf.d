lib/tui/render.mli: Jim_core Jim_partition Jim_relational
