lib/tui/render.ml: Ansi Array Buffer Jim_core Jim_partition Jim_relational List Printf String
