lib/tui/prompt.ml: Printf String
