lib/tui/progress.mli: Jim_core
