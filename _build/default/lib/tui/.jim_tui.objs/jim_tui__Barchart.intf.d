lib/tui/barchart.mli:
