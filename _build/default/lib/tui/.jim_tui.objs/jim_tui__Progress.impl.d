lib/tui/progress.ml: Ansi Jim_core Printf String
