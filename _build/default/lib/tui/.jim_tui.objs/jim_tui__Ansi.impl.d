lib/tui/ansi.ml: Buffer List Printf String Unix
