(** Horizontal ASCII bar charts — the Fig. 4 "showing the benefit of using
    a strategy" panel: one bar per interaction mode / strategy, scaled to
    the widest value. *)

type bar = { label : string; value : float; annotation : string }

val render : ?width:int -> ?unit_label:string -> bar list -> string
(** [width] is the maximum bar body width in characters (default 40).
    Values must be non-negative; all-zero charts render empty bars. *)

val of_counts : (string * int) list -> bar list
(** Bars from (label, interaction count), annotated with the count. *)

val benefit :
  baseline:string * int -> (string * int) list -> string
(** The Fig. 4 panel proper: the user's mode as baseline, then each
    strategy with its count and the saving relative to the baseline
    ("-73%"). *)
