(** Input handling for the interactive loop.  An input source abstracts
    stdin so the whole TUI is scriptable in tests ("press" a canned
    sequence of answers). *)

type source

val stdin_source : source
val of_list : string list -> source
(** Canned answers; raises [End_of_file] past the end. *)

val read_line : source -> string option
(** [None] on end of input. *)

type answer = Yes | No | Quit | Help | Undo

val ask_label : ?out:out_channel -> source -> string -> answer
(** Print the question and parse y/n/q/h/u (case-insensitive, with
    re-prompting on junk).  End of input is [Quit]. *)
