module Relation = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Value = Jim_relational.Value
module Tuple0 = Jim_relational.Tuple0
module Partition = Jim_partition.Partition

type row_mark = Unlabeled | Labeled_pos | Labeled_neg | Grayed | Proposed

let mark_cell = function
  | Unlabeled -> " "
  | Labeled_pos -> Ansi.style [ Ansi.Bold; Ansi.Fg_green ] "+"
  | Labeled_neg -> Ansi.style [ Ansi.Bold; Ansi.Fg_red ] "-"
  | Grayed -> Ansi.style [ Ansi.Dim ] "."
  | Proposed -> Ansi.style [ Ansi.Bold; Ansi.Fg_yellow ] "?"

let style_of_mark = function
  | Grayed -> [ Ansi.Dim ]
  | Proposed -> [ Ansi.Bold; Ansi.Fg_yellow ]
  | Labeled_pos -> [ Ansi.Fg_green ]
  | Labeled_neg -> [ Ansi.Fg_red ]
  | Unlabeled -> []

let pad width s =
  let v = Ansi.visible_length s in
  if v >= width then s else s ^ String.make (width - v) ' '

let table ?marks ?(row_numbers = true) rel =
  let schema = Relation.schema rel in
  let ncols = Schema.arity schema in
  let headers = Array.to_list (Schema.names schema) in
  let body =
    List.map
      (fun t -> List.map Value.to_string (Array.to_list t))
      (Relation.tuples rel)
  in
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row c)))
          (String.length h) body)
      headers
  in
  let buf = Buffer.create 1024 in
  let sep =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ (if row_numbers then "+------+" else "+")
  in
  let add_line cells suffix styles =
    Buffer.add_string buf "|";
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Buffer.add_string buf
          (" " ^ Ansi.style styles (pad w cell) ^ " |"))
      cells;
    Buffer.add_string buf suffix;
    Buffer.add_char buf '\n';
    ignore ncols
  in
  Buffer.add_string buf (sep ^ "\n");
  add_line headers (if row_numbers then "      |" else "") [ Ansi.Bold ];
  Buffer.add_string buf (sep ^ "\n");
  List.iteri
    (fun i row ->
      let mark =
        match marks with
        | Some m when i < Array.length m -> m.(i)
        | _ -> Unlabeled
      in
      let suffix =
        if row_numbers then
          Printf.sprintf " %s (%2d)|" (mark_cell mark) (i + 1)
        else ""
      in
      add_line row suffix (style_of_mark mark))
    body;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let engine_view eng rel =
  let marks =
    Array.init (Relation.cardinality rel) (fun r ->
        match Jim_core.Session.row_status eng r with
        | Jim_core.State.Informative -> Unlabeled
        | Jim_core.State.Certain_pos | Jim_core.State.Certain_neg -> Grayed)
  in
  table ~marks rel

let partition_line schema p =
  let names = Schema.names schema in
  let atoms =
    List.concat_map
      (fun block ->
        match block with
        | [] | [ _ ] -> []
        | r :: rest ->
          List.map (fun m -> names.(r) ^ " = " ^ names.(m)) rest)
      (Partition.nontrivial_blocks p)
  in
  match atoms with [] -> "TRUE" | _ -> String.concat " AND " atoms
