let max_exact = 24

(* Bell triangle in native ints, up to max_exact (Bell 24 < 2^62). *)
let exact_table =
  lazy
    (let b = Array.make (max_exact + 1) 1 in
     let row = ref [| 1 |] in
     for n = 1 to max_exact do
       let prev = !row in
       let cur = Array.make (n + 1) 0 in
       cur.(0) <- prev.(n - 1);
       for k = 1 to n do
         cur.(k) <- cur.(k - 1) + prev.(k - 1)
       done;
       b.(n) <- cur.(0);
       row := cur
     done;
     b)

let bell n =
  if n < 0 || n > max_exact then invalid_arg "Bell.bell: out of range";
  (Lazy.force exact_table).(n)

let max_float_n = 218

let float_table =
  lazy
    (let b = Array.make (max_float_n + 1) 1.0 in
     let row = ref [| 1.0 |] in
     (try
        for n = 1 to max_float_n do
          let prev = !row in
          let cur = Array.make (n + 1) 0.0 in
          cur.(0) <- prev.(n - 1);
          for k = 1 to n do
            cur.(k) <- cur.(k - 1) +. prev.(k - 1)
          done;
          b.(n) <- cur.(0);
          if b.(n) = infinity then raise Exit;
          row := cur
        done
      with Exit -> ());
     (* Entries left at 1.0 past an overflow point are patched to inf. *)
     let overflowed = ref false in
     for n = 1 to max_float_n do
       if b.(n) = infinity then overflowed := true
       else if !overflowed then b.(n) <- infinity
     done;
     b)

let bell_float n =
  if n < 0 then invalid_arg "Bell.bell_float: negative";
  if n > max_float_n then infinity else (Lazy.force float_table).(n)

let log_bell n =
  let v = bell_float n in
  if v = infinity then
    (* Crude Berend–Tassa style upper bound, good enough as a magnitude. *)
    let nf = float_of_int n in
    nf *. (log nf -. log (log (nf +. 2.0)) -. 0.5)
  else log v

let count_refinements sizes =
  List.fold_left (fun acc s -> acc *. bell_float s) 1.0 sizes
