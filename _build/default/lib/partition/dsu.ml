type t = {
  parent : int array;
  rank : int array;
  mutable classes : int;
}

let create n =
  if n < 0 then invalid_arg "Dsu.create: negative size";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let size d = Array.length d.parent

let rec find d i =
  let p = d.parent.(i) in
  if p = i then i
  else begin
    let r = find d p in
    d.parent.(i) <- r;
    r
  end

let union d i j =
  let ri = find d i and rj = find d j in
  if ri = rj then false
  else begin
    let ki = d.rank.(ri) and kj = d.rank.(rj) in
    if ki < kj then d.parent.(ri) <- rj
    else if kj < ki then d.parent.(rj) <- ri
    else begin
      d.parent.(rj) <- ri;
      d.rank.(ri) <- ki + 1
    end;
    d.classes <- d.classes - 1;
    true
  end

let same d i j = find d i = find d j

let class_count d = d.classes

let canonical d =
  let n = size d in
  (* The smallest member of each class is met first when scanning left to
     right, so recording the first occurrence of each root yields the
     minimum-element representative. *)
  let first = Array.make n (-1) in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = find d i in
    if first.(r) < 0 then first.(r) <- i;
    out.(i) <- first.(r)
  done;
  out
