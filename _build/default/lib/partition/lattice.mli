(** Derived lattice utilities over {!Partition.t}: n-ary meets/joins and
    cardinalities of ideals and of ideal differences — the quantities JIM's
    version space is made of. *)

val meet_all : int -> Partition.t list -> Partition.t
(** Meet of a list; the empty meet is {!Partition.top} [n] (the neutral
    element for meet, matching the "no positive examples yet" state). *)

val join_all : int -> Partition.t list -> Partition.t
(** Join of a list; the empty join is {!Partition.bottom} [n]. *)

val down_count : Partition.t -> float
(** [|↓p|]: number of partitions refining [p]. *)

val down_inter_count : Partition.t list -> float
(** [|↓p₁ ∩ … ∩ ↓pₖ|] = [|↓(p₁ ∧ … ∧ pₖ)|]; requires a non-empty list. *)

val down_minus_count : top:Partition.t -> excluded:Partition.t list -> float
(** [|↓top \ (↓e₁ ∪ … ∪ ↓eₖ)|] by inclusion–exclusion over the excluded
    tops.  Exact (in float) for up to {!max_exclusions} exclusions after
    redundancy elimination; beyond that, falls back to the Bonferroni
    truncation at depth 2, which is a lower bound reported as an estimate.
    This is the exact size of JIM's version space: [top] is the meet of the
    positive signatures, the exclusions the (meets with the) negative
    signatures. *)

val max_exclusions : int

val maximal_elements : Partition.t list -> Partition.t list
(** Antichain of ⊑-maximal elements (duplicates removed). *)

val minimal_elements : Partition.t list -> Partition.t list
