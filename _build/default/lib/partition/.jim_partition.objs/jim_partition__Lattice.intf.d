lib/partition/lattice.mli: Partition
