lib/partition/dsu.mli:
