lib/partition/bell.mli:
