lib/partition/dsu.ml: Array
