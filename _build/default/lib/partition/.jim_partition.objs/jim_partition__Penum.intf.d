lib/partition/penum.mli: Partition Seq
