lib/partition/lattice.ml: Array Bell Float List Partition
