lib/partition/penum.ml: Array Bell Hashtbl List Partition
