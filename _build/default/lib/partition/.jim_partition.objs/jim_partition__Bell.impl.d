lib/partition/bell.ml: Array Lazy List
