lib/partition/partition.ml: Array Buffer Dsu Format Hashtbl List Stdlib String
