lib/partition/partition.mli: Dsu Format
