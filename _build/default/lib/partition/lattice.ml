let meet_all n = function
  | [] -> Partition.top n
  | p :: rest -> List.fold_left Partition.meet p rest

let join_all n = function
  | [] -> Partition.bottom n
  | p :: rest -> List.fold_left Partition.join p rest

let down_count p = Bell.count_refinements (Partition.block_sizes p)

let down_inter_count = function
  | [] -> invalid_arg "Lattice.down_inter_count: empty list"
  | p :: rest -> down_count (List.fold_left Partition.meet p rest)

(* Exact inclusion-exclusion costs 2^k meets; strategies call the count
   once per candidate per question, so the cutover to the Bonferroni
   bound has to stay small. *)
let max_exclusions = 10

let maximal_elements ps =
  let keep p =
    not
      (List.exists
         (fun q -> (not (Partition.equal p q)) && Partition.refines p q)
         ps)
  in
  List.sort_uniq Partition.compare (List.filter keep ps)

let minimal_elements ps =
  let keep p =
    not
      (List.exists
         (fun q -> (not (Partition.equal p q)) && Partition.refines q p)
         ps)
  in
  List.sort_uniq Partition.compare (List.filter keep ps)

let down_minus_count ~top ~excluded =
  (* Clip exclusions into the ideal of [top] and drop redundant ones:
     e ⊑ e' makes ↓e ⊆ ↓e'. *)
  let excluded = List.map (Partition.meet top) excluded in
  let excluded = maximal_elements excluded in
  let total = down_count top in
  match excluded with
  | [] -> total
  | _ when List.exists (Partition.equal top) excluded -> 0.0
  | es ->
    let es = Array.of_list es in
    let k = Array.length es in
    if k <= max_exclusions then begin
      (* Inclusion–exclusion over all non-empty subsets; the meet of a
         subset is built incrementally along the subset-enumeration
         recursion to avoid recomputing from scratch. *)
      let acc = ref total in
      let rec go i current sign =
        if i = k then ()
        else begin
          (* Include es.(i). *)
          let m = match current with None -> es.(i) | Some c -> Partition.meet c es.(i) in
          acc := !acc +. (sign *. down_count m);
          go (i + 1) (Some m) (-.sign);
          (* Skip es.(i). *)
          go (i + 1) current sign
        end
      in
      go 0 None (-1.0);
      !acc
    end
    else begin
      (* Bonferroni truncation at depth 2 (lower bound, clamped at 0). *)
      let acc = ref total in
      for i = 0 to k - 1 do
        acc := !acc -. down_count es.(i)
      done;
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          acc := !acc +. down_count (Partition.meet es.(i) es.(j))
        done
      done;
      Float.max 0.0 !acc
    end
