(** Exhaustive enumeration over regions of the partition lattice.

    Only intended for small sizes (tests, the exponential optimal strategy,
    brute-force version-space oracles): the full lattice has [Bell n]
    elements. *)

val iter_all : int -> (Partition.t -> unit) -> unit
(** Iterate over every partition of [{0..n-1}], in restricted-growth-string
    order (which starts at {!Partition.bottom}... more precisely at the
    all-zero RGS, i.e. {!Partition.top}, and ends at {!Partition.bottom}). *)

val all : int -> Partition.t list
(** All partitions of size [n].  Raises [Invalid_argument] when
    [n > Bell.max_exact] would not even fit memory ([n > 12]). *)

val seq_all : int -> Partition.t Seq.t

val iter_below : Partition.t -> (Partition.t -> unit) -> unit
(** Iterate over every partition refining the argument (the order ideal
    [↓p]), including [p] itself and {!Partition.bottom}. *)

val below : Partition.t -> Partition.t list

val count_below : Partition.t -> float
(** [= Bell.count_refinements (block_sizes p)]; exact while representable. *)

val iter_between : Partition.t -> Partition.t -> (Partition.t -> unit) -> unit
(** [iter_between lo hi f] iterates over partitions [q] with
    [lo ⊑ q ⊑ hi] (the interval, isomorphic to a product of partition
    lattices over [hi]'s blocks viewed as sets of [lo]-blocks). *)
