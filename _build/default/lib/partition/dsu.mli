(** Disjoint-set (union-find) structure with path compression and union by
    rank.  Used to build canonical {!Partition.t} values from sets of
    equality atoms, and to compute lattice joins. *)

type t

(** [create n] is a fresh structure over elements [0 .. n-1], each in its
    own singleton class.  Raises [Invalid_argument] if [n < 0]. *)
val create : int -> t

(** Number of elements the structure was created with. *)
val size : t -> int

(** [find d i] is the current representative of [i]'s class. *)
val find : t -> int -> int

(** [union d i j] merges the classes of [i] and [j]; returns [true] iff the
    classes were distinct (i.e. the structure changed). *)
val union : t -> int -> int -> bool

(** [same d i j] holds iff [i] and [j] are in the same class. *)
val same : t -> int -> int -> bool

(** Current number of classes. *)
val class_count : t -> int

(** [canonical d] maps every element to the {e smallest} element of its
    class — the canonical representative array used by {!Partition}. *)
val canonical : t -> int array
