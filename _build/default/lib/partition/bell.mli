(** Bell numbers: [bell n] is the number of partitions of an [n]-set,
    i.e. the size of the partition lattice [Π_n].  Used for exact
    version-space counting: the number of partitions refining a given
    partition is the product of the Bell numbers of its block sizes. *)

val max_exact : int
(** Largest [n] for which [bell n] fits in a native [int] (= 24 on
    64-bit). *)

val bell : int -> int
(** Raises [Invalid_argument] if [n < 0] or [n > max_exact]. *)

val bell_float : int -> float
(** Bell number as a float (exact up to [max_exact], then computed in
    floating point via the triangle; usable as a magnitude for entropy
    computations).  Supported up to [n = 218] (beyond which the value
    overflows to [infinity], which is returned). *)

val log_bell : int -> float
(** Natural log of [bell n], safe for large [n]. *)

val count_refinements : int list -> float
(** [count_refinements sizes] is the number of partitions refining a
    partition with blocks of the given sizes: [∏ bell_float size]. *)
