(* Enumerate partitions of an arbitrary element list via restricted growth
   strings over the list positions, calling [f] with the blocks (lists of
   the original elements). *)
let iter_set_partitions elems f =
  match elems with
  | [] -> f []
  | _ ->
    let elems = Array.of_list elems in
    let k = Array.length elems in
    let rgs = Array.make k 0 in
    let emit () =
      let nblocks = 1 + Array.fold_left max 0 rgs in
      let acc = Array.make nblocks [] in
      for i = k - 1 downto 0 do
        acc.(rgs.(i)) <- elems.(i) :: acc.(rgs.(i))
      done;
      f (Array.to_list acc)
    in
    (* rgs.(0) = 0 always; position i may take values 0 .. 1+max(prefix). *)
    let rec go i maxv =
      if i = k then emit ()
      else
        for v = 0 to maxv + 1 do
          rgs.(i) <- v;
          go (i + 1) (max maxv v)
        done
    in
    if k = 0 then f []
    else begin
      rgs.(0) <- 0;
      go 1 0
    end

let iter_all n f =
  iter_set_partitions (List.init n (fun i -> i)) (fun blocks ->
      f (Partition.of_blocks n blocks))

let all n =
  if n > 12 then invalid_arg "Penum.all: size too large to materialise";
  let out = ref [] in
  iter_all n (fun p -> out := p :: !out);
  List.rev !out

let seq_all n = List.to_seq (all n)

(* Partitions refining [p]: an independent choice of a set partition inside
   each block of [p]. *)
let iter_below p f =
  let n = Partition.size p in
  let bs = Partition.blocks p in
  let rec go remaining chosen =
    match remaining with
    | [] -> f (Partition.of_blocks n chosen)
    | block :: rest ->
      iter_set_partitions block (fun sub -> go rest (List.rev_append sub chosen))
  in
  go bs []

let below p =
  let out = ref [] in
  iter_below p (fun q -> out := q :: !out);
  List.rev !out

let count_below p = Bell.count_refinements (Partition.block_sizes p)

(* Interval [lo, hi]: inside each block of [hi], the lo-blocks it contains
   may be merged arbitrarily; enumerate set partitions of the lo-block
   representatives per hi-block and splice the merges on top of lo. *)
let iter_between lo hi f =
  if not (Partition.refines lo hi) then invalid_arg "Penum.iter_between";
  let n = Partition.size lo in
  let lo_pairs = Partition.pairs lo in
  (* lo-representatives grouped by hi-block. *)
  let groups = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if Partition.rep lo i = i then begin
      let h = Partition.rep hi i in
      let cur = try Hashtbl.find groups h with Not_found -> [] in
      Hashtbl.replace groups h (i :: cur)
    end
  done;
  let groups = Hashtbl.fold (fun _ reps acc -> reps :: acc) groups [] in
  let rec go remaining merge_pairs =
    match remaining with
    | [] -> f (Partition.of_pairs n (List.rev_append merge_pairs lo_pairs))
    | reps :: rest ->
      iter_set_partitions reps (fun sub_blocks ->
          let extra =
            List.concat_map
              (fun block ->
                match block with
                | [] | [ _ ] -> []
                | x :: others -> List.map (fun y -> (x, y)) others)
              sub_blocks
          in
          go rest (List.rev_append extra merge_pairs))
  in
  go groups []
