(** Scalar and Boolean expressions over a schema's columns: the predicate
    language of the relational substrate (WHERE clauses, selections).

    Equi-join predicates inferred by JIM compile into conjunctions of
    [Cmp (Eq, Col i, Col j)] — see {!of_partition}. *)

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type t =
  | Const of Value.t
  | Col of int
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | IsNull of t

val col : Schema.t -> string -> t
(** Raises [Not_found] on an unknown column. *)

val conj : t list -> t
(** Conjunction of a list; empty list is [Const (Bool true)]. *)

val of_partition : Jim_partition.Partition.t -> t
(** The conjunction of equality atoms demanded by a partition, using one
    atom per (representative, member) edge — a spanning set, not the full
    transitive closure. *)

val eval : t -> Tuple0.t -> Value.t
(** Three-valued-ish evaluation: comparisons involving [Null] yield [Null];
    [And]/[Or]/[Not] treat [Null] as unknown (Kleene logic).  Raises
    [Invalid_argument] on type errors (comparing a bool to an int, adding
    strings, ...). *)

val eval_bool : t -> Tuple0.t -> bool
(** [eval] then "is it definitely true": [Null] counts as false, matching
    SQL WHERE semantics. *)

val typecheck : Schema.t -> t -> (Value.ty option, string) result
(** Static check: column indices in range, operand types compatible.
    [Ok None] means the expression's type is statically unknown (it can
    only be [Null]). *)

val to_string : Schema.t -> t -> string
val pp : Schema.t -> Format.formatter -> t -> unit
