(** Pretty-printer for {!Sql_ast}; [parse (to_string q)] round-trips
    modulo parenthesisation. *)

val expr_to_string : Sql_ast.expr -> string
val query_to_string : Sql_ast.query -> string
val pp_query : Format.formatter -> Sql_ast.query -> unit
