(** Tokeniser for the SQL subset.  Keywords are case-insensitive;
    identifiers keep their case and may be dotted ([rel.attr]); string
    literals use single quotes with [''] as the escape. *)

type token =
  | KW of string
      (** uppercased keyword: SELECT, FROM, WHERE, GROUP, aggregate
          function names, ... *)
  | IDENT of string   (** possibly qualified identifier *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | STAR
  | LPAREN
  | RPAREN
  | OP of string      (** = <> < <= > >= + - / *)
  | EOF

val keywords : string list

val tokenize : string -> (token list, string) result
(** The token list always ends with [EOF].  Errors carry a position. *)

val token_to_string : token -> string
