module Partition = Jim_partition.Partition

type t = { rname : string; schema : Schema.t; rows : Tuple0.t array }

let check_tuple schema (tup : Tuple0.t) =
  if Tuple0.arity tup <> Schema.arity schema then
    invalid_arg "Relation: tuple arity differs from schema arity";
  Array.iteri
    (fun i v ->
      match Value.type_of v with
      | None -> ()
      | Some ty ->
        if ty <> (Schema.column schema i).Schema.cty then
          invalid_arg
            (Printf.sprintf "Relation: type mismatch in column %s"
               (Schema.column schema i).Schema.cname))
    tup

let make ?(name = "r") schema tuples =
  List.iter (check_tuple schema) tuples;
  { rname = name; schema; rows = Array.of_list tuples }

let of_rows ?name schema rows = make ?name schema (List.map Tuple0.make rows)

let name r = r.rname
let schema r = r.schema
let arity r = Schema.arity r.schema
let cardinality r = Array.length r.rows

let tuple r i =
  if i < 0 || i >= Array.length r.rows then invalid_arg "Relation.tuple";
  r.rows.(i)

let tuples r = Array.to_list r.rows
let to_seq r = Array.to_seq r.rows
let iteri f r = Array.iteri f r.rows
let fold f init r = Array.fold_left f init r.rows

let rename rname r = { r with rname }

let with_rows r rows = { r with rows }

let select pred r =
  with_rows r (Array.of_list (List.filter pred (tuples r)))

let project idxs r =
  {
    r with
    schema = Schema.project r.schema idxs;
    rows = Array.map (fun t -> Tuple0.project t idxs) r.rows;
  }

let project_names cnames r =
  project (List.map (Schema.find_exn r.schema) cnames) r

let distinct r =
  let seen = Hashtbl.create (2 * Array.length r.rows) in
  let keep t =
    let key = Array.map Value.hash t |> Array.to_list in
    let bucket = try Hashtbl.find seen key with Not_found -> [] in
    if List.exists (Tuple0.equal t) bucket then false
    else begin
      Hashtbl.replace seen key (t :: bucket);
      true
    end
  in
  select keep r

let sort_by ?(desc = false) keys r =
  let cmp a b =
    let c =
      List.fold_left
        (fun acc k ->
          if acc <> 0 then acc else Value.compare (Tuple0.get a k) (Tuple0.get b k))
        0 keys
    in
    if desc then -c else c
  in
  let rows = Array.copy r.rows in
  Array.stable_sort cmp rows;
  { r with rows }

let limit k r =
  with_rows r (Array.sub r.rows 0 (min k (Array.length r.rows)))

let sample ?(seed = 42) k r =
  let n = Array.length r.rows in
  if k >= n then r
  else begin
    (* Partial Fisher–Yates over the index array, then restore row order
       so sampling commutes with rendering. *)
    let st = Random.State.make [| seed |] in
    let idx = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = i + Random.State.int st (n - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    let chosen = Array.sub idx 0 k in
    Array.sort Stdlib.compare chosen;
    with_rows r (Array.map (fun i -> r.rows.(i)) chosen)
  end

let product_schema a b =
  Schema.concat_qualified [ (a.rname, a.schema); (b.rname, b.schema) ]

let product a b =
  let rows =
    Array.init
      (Array.length a.rows * Array.length b.rows)
      (fun k ->
        let i = k / Array.length b.rows and j = k mod Array.length b.rows in
        Tuple0.concat a.rows.(i) b.rows.(j))
  in
  { rname = a.rname ^ "_x_" ^ b.rname; schema = product_schema a b; rows }

let equi_join ~on a b =
  let key_of cols (t : Tuple0.t) = List.map (fun c -> Tuple0.get t c) cols in
  let lcols = List.map fst on and rcols = List.map snd on in
  let index = Hashtbl.create (2 * Array.length b.rows) in
  Array.iteri
    (fun j t ->
      let key = key_of rcols t in
      if not (List.exists Value.is_null key) then
        Hashtbl.add index key j)
    b.rows;
  let out = ref [] in
  (* Hashtbl.add stacks bindings (latest first); collect matches and
     re-reverse to keep right-row order within each left row. *)
  Array.iter
    (fun ta ->
      let key = key_of lcols ta in
      if not (List.exists Value.is_null key) then begin
        let matches = Hashtbl.find_all index key in
        List.iter
          (fun j -> out := Tuple0.concat ta b.rows.(j) :: !out)
          (List.rev matches)
      end)
    a.rows;
  {
    rname = a.rname ^ "_join_" ^ b.rname;
    schema = product_schema a b;
    rows = Array.of_list (List.rev !out);
  }

let check_compatible op a b =
  let ta = Schema.types a.schema and tb = Schema.types b.schema in
  if Array.length ta <> Array.length tb || not (Array.for_all2 ( = ) ta tb) then
    invalid_arg ("Relation." ^ op ^ ": incompatible schemas")

let union a b =
  check_compatible "union" a b;
  distinct (with_rows a (Array.append a.rows b.rows))

let mem_tuple rows t = Array.exists (Tuple0.equal t) rows

let diff a b =
  check_compatible "diff" a b;
  select (fun t -> not (mem_tuple b.rows t)) a

let intersect a b =
  check_compatible "intersect" a b;
  select (fun t -> mem_tuple b.rows t) a

type aggregate = Count | Sum of int | Min of int | Max of int | Avg of int

let aggregate_ty schema = function
  | Count -> Value.Tint
  | Avg _ -> Value.Tfloat
  | Sum c | Min c | Max c -> (Schema.column schema c).Schema.cty

let eval_aggregate group = function
  | Count -> Value.Int (List.length group)
  | Sum c ->
    List.fold_left
      (fun acc t ->
        let v = Tuple0.get t c in
        if Value.is_null v then acc else if Value.is_null acc then v
        else Value.add acc v)
      Value.Null group
  | Min c ->
    List.fold_left
      (fun acc t ->
        let v = Tuple0.get t c in
        if Value.is_null v then acc
        else if Value.is_null acc || Value.compare v acc < 0 then v
        else acc)
      Value.Null group
  | Max c ->
    List.fold_left
      (fun acc t ->
        let v = Tuple0.get t c in
        if Value.is_null v then acc
        else if Value.is_null acc || Value.compare v acc > 0 then v
        else acc)
      Value.Null group
  | Avg c ->
    let sum, cnt =
      List.fold_left
        (fun (s, k) t ->
          match Tuple0.get t c with
          | Value.Null -> (s, k)
          | Value.Int i -> (s +. float_of_int i, k + 1)
          | Value.Float f -> (s +. f, k + 1)
          | _ -> invalid_arg "Relation.group_by: Avg on non-numeric column")
        (0.0, 0) group
    in
    if cnt = 0 then Value.Null else Value.Float (sum /. float_of_int cnt)

let group_by keys aggs r =
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun t ->
      let key = List.map (fun k -> Tuple0.get t k) keys in
      if not (Hashtbl.mem groups key) then order := key :: !order;
      Hashtbl.replace groups key
        (t :: (try Hashtbl.find groups key with Not_found -> [])))
    r.rows;
  let schema =
    Schema.make
      (List.map (fun k -> Schema.column r.schema k) keys
      @ List.map
          (fun (n, a) -> { Schema.cname = n; cty = aggregate_ty r.schema a })
          aggs)
  in
  let rows =
    List.rev_map
      (fun key ->
        let group = List.rev (Hashtbl.find groups key) in
        Array.of_list (key @ List.map (fun (_, a) -> eval_aggregate group a) aggs))
      !order
  in
  { rname = r.rname ^ "_grouped"; schema; rows = Array.of_list rows }

let signatures r = Array.map Tuple0.signature r.rows

let satisfying theta r = select (Tuple0.satisfies theta) r

let equal_contents a b =
  Schema.equal a.schema b.schema
  && Array.length a.rows = Array.length b.rows
  &&
  let sort rows =
    let rows = Array.copy rows in
    Array.sort Tuple0.compare rows;
    rows
  in
  let ra = sort a.rows and rb = sort b.rows in
  Array.for_all2 Tuple0.equal ra rb

let pp fmt r =
  Format.fprintf fmt "%s%a [%d rows]" r.rname Schema.pp r.schema
    (cardinality r)
