(** Typed atomic values stored in relations.

    JIM's inference only ever tests values for equality, so the value
    domain is deliberately simple; the full comparison order is still
    defined so that the relational substrate can sort, index and aggregate. *)

type ty = Tint | Tfloat | Tstring | Tbool | Tdate

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of { y : int; m : int; d : int }

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string

val equal : t -> t -> bool
(** SQL-flavoured: [Null] is not equal to anything, including itself. *)

val identical : t -> t -> bool
(** Structural equality, with [identical Null Null = true].  This is the
    equality used to build tuple signatures. *)

val compare : t -> t -> int
(** Total order: [Null] first, then by type ([ty] declaration order), then
    by value. *)

val hash : t -> int

val is_null : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val parse : ty -> string -> (t, string) result
(** Parse a literal of the given type; the empty string parses to [Null]. *)

val parse_auto : string -> t
(** Best-effort: int, then float, then bool, then date (YYYY-MM-DD), then
    string; empty string is [Null]. *)

val date : int -> int -> int -> t
(** Raises [Invalid_argument] on an impossible calendar date. *)

(** Arithmetic helpers used by the expression evaluator; [Null] is
    absorbing, type mismatches raise [Invalid_argument]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
