type plan =
  | Scan of string
  | Select of Expr.t * plan
  | Project of (int * string) list * plan
  | Product of plan * plan
  | EquiJoin of (int * int) list * plan * plan
  | GroupBy of int list * (string * Relation.aggregate) list * plan
  | Distinct of plan
  | Sort of (int * bool) list * plan
  | Limit of int * plan

type catalog = string -> Relation.t option

let ( let* ) = Result.bind

let rec output_schema cat = function
  | Scan name -> (
    match cat name with
    | Some r -> Ok (Relation.schema r)
    | None -> Error (Printf.sprintf "unknown relation %S" name))
  | Select (_, p) | Distinct p | Sort (_, p) | Limit (_, p) ->
    output_schema cat p
  | Project (cols, p) ->
    let* s = output_schema cat p in
    let columns =
      List.map
        (fun (i, out_name) ->
          { (Schema.column s i) with Schema.cname = out_name })
        cols
    in
    (try Ok (Schema.make columns) with Invalid_argument m -> Error m)
  | Product (a, b) | EquiJoin (_, a, b) ->
    let* sa = output_schema cat a in
    let* sb = output_schema cat b in
    (try Ok (Schema.concat sa sb) with Invalid_argument m -> Error m)
  | GroupBy (keys, aggs, p) ->
    let* s = output_schema cat p in
    let agg_ty = function
      | Relation.Count -> Value.Tint
      | Relation.Avg _ -> Value.Tfloat
      | Relation.Sum c | Relation.Min c | Relation.Max c ->
        (Schema.column s c).Schema.cty
    in
    (try
       Ok
         (Schema.make
            (List.map (fun k -> Schema.column s k) keys
            @ List.map
                (fun (name, a) -> { Schema.cname = name; cty = agg_ty a })
                aggs))
     with Invalid_argument m -> Error m)

let rec run cat = function
  | Scan name -> (
    match cat name with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "unknown relation %S" name))
  | Select (e, p) ->
    let* r = run cat p in
    let* _ =
      Result.map_error
        (fun m -> "WHERE clause: " ^ m)
        (Expr.typecheck (Relation.schema r) e)
    in
    Ok (Relation.select (Expr.eval_bool e) r)
  | Project (cols, p) ->
    let* r = run cat p in
    let projected = Relation.project (List.map fst cols) r in
    let* schema = output_schema cat (Project (cols, p)) in
    Ok (Relation.make ~name:(Relation.name r) schema (Relation.tuples projected))
  | Product (a, b) ->
    (* Operands are renamed so self-joins do not clash; the plan's own
       output schema (already disambiguated by compile) replaces the
       product's synthetic one. *)
    let* ra = run cat a in
    let* rb = run cat b in
    let prod = Relation.product (Relation.rename "l" ra) (Relation.rename "r" rb) in
    let* schema = output_schema cat (Product (a, b)) in
    Ok (Relation.make ~name:(Relation.name prod) schema (Relation.tuples prod))
  | EquiJoin (on, a, b) ->
    let* ra = run cat a in
    let* rb = run cat b in
    let joined =
      Relation.equi_join ~on (Relation.rename "l" ra) (Relation.rename "r" rb)
    in
    let* schema = output_schema cat (EquiJoin (on, a, b)) in
    Ok (Relation.make ~name:(Relation.name joined) schema (Relation.tuples joined))
  | GroupBy (keys, aggs, p) ->
    let* r = run cat p in
    let* schema = output_schema cat (GroupBy (keys, aggs, p)) in
    (match Relation.group_by keys aggs r with
    | grouped ->
      Ok (Relation.make ~name:(Relation.name r) schema (Relation.tuples grouped))
    | exception Invalid_argument m -> Error m)
  | Distinct p ->
    let* r = run cat p in
    Ok (Relation.distinct r)
  | Sort (keys, p) ->
    let* r = run cat p in
    (* Apply keys right-to-left with a stable sort so the leftmost key is
       the primary one, honouring per-key direction. *)
    Ok
      (List.fold_left
         (fun acc (k, desc) -> Relation.sort_by ~desc [ k ] acc)
         r (List.rev keys))
  | Limit (k, p) ->
    let* r = run cat p in
    Ok (Relation.limit k r)

(* ------------------------------------------------------------------ *)
(* Compilation from the SQL AST.                                       *)

let rec conjuncts = function
  | Sql_ast.Eand (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec resolve_expr schema (e : Sql_ast.expr) : (Expr.t, string) result =
  let open Sql_ast in
  let bin ctor a b =
    let* a = resolve_expr schema a in
    let* b = resolve_expr schema b in
    Ok (ctor a b)
  in
  match e with
  | Eint i -> Ok (Expr.Const (Value.Int i))
  | Enum f -> Ok (Expr.Const (Value.Float f))
  | Estr s -> Ok (Expr.Const (Value.Str s))
  | Ebool b -> Ok (Expr.Const (Value.Bool b))
  | Enull -> Ok (Expr.Const Value.Null)
  | Ecol c -> (
    match Schema.find schema c with
    | Some i -> Ok (Expr.Col i)
    | None -> Error (Printf.sprintf "unknown or ambiguous column %S" c))
  | Ecmp (op, a, b) ->
    let cmp =
      match op with
      | Ceq -> Expr.Eq
      | Cneq -> Expr.Neq
      | Clt -> Expr.Lt
      | Cleq -> Expr.Leq
      | Cgt -> Expr.Gt
      | Cgeq -> Expr.Geq
    in
    bin (fun a b -> Expr.Cmp (cmp, a, b)) a b
  | Eand (a, b) -> bin (fun a b -> Expr.And (a, b)) a b
  | Eor (a, b) -> bin (fun a b -> Expr.Or (a, b)) a b
  | Enot a ->
    let* a = resolve_expr schema a in
    Ok (Expr.Not a)
  | Eadd (a, b) -> bin (fun a b -> Expr.Add (a, b)) a b
  | Esub (a, b) -> bin (fun a b -> Expr.Sub (a, b)) a b
  | Emul (a, b) -> bin (fun a b -> Expr.Mul (a, b)) a b
  | Ediv (a, b) -> bin (fun a b -> Expr.Div (a, b)) a b
  | Eisnull a ->
    let* a = resolve_expr schema a in
    Ok (Expr.IsNull a)

(* Push equality atoms [Col i = Col j] that bridge a Product's two sides
   into an EquiJoin; other conjuncts stay in the residual selection. *)
let rec push_joins cat plan =
  match plan with
  | Select (e, inner) -> begin
    let inner = push_joins cat inner in
    match inner with
    | Product (a, b) -> begin
      match output_schema cat a with
      | Error _ -> Select (e, inner)
      | Ok sa ->
        let la = Schema.arity sa in
        let is_bridge = function
          | Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Col j) ->
            (i < la && j >= la) || (j < la && i >= la)
          | _ -> false
        in
        let atoms, residual = List.partition is_bridge (expr_conjuncts e) in
        if atoms = [] then Select (e, inner)
        else
          let on =
            List.map
              (function
                | Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Col j) ->
                  if i < la then (i, j - la) else (j, i - la)
                | _ -> assert false)
              atoms
          in
          let joined = EquiJoin (on, a, b) in
          if residual = [] then joined else Select (Expr.conj residual, joined)
    end
    | _ -> Select (e, inner)
  end
  | Project (cols, p) -> Project (cols, push_joins cat p)
  | Product (a, b) -> Product (push_joins cat a, push_joins cat b)
  | EquiJoin (on, a, b) -> EquiJoin (on, push_joins cat a, push_joins cat b)
  | GroupBy (keys, aggs, p) -> GroupBy (keys, aggs, push_joins cat p)
  | Distinct p -> Distinct (push_joins cat p)
  | Sort (k, p) -> Sort (k, push_joins cat p)
  | Limit (k, p) -> Limit (k, push_joins cat p)
  | Scan _ as p -> p

and expr_conjuncts = function
  | Expr.And (a, b) -> expr_conjuncts a @ expr_conjuncts b
  | e -> [ e ]

(* Aggregate SELECT lists: every plain item must be a GROUP BY key; the
   GroupBy node computes keys-then-aggregates, and a final Project puts
   the columns back in SELECT-list order. *)
let compile_aggregation full_schema (q : Sql_ast.query) plan =
  let open Sql_ast in
  let resolve c =
    match Schema.find full_schema c with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "unknown or ambiguous column %S" c)
  in
  let* keys =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* i = resolve c in
        Ok (i :: acc))
      (Ok []) q.group_by
  in
  let keys = List.rev keys in
  let numeric i =
    match (Schema.column full_schema i).Schema.cty with
    | Value.Tint | Value.Tfloat -> true
    | Value.Tstring | Value.Tbool | Value.Tdate -> false
  in
  let default_name fn arg =
    let fn_name =
      match fn with
      | Fcount -> "count"
      | Fsum -> "sum"
      | Fmin -> "min"
      | Fmax -> "max"
      | Favg -> "avg"
    in
    match arg with None -> fn_name | Some c -> fn_name ^ "_" ^ c
  in
  (* Walk the SELECT list, building (output name, source) where source is
     either a key column or an aggregate. *)
  let* outputs =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Star -> Error "SELECT * cannot be combined with aggregation"
        | Item (Ecol c, alias) ->
          let* i = resolve c in
          if not (List.mem i keys) then
            Error
              (Printf.sprintf "column %S must appear in the GROUP BY clause" c)
          else Ok ((Option.value alias ~default:c, `Key i) :: acc)
        | Item _ ->
          Error "only column references are supported in SELECT lists"
        | Agg (fn, arg, alias) ->
          let* agg =
            match (fn, arg) with
            | Fcount, None -> Ok Relation.Count
            | Fcount, Some c ->
              (* COUNT over a column counts group members here, same as a
                 bare COUNT - rows are never dropped per column. *)
              let* _ = resolve c in
              Ok Relation.Count
            | (Fsum | Favg), Some c ->
              let* i = resolve c in
              if not (numeric i) then
                Error (Printf.sprintf "aggregate on non-numeric column %S" c)
              else Ok (if fn = Fsum then Relation.Sum i else Relation.Avg i)
            | Fmin, Some c ->
              let* i = resolve c in
              Ok (Relation.Min i)
            | Fmax, Some c ->
              let* i = resolve c in
              Ok (Relation.Max i)
            | (Fsum | Fmin | Fmax | Favg), None ->
              Error "this aggregate needs a column argument"
          in
          Ok ((Option.value alias ~default:(default_name fn arg), `Agg agg) :: acc))
      (Ok []) q.select
  in
  let outputs = List.rev outputs in
  let aggs =
    List.filter_map
      (function name, `Agg a -> Some (name, a) | _, `Key _ -> None)
      outputs
  in
  (* GroupBy output layout: keys (in GROUP BY order) then aggs (in SELECT
     order); project into SELECT order. *)
  let key_position i =
    let rec go pos = function
      | [] -> assert false
      | k :: _ when k = i -> pos
      | _ :: rest -> go (pos + 1) rest
    in
    go 0 keys
  in
  let agg_position name =
    let rec go pos = function
      | [] -> assert false
      | (n, _) :: _ when String.equal n name -> pos
      | _ :: rest -> go (pos + 1) rest
    in
    List.length keys + go 0 aggs
  in
  let projection =
    List.map
      (fun (name, src) ->
        match src with
        | `Key i -> (key_position i, name)
        | `Agg _ -> (agg_position name, name))
      outputs
  in
  Ok (Project (projection, GroupBy (keys, aggs, plan)))

let compile cat (q : Sql_ast.query) =
  let open Sql_ast in
  (* FROM: qualified product of the named relations. *)
  let* parts =
    List.fold_left
      (fun acc { rel; alias } ->
        let* acc = acc in
        match cat rel with
        | None -> Error (Printf.sprintf "unknown relation %S" rel)
        | Some r ->
          let label = Option.value alias ~default:rel in
          Ok ((label, rel, Relation.schema r) :: acc))
      (Ok []) q.from
  in
  let parts = List.rev parts in
  let* () = if parts = [] then Error "empty FROM clause" else Ok () in
  let* full_schema =
    match Schema.concat_qualified (List.map (fun (l, _, s) -> (l, s)) parts) with
    | s -> Ok s
    | exception Invalid_argument _ ->
      Error "duplicate relation in FROM clause: give each occurrence an alias"
  in
  (* Each Scan is wrapped in a Project that qualifies its column names so
     the product schema has no duplicates. *)
  let scan_plan (label, rel, s) =
    let qualified = Schema.qualify label s in
    Project
      (List.mapi
         (fun i c -> (i, c.Schema.cname))
         (Schema.columns qualified),
       Scan rel)
  in
  let from_plan =
    match List.map scan_plan parts with
    | [] -> assert false
    | p :: rest -> List.fold_left (fun acc p' -> Product (acc, p')) p rest
  in
  (* WHERE *)
  let* plan =
    match q.where with
    | None -> Ok from_plan
    | Some e ->
      let* conds =
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* c = resolve_expr full_schema c in
            Ok (c :: acc))
          (Ok []) (conjuncts e)
      in
      Ok (Select (Expr.conj (List.rev conds), from_plan))
  in
  (* SELECT list: plain projection, or grouped aggregation when the list
     mentions aggregates / a GROUP BY clause is present. *)
  let has_aggregates =
    q.group_by <> []
    || List.exists (function Agg _ -> true | Star | Item _ -> false) q.select
  in
  let* plan =
    if has_aggregates then compile_aggregation full_schema q plan
    else
      match q.select with
      | [ Star ] -> Ok plan
      | items ->
        let* cols =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | Star ->
                Ok
                  (List.rev
                     (List.mapi
                        (fun i c -> (i, c.Schema.cname))
                        (Schema.columns full_schema))
                  @ acc)
              | Item (Ecol c, alias) -> (
                match Schema.find full_schema c with
                | Some i -> Ok ((i, Option.value alias ~default:c) :: acc)
                | None ->
                  Error (Printf.sprintf "unknown or ambiguous column %S" c))
              | Item _ ->
                Error "only column references are supported in SELECT lists"
              | Agg _ -> assert false (* routed to compile_aggregation *))
            (Ok []) items
        in
        Ok (Project (List.rev cols, plan))
  in
  let plan = if q.distinct then Distinct plan else plan in
  (* ORDER BY against the plan's own output schema. *)
  let* out_schema = output_schema cat plan in
  let* plan =
    match q.order_by with
    | [] -> Ok plan
    | items ->
      let* keys =
        List.fold_left
          (fun acc { key; desc } ->
            let* acc = acc in
            match Schema.find out_schema key with
            | Some i -> Ok ((i, desc) :: acc)
            | None -> Error (Printf.sprintf "unknown ORDER BY column %S" key))
          (Ok []) items
      in
      Ok (Sort (List.rev keys, plan))
  in
  let plan = match q.limit with None -> plan | Some k -> Limit (k, plan) in
  Ok (push_joins cat plan)

let run_sql cat s =
  let* q = Sql_parser.parse s in
  let* plan = compile cat q in
  run cat plan
