let holds_fd r ~lhs ~rhs =
  let tbl = Hashtbl.create (2 * Relation.cardinality r) in
  let ok = ref true in
  Relation.iteri
    (fun _ t ->
      if !ok then begin
        let key = List.map (fun c -> Tuple0.get t c) lhs in
        let v = Tuple0.get t rhs in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.add tbl key v
        | Some v' -> if not (Value.identical v v') then ok := false
      end)
    r;
  !ok

let unary_fds r =
  let n = Relation.arity r in
  let out = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto 0 do
      if a <> b && holds_fd r ~lhs:[ a ] ~rhs:b then out := (a, b) :: !out
    done
  done;
  !out

let is_key r cols =
  let tbl = Hashtbl.create (2 * Relation.cardinality r) in
  let ok = ref true in
  Relation.iteri
    (fun _ t ->
      if !ok then begin
        let key = List.map (fun c -> Tuple0.get t c) cols in
        if Hashtbl.mem tbl key then ok := false else Hashtbl.add tbl key ()
      end)
    r;
  !ok

let minimal_keys ?(max_size = 3) r =
  let n = Relation.arity r in
  let found = ref [] in
  let has_subset_key cols =
    List.exists
      (fun key -> List.for_all (fun c -> List.mem c cols) key)
      !found
  in
  (* Levelwise: all column subsets of each size, skipping supersets of
     known keys. *)
  let rec subsets size from acc =
    if size = 0 then begin
      let cols = List.rev acc in
      if (not (has_subset_key cols)) && is_key r cols then
        found := cols :: !found
    end
    else
      for c = from to n - size do
        subsets (size - 1) (c + 1) (c :: acc)
      done
  in
  for size = 1 to min max_size n do
    subsets size 0 []
  done;
  List.sort
    (fun a b ->
      let c = compare (List.length a) (List.length b) in
      if c <> 0 then c else compare a b)
    !found

let distinct_values r c =
  let tbl = Hashtbl.create 64 in
  Relation.iteri
    (fun _ t ->
      let v = Tuple0.get t c in
      if not (Value.is_null v) then Hashtbl.replace tbl v ())
    r;
  tbl

let inclusion r a s b =
  let left = distinct_values r a in
  if Hashtbl.length left = 0 then 1.0
  else begin
    let right = distinct_values s b in
    let hits = ref 0 in
    Hashtbl.iter (fun v () -> if Hashtbl.mem right v then incr hits) left;
    float_of_int !hits /. float_of_int (Hashtbl.length left)
  end

let suggest_join_pairs ?(threshold = 0.8) r s =
  let tr = Schema.types (Relation.schema r) in
  let ts = Schema.types (Relation.schema s) in
  let out = ref [] in
  Array.iteri
    (fun a ta ->
      Array.iteri
        (fun b tb ->
          if ta = tb then begin
            let score = Float.max (inclusion r a s b) (inclusion s b r a) in
            if score >= threshold then out := (a, b, score) :: !out
          end)
        ts)
    tr;
  List.sort (fun (_, _, x) (_, _, y) -> compare y x) !out
