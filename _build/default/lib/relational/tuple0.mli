(** Tuples: fixed-width arrays of {!Value.t}.  Named [Tuple0] to leave the
    name [Tuple] free for users of the wrapped library. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val make : Value.t list -> t
val concat : t -> t -> t
val project : t -> int list -> t

val equal : t -> t -> bool
(** Pointwise {!Value.identical}. *)

val compare : t -> t -> int
val hash : t -> int

val signature : t -> Jim_partition.Partition.t
(** The partition of attribute positions induced by value identity: [i]
    and [j] share a block iff [Value.identical t.(i) t.(j)].  The single
    bridge between the relational substrate and the inference lattice: a
    tuple satisfies join predicate [θ] iff [θ] refines [signature t]. *)

val satisfies : Jim_partition.Partition.t -> t -> bool
(** [satisfies theta t]: every pair of attributes equated by [theta] holds
    identical values in [t].  Raises [Invalid_argument] if the predicate
    size differs from the tuple arity. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
