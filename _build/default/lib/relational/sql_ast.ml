(** Abstract syntax for the SQL subset understood by the substrate:

    {v
    SELECT [DISTINCT] * | item | COUNT(star) | SUM(col) | ... , ...
    FROM rel [AS alias], ...
    [WHERE condition]
    [GROUP BY col, ...]
    [ORDER BY col [DESC], ...]
    [LIMIT n]
    v}

    Inferred join predicates are rendered into (and re-parsed from) this
    fragment, which also suffices to state the predicates as GAV mappings. *)

type cmp = Ceq | Cneq | Clt | Cleq | Cgt | Cgeq

type expr =
  | Enum of float              (** numeric literal (ints are exact) *)
  | Eint of int
  | Estr of string
  | Ebool of bool
  | Enull
  | Ecol of string             (** possibly qualified column name *)
  | Ecmp of cmp * expr * expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Enot of expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Emul of expr * expr
  | Ediv of expr * expr
  | Eisnull of expr

type agg_fn = Fcount | Fsum | Fmin | Fmax | Favg

type select_item =
  | Star
  | Item of expr * string option
  | Agg of agg_fn * string option * string option
      (** function, argument column ([None] = bare COUNT), alias *)

type from_item = { rel : string; alias : string option }

type order_item = { key : string; desc : bool }

type query = {
  distinct : bool;
  select : select_item list;
  from : from_item list;
  where : expr option;
  group_by : string list;
  order_by : order_item list;
  limit : int option;
}

let simple_select ?(distinct = false) ?where from =
  {
    distinct;
    select = [ Star ];
    from = List.map (fun rel -> { rel; alias = None }) from;
    where;
    group_by = [];
    order_by = [];
    limit = None;
  }
