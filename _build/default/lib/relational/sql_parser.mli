(** Recursive-descent parser for the SQL subset of {!Sql_ast}. *)

val parse : string -> (Sql_ast.query, string) result

val parse_expr : string -> (Sql_ast.expr, string) result
(** Parse a bare condition (e.g. a WHERE clause on its own). *)
