(** Relation schemas: ordered lists of named, typed columns.

    Column names may be qualified ([rel.attr]); {!concat} qualifies the
    columns of each side with its relation name, which is how denormalised
    product schemas are built for join inference. *)

type column = { cname : string; cty : Value.ty }

type t

val make : column list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val of_list : (string * Value.ty) list -> t

val columns : t -> column list
val arity : t -> int
val column : t -> int -> column
val names : t -> string array
val types : t -> Value.ty array

val find : t -> string -> int option
(** Index of a column.  Accepts either the exact stored name or, when the
    stored name is qualified [r.a] and [a] is unambiguous, the bare name. *)

val find_exn : t -> string -> int
(** Raises [Not_found]. *)

val mem : t -> string -> bool

val qualify : string -> t -> t
(** [qualify r s] renames every column [a] (or [x.a]) to [r.a]. *)

val concat : t -> t -> t
(** Raises [Invalid_argument] on duplicate names; qualify first if the two
    sides share names. *)

val concat_qualified : (string * t) list -> t
(** [concat_qualified [(r1, s1); (r2, s2); ...]] qualifies each schema with
    its relation name and concatenates. *)

val project : t -> int list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
