(** In-memory relations: a schema plus an immutable array of tuples.

    All operations are value-oriented and return fresh relations; tuple
    order is deterministic (operations preserve or document their order) so
    experiments are reproducible. *)

type t

val make : ?name:string -> Schema.t -> Tuple0.t list -> t
(** Raises [Invalid_argument] if a tuple's arity differs from the schema's
    or a non-null value's type differs from its column's type. *)

val of_rows : ?name:string -> Schema.t -> Value.t list list -> t

val name : t -> string
val schema : t -> Schema.t
val arity : t -> int
val cardinality : t -> int
val tuple : t -> int -> Tuple0.t
(** [tuple r i] is row [i] (0-based).  Raises [Invalid_argument] if out of
    range. *)

val tuples : t -> Tuple0.t list
val to_seq : t -> Tuple0.t Seq.t
val iteri : (int -> Tuple0.t -> unit) -> t -> unit
val fold : ('a -> Tuple0.t -> 'a) -> 'a -> t -> 'a

val rename : string -> t -> t

(** {1 Unary operators} *)

val select : (Tuple0.t -> bool) -> t -> t
val project : int list -> t -> t
val project_names : string list -> t -> t
(** Raises [Not_found] on an unknown column. *)

val distinct : t -> t
(** Keeps the first occurrence of each tuple; preserves order. *)

val sort_by : ?desc:bool -> int list -> t -> t
(** Stable sort on the given key columns. *)

val limit : int -> t -> t
val sample : ?seed:int -> int -> t -> t
(** [sample k r]: [k] rows drawn without replacement (all rows if
    [k >= cardinality]), deterministic for a given seed, order preserved. *)

(** {1 Binary operators} *)

val product : t -> t -> t
(** Cartesian product; schemas are concatenated after qualification with
    the operand names.  Row order: left-major. *)

val equi_join : on:(int * int) list -> t -> t -> t
(** Hash join on the given (left column, right column) pairs, using
    {!Value.equal} (hence [Null] never joins).  Result schema as for
    {!product}. *)

val union : t -> t -> t
(** Set union (distinct).  Raises [Invalid_argument] on schema arity/type
    mismatch. *)

val diff : t -> t -> t
val intersect : t -> t -> t

(** {1 Aggregation} *)

type aggregate = Count | Sum of int | Min of int | Max of int | Avg of int

val group_by : int list -> (string * aggregate) list -> t -> t
(** Result schema: the key columns followed by one column per aggregate
    (ints for [Count], column type or float for the rest). *)

(** {1 Join-inference views} *)

val signatures : t -> Jim_partition.Partition.t array
(** Signature of every row, in row order. *)

val satisfying : Jim_partition.Partition.t -> t -> t
(** Rows satisfying an equi-join predicate over this relation's attributes
    (the "join result" the user is labelling towards). *)

val equal_contents : t -> t -> bool
(** Same schema and same multiset of tuples (order-insensitive). *)

val pp : Format.formatter -> t -> unit
(** Compact one-line summary; use {!Jim_tui.Render} for full tables. *)
