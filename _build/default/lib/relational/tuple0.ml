module Partition = Jim_partition.Partition

type t = Value.t array

let arity = Array.length
let get (t : t) i = t.(i)
let make = Array.of_list
let concat = Array.append
let project (t : t) idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.identical a b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) = Hashtbl.hash (Array.map Value.hash t)

let signature (t : t) =
  let n = Array.length t in
  (* Group positions by value; first occurrence is the canonical (smallest)
     representative, matching Partition's invariant. *)
  let tbl = Hashtbl.create (2 * n) in
  let rep = Array.make n 0 in
  for i = 0 to n - 1 do
    (* Hashtbl keys use structural equality, which coincides with
       Value.identical on this value type. *)
    match Hashtbl.find_opt tbl t.(i) with
    | Some r -> rep.(i) <- r
    | None ->
      Hashtbl.add tbl t.(i) i;
      rep.(i) <- i
  done;
  Partition.of_rep_array rep

let satisfies theta (t : t) =
  if Partition.size theta <> Array.length t then
    invalid_arg "Tuple0.satisfies: arity mismatch";
  Partition.refines theta (signature t)

let to_string t =
  "(" ^ String.concat ", " (List.map Value.to_string (Array.to_list t)) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
