(** Constraint discovery over instances: unary functional dependencies,
    minimal keys and inclusion dependencies.

    The paper's introduction lists constraint inference and data
    integration among JIM's application areas; these profiling primitives
    are the classical seeding step — inclusion dependencies between two
    sources nominate the candidate equality atoms a join predicate could
    use, and keys/FDs explain which inferred predicates are lossless. *)

val unary_fds : Relation.t -> (int * int) list
(** All pairs [(a, b)], [a <> b], with [a -> b]: any two tuples agreeing
    on column [a] (under {!Value.identical}) agree on [b].  Sorted
    lexicographically.  Vacuously includes pairs where [a] is a key. *)

val holds_fd : Relation.t -> lhs:int list -> rhs:int -> bool
(** Does the composite dependency [lhs -> rhs] hold? *)

val is_key : Relation.t -> int list -> bool
(** Do the columns jointly distinguish every tuple? *)

val minimal_keys : ?max_size:int -> Relation.t -> int list list
(** Minimal keys, levelwise up to [max_size] columns (default 3);
    supersets of found keys are pruned.  Sorted by size then
    lexicographically. *)

val inclusion : Relation.t -> int -> Relation.t -> int -> float
(** [inclusion r a s b]: fraction of [r]'s non-null distinct [a]-values
    that occur among [s]'s [b]-values — 1.0 for a perfect inclusion
    dependency (e.g. a foreign key), 0.0 for disjoint domains.  Returns
    1.0 when [r.a] has no non-null values. *)

val suggest_join_pairs :
  ?threshold:float -> Relation.t -> Relation.t ->
  (int * int * float) list
(** Candidate equality atoms between two relations: same-typed column
    pairs [(a, b)] whose symmetrised inclusion score
    [max (inclusion r a s b) (inclusion s b r a)] reaches [threshold]
    (default 0.8), best first.  This is the metadata-free "which columns
    could possibly join?" heuristic for disparate sources. *)
