type token =
  | KW of string
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | STAR
  | LPAREN
  | RPAREN
  | OP of string
  | EOF

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "AS";
    "GROUP"; "ORDER"; "BY"; "ASC"; "DESC"; "LIMIT"; "IS"; "NULL";
    "TRUE"; "FALSE"; "COUNT"; "SUM"; "MIN"; "MAX"; "AVG";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let exception Err of string in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | ',' ->
        emit COMMA;
        go (i + 1)
      | '*' ->
        emit STAR;
        go (i + 1)
      | '(' ->
        emit LPAREN;
        go (i + 1)
      | ')' ->
        emit RPAREN;
        go (i + 1)
      | '=' ->
        emit (OP "=");
        go (i + 1)
      | '<' ->
        if i + 1 < n && s.[i + 1] = '>' then begin
          emit (OP "<>");
          go (i + 2)
        end
        else if i + 1 < n && s.[i + 1] = '=' then begin
          emit (OP "<=");
          go (i + 2)
        end
        else begin
          emit (OP "<");
          go (i + 1)
        end
      | '>' ->
        if i + 1 < n && s.[i + 1] = '=' then begin
          emit (OP ">=");
          go (i + 2)
        end
        else begin
          emit (OP ">");
          go (i + 1)
        end
      | '!' when i + 1 < n && s.[i + 1] = '=' ->
        emit (OP "<>");
        go (i + 2)
      | '+' ->
        emit (OP "+");
        go (i + 1)
      | '-' ->
        emit (OP "-");
        go (i + 1)
      | '/' ->
        emit (OP "/");
        go (i + 1)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Err (Printf.sprintf "unterminated string at %d" i))
          else if s.[j] = '\'' then
            if j + 1 < n && s.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf s.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go next
      | c when is_digit c ->
        let j = ref i in
        while !j < n && (is_digit s.[!j] || s.[!j] = '.') do
          incr j
        done;
        let lit = String.sub s i (!j - i) in
        (match int_of_string_opt lit with
        | Some v -> emit (INT v)
        | None -> (
          match float_of_string_opt lit with
          | Some v -> emit (FLOAT v)
          | None -> raise (Err (Printf.sprintf "bad number %S at %d" lit i))));
        go !j
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        let word = String.sub s i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (KW upper) else emit (IDENT word);
        go !j
      | c -> raise (Err (Printf.sprintf "unexpected character %C at %d" c i))
  in
  match go 0 with
  | () ->
    emit EOF;
    Ok (List.rev !tokens)
  | exception Err msg -> Error msg

let token_to_string = function
  | KW k -> k
  | IDENT id -> id
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | COMMA -> ","
  | STAR -> "*"
  | LPAREN -> "("
  | RPAREN -> ")"
  | OP o -> o
  | EOF -> "<eof>"
