open Sql_ast

let cmp_sym = function
  | Ceq -> "="
  | Cneq -> "<>"
  | Clt -> "<"
  | Cleq -> "<="
  | Cgt -> ">"
  | Cgeq -> ">="

let escape_str s =
  String.concat "''" (String.split_on_char '\'' s)

let rec expr_to_string = function
  | Enum f -> Printf.sprintf "%g" f
  | Eint i -> string_of_int i
  | Estr s -> "'" ^ escape_str s ^ "'"
  | Ebool b -> if b then "TRUE" else "FALSE"
  | Enull -> "NULL"
  | Ecol c -> c
  | Ecmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (expr_to_string a) (cmp_sym op) (expr_to_string b)
  | Eand (a, b) ->
    Printf.sprintf "%s AND %s" (paren_or a) (paren_or b)
  | Eor (a, b) ->
    Printf.sprintf "(%s OR %s)" (expr_to_string a) (expr_to_string b)
  | Enot a -> Printf.sprintf "NOT (%s)" (expr_to_string a)
  | Eadd (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_string a) (expr_to_string b)
  | Esub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | Emul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_string a) (expr_to_string b)
  | Ediv (a, b) -> Printf.sprintf "(%s / %s)" (expr_to_string a) (expr_to_string b)
  | Eisnull a -> Printf.sprintf "%s IS NULL" (expr_to_string a)

and paren_or e =
  match e with Eor _ -> "(" ^ expr_to_string e ^ ")" | _ -> expr_to_string e

let agg_fn_name = function
  | Fcount -> "COUNT"
  | Fsum -> "SUM"
  | Fmin -> "MIN"
  | Fmax -> "MAX"
  | Favg -> "AVG"

let select_item_to_string = function
  | Star -> "*"
  | Item (e, None) -> expr_to_string e
  | Item (e, Some a) -> expr_to_string e ^ " AS " ^ a
  | Agg (fn, arg, alias) ->
    agg_fn_name fn ^ "(" ^ Option.value arg ~default:"*" ^ ")"
    ^ (match alias with None -> "" | Some a -> " AS " ^ a)

let from_item_to_string { rel; alias } =
  match alias with None -> rel | Some a -> rel ^ " AS " ^ a

let query_to_string q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if q.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map select_item_to_string q.select));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", " (List.map from_item_to_string q.from));
  (match q.where with
  | None -> ()
  | Some e ->
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (expr_to_string e));
  (match q.group_by with
  | [] -> ()
  | cols ->
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " cols));
  (match q.order_by with
  | [] -> ()
  | items ->
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun { key; desc } -> if desc then key ^ " DESC" else key)
            items)));
  (match q.limit with
  | None -> ()
  | Some k -> Buffer.add_string buf (" LIMIT " ^ string_of_int k));
  Buffer.contents buf

let pp_query fmt q = Format.pp_print_string fmt (query_to_string q)
