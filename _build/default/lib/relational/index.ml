type t = { cols : int list; table : (Value.t list, int list) Hashtbl.t }

let build r cols =
  List.iter
    (fun c ->
      if c < 0 || c >= Relation.arity r then invalid_arg "Index.build")
    cols;
  let table = Hashtbl.create (2 * Relation.cardinality r) in
  Relation.iteri
    (fun i t ->
      let key = List.map (fun c -> Tuple0.get t c) cols in
      let cur = try Hashtbl.find table key with Not_found -> [] in
      Hashtbl.replace table key (i :: cur))
    r;
  (* Store ascending row ids (collect first: mutating a table while
     iterating it is unspecified). *)
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  List.iter (fun (k, v) -> Hashtbl.replace table k (List.rev v)) bindings;
  { cols; table }

let columns ix = ix.cols

let lookup ix key = try Hashtbl.find ix.table key with Not_found -> []

let lookup_tuple ix t = lookup ix (List.map (fun c -> Tuple0.get t c) ix.cols)

let distinct_keys ix = Hashtbl.fold (fun k _ acc -> k :: acc) ix.table []
