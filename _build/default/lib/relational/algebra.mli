(** Logical relational-algebra plans and their evaluator.

    SQL queries compile to plans ({!compile}), plans evaluate against a
    catalog of named relations ({!run}).  The evaluator is deliberately
    straightforward — products materialise — because JIM instances are
    small enough to label interactively by construction. *)

type plan =
  | Scan of string
  | Select of Expr.t * plan
  | Project of (int * string) list * plan    (** (source column, output name) *)
  | Product of plan * plan
  | EquiJoin of (int * int) list * plan * plan
  | GroupBy of int list * (string * Relation.aggregate) list * plan
      (** key columns, (output name, aggregate) list *)
  | Distinct of plan
  | Sort of (int * bool) list * plan         (** (column, descending) *)
  | Limit of int * plan

type catalog = string -> Relation.t option

val output_schema : catalog -> plan -> (Schema.t, string) result

val run : catalog -> plan -> (Relation.t, string) result

val compile : catalog -> Sql_ast.query -> (plan, string) result
(** Resolves names against the catalog, splits the WHERE clause into
    equi-join atoms (pushed into [EquiJoin] when they bridge exactly the
    two sides being combined... in this simple compiler, all atoms stay in
    a [Select] above the [Product]s; correctness over performance) and
    checks column references and types. *)

val run_sql : catalog -> string -> (Relation.t, string) result
(** Parse, compile, run. *)
