type column = { cname : string; cty : Value.ty }

type t = { cols : column array }

let check_duplicates cols =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if Hashtbl.mem tbl c.cname then
        invalid_arg ("Schema: duplicate column name " ^ c.cname);
      Hashtbl.add tbl c.cname ())
    cols

let make cols =
  let cols = Array.of_list cols in
  check_duplicates cols;
  { cols }

let of_list l = make (List.map (fun (cname, cty) -> { cname; cty }) l)

let columns s = Array.to_list s.cols
let arity s = Array.length s.cols
let column s i = s.cols.(i)
let names s = Array.map (fun c -> c.cname) s.cols
let types s = Array.map (fun c -> c.cty) s.cols

let base_name name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let find s name =
  let exact = ref None and bare = ref [] in
  Array.iteri
    (fun i c ->
      if String.equal c.cname name then exact := Some i
      else if String.equal (base_name c.cname) name then bare := i :: !bare)
    s.cols;
  match (!exact, !bare) with
  | Some i, _ -> Some i
  | None, [ i ] -> Some i
  | None, _ -> None

let find_exn s name =
  match find s name with Some i -> i | None -> raise Not_found

let mem s name = find s name <> None

let qualify r s =
  {
    cols =
      Array.map (fun c -> { c with cname = r ^ "." ^ base_name c.cname }) s.cols;
  }

let concat a b =
  let cols = Array.append a.cols b.cols in
  check_duplicates cols;
  { cols }

let concat_qualified parts =
  match parts with
  | [] -> { cols = [||] }
  | (r0, s0) :: rest ->
    List.fold_left
      (fun acc (r, s) -> concat acc (qualify r s))
      (qualify r0 s0) rest

let project s idxs =
  { cols = Array.of_list (List.map (fun i -> s.cols.(i)) idxs) }

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> String.equal x.cname y.cname && x.cty = y.cty)
       a.cols b.cols

let to_string s =
  String.concat ", "
    (List.map
       (fun c -> Printf.sprintf "%s:%s" c.cname (Value.ty_name c.cty))
       (columns s))

let pp fmt s = Format.fprintf fmt "(%s)" (to_string s)
