(** A catalog of named relations plus SQL entry points. *)

type t

val empty : t
val add : Relation.t -> t -> t
(** Registers the relation under {!Relation.name}; replaces silently. *)

val of_relations : Relation.t list -> t
val find : t -> string -> Relation.t option
val find_exn : t -> string -> Relation.t
val names : t -> string list
val catalog : t -> Algebra.catalog

val exec : t -> string -> (Relation.t, string) result
(** Parse, compile and run a SQL query against the catalog. *)

val pp : Format.formatter -> t -> unit
