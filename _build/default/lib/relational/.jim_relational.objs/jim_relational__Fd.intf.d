lib/relational/fd.mli: Relation
