lib/relational/algebra.ml: Expr List Option Printf Relation Result Schema Sql_ast Sql_parser String Value
