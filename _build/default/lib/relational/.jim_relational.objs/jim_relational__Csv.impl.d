lib/relational/csv.ml: Array Buffer Filename Fun List Option Printf Relation Schema String Tuple0 Value
