lib/relational/value.ml: Float Format Hashtbl Printf Stdlib String
