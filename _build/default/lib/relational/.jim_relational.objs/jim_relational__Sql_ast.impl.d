lib/relational/sql_ast.ml: List
