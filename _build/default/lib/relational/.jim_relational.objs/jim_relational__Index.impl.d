lib/relational/index.ml: Hashtbl List Relation Tuple0 Value
