lib/relational/database.ml: Algebra Format List Map Relation String
