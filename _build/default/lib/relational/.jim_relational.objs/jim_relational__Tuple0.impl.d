lib/relational/tuple0.ml: Array Format Hashtbl Jim_partition List Stdlib String Value
