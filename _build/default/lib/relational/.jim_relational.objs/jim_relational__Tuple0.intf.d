lib/relational/tuple0.mli: Format Jim_partition Value
