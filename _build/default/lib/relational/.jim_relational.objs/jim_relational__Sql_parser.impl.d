lib/relational/sql_parser.ml: Option Printf Sql_ast Sql_lexer
