lib/relational/expr.ml: Format Jim_partition List Option Printf Schema Stdlib Tuple0 Value
