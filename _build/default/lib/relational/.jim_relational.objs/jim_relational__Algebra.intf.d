lib/relational/algebra.mli: Expr Relation Schema Sql_ast
