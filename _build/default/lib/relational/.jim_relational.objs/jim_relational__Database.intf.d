lib/relational/database.mli: Algebra Format Relation
