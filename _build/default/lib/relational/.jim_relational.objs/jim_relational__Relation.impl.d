lib/relational/relation.ml: Array Format Hashtbl Jim_partition List Printf Random Schema Stdlib Tuple0 Value
