lib/relational/sql_print.ml: Buffer Format List Option Printf Sql_ast String
