lib/relational/index.mli: Relation Tuple0 Value
