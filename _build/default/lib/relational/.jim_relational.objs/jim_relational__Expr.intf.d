lib/relational/expr.mli: Format Jim_partition Schema Tuple0 Value
