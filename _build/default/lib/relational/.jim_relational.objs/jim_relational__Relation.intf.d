lib/relational/relation.mli: Format Jim_partition Schema Seq Tuple0 Value
