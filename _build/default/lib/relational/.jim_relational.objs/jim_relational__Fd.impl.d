lib/relational/fd.ml: Array Float Hashtbl List Relation Schema Tuple0 Value
