open Sql_ast
open Sql_lexer

exception Err of string

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Err
         (Printf.sprintf "expected %s but found %s" (token_to_string tok)
            (token_to_string (peek st))))

let expect_ident st =
  match peek st with
  | IDENT id ->
    advance st;
    id
  | t -> raise (Err ("expected identifier, found " ^ token_to_string t))

(* Expression grammar, lowest to highest precedence:
   or_expr  := and_expr { OR and_expr }
   and_expr := not_expr { AND not_expr }
   not_expr := NOT not_expr | cmp_expr
   cmp_expr := add_expr [ cmpop add_expr | IS [NOT] NULL ]
   add_expr := mul_expr { plus-or-minus mul_expr }
   mul_expr := atom { times-or-divide atom }
   atom     := literal | column | parenthesised or_expr *)

let cmp_of_op = function
  | "=" -> Ceq
  | "<>" -> Cneq
  | "<" -> Clt
  | "<=" -> Cleq
  | ">" -> Cgt
  | ">=" -> Cgeq
  | o -> raise (Err ("unknown comparison operator " ^ o))

let rec or_expr st =
  let left = and_expr st in
  if peek st = KW "OR" then begin
    advance st;
    Eor (left, or_expr st)
  end
  else left

and and_expr st =
  let left = not_expr st in
  if peek st = KW "AND" then begin
    advance st;
    Eand (left, and_expr st)
  end
  else left

and not_expr st =
  if peek st = KW "NOT" then begin
    advance st;
    Enot (not_expr st)
  end
  else cmp_expr st

and cmp_expr st =
  let left = add_expr st in
  match peek st with
  | OP (("=" | "<>" | "<" | "<=" | ">" | ">=") as o) ->
    advance st;
    Ecmp (cmp_of_op o, left, add_expr st)
  | KW "IS" ->
    advance st;
    let negated =
      if peek st = KW "NOT" then begin
        advance st;
        true
      end
      else false
    in
    expect st (KW "NULL");
    if negated then Enot (Eisnull left) else Eisnull left
  | _ -> left

and add_expr st =
  let rec loop left =
    match peek st with
    | OP "+" ->
      advance st;
      loop (Eadd (left, mul_expr st))
    | OP "-" ->
      advance st;
      loop (Esub (left, mul_expr st))
    | _ -> left
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop left =
    match peek st with
    | STAR ->
      advance st;
      loop (Emul (left, atom st))
    | OP "/" ->
      advance st;
      loop (Ediv (left, atom st))
    | _ -> left
  in
  loop (atom st)

and atom st =
  match peek st with
  | INT i ->
    advance st;
    Eint i
  | FLOAT f ->
    advance st;
    Enum f
  | STRING s ->
    advance st;
    Estr s
  | KW "TRUE" ->
    advance st;
    Ebool true
  | KW "FALSE" ->
    advance st;
    Ebool false
  | KW "NULL" ->
    advance st;
    Enull
  | OP "-" ->
    advance st;
    (* Unary minus on a numeric literal. *)
    (match atom st with
    | Eint i -> Eint (-i)
    | Enum f -> Enum (-.f)
    | e -> Esub (Eint 0, e))
  | IDENT id ->
    advance st;
    Ecol id
  | LPAREN ->
    advance st;
    let e = or_expr st in
    expect st RPAREN;
    e
  | t -> raise (Err ("unexpected token in expression: " ^ token_to_string t))

let parse_alias st =
  if peek st = KW "AS" then begin
    advance st;
    Some (expect_ident st)
  end
  else None

let agg_fn_of_kw = function
  | "COUNT" -> Some Fcount
  | "SUM" -> Some Fsum
  | "MIN" -> Some Fmin
  | "MAX" -> Some Fmax
  | "AVG" -> Some Favg
  | _ -> None

let select_item st =
  match peek st with
  | STAR ->
    advance st;
    Star
  | KW kw when agg_fn_of_kw kw <> None ->
    advance st;
    let fn = Option.get (agg_fn_of_kw kw) in
    expect st LPAREN;
    let arg =
      match peek st with
      | STAR when fn = Fcount ->
        advance st;
        None
      | IDENT id ->
        advance st;
        Some id
      | t ->
        raise
          (Err ("expected a column (or * for COUNT) in aggregate, found "
               ^ token_to_string t))
    in
    expect st RPAREN;
    Agg (fn, arg, parse_alias st)
  | _ ->
    let e = or_expr st in
    Item (e, parse_alias st)

let rec comma_list st item =
  let first = item st in
  if peek st = COMMA then begin
    advance st;
    first :: comma_list st item
  end
  else [ first ]

let from_item st =
  let rel = expect_ident st in
  let alias =
    match peek st with
    | KW "AS" ->
      advance st;
      Some (expect_ident st)
    | IDENT id ->
      advance st;
      Some id
    | _ -> None
  in
  { rel; alias }

let order_item st =
  let key = expect_ident st in
  let desc =
    match peek st with
    | KW "DESC" ->
      advance st;
      true
    | KW "ASC" ->
      advance st;
      false
    | _ -> false
  in
  { key; desc }

let query st =
  expect st (KW "SELECT");
  let distinct =
    if peek st = KW "DISTINCT" then begin
      advance st;
      true
    end
    else false
  in
  let select = comma_list st select_item in
  expect st (KW "FROM");
  let from = comma_list st from_item in
  let where =
    if peek st = KW "WHERE" then begin
      advance st;
      Some (or_expr st)
    end
    else None
  in
  let group_by =
    if peek st = KW "GROUP" then begin
      advance st;
      expect st (KW "BY");
      comma_list st expect_ident
    end
    else []
  in
  let order_by =
    if peek st = KW "ORDER" then begin
      advance st;
      expect st (KW "BY");
      comma_list st order_item
    end
    else []
  in
  let limit =
    if peek st = KW "LIMIT" then begin
      advance st;
      match peek st with
      | INT i ->
        advance st;
        Some i
      | t -> raise (Err ("expected integer after LIMIT, found " ^ token_to_string t))
    end
    else None
  in
  expect st EOF;
  { distinct; select; from; where; group_by; order_by; limit }

let run_parser f s =
  match tokenize s with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks } in
    match f st with v -> Ok v | exception Err msg -> Error msg)

let parse s = run_parser query s

let parse_expr s =
  run_parser
    (fun st ->
      let e = or_expr st in
      expect st EOF;
      e)
    s
