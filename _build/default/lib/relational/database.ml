module M = Map.Make (String)

type t = Relation.t M.t

let empty = M.empty
let add r db = M.add (Relation.name r) r db
let of_relations rs = List.fold_left (fun db r -> add r db) empty rs
let find db name = M.find_opt name db

let find_exn db name =
  match find db name with Some r -> r | None -> raise Not_found

let names db = List.map fst (M.bindings db)
let catalog db name = find db name
let exec db q = Algebra.run_sql (catalog db) q

let pp fmt db =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list Relation.pp)
    (List.map snd (M.bindings db))
