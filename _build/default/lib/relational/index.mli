(** Hash indexes over a relation's columns: map a key (the values of the
    indexed columns) to the row numbers holding it.  The engine indexes
    signature classes with these; {!Relation.equi_join} builds one
    internally. *)

type t

val build : Relation.t -> int list -> t
(** Raises [Invalid_argument] on an out-of-range column. *)

val columns : t -> int list

val lookup : t -> Value.t list -> int list
(** Row numbers (ascending) whose indexed columns equal the key under
    {!Value.identical}. *)

val lookup_tuple : t -> Tuple0.t -> int list
(** Key extracted from a tuple of the indexed relation's arity. *)

val distinct_keys : t -> Value.t list list
