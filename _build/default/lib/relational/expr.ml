module Partition = Jim_partition.Partition

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type t =
  | Const of Value.t
  | Col of int
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | IsNull of t

let col schema cname = Col (Schema.find_exn schema cname)

let conj = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc e' -> And (acc, e')) e rest

let of_partition p =
  conj
    (List.concat_map
       (fun block ->
         match block with
         | [] | [ _ ] -> []
         | r :: rest -> List.map (fun m -> Cmp (Eq, Col r, Col m)) rest)
       (Partition.nontrivial_blocks p))

let comparable a b =
  match (a, b) with
  | Value.Int _, Value.Int _
  | Value.Float _, Value.Float _
  | Value.Int _, Value.Float _
  | Value.Float _, Value.Int _
  | Value.Str _, Value.Str _
  | Value.Bool _, Value.Bool _
  | Value.Date _, Value.Date _ -> true
  | _ -> false

let numeric_compare a b =
  match (a, b) with
  | Value.Int x, Value.Float y -> Stdlib.compare (float_of_int x) y
  | Value.Float x, Value.Int y -> Stdlib.compare x (float_of_int y)
  | _ -> Value.compare a b

let eval_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else if not (comparable a b) then
    invalid_arg "Expr: comparison between incompatible types"
  else
    let c = numeric_compare a b in
    Value.Bool
      (match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Leq -> c <= 0
      | Gt -> c > 0
      | Geq -> c >= 0)

let as_bool3 = function
  | Value.Null -> None
  | Value.Bool b -> Some b
  | _ -> invalid_arg "Expr: expected a boolean operand"

let of_bool3 = function None -> Value.Null | Some b -> Value.Bool b

let rec eval e t =
  match e with
  | Const v -> v
  | Col i -> Tuple0.get t i
  | Cmp (op, a, b) -> eval_cmp op (eval a t) (eval b t)
  | And (a, b) -> begin
    match as_bool3 (eval a t) with
    | Some false -> Value.Bool false
    | av -> (
      match (av, as_bool3 (eval b t)) with
      | _, Some false -> Value.Bool false
      | Some true, bv -> of_bool3 bv
      | None, _ -> Value.Null
      | Some false, _ -> Value.Bool false)
  end
  | Or (a, b) -> begin
    match as_bool3 (eval a t) with
    | Some true -> Value.Bool true
    | av -> (
      match (av, as_bool3 (eval b t)) with
      | _, Some true -> Value.Bool true
      | Some false, bv -> of_bool3 bv
      | None, _ -> Value.Null
      | Some true, _ -> Value.Bool true)
  end
  | Not a -> of_bool3 (Option.map not (as_bool3 (eval a t)))
  | Add (a, b) -> Value.add (eval a t) (eval b t)
  | Sub (a, b) -> Value.sub (eval a t) (eval b t)
  | Mul (a, b) -> Value.mul (eval a t) (eval b t)
  | Div (a, b) -> Value.div (eval a t) (eval b t)
  | IsNull a -> Value.Bool (Value.is_null (eval a t))

let eval_bool e t =
  match eval e t with Value.Bool true -> true | _ -> false

let numeric = function
  | Some Value.Tint | Some Value.Tfloat | None -> true
  | _ -> false

let unify_numeric a b =
  match (a, b) with
  | Some Value.Tfloat, _ | _, Some Value.Tfloat -> Some Value.Tfloat
  | Some Value.Tint, _ | _, Some Value.Tint -> Some Value.Tint
  | None, None -> None
  | _ -> assert false

let typecheck schema e =
  let exception Err of string in
  let rec ty = function
    | Const v -> Value.type_of v
    | Col i ->
      if i < 0 || i >= Schema.arity schema then
        raise (Err (Printf.sprintf "column index %d out of range" i));
      Some (Schema.column schema i).Schema.cty
    | Cmp (_, a, b) ->
      let ta = ty a and tb = ty b in
      let ok =
        match (ta, tb) with
        | None, _ | _, None -> true
        | Some x, Some y ->
          x = y
          || (numeric (Some x) && numeric (Some y))
      in
      if not ok then
        raise
          (Err
             (Printf.sprintf "cannot compare %s with %s"
                (match ta with Some t' -> Value.ty_name t' | None -> "null")
                (match tb with Some t' -> Value.ty_name t' | None -> "null")));
      Some Value.Tbool
    | And (a, b) | Or (a, b) ->
      let check x =
        match ty x with
        | Some Value.Tbool | None -> ()
        | Some t' ->
          raise (Err ("boolean operator applied to " ^ Value.ty_name t'))
      in
      check a;
      check b;
      Some Value.Tbool
    | Not a -> begin
      match ty a with
      | Some Value.Tbool | None -> Some Value.Tbool
      | Some t' -> raise (Err ("NOT applied to " ^ Value.ty_name t'))
    end
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      let ta = ty a and tb = ty b in
      if not (numeric ta && numeric tb) then
        raise (Err "arithmetic on non-numeric operand");
      unify_numeric ta tb
    | IsNull a ->
      ignore (ty a);
      Some Value.Tbool
  in
  match ty e with v -> Ok v | exception Err msg -> Error msg

let cmp_sym = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let rec to_string schema e =
  let s = to_string schema in
  match e with
  | Const (Value.Str v) -> "'" ^ v ^ "'"
  | Const v -> Value.to_string v
  | Col i -> (Schema.column schema i).Schema.cname
  | Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (s a) (cmp_sym op) (s b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (s a) (s b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (s a) (s b)
  | Not a -> Printf.sprintf "(NOT %s)" (s a)
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (s a) (s b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (s a) (s b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (s a) (s b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (s a) (s b)
  | IsNull a -> Printf.sprintf "(%s IS NULL)" (s a)

let pp schema fmt e = Format.pp_print_string fmt (to_string schema e)
