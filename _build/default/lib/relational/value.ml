type ty = Tint | Tfloat | Tstring | Tbool | Tdate

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of { y : int; m : int; d : int }

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Bool _ -> Some Tbool
  | Date _ -> Some Tdate

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"
  | Tdate -> "date"

let identical a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Date a, Date b -> a.y = b.y && a.m = b.m && a.d = b.d
  | (Null | Int _ | Float _ | Str _ | Bool _ | Date _), _ -> false

let equal a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | _ -> identical a b

let ty_order = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 2
  | Str _ -> 3
  | Bool _ -> 4
  | Date _ -> 5

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date a, Date b -> Stdlib.compare (a.y, a.m, a.d) (b.y, b.m, b.d)
  | _ -> Stdlib.compare (ty_order a) (ty_order b)

let hash = Hashtbl.hash

let is_null = function Null -> true | _ -> false

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Date { y; m; d } -> Printf.sprintf "%04d-%02d-%02d" y m d

let pp fmt v = Format.pp_print_string fmt (to_string v)

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> 0

let date y m d =
  if m < 1 || m > 12 || d < 1 || d > days_in_month y m then
    invalid_arg "Value.date: impossible date";
  Date { y; m; d }

let parse_date s =
  match String.split_on_char '-' s with
  | [ ys; ms; ds ] -> begin
    match (int_of_string_opt ys, int_of_string_opt ms, int_of_string_opt ds) with
    | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= days_in_month y m ->
      Some (Date { y; m; d })
    | _ -> None
  end
  | _ -> None

let parse ty s =
  if s = "" then Ok Null
  else
    match ty with
    | Tint -> (
      match int_of_string_opt s with
      | Some i -> Ok (Int i)
      | None -> Error (Printf.sprintf "not an int: %S" s))
    | Tfloat -> (
      match float_of_string_opt s with
      | Some f -> Ok (Float f)
      | None -> Error (Printf.sprintf "not a float: %S" s))
    | Tstring -> Ok (Str s)
    | Tbool -> (
      match String.lowercase_ascii s with
      | "true" | "t" | "1" | "yes" -> Ok (Bool true)
      | "false" | "f" | "0" | "no" -> Ok (Bool false)
      | _ -> Error (Printf.sprintf "not a bool: %S" s))
    | Tdate -> (
      match parse_date s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "not a date (YYYY-MM-DD): %S" s))

let parse_auto s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> (
        match String.lowercase_ascii s with
        | "true" -> Bool true
        | "false" -> Bool false
        | _ -> ( match parse_date s with Some v -> v | None -> Str s)))

let arith name fint ffloat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> fint x y
  | Float x, Float y -> Float (ffloat x y)
  | Int x, Float y -> Float (ffloat (float_of_int x) y)
  | Float x, Int y -> Float (ffloat x (float_of_int y))
  | _ -> invalid_arg ("Value." ^ name ^ ": non-numeric operand")

let add = arith "add" (fun x y -> Int (x + y)) ( +. )
let sub = arith "sub" (fun x y -> Int (x - y)) ( -. )
let mul = arith "mul" (fun x y -> Int (x * y)) ( *. )

let div =
  arith "div"
    (fun x y -> if y = 0 then Null else Int (x / y))
    (fun x y -> x /. y)
