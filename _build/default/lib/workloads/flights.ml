module Partition = Jim_partition.Partition
module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Tuple0 = Jim_relational.Tuple0
module Value = Jim_relational.Value

let from_ = 0
let to_ = 1
let airline = 2
let city = 3
let discount = 4

let attribute_names = [| "From"; "To"; "Airline"; "City"; "Discount" |]

let schema =
  Schema.of_list
    (List.map
       (fun n -> (n, Value.Tstring))
       (Array.to_list attribute_names))

(* Fig. 1, rows (1)-(12).  The Discount column holds the airline granting
   a discount for the hotel, or "None". *)
let raw_rows =
  [
    [ "Paris"; "Lille"; "AF"; "NYC"; "AA" ];
    [ "Paris"; "Lille"; "AF"; "Paris"; "None" ];
    [ "Paris"; "Lille"; "AF"; "Lille"; "AF" ];
    [ "Lille"; "NYC"; "AA"; "NYC"; "AA" ];
    [ "Lille"; "NYC"; "AA"; "Paris"; "None" ];
    [ "Lille"; "NYC"; "AA"; "Lille"; "AF" ];
    [ "NYC"; "Paris"; "AA"; "NYC"; "AA" ];
    [ "NYC"; "Paris"; "AA"; "Paris"; "None" ];
    [ "NYC"; "Paris"; "AA"; "Lille"; "AF" ];
    [ "Paris"; "NYC"; "AF"; "NYC"; "AA" ];
    [ "Paris"; "NYC"; "AF"; "Paris"; "None" ];
    [ "Paris"; "NYC"; "AF"; "Lille"; "AF" ];
  ]

let instance =
  Relation.of_rows ~name:"packages" schema
    (List.map (List.map (fun s -> Value.Str s)) raw_rows)

let q1 = Partition.of_pairs 5 [ (to_, city) ]
let q2 = Partition.of_pairs 5 [ (to_, city); (airline, discount) ]

let row k =
  if k < 1 || k > 12 then invalid_arg "Flights.row: expected 1..12";
  k - 1

let tuple k = Relation.tuple instance (row k)
let signature k = Tuple0.signature (tuple k)
