(** TPC-H-lite: a self-contained, seeded generator for a scaled-down
    TPC-H-style database (region, nation, supplier, customer, orders,
    lineitem, part).  The companion paper evaluates JIM on TPC-H; the
    official dbgen binary cannot run in this sealed environment, so this
    module regenerates the same {e shape} of data — foreign-key chains
    with realistic fan-out — which is all join inference exercises
    (values only matter through equality). *)

type scale = { customers : int; orders_per_customer : int; parts : int; suppliers : int }

val tiny : scale
(** 8 customers / 2 orders each / 12 parts / 4 suppliers — unit tests. *)

val small : scale
(** 50 / 3 / 60 / 15 — benchmarks. *)

val generate : ?seed:int -> scale -> Jim_relational.Database.t
(** Relations: [region(r_regionkey, r_name)],
    [nation(n_nationkey, n_name, n_regionkey)],
    [supplier(s_suppkey, s_name, s_nationkey)],
    [customer(c_custkey, c_name, c_nationkey)],
    [orders(o_orderkey, o_custkey, o_totalprice)],
    [lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity)],
    [part(p_partkey, p_name, p_retailprice)].
    All keys are dense integers; foreign keys always resolve. *)

(** Known goal joins over the generated schema, as (relations, goal atoms
    by qualified attribute name).  Used to build inference tasks with
    {!Denorm.task_of_names}. *)

val fk_customer_orders : string list * (string * string) list
val fk_orders_lineitem : string list * (string * string) list
val fk_customer_orders_lineitem : string list * (string * string) list
val fk_nation_chain : string list * (string * string) list
(** region–nation–customer chain (3 relations, 2 atoms). *)
