(** Building join-inference tasks from a multi-relation database: the
    "raw data coming from different data sources" scenario of the paper's
    introduction.  The denormalised instance the user labels is a
    (sampled) cartesian product of the source relations; the goal
    predicate is a partition of the product's attribute positions. *)

type task = {
  db : Jim_relational.Database.t;
  sources : string list;              (** relation names, product order *)
  instance : Jim_relational.Relation.t;  (** the table shown to the user *)
  schema : Jim_relational.Schema.t;      (** qualified product schema *)
  goal : Jim_partition.Partition.t;
  cross_only : (int * int) -> bool;
      (** mask selecting cross-relation attribute pairs; pass to
          [Partition.restrict] to drop intra-relation equalities from an
          inferred predicate *)
}

val product_instance :
  ?sample:int -> ?seed:int -> Jim_relational.Database.t -> string list ->
  (Jim_relational.Relation.t * Jim_relational.Schema.t, string) result
(** Cartesian product of the named relations under their qualified
    concatenated schema, down-sampled to [sample] rows if given (the
    product can dwarf what a user could ever label). *)

val task_of_names :
  ?sample:int -> ?seed:int -> Jim_relational.Database.t ->
  string list * (string * string) list -> (task, string) result
(** Build a task from relation names and goal atoms given as qualified
    attribute-name pairs — the format of {!Tpch.fk_customer_orders} &c.
    Errors on unknown relations/attributes. *)

val goal_join_result : task -> Jim_relational.Relation.t
(** The goal query evaluated over the {e full} product (not the sample):
    what the finished package list should be. *)

val oracle : task -> Jim_core.Oracle.t
(** The sound user for the task's goal. *)
