module Partition = Jim_partition.Partition
module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Tuple0 = Jim_relational.Tuple0
module Value = Jim_relational.Value

let numbers = [ "one"; "two"; "three" ]
let symbols = [ "diamond"; "squiggle"; "oval" ]
let shadings = [ "solid"; "striped"; "open" ]
let colours = [ "red"; "green"; "purple" ]

let features = [ "number"; "symbol"; "shading"; "colour" ]

let card_schema =
  Schema.of_list (List.map (fun f -> (f, Value.Tstring)) features)

let deck =
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun sy ->
            List.concat_map
              (fun sh ->
                List.map
                  (fun c -> List.map (fun s -> Value.Str s) [ n; sy; sh; c ])
                  colours)
              shadings)
          symbols)
      numbers
  in
  Relation.of_rows ~name:"cards" card_schema rows

let pair_schema =
  Schema.concat_qualified [ ("left", card_schema); ("right", card_schema) ]

let pair_instance ?sample ?seed () =
  let rows =
    List.concat_map
      (fun l ->
        List.map (fun r -> Tuple0.concat l r) (Relation.tuples deck))
      (Relation.tuples deck)
  in
  let full = Relation.make ~name:"card_pairs" pair_schema rows in
  match sample with None -> full | Some k -> Relation.sample ?seed k full

let left_ f = Schema.find_exn pair_schema ("left." ^ f)
let right_ f = Schema.find_exn pair_schema ("right." ^ f)

let same fs =
  Partition.of_pairs
    (Schema.arity pair_schema)
    (List.map (fun f -> (left_ f, right_ f)) fs)

let glyph_of_symbol = function
  | "diamond" -> "\xE2\x97\x86" (* ◆ *)
  | "squiggle" -> "\xE2\x88\xBF" (* ∿ *)
  | "oval" -> "\xE2\x97\x8F" (* ● *)
  | other -> other

let count_of_number = function
  | "one" -> "1"
  | "two" -> "2"
  | "three" -> "3"
  | other -> other

let card_fields t =
  match Array.to_list (Array.map Value.to_string t) with
  | [ n; sy; sh; c ] -> (n, sy, sh, c)
  | _ -> invalid_arg "Setcards: not a card tuple"

let card_to_string t =
  let n, sy, sh, c = card_fields t in
  Printf.sprintf "%s\xC3\x97%s %s %s" (count_of_number n) (glyph_of_symbol sy)
    sh c

let pair_to_string t =
  if Array.length t <> 8 then invalid_arg "Setcards: not a pair tuple";
  let left = Array.sub t 0 4 and right = Array.sub t 4 4 in
  Printf.sprintf "[%s] ~ [%s]" (card_to_string left) (card_to_string right)
