module Partition = Jim_partition.Partition
module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Database = Jim_relational.Database

type task = {
  db : Database.t;
  sources : string list;
  instance : Relation.t;
  schema : Schema.t;
  goal : Partition.t;
  cross_only : (int * int) -> bool;
}

let ( let* ) = Result.bind

let resolve_relations db names =
  List.fold_left
    (fun acc name ->
      let* acc = acc in
      match Database.find db name with
      | Some r -> Ok (r :: acc)
      | None -> Error (Printf.sprintf "unknown relation %S" name))
    (Ok []) names
  |> Result.map List.rev

let full_product rels names =
  match rels with
  | [] -> Error "empty relation list"
  | _ -> (
    match
      Schema.concat_qualified
        (List.map2 (fun n r -> (n, Relation.schema r)) names rels)
    with
    | exception Invalid_argument _ ->
      Error "duplicate relation name in product: use distinct names"
    | schema ->
      (* Cartesian product built directly on tuples: going through
         Relation.product would construct intermediate schemas that can
         clash when sources share column names. *)
      let rows =
        List.fold_left
          (fun acc r ->
            List.concat_map
              (fun prefix ->
                List.map
                  (fun t -> Jim_relational.Tuple0.concat prefix t)
                  (Relation.tuples r))
              acc)
          [ [||] ] rels
      in
      Ok (Relation.make ~name:(String.concat "_x_" names) schema rows))

let product_instance ?sample ?seed db names =
  let* rels = resolve_relations db names in
  let* prod, schema =
    Result.map (fun p -> (p, Relation.schema p)) (full_product rels names)
  in
  let instance =
    match sample with
    | None -> prod
    | Some k -> Relation.sample ?seed k prod
  in
  Ok (instance, schema)

(* Attribute position -> source relation index, from the qualified
   product schema built over [names]. *)
let relation_of_position rels =
  let spans =
    List.map (fun r -> Schema.arity (Relation.schema r)) rels
  in
  let bounds = Array.of_list spans in
  fun pos ->
    let rec go i acc =
      if i >= Array.length bounds then
        invalid_arg "Denorm: position out of range"
      else if pos < acc + bounds.(i) then i
      else go (i + 1) (acc + bounds.(i))
    in
    go 0 0

let task_of_names ?sample ?seed db (names, atoms) =
  let* rels = resolve_relations db names in
  let* instance, schema = product_instance ?sample ?seed db names in
  let n = Schema.arity schema in
  let* pairs =
    List.fold_left
      (fun acc (a, b) ->
        let* acc = acc in
        match (Schema.find schema a, Schema.find schema b) with
        | Some i, Some j -> Ok ((i, j) :: acc)
        | None, _ -> Error (Printf.sprintf "unknown attribute %S" a)
        | _, None -> Error (Printf.sprintf "unknown attribute %S" b))
      (Ok []) atoms
  in
  let goal = Partition.of_pairs n pairs in
  let rel_of = relation_of_position rels in
  let cross_only (i, j) = rel_of i <> rel_of j in
  Ok { db; sources = names; instance; schema; goal; cross_only }

let goal_join_result task =
  match resolve_relations task.db task.sources with
  | Error _ -> assert false (* sources validated at construction *)
  | Ok rels -> (
    match full_product rels task.sources with
    | Error _ -> assert false
    | Ok prod -> Relation.satisfying task.goal prod)

let oracle task = Jim_core.Oracle.of_goal task.goal
