(** Joining sets of pictures (Fig. 5): the 81 cards of the game Set, each
    varying in number (one/two/three), symbol (diamond/squiggle/oval),
    shading (solid/striped/open) and colour (red/green/purple).

    The instance the attendee labels is a set of {e pairs} of cards — the
    product of two card decks — over the 8-attribute schema
    [left.number, left.symbol, left.shading, left.colour,
     right.number, right.symbol, right.shading, right.colour]; the goal
    predicates equate features across the two sides ("the pairs of
    pictures having the same color and the same shading"). *)

val deck : Jim_relational.Relation.t
(** All 81 cards, attributes [number, symbol, shading, colour] (strings). *)

val pair_schema : Jim_relational.Schema.t

val pair_instance : ?sample:int -> ?seed:int -> unit -> Jim_relational.Relation.t
(** The 81×81 pair table, optionally down-sampled. *)

(** Positions in the pair schema. *)

val left_ : string -> int
(** [left_ "colour"] = position of the left card's colour.  Raises
    [Not_found] on an unknown feature. *)

val right_ : string -> int

val same : string list -> Jim_partition.Partition.t
(** [same ["colour"; "shading"]] — the paper's example goal: pairs with
    the same colour and the same shading. *)

val card_to_string : Jim_relational.Tuple0.t -> string
(** Unicode rendering of one card, e.g. ["2×▲ striped red"]. *)

val pair_to_string : Jim_relational.Tuple0.t -> string
(** Rendering of a pair row: ["[2×▲ striped red] ~ [1×● open green]"]. *)
