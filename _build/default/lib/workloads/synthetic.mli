(** Synthetic join-inference instances in the style of the companion
    paper's experiments: a planted goal predicate over [n] attributes and
    an instance whose signature diversity controls how hard inference is.

    The generator plants, for every sub-predicate the learner could
    confuse with the goal, tuples that witness the difference, so the
    goal is identifiable on the instance; the [distractors] knob then
    adds random tuples that enlarge the instance without necessarily
    adding information — exactly the situation where uninformative-tuple
    pruning pays off. *)

type params = {
  n_attrs : int;       (** attributes of the denormalised instance *)
  n_tuples : int;      (** instance cardinality (>= the planted witnesses) *)
  domain : int;        (** distinct values per attribute *)
  goal_rank : int;     (** equality atoms of the goal (0 .. n_attrs-1) *)
  seed : int;
}

val default : params
(** 6 attributes, 60 tuples, domain 8, goal rank 2, seed 7. *)

type instance = {
  params : params;
  goal : Jim_partition.Partition.t;
  relation : Jim_relational.Relation.t;
  schema : Jim_relational.Schema.t;   (** attributes [a0 .. a{n-1}], ints *)
}

val generate : params -> instance
(** Deterministic in [params.seed].  Raises [Invalid_argument] on
    inconsistent parameters (rank out of range, fewer tuples than
    witnesses, domain < 2). *)

val random_goal : rng:Random.State.t -> n:int -> rank:int -> Jim_partition.Partition.t
(** A uniform-ish random partition of [n] attributes with exactly [rank]
    merges. *)

val complexity_sweep :
  ?seed:int -> n_attrs:int list -> ranks:int list -> tuples:int -> unit ->
  instance list
(** The grid of instances behind the strategy-comparison experiment. *)
