module Partition = Jim_partition.Partition
module Dsu = Jim_partition.Dsu
module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Value = Jim_relational.Value

type params = {
  n_attrs : int;
  n_tuples : int;
  domain : int;
  goal_rank : int;
  seed : int;
}

let default = { n_attrs = 6; n_tuples = 60; domain = 8; goal_rank = 2; seed = 7 }

type instance = {
  params : params;
  goal : Partition.t;
  relation : Relation.t;
  schema : Schema.t;
}

let random_goal ~rng ~n ~rank =
  if rank < 0 || rank > n - 1 then invalid_arg "Synthetic.random_goal";
  let d = Dsu.create n in
  let merges = ref 0 in
  while !merges < rank do
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if Dsu.union d i j then incr merges
  done;
  Partition.of_dsu d

(* A tuple realising signature [sg] exactly: each block gets a distinct
   value, chosen by a random injection into the domain. *)
let tuple_of_signature rng domain sg =
  let n = Partition.size sg in
  let nblocks = Partition.block_count sg in
  if nblocks > domain then invalid_arg "Synthetic: domain smaller than blocks";
  (* Random injection: partial Fisher-Yates of 0..domain-1. *)
  let vals = Array.init domain (fun i -> i) in
  for i = 0 to nblocks - 1 do
    let j = i + Random.State.int rng (domain - i) in
    let tmp = vals.(i) in
    vals.(i) <- vals.(j);
    vals.(j) <- tmp
  done;
  let block_index = Array.make n (-1) in
  let next = ref 0 in
  Array.init n (fun i ->
      let r = Partition.rep sg i in
      if block_index.(r) < 0 then begin
        block_index.(r) <- !next;
        incr next
      end;
      Value.Int vals.(block_index.(r)))

(* All 2-part splits of one block of [goal], as full partitions (other
   blocks unchanged); these are exactly the partitions covered by the
   goal, i.e. its immediate generalisations.  Capped per block. *)
let covered_partitions ?(cap_per_block = 8) goal =
  let n = Partition.size goal in
  let blocks = Partition.blocks goal in
  let other_blocks b = List.filter (fun b' -> b' != b) blocks in
  List.concat_map
    (fun b ->
      match b with
      | [] | [ _ ] -> []
      | first :: rest ->
        (* Enumerate subsets of [rest]; the side containing [first] is one
           part, the complement the other.  Skip the full set (no split). *)
        let k = List.length rest in
        let max_mask = (1 lsl k) - 1 in
        let rec masks m acc count =
          if m > max_mask || count >= cap_per_block then List.rev acc
          else
            let side_a, side_b =
              List.fold_left
                (fun (a, bs) (idx, e) ->
                  if m land (1 lsl idx) <> 0 then (e :: a, bs) else (a, e :: bs))
                ([ first ], [])
                (List.mapi (fun i e -> (i, e)) rest)
            in
            if side_b = [] then masks (m + 1) acc count
            else
              let split =
                Partition.of_blocks n (side_a :: side_b :: other_blocks b)
              in
              masks (m + 1) (split :: acc) (count + 1)
        in
        masks 0 [] 0)
    blocks

let generate params =
  let { n_attrs = n; n_tuples; domain; goal_rank; seed } = params in
  if n < 2 then invalid_arg "Synthetic.generate: need at least 2 attributes";
  if domain < n then
    invalid_arg "Synthetic.generate: domain must be >= n_attrs";
  if goal_rank < 0 || goal_rank > n - 1 then
    invalid_arg "Synthetic.generate: goal_rank out of range";
  let rng = Random.State.make [| seed; n; n_tuples; domain; goal_rank |] in
  let goal = random_goal ~rng ~n ~rank:goal_rank in
  (* Planted witnesses: the goal itself (a certain positive for the goal
     query) and every immediate generalisation (certain negatives that
     make the goal exactly identifiable, not just up to equivalence). *)
  let witnesses = goal :: covered_partitions goal in
  if List.length witnesses > n_tuples then
    invalid_arg "Synthetic.generate: n_tuples smaller than planted witnesses";
  let planted = List.map (tuple_of_signature rng domain) witnesses in
  let n_random = n_tuples - List.length planted in
  let random_tuple () =
    Array.init n (fun _ -> Value.Int (Random.State.int rng domain))
  in
  let randoms = List.init n_random (fun _ -> random_tuple ()) in
  (* Shuffle so planted witnesses are not clustered at the front. *)
  let all = Array.of_list (planted @ randoms) in
  for i = Array.length all - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = all.(i) in
    all.(i) <- all.(j);
    all.(j) <- tmp
  done;
  let schema =
    Schema.of_list (List.init n (fun i -> (Printf.sprintf "a%d" i, Value.Tint)))
  in
  let relation =
    Relation.make ~name:"synthetic" schema (Array.to_list all)
  in
  { params; goal; relation; schema }

let complexity_sweep ?(seed = 11) ~n_attrs ~ranks ~tuples () =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun rank ->
          if rank > n - 1 then None
          else
            Some
              (generate
                 {
                   n_attrs = n;
                   n_tuples = tuples;
                   domain = max n 8;
                   goal_rank = rank;
                   seed = seed + (100 * n) + rank;
                 }))
        ranks)
    n_attrs
