module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Database = Jim_relational.Database
module Value = Jim_relational.Value

let str s = Value.Str s
let int i = Value.Int i

(* Remakes share titles across years (Nosferatu, Solaris), which is what
   makes the title-only join wrong for awards. *)
let catalogue =
  Relation.of_rows ~name:"catalogue"
    (Schema.of_list
       [
         ("c1", Value.Tstring);
         ("c2", Value.Tstring);
         ("c3", Value.Tint);
         ("c4", Value.Tstring);
       ])
    [
      [ str "Nosferatu"; str "Murnau"; int 1922; str "DE" ];
      [ str "Nosferatu"; str "Herzog"; int 1979; str "DE" ];
      [ str "Solaris"; str "Tarkovsky"; int 1972; str "SU" ];
      [ str "Solaris"; str "Soderbergh"; int 2002; str "US" ];
      [ str "Playtime"; str "Tati"; int 1967; str "FR" ];
      [ str "Ran"; str "Kurosawa"; int 1985; str "JP" ];
      [ str "Brazil"; str "Gilliam"; int 1985; str "UK" ];
    ]

let ratings =
  Relation.of_rows ~name:"ratings"
    (Schema.of_list
       [ ("r1", Value.Tstring); ("r2", Value.Tint); ("r3", Value.Tstring) ])
    [
      [ str "Nosferatu"; int 5; str "Cahiers" ];
      [ str "Solaris"; int 4; str "Sight&Sound" ];
      [ str "Playtime"; int 5; str "Cahiers" ];
      [ str "Ran"; int 5; str "Sight&Sound" ];
      [ str "Brazil"; int 4; str "Cahiers" ];
    ]

let awards =
  Relation.of_rows ~name:"awards"
    (Schema.of_list
       [ ("a1", Value.Tstring); ("a2", Value.Tstring); ("a3", Value.Tint) ])
    [
      [ str "Cannes"; str "Solaris"; int 1972 ];
      [ str "BAFTA"; str "Brazil"; int 1985 ];
      [ str "Venice"; str "Ran"; int 1985 ];
      [ str "Berlin"; str "Nosferatu"; int 1979 ];
    ]

let db = Database.of_relations [ catalogue; ratings; awards ]

let catalogue_ratings =
  ([ "catalogue"; "ratings" ], [ ("catalogue.c1", "ratings.r1") ])

let catalogue_awards =
  ( [ "catalogue"; "awards" ],
    [ ("catalogue.c1", "awards.a2"); ("catalogue.c3", "awards.a3") ] )
