module Schema = Jim_relational.Schema
module Relation = Jim_relational.Relation
module Database = Jim_relational.Database
module Value = Jim_relational.Value

type scale = {
  customers : int;
  orders_per_customer : int;
  parts : int;
  suppliers : int;
}

let tiny = { customers = 8; orders_per_customer = 2; parts = 12; suppliers = 4 }
let small = { customers = 50; orders_per_customer = 3; parts = 60; suppliers = 15 }

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
    "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
    "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA";
    "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES";
  |]

let syllables =
  [| "azure"; "bisque"; "coral"; "dim"; "firebrick"; "gold"; "hot"; "ivory";
     "khaki"; "lime"; "mint"; "navy"; "olive"; "plum"; "rose"; "sienna" |]

let generate ?(seed = 1) scale =
  let rng = Random.State.make [| seed |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let int i = Value.Int i and str s = Value.Str s in
  let money () =
    Value.Float (float_of_int (100 + Random.State.int rng 99900) /. 100.0)
  in

  let region =
    Relation.of_rows ~name:"region"
      (Schema.of_list [ ("r_regionkey", Value.Tint); ("r_name", Value.Tstring) ])
      (List.init (Array.length region_names) (fun i ->
           [ int i; str region_names.(i) ]))
  in

  let n_nations = Array.length nation_names in
  let nation =
    Relation.of_rows ~name:"nation"
      (Schema.of_list
         [
           ("n_nationkey", Value.Tint);
           ("n_name", Value.Tstring);
           ("n_regionkey", Value.Tint);
         ])
      (List.init n_nations (fun i ->
           [ int i; str nation_names.(i); int (i mod Array.length region_names) ]))
  in

  let supplier =
    Relation.of_rows ~name:"supplier"
      (Schema.of_list
         [
           ("s_suppkey", Value.Tint);
           ("s_name", Value.Tstring);
           ("s_nationkey", Value.Tint);
         ])
      (List.init scale.suppliers (fun i ->
           [
             int i;
             str (Printf.sprintf "Supplier#%03d" i);
             int (Random.State.int rng n_nations);
           ]))
  in

  let customer =
    Relation.of_rows ~name:"customer"
      (Schema.of_list
         [
           ("c_custkey", Value.Tint);
           ("c_name", Value.Tstring);
           ("c_nationkey", Value.Tint);
         ])
      (List.init scale.customers (fun i ->
           [
             int i;
             str (Printf.sprintf "Customer#%03d" i);
             int (Random.State.int rng n_nations);
           ]))
  in

  let n_orders = scale.customers * scale.orders_per_customer in
  let orders =
    Relation.of_rows ~name:"orders"
      (Schema.of_list
         [
           ("o_orderkey", Value.Tint);
           ("o_custkey", Value.Tint);
           ("o_totalprice", Value.Tfloat);
         ])
      (List.init n_orders (fun i ->
           [ int i; int (i mod scale.customers); money () ]))
  in

  let part =
    Relation.of_rows ~name:"part"
      (Schema.of_list
         [
           ("p_partkey", Value.Tint);
           ("p_name", Value.Tstring);
           ("p_retailprice", Value.Tfloat);
         ])
      (List.init scale.parts (fun i ->
           [ int i; str (pick syllables ^ " " ^ pick syllables); money () ]))
  in

  let lineitem_rows =
    List.concat
      (List.init n_orders (fun o ->
           let items = 1 + Random.State.int rng 3 in
           List.init items (fun _ ->
               [
                 int o;
                 int (Random.State.int rng scale.parts);
                 int (Random.State.int rng scale.suppliers);
                 int (1 + Random.State.int rng 20);
               ])))
  in
  let lineitem =
    Relation.of_rows ~name:"lineitem"
      (Schema.of_list
         [
           ("l_orderkey", Value.Tint);
           ("l_partkey", Value.Tint);
           ("l_suppkey", Value.Tint);
           ("l_quantity", Value.Tint);
         ])
      lineitem_rows
  in

  Database.of_relations
    [ region; nation; supplier; customer; orders; part; lineitem ]

let fk_customer_orders =
  ([ "customer"; "orders" ], [ ("customer.c_custkey", "orders.o_custkey") ])

let fk_orders_lineitem =
  ([ "orders"; "lineitem" ], [ ("orders.o_orderkey", "lineitem.l_orderkey") ])

let fk_customer_orders_lineitem =
  ( [ "customer"; "orders"; "lineitem" ],
    [
      ("customer.c_custkey", "orders.o_custkey");
      ("orders.o_orderkey", "lineitem.l_orderkey");
    ] )

let fk_nation_chain =
  ( [ "region"; "nation"; "customer" ],
    [
      ("region.r_regionkey", "nation.n_regionkey");
      ("nation.n_nationkey", "customer.c_nationkey");
    ] )
