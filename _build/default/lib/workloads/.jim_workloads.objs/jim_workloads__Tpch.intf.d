lib/workloads/tpch.mli: Jim_relational
