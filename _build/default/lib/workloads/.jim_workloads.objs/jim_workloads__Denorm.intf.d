lib/workloads/denorm.mli: Jim_core Jim_partition Jim_relational
