lib/workloads/denorm.ml: Array Jim_core Jim_partition Jim_relational List Printf Result String
