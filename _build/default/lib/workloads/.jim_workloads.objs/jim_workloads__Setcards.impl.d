lib/workloads/setcards.ml: Array Jim_partition Jim_relational List Printf
