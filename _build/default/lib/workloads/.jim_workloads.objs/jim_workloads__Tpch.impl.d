lib/workloads/tpch.ml: Array Jim_relational List Printf Random
