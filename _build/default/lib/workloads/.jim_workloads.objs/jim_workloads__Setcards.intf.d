lib/workloads/setcards.mli: Jim_partition Jim_relational
