lib/workloads/flights.ml: Array Jim_partition Jim_relational List
