lib/workloads/synthetic.ml: Array Jim_partition Jim_relational List Printf Random
