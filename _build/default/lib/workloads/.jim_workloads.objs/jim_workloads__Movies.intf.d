lib/workloads/movies.mli: Jim_relational
