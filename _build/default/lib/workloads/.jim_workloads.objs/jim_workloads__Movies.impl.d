lib/workloads/movies.ml: Jim_relational
