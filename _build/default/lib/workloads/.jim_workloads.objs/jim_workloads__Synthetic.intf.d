lib/workloads/synthetic.mli: Jim_partition Jim_relational Random
