lib/workloads/flights.mli: Jim_partition Jim_relational
