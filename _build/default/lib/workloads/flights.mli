(** The motivating example of the paper (Fig. 1): the travel agency's
    denormalised flight & hotel table, twelve tuples over attributes
    From, To, Airline, City, Discount, and the two goal queries

    - [q1]: To = City (a flight and a stay in a hotel);
    - [q2]: To = City ∧ Airline = Discount (additionally allowing a
      discount).

    Tuple numbering follows the paper: {!row} maps the paper's (1)–(12)
    to 0-based row numbers. *)

val schema : Jim_relational.Schema.t
val instance : Jim_relational.Relation.t

val q1 : Jim_partition.Partition.t
val q2 : Jim_partition.Partition.t

val row : int -> int
(** [row k] = [k - 1]; raises [Invalid_argument] outside 1..12. *)

val tuple : int -> Jim_relational.Tuple0.t
(** Tuple by paper number (1..12). *)

val signature : int -> Jim_partition.Partition.t
(** Signature of the tuple by paper number. *)

val attribute_names : string array
(** [[|"From"; "To"; "Airline"; "City"; "Discount"|]]. *)

(** Indices of the attributes. *)

val from_ : int
val to_ : int
val airline : int
val city : int
val discount : int
