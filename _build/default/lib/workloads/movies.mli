(** A second realistic integration scenario: film catalogues from two
    providers plus a ratings feed, with opaque column names and no
    declared constraints — string-valued joins, unlike TPC-H's integer
    keys.  Used by integration tests and the CLI tour. *)

val catalogue : Jim_relational.Relation.t
(** ["catalogue"]: [c1 .. c4] = title, director, year, country. *)

val ratings : Jim_relational.Relation.t
(** ["ratings"]: [r1 .. r3] = film title, stars, outlet. *)

val awards : Jim_relational.Relation.t
(** ["awards"]: [a1 .. a3] = festival, winning title, year. *)

val db : Jim_relational.Database.t

val catalogue_ratings : string list * (string * string) list
(** Goal: catalogue title = ratings title. *)

val catalogue_awards : string list * (string * string) list
(** Goal: title and year both match (a 2-atom predicate, where matching
    only on title would wrongly pair remakes with their originals'
    awards). *)
