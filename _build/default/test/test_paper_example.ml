(* Every concrete claim made in Section 2 of the paper, checked verbatim
   against the engine.  Tuple numbers (1)-(12) are the paper's. *)

module Partition = Jim_partition.Partition
module Tuple0 = Jim_relational.Tuple0
module F = Jim_workloads.Flights
open Jim_core

let partition = Alcotest.testable Partition.pp Partition.equal

let state_after labels =
  List.fold_left
    (fun st (k, lbl) -> State.add_exn st lbl (F.signature k))
    (State.create 5) labels

(* "both queries Q1 and Q2 are consistent with this labeling i.e., both
   queries select the tuple (3)" *)
let test_q1_q2_select_3 () =
  Alcotest.(check bool) "Q1 selects (3)" true (Tuple0.satisfies F.q1 (F.tuple 3));
  Alcotest.(check bool) "Q2 selects (3)" true (Tuple0.satisfies F.q2 (F.tuple 3));
  let st = state_after [ (3, State.Pos) ] in
  Alcotest.(check bool) "Q1 consistent" true (State.consistent st F.q1);
  Alcotest.(check bool) "Q2 consistent" true (State.consistent st F.q2)

(* "if the user labels next the tuple (4) with +, both queries remain
   consistent ... the labeling of the tuple (4) does not contribute any
   new information ... and is therefore uninformative" *)
let test_4_uninformative_after_3 () =
  let st = state_after [ (3, State.Pos) ] in
  Alcotest.(check bool)
    "(4) certain positive" true
    (State.classify st (F.signature 4) = State.Certain_pos);
  let st' = state_after [ (3, State.Pos); (4, State.Pos) ] in
  Alcotest.(check partition) "state unchanged by (4)+"
    (State.canonical st) (State.canonical st');
  Alcotest.(check bool) "Q1 still consistent" true (State.consistent st' F.q1);
  Alcotest.(check bool) "Q2 still consistent" true (State.consistent st' F.q2)

(* "a tuple whose labeling can distinguish between Q1 and Q2 is, for
   instance, the tuple (8) because Q1 selects it and Q2 does not" *)
let test_8_distinguishes () =
  Alcotest.(check bool) "Q1 selects (8)" true (Tuple0.satisfies F.q1 (F.tuple 8));
  Alcotest.(check bool) "Q2 rejects (8)" false (Tuple0.satisfies F.q2 (F.tuple 8));
  let st = state_after [ (3, State.Pos) ] in
  Alcotest.(check bool)
    "(8) informative after (3)+" true
    (State.classify st (F.signature 8) = State.Informative)

(* "If the user labels the tuple (8) with -, then the query Q2 is returned;
   otherwise Q1 is returned" — with (8)-, Q1 is no longer consistent while
   Q2 is; with (8)+, Q2 is out and Q1 in. *)
let test_8_decides_between_q1_q2 () =
  let st_neg = state_after [ (3, State.Pos); (8, State.Neg) ] in
  Alcotest.(check bool) "Q1 out after (8)-" false (State.consistent st_neg F.q1);
  Alcotest.(check bool) "Q2 in after (8)-" true (State.consistent st_neg F.q2);
  let st_pos = state_after [ (3, State.Pos); (8, State.Pos) ] in
  Alcotest.(check bool) "Q1 in after (8)+" true (State.consistent st_pos F.q1);
  Alcotest.(check bool) "Q2 out after (8)+" false (State.consistent st_pos F.q2)

(* "query Q2 is contained in Q1, and therefore, Q1 satisfies all positive
   examples that Q2 does" — containment on this instance plus the lattice
   fact Q1 ⊑ Q2. *)
let test_q2_contained_in_q1 () =
  Alcotest.(check bool) "Q1 refines Q2" true (Partition.refines F.q1 F.q2);
  List.iter
    (fun k ->
      if Tuple0.satisfies F.q2 (F.tuple k) then
        Alcotest.(check bool)
          (Printf.sprintf "Q1 selects (%d) too" k)
          true
          (Tuple0.satisfies F.q1 (F.tuple k)))
    (List.init 12 (fun i -> i + 1))

(* "assuming that (3) is a positive example, and (7) and (8) are negative
   examples, there is only one consistent join predicate (i.e., the above
   Q2)" — uniqueness checked by brute force over the whole lattice of
   partitions of 5 attributes. *)
let test_unique_q2 () =
  let st = state_after [ (3, State.Pos); (7, State.Neg); (8, State.Neg) ] in
  let consistent = Version_space.enumerate st in
  Alcotest.(check int) "exactly one consistent predicate" 1
    (List.length consistent);
  Alcotest.(check partition) "it is Q2" F.q2 (List.hd consistent)

(* "assume that Jim asked the user to label the tuple (12).  If the user
   labels it as a positive example, we are able to prune the tuples that
   become uninformative: (3), (4), (7).  Conversely, if the user labels
   tuple (12) as a negative example, we are able to prune the
   uninformative tuples: (1), (5), (9)." — from the empty state. *)
let test_12_pruning () =
  let decided st k = State.classify st (F.signature k) <> State.Informative in
  let st_pos = state_after [ (12, State.Pos) ] in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d) decided after (12)+" k)
        true (decided st_pos k))
    [ 3; 4; 7 ];
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d) still informative after (12)+" k)
        false (decided st_pos k))
    [ 1; 2; 5; 6; 8; 9; 10; 11 ];
  let st_neg = state_after [ (12, State.Neg) ] in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d) decided after (12)-" k)
        true (decided st_neg k))
    [ 1; 5; 9 ];
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d) still informative after (12)-" k)
        false (decided st_neg k))
    [ 2; 3; 4; 6; 7; 8; 10; 11 ]

(* "the use of only positive examples ... is not sufficient to identify
   all possible queries": label every tuple Q2 selects positively — Q1
   remains consistent, so negatives are necessary. *)
let test_positives_insufficient () =
  let st =
    List.fold_left
      (fun st k ->
        if Tuple0.satisfies F.q2 (F.tuple k) then
          State.add_exn st State.Pos (F.signature k)
        else st)
      (State.create 5)
      (List.init 12 (fun i -> i + 1))
  in
  Alcotest.(check bool) "Q1 consistent on Q2's positives" true
    (State.consistent st F.q1);
  Alcotest.(check bool) "Q2 consistent on Q2's positives" true
    (State.consistent st F.q2)

(* End-to-end: every strategy infers a predicate instance-equivalent to
   the goal, for both Q1 and Q2, and the result of Fig. 2's loop on the
   goal Q2 selects exactly Q2's tuples. *)
let test_end_to_end_inference () =
  List.iter
    (fun goal ->
      List.iter
        (fun strat ->
          let outcome =
            Session.run ~strategy:strat ~oracle:(Oracle.of_goal goal)
              F.instance
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: no contradiction" strat.Strategy.name)
            false outcome.Session.contradiction;
          let inferred = Jquery.make F.schema outcome.Session.query in
          let wanted = Jquery.make F.schema goal in
          Alcotest.(check bool)
            (Printf.sprintf "%s: instance-equivalent to goal"
               strat.Strategy.name)
            true
            (Jquery.equivalent_on inferred wanted F.instance))
        Strategy.all)
    [ F.q1; F.q2 ]

(* The interactive loop needs strictly fewer labels than the instance has
   tuples (the whole point of the demo). *)
let test_fewer_interactions_than_tuples () =
  List.iter
    (fun strat ->
      let outcome =
        Session.run ~strategy:strat ~oracle:(Oracle.of_goal F.q2) F.instance
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s asked %d < 12" strat.Strategy.name
           outcome.Session.interactions)
        true
        (outcome.Session.interactions < 12))
    Strategy.all

let () =
  Alcotest.run "paper_example"
    [
      ( "section-2 claims",
        [
          Alcotest.test_case "Q1,Q2 select (3)" `Quick test_q1_q2_select_3;
          Alcotest.test_case "(4) uninformative after (3)+" `Quick
            test_4_uninformative_after_3;
          Alcotest.test_case "(8) distinguishes Q1/Q2" `Quick
            test_8_distinguishes;
          Alcotest.test_case "(8) decides between Q1/Q2" `Quick
            test_8_decides_between_q1_q2;
          Alcotest.test_case "Q2 contained in Q1" `Quick
            test_q2_contained_in_q1;
          Alcotest.test_case "{(3)+,(7)-,(8)-} => unique Q2" `Quick
            test_unique_q2;
          Alcotest.test_case "(12) pruning sets" `Quick test_12_pruning;
          Alcotest.test_case "positives alone insufficient" `Quick
            test_positives_insufficient;
        ] );
      ( "figure-2 loop",
        [
          Alcotest.test_case "end-to-end inference, all strategies" `Quick
            test_end_to_end_inference;
          Alcotest.test_case "fewer interactions than tuples" `Quick
            test_fewer_interactions_than_tuples;
        ] );
    ]
