(* Unit and property tests for the partition-lattice substrate:
   Dsu, Partition, Bell, Penum, Lattice. *)

module P = Jim_partition.Partition
module Dsu = Jim_partition.Dsu
module Bell = Jim_partition.Bell
module Penum = Jim_partition.Penum
module Lattice = Jim_partition.Lattice

let partition = Alcotest.testable P.pp P.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

(* Random partition of size n: random RGS. *)
let gen_partition_sized n =
  QCheck.Gen.(
    let* rgs =
      let rec build i maxv acc =
        if i >= n then return (List.rev acc)
        else
          let* v = int_bound (min (maxv + 1) (n - 1)) in
          build (i + 1) (max maxv v) (v :: acc)
      in
      build 0 (-1) []
    in
    return (P.of_rgs (Array.of_list rgs)))

let arb_partition n =
  QCheck.make ~print:P.to_string (gen_partition_sized n)

let arb_pair n =
  QCheck.make
    ~print:(fun (a, b) -> P.to_string a ^ " , " ^ P.to_string b)
    QCheck.Gen.(pair (gen_partition_sized n) (gen_partition_sized n))

let arb_triple n =
  QCheck.make
    ~print:(fun (a, b, c) ->
      String.concat " , " [ P.to_string a; P.to_string b; P.to_string c ])
    QCheck.Gen.(
      triple (gen_partition_sized n) (gen_partition_sized n)
        (gen_partition_sized n))

let qtest ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Dsu                                                                 *)

let test_dsu_basic () =
  let d = Dsu.create 6 in
  Alcotest.(check int) "initial classes" 6 (Dsu.class_count d);
  Alcotest.(check bool) "union changes" true (Dsu.union d 0 3);
  Alcotest.(check bool) "re-union is no-op" false (Dsu.union d 3 0);
  Alcotest.(check bool) "same after union" true (Dsu.same d 0 3);
  Alcotest.(check bool) "others unaffected" false (Dsu.same d 1 2);
  ignore (Dsu.union d 3 5);
  Alcotest.(check bool) "transitivity" true (Dsu.same d 0 5);
  Alcotest.(check int) "classes after two unions" 4 (Dsu.class_count d)

let test_dsu_canonical () =
  let d = Dsu.create 5 in
  ignore (Dsu.union d 4 2);
  ignore (Dsu.union d 2 1);
  let c = Dsu.canonical d in
  Alcotest.(check (array int)) "min-element reps" [| 0; 1; 1; 3; 1 |] c

let test_dsu_create_negative () =
  Alcotest.check_raises "negative size"
    (Invalid_argument "Dsu.create: negative size") (fun () ->
      ignore (Dsu.create (-1)))

(* ------------------------------------------------------------------ *)
(* Partition: construction and observations                            *)

let test_partition_bounds () =
  let b = P.bottom 4 and t = P.top 4 in
  Alcotest.(check bool) "bottom is bottom" true (P.is_bottom b);
  Alcotest.(check bool) "top is top" true (P.is_top t);
  Alcotest.(check int) "bottom rank" 0 (P.rank b);
  Alcotest.(check int) "top rank" 3 (P.rank t);
  Alcotest.(check int) "bottom blocks" 4 (P.block_count b);
  Alcotest.(check int) "top blocks" 1 (P.block_count t);
  Alcotest.(check bool) "bottom refines top" true (P.refines b t);
  Alcotest.(check bool) "top does not refine bottom" false (P.refines t b)

let test_partition_of_blocks () =
  let p = P.of_blocks 6 [ [ 1; 3 ]; [ 2; 4; 5 ] ] in
  Alcotest.(check int) "blocks" 3 (P.block_count p);
  Alcotest.(check bool) "1~3" true (P.same p 1 3);
  Alcotest.(check bool) "2~5" true (P.same p 2 5);
  Alcotest.(check bool) "0 alone" false (P.same p 0 1);
  Alcotest.(check (list (list int)))
    "blocks listing"
    [ [ 0 ]; [ 1; 3 ]; [ 2; 4; 5 ] ]
    (P.blocks p);
  Alcotest.(check (list (list int)))
    "nontrivial blocks"
    [ [ 1; 3 ]; [ 2; 4; 5 ] ]
    (P.nontrivial_blocks p)

let test_partition_of_blocks_errors () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Partition.of_blocks: duplicate element") (fun () ->
      ignore (P.of_blocks 4 [ [ 0; 1 ]; [ 1; 2 ] ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Partition.of_blocks: out of range") (fun () ->
      ignore (P.of_blocks 3 [ [ 0; 3 ] ]))

let test_partition_pairs () =
  let p = P.of_blocks 5 [ [ 0; 2; 4 ] ] in
  Alcotest.(check (list (pair int int)))
    "pairs"
    [ (0, 2); (0, 4); (2, 4) ]
    (P.pairs p);
  Alcotest.(check (list (pair int int))) "bottom has no pairs" []
    (P.pairs (P.bottom 5))

let test_partition_strings () =
  let p = P.of_blocks 5 [ [ 1; 3 ]; [ 2; 4 ] ] in
  Alcotest.(check string) "to_string" "{0}{1,3}{2,4}" (P.to_string p);
  Alcotest.(check string) "named"
    "{From}{To,City}{Airline,Discount}"
    (P.to_string_names [| "From"; "To"; "Airline"; "City"; "Discount" |] p)

let test_partition_restrict () =
  let p = P.of_blocks 4 [ [ 0; 1; 2 ] ] in
  let r = P.restrict p ~allowed:(fun (i, j) -> (i, j) = (0, 1)) in
  Alcotest.(check partition) "restricted" (P.of_blocks 4 [ [ 0; 1 ] ]) r;
  (* Restriction through a chain of allowed pairs re-closes: allowing
     (0,1) and (1,2) keeps the whole block. *)
  let r2 =
    P.restrict p ~allowed:(fun (i, j) -> (i, j) = (0, 1) || (i, j) = (1, 2))
  in
  Alcotest.(check partition) "closure inside allowed" p r2

let test_rgs_roundtrip_exhaustive () =
  Penum.iter_all 5 (fun p ->
      Alcotest.(check partition) "rgs roundtrip" p (P.of_rgs (P.to_rgs p)))

(* ------------------------------------------------------------------ *)
(* Lattice laws (qcheck)                                               *)

let n = 7

let props =
  [
    qtest "meet commutative" (arb_pair n) (fun (a, b) ->
        P.equal (P.meet a b) (P.meet b a));
    qtest "join commutative" (arb_pair n) (fun (a, b) ->
        P.equal (P.join a b) (P.join b a));
    qtest "meet associative" (arb_triple n) (fun (a, b, c) ->
        P.equal (P.meet a (P.meet b c)) (P.meet (P.meet a b) c));
    qtest "join associative" (arb_triple n) (fun (a, b, c) ->
        P.equal (P.join a (P.join b c)) (P.join (P.join a b) c));
    qtest "meet idempotent" (arb_partition n) (fun a -> P.equal (P.meet a a) a);
    qtest "join idempotent" (arb_partition n) (fun a -> P.equal (P.join a a) a);
    qtest "absorption meet-join" (arb_pair n) (fun (a, b) ->
        P.equal (P.meet a (P.join a b)) a);
    qtest "absorption join-meet" (arb_pair n) (fun (a, b) ->
        P.equal (P.join a (P.meet a b)) a);
    qtest "meet is glb" (arb_pair n) (fun (a, b) ->
        let m = P.meet a b in
        P.refines m a && P.refines m b);
    qtest "join is lub" (arb_pair n) (fun (a, b) ->
        let j = P.join a b in
        P.refines a j && P.refines b j);
    qtest "refines antisymmetric" (arb_pair n) (fun (a, b) ->
        QCheck.assume (P.refines a b && P.refines b a);
        P.equal a b);
    qtest "refines iff pairs subset" (arb_pair n) (fun (a, b) ->
        let subset =
          List.for_all (fun pr -> List.mem pr (P.pairs b)) (P.pairs a)
        in
        P.refines a b = subset);
    qtest "refines transitive" (arb_triple n) (fun (a, b, c) ->
        QCheck.assume (P.refines a b && P.refines b c);
        P.refines a c);
    qtest "rank monotone" (arb_pair n) (fun (a, b) ->
        QCheck.assume (P.refines a b);
        P.rank a <= P.rank b);
    qtest "meet rank upper bound" (arb_pair n) (fun (a, b) ->
        P.rank (P.meet a b) <= min (P.rank a) (P.rank b));
    qtest "bounds" (arb_partition n) (fun a ->
        P.refines (P.bottom n) a && P.refines a (P.top n));
    qtest "canonical invariant" (arb_partition n) (fun a ->
        let ok = ref true in
        for i = 0 to n - 1 do
          let r = P.rep a i in
          if r > i || P.rep a r <> r then ok := false
        done;
        !ok);
    qtest "of_pairs . pairs = id" (arb_partition n) (fun a ->
        P.equal a (P.of_pairs n (P.pairs a)));
    qtest "compare consistent with equal" (arb_pair n) (fun (a, b) ->
        (P.compare a b = 0) = P.equal a b);
  ]

(* ------------------------------------------------------------------ *)
(* Bell numbers and enumeration                                        *)

let test_bell_values () =
  List.iteri
    (fun i expected ->
      Alcotest.(check int) (Printf.sprintf "bell %d" i) expected (Bell.bell i))
    [ 1; 1; 2; 5; 15; 52; 203; 877; 4140; 21147; 115975 ]

let test_bell_float_agrees () =
  for i = 0 to 20 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "bell_float %d" i)
      (float_of_int (Bell.bell i))
      (Bell.bell_float i)
  done

let test_bell_out_of_range () =
  Alcotest.check_raises "negative" (Invalid_argument "Bell.bell: out of range")
    (fun () -> ignore (Bell.bell (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bell.bell: out of range")
    (fun () -> ignore (Bell.bell 25))

let test_enum_counts () =
  List.iter
    (fun k ->
      let count = ref 0 in
      Penum.iter_all k (fun _ -> incr count);
      Alcotest.(check int)
        (Printf.sprintf "|partitions of %d| = Bell %d" k k)
        (Bell.bell k) !count)
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_enum_distinct () =
  let seen = Hashtbl.create 64 in
  Penum.iter_all 5 (fun p ->
      let key = P.to_string p in
      Alcotest.(check bool) ("fresh " ^ key) false (Hashtbl.mem seen key);
      Hashtbl.add seen key ())

let test_below_counts () =
  Penum.iter_all 5 (fun p ->
      let ideal = Penum.below p in
      Alcotest.(check (float 0.0))
        ("count_below " ^ P.to_string p)
        (float_of_int (List.length ideal))
        (Penum.count_below p);
      List.iter
        (fun q ->
          Alcotest.(check bool) "member refines top of ideal" true
            (P.refines q p))
        ideal)

let test_below_is_exactly_ideal () =
  let p = P.of_blocks 5 [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let ideal = Penum.below p in
  (* |v p| = Bell(3) * Bell(2) = 5 * 2 = 10 *)
  Alcotest.(check int) "ideal size" 10 (List.length ideal);
  Penum.iter_all 5 (fun q ->
      let in_list = List.exists (P.equal q) ideal in
      Alcotest.(check bool) (P.to_string q) (P.refines q p) in_list)

let test_between () =
  let lo = P.of_blocks 5 [ [ 0; 1 ] ] in
  let hi = P.of_blocks 5 [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let interval = ref [] in
  Penum.iter_between lo hi (fun q -> interval := q :: !interval);
  let expected = ref [] in
  Penum.iter_all 5 (fun q ->
      if P.refines lo q && P.refines q hi then expected := q :: !expected);
  let norm l = List.sort P.compare l in
  Alcotest.(check (list partition))
    "interval contents" (norm !expected) (norm !interval)

(* ------------------------------------------------------------------ *)
(* Lattice module: counting                                            *)

let test_down_minus_exact () =
  let top = P.of_blocks 5 [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let excl =
    [ P.of_blocks 5 [ [ 0; 1 ]; [ 3; 4 ] ]; P.of_blocks 5 [ [ 0; 2 ] ] ]
  in
  let brute = ref 0 in
  Penum.iter_below top (fun q ->
      if not (List.exists (fun e -> P.refines q e) excl) then incr brute);
  Alcotest.(check (float 0.0))
    "inclusion-exclusion = brute force" (float_of_int !brute)
    (Lattice.down_minus_count ~top ~excluded:excl)

let prop_down_minus =
  qtest ~count:150 "down_minus_count matches brute force"
    (QCheck.make
       ~print:(fun (t, es) ->
         P.to_string t ^ " minus " ^ String.concat "," (List.map P.to_string es))
       QCheck.Gen.(
         pair (gen_partition_sized 5)
           (list_size (int_bound 4) (gen_partition_sized 5))))
    (fun (top, excl) ->
      let brute = ref 0 in
      Penum.iter_below top (fun q ->
          if not (List.exists (fun e -> P.refines q e) excl) then incr brute);
      Lattice.down_minus_count ~top ~excluded:excl = float_of_int !brute)

let test_antichains () =
  let a = P.of_blocks 4 [ [ 0; 1 ] ] in
  let b = P.of_blocks 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let c = P.of_blocks 4 [ [ 2; 3 ] ] in
  Alcotest.(check (list partition))
    "maximal drops dominated" [ b ]
    (Lattice.maximal_elements [ a; b; c ]);
  let mins = Lattice.minimal_elements [ a; b; c ] in
  Alcotest.(check int) "two minimal" 2 (List.length mins);
  Alcotest.(check bool) "a minimal" true (List.exists (P.equal a) mins);
  Alcotest.(check bool) "c minimal" true (List.exists (P.equal c) mins)

let test_meet_all_empty_is_top () =
  Alcotest.(check partition) "empty meet" (P.top 4) (Lattice.meet_all 4 []);
  Alcotest.(check partition) "empty join" (P.bottom 4) (Lattice.join_all 4 [])

let () =
  Alcotest.run "partition"
    [
      ( "dsu",
        [
          Alcotest.test_case "basic" `Quick test_dsu_basic;
          Alcotest.test_case "canonical array" `Quick test_dsu_canonical;
          Alcotest.test_case "negative size" `Quick test_dsu_create_negative;
        ] );
      ( "partition",
        [
          Alcotest.test_case "bounds" `Quick test_partition_bounds;
          Alcotest.test_case "of_blocks" `Quick test_partition_of_blocks;
          Alcotest.test_case "of_blocks errors" `Quick
            test_partition_of_blocks_errors;
          Alcotest.test_case "pairs" `Quick test_partition_pairs;
          Alcotest.test_case "to_string" `Quick test_partition_strings;
          Alcotest.test_case "restrict" `Quick test_partition_restrict;
          Alcotest.test_case "rgs roundtrip (all of size 5)" `Quick
            test_rgs_roundtrip_exhaustive;
        ] );
      ("lattice laws", props);
      ( "bell+enum",
        [
          Alcotest.test_case "bell values" `Quick test_bell_values;
          Alcotest.test_case "bell float agrees" `Quick test_bell_float_agrees;
          Alcotest.test_case "bell out of range" `Quick test_bell_out_of_range;
          Alcotest.test_case "enumeration counts" `Quick test_enum_counts;
          Alcotest.test_case "enumeration distinct" `Quick test_enum_distinct;
          Alcotest.test_case "below = ideal (counts)" `Quick test_below_counts;
          Alcotest.test_case "below = ideal (membership)" `Quick
            test_below_is_exactly_ideal;
          Alcotest.test_case "between = interval" `Quick test_between;
        ] );
      ( "counting",
        [
          Alcotest.test_case "down_minus exact case" `Quick
            test_down_minus_exact;
          prop_down_minus;
          Alcotest.test_case "antichains" `Quick test_antichains;
          Alcotest.test_case "empty meet/join" `Quick
            test_meet_all_empty_is_top;
        ] );
    ]
