(* Tests for the workload generators: the flights instance, the synthetic
   generator, TPC-H-lite, the denormaliser, and the Set-card deck. *)

module P = Jim_partition.Partition
module V = Jim_relational.Value
module T = Jim_relational.Tuple0
module R = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Database = Jim_relational.Database
module W = Jim_workloads
open Jim_core

let partition = Alcotest.testable P.pp P.equal

let qtest ?(count = 60) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Flights                                                             *)

let test_flights_shape () =
  Alcotest.(check int) "12 tuples" 12 (R.cardinality W.Flights.instance);
  Alcotest.(check int) "5 attributes" 5 (R.arity W.Flights.instance);
  Alcotest.(check (array string))
    "attribute names"
    [| "From"; "To"; "Airline"; "City"; "Discount" |]
    (Schema.names W.Flights.schema)

let test_flights_row_mapping () =
  Alcotest.(check int) "row 1 -> 0" 0 (W.Flights.row 1);
  Alcotest.(check int) "row 12 -> 11" 11 (W.Flights.row 12);
  Alcotest.(check bool) "row 0 invalid" true
    (try
       ignore (W.Flights.row 0);
       false
     with Invalid_argument _ -> true)

let test_flights_queries_select () =
  (* Q1 selects the 4 flight&hotel city matches; Q2 the 2 discounted
     ones. *)
  Alcotest.(check int) "Q1 result" 4
    (R.cardinality (R.satisfying W.Flights.q1 W.Flights.instance));
  Alcotest.(check int) "Q2 result" 2
    (R.cardinality (R.satisfying W.Flights.q2 W.Flights.instance))

(* ------------------------------------------------------------------ *)
(* Synthetic                                                           *)

let test_synthetic_deterministic () =
  let a = W.Synthetic.generate W.Synthetic.default in
  let b = W.Synthetic.generate W.Synthetic.default in
  Alcotest.(check partition) "same goal" a.W.Synthetic.goal b.W.Synthetic.goal;
  Alcotest.(check bool) "same instance" true
    (R.equal_contents a.W.Synthetic.relation b.W.Synthetic.relation)

let test_synthetic_shape () =
  let i = W.Synthetic.generate W.Synthetic.default in
  Alcotest.(check int) "tuples" 60 (R.cardinality i.W.Synthetic.relation);
  Alcotest.(check int) "attrs" 6 (R.arity i.W.Synthetic.relation);
  Alcotest.(check int) "goal rank" 2 (P.rank i.W.Synthetic.goal)

let test_synthetic_validation () =
  let bad f =
    try
      ignore (W.Synthetic.generate f);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "domain < attrs" true
    (bad { W.Synthetic.default with W.Synthetic.domain = 3 });
  Alcotest.(check bool) "rank too big" true
    (bad { W.Synthetic.default with W.Synthetic.goal_rank = 6 });
  Alcotest.(check bool) "too few tuples" true
    (bad { W.Synthetic.default with W.Synthetic.n_tuples = 1 })

let test_synthetic_witnesses_planted () =
  (* The goal signature itself must occur in the instance, so the goal
     is exactly identifiable (not just up to equivalence). *)
  let i = W.Synthetic.generate W.Synthetic.default in
  let sigs = R.signatures i.W.Synthetic.relation in
  Alcotest.(check bool) "goal signature present" true
    (Array.exists (fun sg -> P.equal sg i.W.Synthetic.goal) sigs)

let prop_synthetic_goal_recovered =
  (* On planted instances, inference recovers the goal exactly (stronger
     than instance-equivalence), for a deterministic strategy. *)
  qtest ~count:25 "inference recovers the planted goal exactly"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
    (fun seed ->
      let i =
        W.Synthetic.generate { W.Synthetic.default with W.Synthetic.seed }
      in
      let o =
        Session.run ~strategy:Strategy.lookahead_maximin
          ~oracle:(Oracle.of_goal i.W.Synthetic.goal)
          i.W.Synthetic.relation
      in
      P.equal o.Session.query i.W.Synthetic.goal)

let test_random_goal_rank () =
  let rng = Random.State.make [| 5 |] in
  for rank = 0 to 5 do
    let g = W.Synthetic.random_goal ~rng ~n:6 ~rank in
    Alcotest.(check int) (Printf.sprintf "rank %d" rank) rank (P.rank g)
  done

let test_complexity_sweep_grid () =
  let insts =
    W.Synthetic.complexity_sweep ~n_attrs:[ 4; 5 ] ~ranks:[ 1; 2; 4 ] ~tuples:40
      ()
  in
  (* rank 4 is skipped for 4 attrs (max 3) but kept for 5. *)
  Alcotest.(check int) "grid size" 5 (List.length insts)

(* ------------------------------------------------------------------ *)
(* TPC-H-lite                                                          *)

let test_tpch_shapes () =
  let db = W.Tpch.generate ~seed:4 W.Tpch.tiny in
  Alcotest.(check int) "7 relations" 7 (List.length (Database.names db));
  let card name = R.cardinality (Database.find_exn db name) in
  Alcotest.(check int) "customers" 8 (card "customer");
  Alcotest.(check int) "orders" 16 (card "orders");
  Alcotest.(check int) "regions" 5 (card "region");
  Alcotest.(check bool) "lineitems >= orders" true
    (card "lineitem" >= card "orders")

let test_tpch_fk_integrity () =
  let db = W.Tpch.generate ~seed:4 W.Tpch.small in
  let check_fk child fk parent pk =
    let c = Database.find_exn db child and p = Database.find_exn db parent in
    let fki = Schema.find_exn (R.schema c) fk in
    let pki = Schema.find_exn (R.schema p) pk in
    let keys =
      List.map (fun t -> T.get t pki) (R.tuples p)
    in
    List.iter
      (fun t ->
        let v = T.get t fki in
        Alcotest.(check bool)
          (Printf.sprintf "%s.%s resolves in %s" child fk parent)
          true
          (List.exists (V.equal v) keys))
      (R.tuples c)
  in
  check_fk "orders" "o_custkey" "customer" "c_custkey";
  check_fk "lineitem" "l_orderkey" "orders" "o_orderkey";
  check_fk "lineitem" "l_partkey" "part" "p_partkey";
  check_fk "lineitem" "l_suppkey" "supplier" "s_suppkey";
  check_fk "customer" "c_nationkey" "nation" "n_nationkey";
  check_fk "supplier" "s_nationkey" "nation" "n_nationkey";
  check_fk "nation" "n_regionkey" "region" "r_regionkey"

let test_tpch_deterministic () =
  let a = W.Tpch.generate ~seed:9 W.Tpch.tiny in
  let b = W.Tpch.generate ~seed:9 W.Tpch.tiny in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " reproducible") true
        (R.equal_contents (Database.find_exn a name) (Database.find_exn b name)))
    (Database.names a)

(* ------------------------------------------------------------------ *)
(* Denorm                                                              *)

let test_denorm_task () =
  let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
  match W.Denorm.task_of_names db W.Tpch.fk_customer_orders with
  | Error e -> Alcotest.fail e
  | Ok task ->
    Alcotest.(check int) "product cardinality" (8 * 16)
      (R.cardinality task.W.Denorm.instance);
    Alcotest.(check int) "product arity" 6 (R.arity task.W.Denorm.instance);
    (* The goal equates customer.c_custkey (0) and orders.o_custkey (4). *)
    Alcotest.(check partition) "goal atoms"
      (P.of_pairs 6 [ (0, 4) ])
      task.W.Denorm.goal;
    (* cross_only separates the two sources at position 3/4. *)
    Alcotest.(check bool) "cross pair" true (task.W.Denorm.cross_only (0, 4));
    Alcotest.(check bool) "intra pair" false (task.W.Denorm.cross_only (0, 2));
    (* The goal join has one row per order. *)
    Alcotest.(check int) "goal join result" 16
      (R.cardinality (W.Denorm.goal_join_result task))

let test_denorm_sampling () =
  let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
  match W.Denorm.task_of_names ~sample:50 ~seed:1 db W.Tpch.fk_customer_orders with
  | Error e -> Alcotest.fail e
  | Ok task ->
    Alcotest.(check int) "sampled" 50 (R.cardinality task.W.Denorm.instance)

let test_denorm_errors () =
  let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
  Alcotest.(check bool) "unknown relation" true
    (Result.is_error (W.Denorm.task_of_names db ([ "nope" ], [])));
  Alcotest.(check bool) "unknown attribute" true
    (Result.is_error
       (W.Denorm.task_of_names db
          ([ "customer"; "orders" ], [ ("customer.nope", "orders.o_custkey") ])))

let test_denorm_three_way () =
  let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
  match
    W.Denorm.task_of_names ~sample:200 ~seed:4 db W.Tpch.fk_customer_orders_lineitem
  with
  | Error e -> Alcotest.fail e
  | Ok task ->
    Alcotest.(check int) "3 sources" 3 (List.length task.W.Denorm.sources);
    Alcotest.(check int) "goal rank 2" 2 (P.rank task.W.Denorm.goal)

(* ------------------------------------------------------------------ *)
(* Set cards                                                           *)

let test_deck () =
  Alcotest.(check int) "81 cards" 81 (R.cardinality W.Setcards.deck);
  Alcotest.(check int) "distinct cards" 81
    (R.cardinality (R.distinct W.Setcards.deck))

let test_pair_instance () =
  let pairs = W.Setcards.pair_instance () in
  Alcotest.(check int) "81*81 pairs" (81 * 81) (R.cardinality pairs);
  Alcotest.(check int) "8 attributes" 8 (R.arity pairs);
  let sampled = W.Setcards.pair_instance ~sample:100 ~seed:1 () in
  Alcotest.(check int) "sampled" 100 (R.cardinality sampled)

let test_same_predicate () =
  let same_colour = W.Setcards.same [ "colour" ] in
  (* Each card pairs with 27 same-colour cards (including itself): 81*27. *)
  Alcotest.(check int) "same-colour pairs" (81 * 27)
    (R.cardinality (R.satisfying same_colour (W.Setcards.pair_instance ())));
  let identical =
    W.Setcards.same [ "number"; "symbol"; "shading"; "colour" ]
  in
  Alcotest.(check int) "identical pairs" 81
    (R.cardinality (R.satisfying identical (W.Setcards.pair_instance ())))

let test_card_rendering () =
  let card = R.tuple W.Setcards.deck 0 in
  Alcotest.(check bool) "card renders" true
    (String.length (W.Setcards.card_to_string card) > 0);
  let pair = R.tuple (W.Setcards.pair_instance ~sample:5 ~seed:1 ()) 0 in
  Alcotest.(check bool) "pair renders with separator" true
    (String.length (W.Setcards.pair_to_string pair) > 3)

let test_setcards_positions () =
  Alcotest.(check int) "left colour" 3 (W.Setcards.left_ "colour");
  Alcotest.(check int) "right colour" 7 (W.Setcards.right_ "colour");
  Alcotest.(check bool) "unknown feature" true
    (try
       ignore (W.Setcards.left_ "nope");
       false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Movies                                                              *)

let test_movies_shapes () =
  Alcotest.(check int) "catalogue" 7 (R.cardinality W.Movies.catalogue);
  Alcotest.(check int) "ratings" 5 (R.cardinality W.Movies.ratings);
  Alcotest.(check int) "awards" 4 (R.cardinality W.Movies.awards)

let test_movies_title_join_inferred () =
  match W.Denorm.task_of_names W.Movies.db W.Movies.catalogue_ratings with
  | Error e -> Alcotest.fail e
  | Ok task ->
    let o =
      Session.run ~strategy:Strategy.lookahead_entropy
        ~oracle:(W.Denorm.oracle task) task.W.Denorm.instance
    in
    Alcotest.(check bool) "few questions" true (o.Session.interactions <= 8);
    Alcotest.(check bool) "equivalent to goal" true
      (Jquery.equivalent_on
         (Jquery.make task.W.Denorm.schema o.Session.query)
         (Jquery.make task.W.Denorm.schema task.W.Denorm.goal)
         task.W.Denorm.instance)

let test_movies_remake_trap () =
  (* Title-only joining pairs Herzog's 1979 award with Murnau's 1922
     film; the two-atom goal (title AND year) excludes it.  The learner
     must discover the year atom. *)
  match W.Denorm.task_of_names W.Movies.db W.Movies.catalogue_awards with
  | Error e -> Alcotest.fail e
  | Ok task ->
    let title_only =
      P.of_pairs
        (Jim_relational.Schema.arity task.W.Denorm.schema)
        [
          ( Jim_relational.Schema.find_exn task.W.Denorm.schema "catalogue.c1",
            Jim_relational.Schema.find_exn task.W.Denorm.schema "awards.a2" );
        ]
    in
    let goal_rows = R.cardinality (W.Denorm.goal_join_result task) in
    let title_rows =
      R.cardinality (R.satisfying title_only task.W.Denorm.instance)
    in
    Alcotest.(check bool) "title-only over-selects" true
      (title_rows > goal_rows);
    let o =
      Session.run ~strategy:Strategy.lookahead_maximin
        ~oracle:(W.Denorm.oracle task) task.W.Denorm.instance
    in
    Alcotest.(check bool) "learner finds the 2-atom goal" true
      (Jquery.equivalent_on
         (Jquery.make task.W.Denorm.schema o.Session.query)
         (Jquery.make task.W.Denorm.schema task.W.Denorm.goal)
         task.W.Denorm.instance);
    Alcotest.(check bool) "and it is not the title-only join" false
      (Jquery.equivalent_on
         (Jquery.make task.W.Denorm.schema o.Session.query)
         (Jquery.make task.W.Denorm.schema title_only)
         task.W.Denorm.instance)

let () =
  Alcotest.run "workloads"
    [
      ( "flights",
        [
          Alcotest.test_case "shape" `Quick test_flights_shape;
          Alcotest.test_case "row mapping" `Quick test_flights_row_mapping;
          Alcotest.test_case "queries select" `Quick test_flights_queries_select;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "shape" `Quick test_synthetic_shape;
          Alcotest.test_case "validation" `Quick test_synthetic_validation;
          Alcotest.test_case "witnesses planted" `Quick
            test_synthetic_witnesses_planted;
          prop_synthetic_goal_recovered;
          Alcotest.test_case "random goal rank" `Quick test_random_goal_rank;
          Alcotest.test_case "complexity sweep grid" `Quick
            test_complexity_sweep_grid;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "shapes" `Quick test_tpch_shapes;
          Alcotest.test_case "foreign keys resolve" `Quick
            test_tpch_fk_integrity;
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
        ] );
      ( "denorm",
        [
          Alcotest.test_case "task construction" `Quick test_denorm_task;
          Alcotest.test_case "sampling" `Quick test_denorm_sampling;
          Alcotest.test_case "errors" `Quick test_denorm_errors;
          Alcotest.test_case "three-way" `Quick test_denorm_three_way;
        ] );
      ( "movies",
        [
          Alcotest.test_case "shapes" `Quick test_movies_shapes;
          Alcotest.test_case "title join inferred" `Quick
            test_movies_title_join_inferred;
          Alcotest.test_case "remake trap needs the year atom" `Quick
            test_movies_remake_trap;
        ] );
      ( "setcards",
        [
          Alcotest.test_case "deck" `Quick test_deck;
          Alcotest.test_case "pair instance" `Quick test_pair_instance;
          Alcotest.test_case "same predicates" `Quick test_same_predicate;
          Alcotest.test_case "rendering" `Quick test_card_rendering;
          Alcotest.test_case "positions" `Quick test_setcards_positions;
        ] );
    ]
