test/test_paper_example.ml: Alcotest Jim_core Jim_partition Jim_relational Jim_workloads Jquery List Oracle Printf Session State Strategy Version_space
