test/test_workloads.ml: Alcotest Array Jim_core Jim_partition Jim_relational Jim_workloads Jquery List Oracle Printf QCheck QCheck_alcotest Random Result Session Strategy String
