test/test_partition.ml: Alcotest Array Hashtbl Jim_partition List Printf QCheck QCheck_alcotest String
