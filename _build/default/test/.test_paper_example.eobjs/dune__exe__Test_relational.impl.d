test/test_relational.ml: Alcotest Array Filename Fun Jim_partition Jim_relational List QCheck QCheck_alcotest Result String Sys
