bench/main.ml: Analyze Array Bechamel Benchmark Experiments Harness Hashtbl Instance Jim_core Jim_workloads List Measure Oracle Printf Random Session Sigclass Staged Strategy Sys Test Time Toolkit
