bench/main.mli:
