bench/harness.ml: Jim_core Jim_partition Jim_relational Jim_workloads List Optimal Oracle Printf Session Strategy String
