(* Sharded-tier benchmarks: what the router front costs over a direct
   connection, how routed throughput scales with shard count, and what
   streaming the journal to a warm standby adds to the persist path.

   Routing rows drive [Stats] on pre-started sessions (cheap to serve,
   so the numbers measure the router hop, not inference).  Replication
   rows drive Started/Ended event pairs through a store's persist path
   with fsync off, so the delta is the replication stream itself, not
   the disk.

   Run with: dune exec bench/shard/bench_shard.exe [-- --quick] [--out F]
   Writes BENCH_shard.json (schema_version + generated_by + rows), gated
   in CI by bench/gate against the committed baseline. *)

module P = Jim_api.Protocol
module Service = Jim_server.Service
module Wire = Jim_server.Wire
module Router = Jim_shard.Router
module Front = Jim_shard.Front
module Standby = Jim_shard.Standby
module Repl = Jim_shard.Repl
module Store = Jim_store.Store
module Event = Jim_store.Event

type row = {
  name : string;
  clients : int;
  requests : int;
  wall_s : float;
  p50_us : float;
  p99_us : float;
}

let rps r = if r.wall_s <= 0.0 then 0.0 else float_of_int r.requests /. r.wall_s

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    float_of_int sorted.(max 0 (min (n - 1) idx)) /. 1000.0

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "jim-bench-shard-%d-%s" (Unix.getpid ()) name)

let sock name = Wire.Unix_path (tmp (name ^ ".sock"))

(* ------------------------------------------------------------------ *)
(* Routing rows: Stats throughput direct vs through the router.        *)

let start_session client =
  match
    Wire.call client
      (P.Start_session
         { source = P.Builtin "flights"; strategy = "random"; seed = 7 })
  with
  | Ok (P.Started { session; _ }) -> session
  | Ok other -> failwith ("unexpected reply: " ^ P.response_to_string other)
  | Error e -> failwith ("start: " ^ e)

let client_run ~requests address latencies slot =
  let client =
    match Wire.connect ~retries:50 ~framing:Wire.Binary address with
    | Ok c -> c
    | Error e -> failwith ("connect: " ^ e)
  in
  let session = start_session client in
  let line = P.request_to_string (P.Stats { session }) in
  let lat = Array.make requests 0 in
  for i = 0 to requests - 1 do
    let t0 = Jim_core.Metrics.now_ns () in
    (match Wire.call_line client line with
    | Ok _ -> ()
    | Error e -> failwith ("call: " ^ e));
    lat.(i) <- Jim_core.Metrics.now_ns () - t0
  done;
  ignore (Wire.call client (P.End_session { session }));
  Wire.close client;
  latencies.(slot) <- lat

let measure ~name ~clients ~requests address =
  let latencies = Array.make clients [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun slot ->
        Thread.create (client_run ~requests address latencies) slot)
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let all = Array.concat (Array.to_list latencies) in
  Array.sort compare all;
  {
    name;
    clients;
    requests = clients * requests;
    wall_s = wall;
    p50_us = percentile all 50.0;
    p99_us = percentile all 99.0;
  }

let with_shards n f =
  let shards =
    List.init n (fun i ->
        let name = Printf.sprintf "s%d" i in
        let addr = sock name in
        let service = Service.create ~max_sessions:4096 () in
        let server = Wire.serve ~threads:4 service addr in
        (name, addr, server))
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, _, server) -> Wire.shutdown server) shards)
    (fun () -> f shards)

let with_router shards f =
  let upstreams =
    List.map
      (fun (name, primary, _) -> Front.wire_upstream ~name ~primary ())
      shards
  in
  let router =
    match Router.create ~shards:upstreams () with
    | Ok r -> r
    | Error e -> failwith ("router: " ^ e)
  in
  let addr = sock "router" in
  let server = Wire.serve_handler (Router.handle_line router) addr in
  Fun.protect
    ~finally:(fun () ->
      Wire.shutdown server;
      Router.close router)
    (fun () -> f addr)

(* ------------------------------------------------------------------ *)
(* Replication rows: the persist path with and without the stream.     *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let bench_events ~name ~pairs record =
  (* One Started/Ended pair per iteration: the smallest event mix that
     keeps shadow state flat, so the cost stays per-event. *)
  let lat = Array.make (2 * pairs) 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to pairs - 1 do
    let started =
      Event.Started
        {
          session = i + 1;
          arity = 3;
          source = P.Builtin "flights";
          strategy = "random";
          seed = i;
          fingerprint = "bench";
        }
    in
    let t1 = Jim_core.Metrics.now_ns () in
    record started;
    lat.(2 * i) <- Jim_core.Metrics.now_ns () - t1;
    let t2 = Jim_core.Metrics.now_ns () in
    record (Event.Ended { session = i + 1 });
    lat.((2 * i) + 1) <- Jim_core.Metrics.now_ns () - t2
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  {
    name;
    clients = 1;
    requests = 2 * pairs;
    wall_s = wall;
    p50_us = percentile lat 50.0;
    p99_us = percentile lat 99.0;
  }

let bench_record_only ~pairs =
  let dir = tmp "repl-off" in
  rm_rf dir;
  match Store.open_dir ~fsync:false dir with
  | Error e -> failwith e
  | Ok (store, _) ->
    let row =
      bench_events ~name:"repl/record-only" ~pairs (Store.record store)
    in
    Store.close store;
    rm_rf dir;
    row

let bench_record_stream ~pairs =
  let dir = tmp "repl-on" and sdir = tmp "repl-standby" in
  rm_rf dir;
  rm_rf sdir;
  match Store.open_dir ~fsync:false dir with
  | Error e -> failwith e
  | Ok (store, _) ->
    let stb = Standby.create ~fsync:false ~dir:sdir () in
    let repl =
      match Repl.attach store (Repl.of_standby stb) with
      | Ok r -> r
      | Error e -> failwith ("attach: " ^ e)
    in
    let row =
      bench_events ~name:"repl/record+stream" ~pairs (fun ev ->
          Store.record store ev;
          Repl.send repl ev)
    in
    Repl.close repl;
    Standby.close stb;
    Store.close store;
    rm_rf dir;
    rm_rf sdir;
    row

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let json_of_row r =
  Printf.sprintf
    "    {\"name\":%S,\"clients\":%d,\"requests\":%d,\"wall_s\":%.6f,\
     \"rps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f}"
    r.name r.clients r.requests r.wall_s (rps r) r.p50_us r.p99_us

let write_json ~path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"generated_by\": \"jim bench shard\",\n\
        \  \"results\": [\n%s\n  ]\n}\n"
        (String.concat ",\n" (List.map json_of_row rows)))

let () =
  let quick = Array.mem "--quick" Sys.argv in
  let out =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then "BENCH_shard.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let scale n = if quick then max 1 (n / 10) else n in
  let requests = scale 10_000 in
  let pairs = scale 50_000 in
  let rows =
    with_shards 3 (fun shards ->
        let s0 = match shards with (_, a, _) :: _ -> a | [] -> assert false in
        let direct =
          measure ~name:"route/direct" ~clients:4 ~requests s0
        in
        let routed1 =
          with_router [ List.hd shards ] (fun addr ->
              measure ~name:"route/router-1shard" ~clients:4 ~requests addr)
        in
        let routed3 =
          with_router shards (fun addr ->
              measure ~name:"route/router-3shards" ~clients:4 ~requests addr)
        in
        [ direct; routed1; routed3 ])
    @ [ bench_record_only ~pairs; bench_record_stream ~pairs ]
  in
  Printf.printf "%-22s %8s %10s %12s %10s %10s\n" "benchmark" "clients"
    "requests" "rps" "p50 us" "p99 us";
  List.iter
    (fun r ->
      Printf.printf "%-22s %8d %10d %12.1f %10.1f %10.1f\n" r.name r.clients
        r.requests (rps r) r.p50_us r.p99_us)
    rows;
  write_json ~path:out rows;
  Printf.printf "wrote %s\n" out
