(* Shared machinery for the experiment reproductions: tabular output and
   averaged closed-loop runs. *)

module Partition = Jim_partition.Partition
module Relation = Jim_relational.Relation
module W = Jim_workloads
open Jim_core

let hrule width = print_endline (String.make width '-')

let section id title =
  print_newline ();
  hrule 72;
  Printf.printf "%s  %s\n" id title;
  hrule 72

let check name ok =
  Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name;
  ok

(* A fixed-width table printer: headers + string rows. *)
let table headers rows =
  let cols = List.length headers in
  let width c =
    List.fold_left
      (fun w row -> max w (String.length (List.nth row c)))
      (String.length (List.nth headers c))
      rows
  in
  let widths = List.init cols width in
  let print_row row =
    print_string "  ";
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* Average interactions of [strategy] against [goal] on [instance] over
   [seeds] session seeds (the seed only matters for randomised
   strategies, but averaging everything keeps columns comparable). *)
let avg_interactions ?(seeds = 5) ~strategy ~goal instance =
  let oracle = Oracle.of_goal goal in
  let total = ref 0 in
  for seed = 1 to seeds do
    let o = Session.run ~seed ~strategy ~oracle instance in
    assert (not o.Session.contradiction);
    total := !total + o.Session.interactions
  done;
  float_of_int !total /. float_of_int seeds

let strategies_with_optimal_for instance =
  (* The optimal yardstick only joins when the instance is tiny. *)
  let base = Strategy.all in
  if Relation.cardinality instance <= 16 then
    base @ [ Strategy.optimal ~max_states:500_000 () ]
  else base

let fmt_f f = Printf.sprintf "%.1f" f
