(* Durability-cost benchmarks for the session store: journal append
   throughput with the fsync barrier off and on (single writer vs the
   group-commit multi-writer case), the full Store.record hot path, and
   recovery latency from a journal tail vs from a snapshot.

   Run with: dune exec bench/store/bench_store.exe [-- --quick] [--out F]
   Writes the machine-readable BENCH_store.json (schema mirrors
   BENCH_strategies.json: schema_version + generated_by + rows). *)

module Pr = Jim_api.Protocol
module Service = Jim_server.Service
module Store = Jim_store.Store
module Journal = Jim_store.Journal
module Event = Jim_store.Event
module Recovery = Jim_store.Recovery
module W = Jim_workloads
open Jim_core

type row = {
  name : string;
  ops : int;  (* records appended / events replayed *)
  bytes : int;  (* payload bytes through the journal, 0 if n/a *)
  wall_s : float;
}

let ops_per_s r =
  if r.wall_s <= 0.0 then 0.0 else float_of_int r.ops /. r.wall_s

let mb_per_s r =
  if r.wall_s <= 0.0 || r.bytes = 0 then 0.0
  else float_of_int r.bytes /. 1048576.0 /. r.wall_s

(* ------------------------------------------------------------------ *)
(* Scratch space                                                       *)

let scratch_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "jim-bench-store-%d" (Unix.getpid ()))

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let scratch =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir = Filename.concat scratch_root (string_of_int !counter) in
    (try Unix.mkdir scratch_root 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Unix.mkdir dir 0o755;
    dir

(* ------------------------------------------------------------------ *)
(* A representative payload: one Answered event over a 5-ary relation,
   the record the hot path writes on every acknowledged answer.         *)

let sample_payload =
  let sg =
    match Jim_partition.Partition.of_string "{0,2}{1}{3,4}" with
    | Ok p -> p
    | Error e -> failwith e
  in
  Event.to_string
    (Event.Answered { session = 17; cls = 42; sg; label = State.Pos })

(* ------------------------------------------------------------------ *)
(* Journal appends                                                     *)

let bench_append ~name ~fsync ~threads ~per_thread =
  let dir = scratch () in
  let j = Journal.create ~fsync (Filename.concat dir "bench.wal") in
  let t0 = Unix.gettimeofday () in
  (if threads = 1 then
     for _ = 1 to per_thread do
       Journal.append j sample_payload
     done
   else
     let spawn _ =
       Thread.create
         (fun () ->
           for _ = 1 to per_thread do
             Journal.append j sample_payload
           done)
         ()
     in
     List.iter Thread.join (List.init threads spawn));
  let wall = Unix.gettimeofday () -. t0 in
  Journal.close j;
  rm_rf dir;
  let ops = threads * per_thread in
  { name; ops; bytes = ops * String.length sample_payload; wall_s = wall }

(* ------------------------------------------------------------------ *)
(* The Store.record hot path: encode + shadow update + journal append   *)

let bench_store_record ~name ~fsync ~events =
  let dir = scratch () in
  let store =
    match Store.open_dir ~fsync ~snapshot_every:max_int dir with
    | Ok (s, _) -> s
    | Error e -> failwith e
  in
  Store.record store
    (Event.Started
       {
         session = 1;
         arity = 5;
         source = Pr.Builtin "flights";
         strategy = "random";
         seed = 0;
         fingerprint = "00000000";
       });
  let sg =
    match Jim_partition.Partition.of_string "{0,2}{1}{3,4}" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let t0 = Unix.gettimeofday () in
  for i = 1 to events do
    Store.record store
      (Event.Answered { session = 1; cls = i land 0xff; sg; label = State.Pos });
    (* keep the shadow transcript bounded so the bench measures the log,
       not list growth *)
    if i land 0xff = 0 then Store.record store (Event.Undone { session = 1 })
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Store.close store;
  rm_rf dir;
  { name; ops = events; bytes = 0; wall_s = wall }

(* ------------------------------------------------------------------ *)
(* Recovery latency                                                    *)

(* Journal [sessions] synthetic sessions of [answers] answers each,
   leaving them live, and return the data directory. *)
let populate ~sessions ~answers =
  let dir = scratch () in
  let store =
    match Store.open_dir ~fsync:false ~snapshot_every:max_int dir with
    | Ok (s, _) -> s
    | Error e -> failwith e
  in
  let sg =
    match Jim_partition.Partition.of_string "{0}{1,3}{2}{4}" with
    | Ok p -> p
    | Error e -> failwith e
  in
  for s = 1 to sessions do
    Store.record store
      (Event.Started
         {
           session = s;
           arity = 5;
           source = Pr.Builtin "flights";
           strategy = "random";
           seed = s;
           fingerprint = "00000000";
         });
    for i = 1 to answers do
      Store.record store
        (Event.Answered { session = s; cls = i; sg; label = State.Neg })
    done
  done;
  (dir, store)

let bench_recovery_journal ~sessions ~answers =
  let dir, store = populate ~sessions ~answers in
  Store.close store;
  let t0 = Unix.gettimeofday () in
  let recovered =
    match Store.open_dir ~fsync:false dir with
    | Ok (s, r) ->
      Store.close s;
      r
    | Error e -> failwith e
  in
  let wall = Unix.gettimeofday () -. t0 in
  assert (List.length recovered.Recovery.sessions = sessions);
  rm_rf dir;
  {
    name = "recovery/journal-replay";
    ops = sessions * (answers + 1);
    bytes = 0;
    wall_s = wall;
  }

let bench_recovery_snapshot ~sessions ~answers =
  let dir, store = populate ~sessions ~answers in
  Store.checkpoint store;
  Store.close store;
  let t0 = Unix.gettimeofday () in
  let recovered =
    match Store.open_dir ~fsync:false dir with
    | Ok (s, r) ->
      Store.close s;
      r
    | Error e -> failwith e
  in
  let wall = Unix.gettimeofday () -. t0 in
  assert (List.length recovered.Recovery.sessions = sessions);
  rm_rf dir;
  {
    name = "recovery/snapshot";
    ops = sessions * (answers + 1);
    bytes = 0;
    wall_s = wall;
  }

(* End-to-end: open the store AND rebuild live Service sessions (replay
   through the engine, the part that actually re-runs inference).        *)
let bench_recovery_service ~sessions =
  let dir = scratch () in
  let store =
    match Store.open_dir ~fsync:false dir with
    | Ok (s, _) -> s
    | Error e -> failwith e
  in
  let service = Service.create ~persist:(Store.record store) () in
  let total_answers = ref 0 in
  for seed = 1 to sessions do
    let params =
      { W.Synthetic.n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }
    in
    let inst = W.Synthetic.generate params in
    let oracle = Oracle.of_goal inst.W.Synthetic.goal in
    let session =
      match
        Service.handle service
          (Pr.Start_session
             {
               source =
                 Pr.Synthetic
                   {
                     n_attrs = params.W.Synthetic.n_attrs;
                     n_tuples = params.W.Synthetic.n_tuples;
                     domain = params.W.Synthetic.domain;
                     goal_rank = params.W.Synthetic.goal_rank;
                     seed = params.W.Synthetic.seed;
                   };
               strategy = "random";
               seed;
             })
      with
      | Pr.Started { session; _ } -> session
      | other -> failwith (Pr.response_to_string other)
    in
    let rec answer () =
      match Service.handle service (Pr.Get_question { session }) with
      | Pr.Question (Some { Pr.cls; sg; _ }) -> (
        match
          Service.handle service
            (Pr.Answer { session; cls; label = Oracle.label oracle sg })
        with
        | Pr.Answered _ ->
          incr total_answers;
          answer ()
        | other -> failwith (Pr.response_to_string other))
      | Pr.Question None -> ()
      | other -> failwith (Pr.response_to_string other)
    in
    answer ()
  done;
  Store.close store;
  let t0 = Unix.gettimeofday () in
  let store', recovered =
    match Store.open_dir ~fsync:false dir with
    | Ok (s, r) -> (s, r)
    | Error e -> failwith e
  in
  let service' = Service.create ~persist:(Store.record store') () in
  let restored =
    match Service.restore service' recovered with
    | Ok n -> n
    | Error e -> failwith e
  in
  let wall = Unix.gettimeofday () -. t0 in
  Store.close store';
  rm_rf dir;
  assert (restored = sessions);
  {
    name = "recovery/service-restore";
    ops = !total_answers;
    bytes = 0;
    wall_s = wall;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let json_of_row r =
  Printf.sprintf
    "    {\"name\":%S,\"ops\":%d,\"wall_s\":%.6f,\"ops_per_s\":%.1f,\
     \"mb_per_s\":%.3f}"
    r.name r.ops r.wall_s (ops_per_s r) (mb_per_s r)

let write_json ~path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"generated_by\": \"jim bench store\",\n\
        \  \"payload_bytes\": %d,\n\
        \  \"results\": [\n%s\n  ]\n}\n"
        (String.length sample_payload)
        (String.concat ",\n" (List.map json_of_row rows)))

let () =
  let quick = Array.mem "--quick" Sys.argv in
  let out =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then "BENCH_store.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let scale n = if quick then max 1 (n / 10) else n in
  let rows =
    [
      bench_append ~name:"append/no-fsync" ~fsync:false ~threads:1
        ~per_thread:(scale 50_000);
      bench_append ~name:"append/fsync" ~fsync:true ~threads:1
        ~per_thread:(scale 500);
      bench_append ~name:"append/fsync-group-commit-8" ~fsync:true ~threads:8
        ~per_thread:(scale 500);
      bench_store_record ~name:"store-record/no-fsync" ~fsync:false
        ~events:(scale 50_000);
      bench_recovery_journal ~sessions:(scale 20) ~answers:50;
      bench_recovery_snapshot ~sessions:(scale 20) ~answers:50;
      bench_recovery_service ~sessions:(scale 10);
    ]
  in
  Printf.printf "%-30s %10s %10s %12s %10s\n" "benchmark" "ops" "wall s"
    "ops/s" "MB/s";
  List.iter
    (fun r ->
      Printf.printf "%-30s %10d %10.4f %12.1f %10.3f\n" r.name r.ops r.wall_s
        (ops_per_s r) (mb_per_s r))
    rows;
  write_json ~path:out rows;
  Printf.printf "\nwrote %s\n" out;
  rm_rf scratch_root
