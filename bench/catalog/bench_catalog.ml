(* Instance-catalog benchmarks: what a session start costs cold (first
   contact with an instance — fingerprint, sigclass grouping, initial
   status derivation) versus warm (the catalog already holds the entry,
   the start just pins it and builds an engine off the shared memo).

   Starts go through [Service.handle] in-process — no sockets — so the
   numbers measure the catalog and engine-construction path, not
   framing.  Every session is ended right after starting; the catalog
   outlives the sessions, which is the point.

   Rows:
     start/cold            every start is a distinct synthetic instance
     start/warm            every start re-sends the same concrete source
     start/by-fingerprint  register once, start via [Catalog fp]

   Run with: dune exec bench/catalog/bench_catalog.exe [-- --quick] [--out F]
   Writes the machine-readable BENCH_catalog.json (schema mirrors the
   other BENCH files: schema_version + generated_by + rows). *)

module P = Jim_api.Protocol
module Catalog = Jim_catalog.Catalog
module Service = Jim_server.Service

type row = { name : string; starts : int; wall_s : float }

let sps r =
  if r.wall_s <= 0.0 then 0.0 else float_of_int r.starts /. r.wall_s

let source seed =
  P.Synthetic { n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }

let start_end service src i =
  match
    Service.handle service
      (P.Start_session { source = src; strategy = "random"; seed = i })
  with
  | P.Started { session; _ } ->
    ignore (Service.handle service (P.End_session { session }))
  | other -> failwith ("start: " ^ P.response_to_string other)

let timed ~name ~starts f =
  let t0 = Unix.gettimeofday () in
  f ();
  { name; starts; wall_s = Unix.gettimeofday () -. t0 }

(* Cold: a fresh instance every time, so every start pays fingerprint +
   derivation (and, past the cap, an eviction). *)
let bench_cold ~starts =
  let service = Service.create ~max_sessions:8 () in
  timed ~name:"start/cold" ~starts (fun () ->
      for i = 0 to starts - 1 do
        start_end service (source (1000 + i)) i
      done)

(* Warm: the same concrete source every time — one derivation up front,
   then every start is a by-source catalog hit. *)
let bench_warm ~starts =
  let service = Service.create ~max_sessions:8 () in
  start_end service (source 7) (-1);
  timed ~name:"start/warm" ~starts (fun () ->
      for i = 0 to starts - 1 do
        start_end service (source 7) i
      done)

(* By fingerprint: the redesigned flow — register once, then every start
   ships only the handle. *)
let bench_by_fp ~starts =
  let service = Service.create ~max_sessions:8 () in
  let fp =
    match Service.handle service (P.Register_instance { source = source 7 }) with
    | P.Registered { fingerprint; _ } -> fingerprint
    | other -> failwith ("register: " ^ P.response_to_string other)
  in
  timed ~name:"start/by-fingerprint" ~starts (fun () ->
      for i = 0 to starts - 1 do
        start_end service (P.Catalog fp) i
      done)

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let json_of_row r =
  Printf.sprintf
    "    {\"name\":%S,\"starts\":%d,\"wall_s\":%.6f,\"starts_per_s\":%.1f}"
    r.name r.starts r.wall_s (sps r)

let write_json ~path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"generated_by\": \"jim bench catalog\",\n\
        \  \"results\": [\n%s\n  ]\n}\n"
        (String.concat ",\n" (List.map json_of_row rows)))

let () =
  let quick = Array.mem "--quick" Sys.argv in
  let out =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then "BENCH_catalog.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let scale n = if quick then max 1 (n / 10) else n in
  let rows =
    [
      bench_cold ~starts:(scale 500);
      bench_warm ~starts:(scale 20_000);
      bench_by_fp ~starts:(scale 20_000);
    ]
  in
  Printf.printf "%-22s %10s %10s %14s\n" "benchmark" "starts" "wall s"
    "starts/s";
  List.iter
    (fun r ->
      Printf.printf "%-22s %10d %10.3f %14.1f\n" r.name r.starts r.wall_s
        (sps r))
    rows;
  write_json ~path:out rows;
  Printf.printf "wrote %s\n" out
