(* The bench gate: compare a fresh benchmark run against the committed
   baseline JSON and fail (exit 1) on a regression — throughput down or
   latency up by more than the tolerance.

   Usage:
     bench_gate.exe --baseline BENCH_wire.json --fresh fresh.json
                    [--tolerance 0.20] [--skip SUBSTRING]...

   The file kind is dispatched on "generated_by", so one binary gates
   all three committed BENCH files:
     jim bench compare  -> strategies[].per_question_ms   (lower better)
     jim bench store    -> results[].ops_per_s            (higher better)
     jim bench wire     -> results[].rps (higher better)
                           + results[].p50_us (lower better)
     jim bench catalog  -> results[].starts_per_s         (higher better)
     jim bench shard    -> results[].rps (higher better)
                           + results[].p99_us (lower better)
     jim bench load     -> results[].rps (higher better)
                           + results[].p99_us (lower better)

   --skip excludes rows whose name contains the substring — for rows
   that measure the machine rather than the code (e.g. fsync-bound
   store rows on shared CI runners).  Rows present in the baseline but
   missing from the fresh run fail the gate: a silently dropped
   benchmark is not a passing benchmark. *)

module Json = Jim_api.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("bench-gate: " ^ m); exit 2) fmt

let read_json path =
  let ic = try open_in path with Sys_error m -> die "%s" m in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  match Json.of_string data with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let str_field name v =
  match Json.member name v with
  | Some (Json.String s) -> s
  | _ -> die "missing string field %S" name

let num_field name row =
  match Json.member name row with
  | Some v -> (
    match Json.as_float v with
    | Ok f -> f
    | Error e -> die "field %S: %s" name e)
  | None -> die "row %s has no field %S" (str_field "name" row) name

let rows_of kind v =
  let list_field name =
    match Json.member name v with
    | Some (Json.List l) -> l
    | _ -> die "missing array field %S" name
  in
  match kind with
  | "jim bench compare" -> list_field "strategies"
  | "jim bench store" | "jim bench wire" | "jim bench catalog"
  | "jim bench shard" | "jim bench load" ->
    list_field "results"
  | k -> die "unknown generated_by %S" k

(* (metric name, value extractor, direction): [`Higher] = bigger is
   better (throughput), [`Lower] = smaller is better (latency). *)
let metrics_of = function
  | "jim bench compare" -> [ ("per_question_ms", `Lower) ]
  | "jim bench store" -> [ ("ops_per_s", `Higher) ]
  | "jim bench wire" -> [ ("rps", `Higher); ("p50_us", `Lower) ]
  | "jim bench catalog" -> [ ("starts_per_s", `Higher) ]
  | "jim bench shard" -> [ ("rps", `Higher); ("p99_us", `Lower) ]
  | "jim bench load" -> [ ("rps", `Higher); ("p99_us", `Lower) ]
  | k -> die "unknown generated_by %S" k

let () =
  let baseline = ref "" and fresh = ref "" in
  let tolerance = ref 0.20 in
  let skips = ref [] in
  let rec parse i =
    if i >= Array.length Sys.argv then ()
    else
      let need () =
        if i + 1 >= Array.length Sys.argv then
          die "%s needs a value" Sys.argv.(i);
        Sys.argv.(i + 1)
      in
      match Sys.argv.(i) with
      | "--baseline" -> baseline := need (); parse (i + 2)
      | "--fresh" -> fresh := need (); parse (i + 2)
      | "--tolerance" -> tolerance := float_of_string (need ()); parse (i + 2)
      | "--skip" -> skips := need () :: !skips; parse (i + 2)
      | a -> die "unknown argument %S" a
  in
  parse 1;
  if !baseline = "" || !fresh = "" then
    die "usage: --baseline FILE --fresh FILE [--tolerance T] [--skip S]...";
  let base_json = read_json !baseline and fresh_json = read_json !fresh in
  let kind = str_field "generated_by" base_json in
  let fresh_kind = str_field "generated_by" fresh_json in
  if kind <> fresh_kind then
    die "kind mismatch: baseline is %S, fresh is %S" kind fresh_kind;
  let fresh_rows =
    List.map (fun r -> (str_field "name" r, r)) (rows_of kind fresh_json)
  in
  let skipped name = List.exists (fun s ->
      let sl = String.length s and nl = String.length name in
      let rec at i = i + sl <= nl && (String.sub name i sl = s || at (i + 1)) in
      at 0)
      !skips
  in
  let failures = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun row ->
      let name = str_field "name" row in
      if skipped name then Printf.printf "SKIP  %s\n" name
      else
        match List.assoc_opt name fresh_rows with
        | None ->
          incr failures;
          Printf.printf "FAIL  %s: present in baseline, missing from fresh run\n"
            name
        | Some fresh_row ->
          List.iter
            (fun (metric, dir) ->
              incr checked;
              let base_v = num_field metric row in
              let fresh_v = num_field metric fresh_row in
              let ok, bound =
                match dir with
                | `Higher ->
                  let bound = base_v *. (1.0 -. !tolerance) in
                  (fresh_v >= bound, bound)
                | `Lower ->
                  let bound = base_v *. (1.0 +. !tolerance) in
                  (fresh_v <= bound, bound)
              in
              if ok then
                Printf.printf "ok    %s %s: %.1f (baseline %.1f)\n" name metric
                  fresh_v base_v
              else begin
                incr failures;
                Printf.printf
                  "FAIL  %s %s: %.1f vs baseline %.1f (bound %.1f, tolerance \
                   %.0f%%)\n"
                  name metric fresh_v base_v bound (!tolerance *. 100.0)
              end)
            (metrics_of kind))
    (rows_of kind base_json);
  if !checked = 0 then die "no metrics compared — empty baseline?";
  if !failures > 0 then begin
    Printf.printf "bench-gate: %d regression(s) vs %s\n" !failures !baseline;
    exit 1
  end;
  Printf.printf "bench-gate: %d metric(s) within %.0f%% of %s\n" !checked
    (!tolerance *. 100.0) !baseline
