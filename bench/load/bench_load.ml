(* The closed-loop load bench: the mutating hot path under concurrent
   traffic, batching on vs off.

   Every request journals one durable (fsync'd) record — clients
   alternate Answer/Undo on live sessions, so the loop runs in steady
   state forever without finishing a session.  Per row the driver keeps
   [conns] connections fully loaded (closed loop: a reply triggers the
   next request) and reports requests/s plus p50/p95/p99 latency:

     batch=off  commit_window = 0 and one request in flight per
                connection — the per-record path: one journal write and
                one fsync barrier per request, one response per write.
     batch=on   commit_window > 0 and [pipeline] requests in flight per
                connection (one per session, so per-session ordering is
                trivial) — records group-commit into combined writes
                under shared fsyncs, the server coalesces replies into
                shared flushes, and each connection amortises its
                syscalls over the pipeline.

   The store runs on the real filesystem with fsync on: the off rows
   pay the disk the way an unbatched server would.  [--sync-us N]
   swaps in an {!Io} shim that adds [N] microseconds to every fsync —
   a model of a slower sync device (SATA SSD / fs journal / cloud
   block device) for runners whose local NVMe acks a sync faster than
   a thread wakeup.  Both modes pay the same modelled disk; note the
   journal shares fsync barriers between concurrent appenders even
   with the window off, so on a slow disk the off rows group-commit
   too and the spread narrows to the syscall/wakeup amortisation.

   Run with: dune exec bench/load/bench_load.exe [-- --quick] [--out F]
   Writes BENCH_load.json (schema_version + generated_by + rows), gated
   in CI by bench/gate against the committed baseline. *)

module P = Jim_api.Protocol
module Service = Jim_server.Service
module Wire = Jim_server.Wire
module Store = Jim_store.Store
module Oracle = Jim_core.Oracle
module Synth = Jim_workloads.Synthetic

type row = {
  name : string;
  batch : bool;
  conns : int;
  pipeline : int;
  window_ms : float;
  requests : int;
  wall_s : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

let rps r = if r.wall_s <= 0.0 then 0.0 else float_of_int r.requests /. r.wall_s

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    float_of_int sorted.(max 0 (min (n - 1) idx)) /. 1000.0

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "jim-bench-load-%d-%s" (Unix.getpid ()) name)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* All threads of a row release together so the wall clock measures the
   loaded steady state, not connection ramp-up. *)
module Barrier = struct
  type t = { lock : Mutex.t; cond : Condition.t; mutable left : int }

  let make n = { lock = Mutex.create (); cond = Condition.create (); left = n }

  let wait b =
    Mutex.lock b.lock;
    b.left <- b.left - 1;
    if b.left = 0 then Condition.broadcast b.cond
    else while b.left > 0 do Condition.wait b.cond b.lock done;
    Mutex.unlock b.lock
end

(* ------------------------------------------------------------------ *)
(* The workload: one shared small synthetic instance (one catalog
   entry, derived once), sessions that answer their first question with
   the oracle's label and then undo it, forever.  Both directions
   journal one record. *)

let instance_seed = 1

let params =
  { Synth.n_attrs = 4; n_tuples = 16; domain = 4; goal_rank = 2; seed = instance_seed }

let source =
  P.Synthetic
    {
      n_attrs = params.Synth.n_attrs;
      n_tuples = params.Synth.n_tuples;
      domain = params.Synth.domain;
      goal_rank = params.Synth.goal_rank;
      seed = params.Synth.seed;
    }

let oracle = lazy (Oracle.of_goal (Synth.generate params).Synth.goal)

type session_reqs = { id : int; answer : string; undo : string }

let start_session client seed =
  match Wire.call client (P.Start_session { source; strategy = "random"; seed }) with
  | Ok (P.Started { session; _ }) -> session
  | Ok other -> failwith ("unexpected reply: " ^ P.response_to_string other)
  | Error e -> failwith ("start: " ^ e)

let setup_session client seed =
  let id = start_session client seed in
  match Wire.call client (P.Get_question { session = id }) with
  | Ok (P.Question (Some { P.cls; sg; _ })) ->
    let label = Oracle.label (Lazy.force oracle) sg in
    {
      id;
      answer = P.request_to_string (P.Answer { session = id; cls; label });
      undo = P.request_to_string (P.Undo { session = id });
    }
  | Ok other -> failwith ("unexpected question reply: " ^ P.response_to_string other)
  | Error e -> failwith ("question: " ^ e)

(* The hot loop only needs to know the reply is an Answered/Undone and
   not an error; a full JSON parse per reply would spend more of the
   bench's CPU in the driver than in the server.  Replies open with the
   constant envelope ["{\"jim\":1,\"resp\":\"<tag>\""], so a prefix
   compare settles it; anything unexpected gets the full parse for the
   error message. *)
let reply_prefix resp tag =
  let s = P.response_to_string resp in
  match String.index_opt s ',' with
  | Some comma when String.length s > comma + String.length tag ->
    String.sub s 0 (comma + 9 + String.length tag)
  | _ -> failwith "unrecognised reply envelope"

let answered_prefix =
  lazy
    (reply_prefix
       (P.Answered
          { finished = false; asked = 0; decided_classes = 0; decided_tuples = 0 })
       "answered")

let undone_prefix = lazy (reply_prefix (P.Undone { asked = 0 }) "undone")

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix

let check_reply line =
  if
    not
      (starts_with ~prefix:(Lazy.force answered_prefix) line
      || starts_with ~prefix:(Lazy.force undone_prefix) line)
  then
    match P.response_of_string line with
    | Ok (P.Answered _) | Ok (P.Undone _) -> ()
    | Ok other -> failwith ("unexpected reply: " ^ P.response_to_string other)
    | Error e -> failwith ("reply: " ^ P.error_to_string e)

(* One connection: [pipeline] sessions, driven in waves — send one
   request per session (buffered into a single flush), then receive the
   [pipeline] in-order replies.  Each session has exactly one request
   in flight, the connection has [pipeline].  Latency is per request,
   from just before its wave's send burst to its reply. *)
let client_run ~pipeline ~waves ~address ~barrier latencies slot =
  let client =
    match Wire.connect ~retries:50 ~framing:Wire.Binary address with
    | Ok c -> c
    | Error e -> failwith ("connect: " ^ e)
  in
  let sessions =
    List.init pipeline (fun k -> setup_session client ((1000 * slot) + k + 2))
  in
  Barrier.wait barrier;
  let lat = Array.make (waves * pipeline) 0 in
  let i = ref 0 in
  for w = 0 to waves - 1 do
    let t0 = Jim_core.Metrics.now_ns () in
    List.iter
      (fun s ->
        let req = if w land 1 = 0 then s.answer else s.undo in
        match Wire.send_line ~flush:false client req with
        | Ok () -> ()
        | Error e -> failwith ("send: " ^ e))
      sessions;
    List.iter
      (fun _ ->
        match Wire.recv_line client with
        | Ok line ->
          lat.(!i) <- Jim_core.Metrics.now_ns () - t0;
          incr i;
          check_reply line
        | Error e -> failwith ("recv: " ^ e))
      sessions
  done;
  List.iter (fun s -> ignore (Wire.call client (P.End_session { session = s.id }))) sessions;
  Wire.close client;
  latencies.(slot) <- lat

let measure ~name ~batch ~conns ~pipeline ~window_ms ~requests_target address =
  let waves = max 2 (requests_target / (conns * pipeline)) in
  let latencies = Array.make conns [||] in
  let barrier = Barrier.make (conns + 1) in
  let threads =
    List.init conns (fun slot ->
        Thread.create (client_run ~pipeline ~waves ~address ~barrier latencies) slot)
  in
  Barrier.wait barrier;
  let t0 = Unix.gettimeofday () in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let all = Array.concat (Array.to_list latencies) in
  Array.sort compare all;
  {
    name;
    batch;
    conns;
    pipeline;
    window_ms;
    requests = conns * pipeline * waves;
    wall_s = wall;
    p50_us = percentile all 50.0;
    p95_us = percentile all 95.0;
    p99_us = percentile all 99.0;
  }

(* ------------------------------------------------------------------ *)
(* One server per mode: same worker pool, same framing, same store
   layout — only the commit window (server side) and the pipeline depth
   (client side) change between off and on. *)

(* [Io.real] with [delay] seconds added to every file fsync — the
   modelled sync device.  Only the journal's fsync sits on the hot
   path, but wrapping every handle keeps the model uniform. *)
let sync_modelled_io delay =
  let real = Jim_store.Io.real in
  let slow (f : Jim_store.Io.file) =
    {
      f with
      Jim_store.Io.fsync =
        (fun () ->
          Thread.delay delay;
          f.Jim_store.Io.fsync ());
    }
  in
  {
    real with
    Jim_store.Io.create = (fun path -> slow (real.Jim_store.Io.create path));
    open_append =
      (fun path ->
        Result.map
          (fun (f, size) -> (slow f, size))
          (real.Jim_store.Io.open_append path));
  }

let with_server ~window ~threads ~sync_us name f =
  let dir = tmp (name ^ ".d") in
  rm_rf dir;
  let io =
    if sync_us > 0 then sync_modelled_io (float_of_int sync_us /. 1e6)
    else Jim_store.Io.real
  in
  let store, _ =
    match
      Store.open_dir ~fsync:true ~commit_window:window ~snapshot_every:100_000
        ~io dir
    with
    | Ok v -> v
    | Error e -> failwith ("open_dir: " ^ e)
  in
  let service =
    Service.create ~max_sessions:4096 ~persist:(Store.record store) ()
  in
  let address = Wire.Unix_path (tmp (name ^ ".sock")) in
  let config = { Wire.default_config with threads } in
  let server =
    Wire.serve_handler ~config (Service.handle_line_status service) address
  in
  Fun.protect
    ~finally:(fun () ->
      Wire.shutdown server;
      let cs = Store.commit_stats store in
      let ns = Jim_server.Netstats.snapshot () in
      Printf.eprintf
        "# %s: commit %d batches / %d records (max %d) · wire %d reqs, %d \
         flushes, %d coalesced, depth %d\n\
         %!"
        name cs.Jim_store.Journal.batches cs.Jim_store.Journal.records
        cs.Jim_store.Journal.max_batch ns.Jim_server.Netstats.requests
        ns.Jim_server.Netstats.flushes ns.Jim_server.Netstats.writes_coalesced
        ns.Jim_server.Netstats.pipelined_depth_max;
      Jim_server.Netstats.reset ();
      Store.close store;
      (match address with
      | Wire.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
      | _ -> ());
      rm_rf dir)
    (fun () -> f address)

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let json_of_row r =
  Printf.sprintf
    "    {\"name\":%S,\"batch\":%b,\"conns\":%d,\"pipeline\":%d,\
     \"window_ms\":%.1f,\"requests\":%d,\"wall_s\":%.6f,\"rps\":%.1f,\
     \"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f}"
    r.name r.batch r.conns r.pipeline r.window_ms r.requests r.wall_s (rps r)
    r.p50_us r.p95_us r.p99_us

let write_json ~path ~sync_us rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"generated_by\": \"jim bench load\",\n\
        \  \"sync_us\": %d,\n\
        \  \"results\": [\n%s\n  ]\n}\n"
        sync_us
        (String.concat ",\n" (List.map json_of_row rows)))

let () =
  let quick = Array.mem "--quick" Sys.argv in
  let out =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then "BENCH_load.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let int_flag name default =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then default
      else if Sys.argv.(i) = name then int_of_string Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let conns_list =
    match int_flag "--conns" 0 with
    | 0 -> if quick then [ 1; 8 ] else [ 1; 8; 64; 256 ]
    | c -> [ c ]
  in
  let requests_target = if quick then 4_000 else 24_000 in
  let threads = int_flag "--threads" 64 in
  let pipeline = int_flag "--pipeline" 4 in
  let window = float_of_int (int_flag "--window-us" 100) /. 1e6 in
  let sync_us = int_flag "--sync-us" 0 in
  ignore (Lazy.force oracle);
  let off =
    with_server ~window:0. ~threads ~sync_us "off" (fun address ->
        List.map
          (fun conns ->
            measure
              ~name:(Printf.sprintf "mut/c%d/batch=off" conns)
              ~batch:false ~conns ~pipeline:1 ~window_ms:0. ~requests_target
              address)
          conns_list)
  in
  let on =
    with_server ~window ~threads ~sync_us "on" (fun address ->
        List.map
          (fun conns ->
            measure
              ~name:(Printf.sprintf "mut/c%d/batch=on" conns)
              ~batch:true ~conns ~pipeline ~window_ms:(window *. 1000.)
              ~requests_target address)
          conns_list)
  in
  let rows =
    List.concat_map (fun c ->
        List.filter (fun r -> r.conns = c) (off @ on))
      conns_list
  in
  Printf.printf "%-20s %6s %9s %10s %12s %9s %9s %9s\n" "benchmark" "conns"
    "pipeline" "requests" "rps" "p50 us" "p95 us" "p99 us";
  List.iter
    (fun r ->
      Printf.printf "%-20s %6d %9d %10d %12.1f %9.1f %9.1f %9.1f\n" r.name
        r.conns r.pipeline r.requests (rps r) r.p50_us r.p95_us r.p99_us)
    rows;
  (* The acceptance view: batching-on vs batching-off at each width. *)
  List.iter
    (fun c ->
      match
        ( List.find_opt (fun r -> r.conns = c) off,
          List.find_opt (fun r -> r.conns = c) on )
      with
      | Some o, Some b ->
        Printf.printf
          "c%-4d batching speedup %.2fx · on-p99 %.0fus vs 1.5x off-p50 %.0fus\n"
          c (rps b /. rps o) b.p99_us (1.5 *. o.p50_us)
      | _ -> ())
    conns_list;
  write_json ~path:out ~sync_us rows;
  Printf.printf "wrote %s\n" out
