(* Wire-layer benchmarks: request/response throughput and latency of
   the serve loop under both framings, and throughput with a thousand
   idle connections parked on the same event loop (the case the epoll
   rewrite exists for — idle fds must cost nothing).

   Requests are [Stats] on a pre-started builtin session: cheap to
   serve, so the numbers measure framing + event-loop overhead, not
   inference.

   Run with: dune exec bench/wire/bench_wire.exe [-- --quick] [--out F]
   Writes the machine-readable BENCH_wire.json (schema mirrors the
   other BENCH files: schema_version + generated_by + rows). *)

module P = Jim_api.Protocol
module Service = Jim_server.Service
module Wire = Jim_server.Wire
module Netstats = Jim_server.Netstats

type row = {
  name : string;
  framing : string;
  clients : int;
  idle_conns : int;
  requests : int;
  wall_s : float;
  p50_us : float;
  p99_us : float;
}

let rps r = if r.wall_s <= 0.0 then 0.0 else float_of_int r.requests /. r.wall_s

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    float_of_int sorted.(max 0 (min (n - 1) idx)) /. 1000.0

let socket_path =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "jim-bench-wire-%d.sock" (Unix.getpid ()))

let address = Wire.Unix_path socket_path

let start_session client =
  match
    Wire.call client
      (P.Start_session { source = P.Builtin "flights"; strategy = "random"; seed = 7 })
  with
  | Ok (P.Started { session; _ }) -> session
  | Ok other -> failwith ("unexpected reply: " ^ P.response_to_string other)
  | Error e -> failwith ("start: " ^ e)

(* One client thread: [requests] Stats calls on its own session over its
   own connection, recording each call's latency in ns. *)
let client_run ~framing ~requests latencies slot =
  let client =
    match Wire.connect ~retries:50 ~framing address with
    | Ok c -> c
    | Error e -> failwith ("connect: " ^ e)
  in
  let session = start_session client in
  let line = P.request_to_string (P.Stats { session }) in
  let lat = Array.make requests 0 in
  for i = 0 to requests - 1 do
    let t0 = Jim_core.Metrics.now_ns () in
    (match Wire.call_line client line with
    | Ok _ -> ()
    | Error e -> failwith ("call: " ^ e));
    lat.(i) <- Jim_core.Metrics.now_ns () - t0
  done;
  ignore (Wire.call client (P.End_session { session }));
  Wire.close client;
  latencies.(slot) <- lat

let bench_throughput ~name ~framing ~clients ~requests ~idle_conns =
  (* Park [idle_conns] connected-but-silent clients on the loop first:
     with epoll they are invisible; with a thread-per-connection design
     they would each pin a worker. *)
  let idle =
    List.init idle_conns (fun _ ->
        match Wire.connect ~retries:50 address with
        | Ok c -> c
        | Error e -> failwith ("idle connect: " ^ e))
  in
  let latencies = Array.make clients [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun slot ->
        Thread.create (client_run ~framing ~requests latencies) slot)
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  List.iter Wire.close idle;
  let all = Array.concat (Array.to_list latencies) in
  Array.sort compare all;
  {
    name;
    framing = (match framing with Wire.Line -> "line" | Wire.Binary -> "binary");
    clients;
    idle_conns;
    requests = clients * requests;
    wall_s = wall;
    p50_us = percentile all 50.0;
    p99_us = percentile all 99.0;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let json_of_row r =
  Printf.sprintf
    "    {\"name\":%S,\"framing\":%S,\"clients\":%d,\"idle_conns\":%d,\
     \"requests\":%d,\"wall_s\":%.6f,\"rps\":%.1f,\"p50_us\":%.1f,\
     \"p99_us\":%.1f}"
    r.name r.framing r.clients r.idle_conns r.requests r.wall_s (rps r)
    r.p50_us r.p99_us

let write_json ~path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"generated_by\": \"jim bench wire\",\n\
        \  \"results\": [\n%s\n  ]\n}\n"
        (String.concat ",\n" (List.map json_of_row rows)))

let () =
  let quick = Array.mem "--quick" Sys.argv in
  let out =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then "BENCH_wire.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let scale n = if quick then max 1 (n / 10) else n in
  let service = Service.create ~max_sessions:4096 () in
  let server = Wire.serve ~threads:8 service address in
  let requests = scale 20_000 in
  let idle = scale 1_000 in
  let rows =
    [
      bench_throughput ~name:"rps/line" ~framing:Wire.Line ~clients:4
        ~requests ~idle_conns:0;
      bench_throughput ~name:"rps/binary" ~framing:Wire.Binary ~clients:4
        ~requests ~idle_conns:0;
      bench_throughput ~name:"rps/binary-1k-idle" ~framing:Wire.Binary
        ~clients:4 ~requests ~idle_conns:idle;
    ]
  in
  let stats = Netstats.snapshot () in
  Wire.shutdown server;
  Printf.printf "%-22s %8s %8s %10s %12s %10s %10s\n" "benchmark" "clients"
    "idle" "requests" "rps" "p50 us" "p99 us";
  List.iter
    (fun r ->
      Printf.printf "%-22s %8d %8d %10d %12.1f %10.1f %10.1f\n" r.name
        r.clients r.idle_conns r.requests (rps r) r.p50_us r.p99_us)
    rows;
  Printf.printf "\nwire: %s\n" (Netstats.to_string stats);
  write_json ~path:out rows;
  Printf.printf "wrote %s\n" out;
  try Sys.remove socket_path with Sys_error _ -> ()
