(* The strategy-scorer comparison harness: one closed-loop run per
   strategy on a fixed synthetic workload, with per-strategy perf
   counters (Metrics) and wall time.  Prints a table and writes the
   machine-readable BENCH_strategies.json (schema documented in the
   README). *)

module W = Jim_workloads
open Jim_core

type row = {
  name : string;
  kind : string;
  interactions_avg : float;
  questions : int;
  wall_s : float;
  snap : Metrics.snapshot;
}

let kind_string = function
  | `Random -> "random"
  | `Local -> "local"
  | `Lookahead -> "lookahead"

let default_workload =
  (* n_attrs, n_tuples, goal_rank, seeds *)
  (6, 200, 2, 3)

let measure ~n_attrs ~n_tuples ~goal_rank ~seeds strat =
  Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let interactions = ref 0 and questions = ref 0 in
  for seed = 1 to seeds do
    let inst =
      W.Synthetic.generate
        {
          W.Synthetic.n_attrs;
          n_tuples;
          domain = max n_attrs 8;
          goal_rank;
          seed;
        }
    in
    let oracle = Oracle.of_goal inst.W.Synthetic.goal in
    let o = Session.run ~seed ~strategy:strat ~oracle inst.W.Synthetic.relation in
    assert (not o.Session.contradiction);
    interactions := !interactions + o.Session.interactions;
    questions := !questions + List.length o.Session.events
  done;
  let wall = Unix.gettimeofday () -. t0 in
  {
    name = strat.Strategy.name;
    kind = kind_string strat.Strategy.kind;
    interactions_avg = float_of_int !interactions /. float_of_int seeds;
    questions = !questions;
    wall_s = wall;
    snap = Metrics.snapshot ();
  }

let per_question_ms r =
  if r.questions = 0 then 0.0 else r.wall_s *. 1e3 /. float_of_int r.questions

let json_of_row r =
  Printf.sprintf
    "    {\"name\":%S,\"kind\":%S,\"interactions_avg\":%.3f,\
     \"questions\":%d,\"wall_s\":%.6f,\"per_question_ms\":%.6f,\
     \"metrics\":%s}"
    r.name r.kind r.interactions_avg r.questions r.wall_s (per_question_ms r)
    (Metrics.to_json r.snap)

let write_json ~path ~workload rows =
  let n_attrs, n_tuples, goal_rank, seeds = workload in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"generated_by\": \"jim bench compare\",\n\
        \  \"domains\": %d,\n\
        \  \"workload\": {\"n_attrs\":%d,\"n_tuples\":%d,\"goal_rank\":%d,\
         \"seeds\":%d},\n\
        \  \"strategies\": [\n%s\n  ]\n}\n"
        (Scorer.domains ()) n_attrs n_tuples goal_rank seeds
        (String.concat ",\n" (List.map json_of_row rows)))

let run ?(out = "BENCH_strategies.json") ?(workload = default_workload) () =
  let n_attrs, n_tuples, goal_rank, seeds = workload in
  Harness.section "COMPARE"
    "strategy scorer: interactions, pick latency, cache counters";
  Printf.printf
    "  (synthetic workload: %d attrs, %d tuples, goal rank %d, %d seeds; \
     %d scoring domain(s))\n\n"
    n_attrs n_tuples goal_rank seeds (Scorer.domains ());
  let strategies = Strategy.all @ [ Strategy.lookahead2 () ] in
  let rows =
    List.map (measure ~n_attrs ~n_tuples ~goal_rank ~seeds) strategies
  in
  Harness.table
    [
      "strategy"; "interactions"; "ms/question"; "meets"; "classify";
      "cache hit%";
    ]
    (List.map
       (fun r ->
         [
           r.name;
           Harness.fmt_f r.interactions_avg;
           Printf.sprintf "%.3f" (per_question_ms r);
           string_of_int r.snap.Metrics.meets;
           string_of_int r.snap.Metrics.classify_calls;
           Printf.sprintf "%.0f" (100.0 *. Metrics.hit_rate r.snap);
         ])
       rows);
  write_json ~path:out ~workload rows;
  Printf.printf "\n  wrote %s\n" out;
  rows
