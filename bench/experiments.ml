(* E1-E5: the per-figure reproductions (interaction-count experiments).
   E6 (latency) lives in main.ml with bechamel. *)

module Partition = Jim_partition.Partition
module Relation = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Tuple0 = Jim_relational.Tuple0
module W = Jim_workloads
module F = W.Flights
open Jim_core
open Harness

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 and every concrete Section 2 claim.                      *)

let e1 () =
  section "E1" "Fig. 1 - the motivating example and its Section-2 claims";
  print_string (Jim_tui.Render.table F.instance);
  Printf.printf "  Q1: %s\n" (Jim_tui.Render.partition_line F.schema F.q1);
  Printf.printf "  Q2: %s\n\n" (Jim_tui.Render.partition_line F.schema F.q2);
  let st0 = State.create 5 in
  let add st k lbl = State.add_exn st lbl (F.signature k) in
  let st3 = add st0 3 State.Pos in
  let all_pass =
    List.for_all Fun.id
      [
        check "Q1 and Q2 both select tuple (3)"
          (Tuple0.satisfies F.q1 (F.tuple 3)
          && Tuple0.satisfies F.q2 (F.tuple 3));
        check "after (3)+, tuple (4) is uninformative"
          (State.classify st3 (F.signature 4) = State.Certain_pos);
        check "tuple (8) distinguishes Q1 from Q2"
          (Tuple0.satisfies F.q1 (F.tuple 8)
          && not (Tuple0.satisfies F.q2 (F.tuple 8)));
        check "{(3)+,(7)-,(8)-} leaves exactly Q2"
          (let st =
             add (add st3 7 State.Neg) 8 State.Neg
           in
           match Version_space.enumerate st with
           | [ q ] -> Partition.equal q F.q2
           | _ -> false);
        check "(12)+ prunes {(3),(4),(7)}"
          (let st = add st0 12 State.Pos in
           List.for_all
             (fun k -> State.classify st (F.signature k) <> State.Informative)
             [ 3; 4; 7 ]
          && List.for_all
               (fun k -> State.classify st (F.signature k) = State.Informative)
               [ 1; 2; 5; 6; 8; 9; 10; 11 ]);
        check "(12)- prunes {(1),(5),(9)}"
          (let st = add st0 12 State.Neg in
           List.for_all
             (fun k -> State.classify st (F.signature k) <> State.Informative)
             [ 1; 5; 9 ]
          && List.for_all
               (fun k -> State.classify st (F.signature k) = State.Informative)
               [ 2; 3; 4; 6; 7; 8; 10; 11 ]);
      ]
  in
  Printf.printf "  => E1 %s\n" (if all_pass then "reproduced" else "FAILED")

(* ------------------------------------------------------------------ *)
(* E2: the Fig. 2 loop on the motivating example.                      *)

let e2 () =
  section "E2" "Fig. 2 - interactive inference on Fig. 1 (questions to goal)";
  let strategies = strategies_with_optimal_for F.instance in
  let rows =
    List.map
      (fun strat ->
        let c1 = avg_interactions ~strategy:strat ~goal:F.q1 F.instance in
        let c2 = avg_interactions ~strategy:strat ~goal:F.q2 F.instance in
        [ strat.Strategy.name; fmt_f c1; fmt_f c2 ])
      strategies
  in
  table [ "strategy"; "goal Q1"; "goal Q2" ] rows;
  print_newline ();
  Printf.printf
    "  (paper narrative: 3 well-chosen labels suffice for Q2 - e.g. (3)+,\n\
    \   (7)-, (8)-; every strategy must land well under the 12 tuples)\n"

(* ------------------------------------------------------------------ *)
(* E3: Fig. 3's four interaction types and Fig. 4's benefit chart.     *)

let e3 () =
  section "E3" "Figs. 3-4 - four interaction types and the strategy benefit";
  let goal = F.q2 in
  let oracle = Oracle.of_goal goal in
  let instance = F.instance in
  let order = List.init (Relation.cardinality instance) (fun i -> i) in
  let strategy = Strategy.lookahead_entropy in
  let r1 = Interaction.mode1_label_all ~order ~oracle instance in
  let r2 = Interaction.mode2_gray_out ~order ~oracle instance in
  let r3 = Interaction.mode3_top_k ~k:3 ~strategy ~oracle instance in
  let r4 = Interaction.mode4_interactive ~strategy ~oracle instance in
  table
    [ "interaction type"; "labels"; "auto-decided"; "query ok" ]
    (List.map
       (fun (r : Interaction.report) ->
         [
           r.Interaction.mode;
           string_of_int r.Interaction.labels_given;
           string_of_int r.Interaction.auto_determined;
           string_of_bool
             (Jquery.equivalent_on
                (Jquery.make F.schema r.Interaction.query)
                (Jquery.make F.schema goal) instance);
         ])
       [ r1; r2; r3; r4 ]);
  print_newline ();
  print_string
    (Jim_tui.Barchart.benefit
       ~baseline:("1 label everything", r1.Interaction.labels_given)
       [
         ("2 gray out", r2.Interaction.labels_given);
         ("3 top-3", r3.Interaction.labels_given);
         ("4 JIM", r4.Interaction.labels_given);
       ]);
  ignore
    (check "modes are ordered: mode1 >= mode2 >= mode3 >= mode4"
       (r1.Interaction.labels_given >= r2.Interaction.labels_given
       && r2.Interaction.labels_given >= r3.Interaction.labels_given
       && r3.Interaction.labels_given >= r4.Interaction.labels_given))

(* ------------------------------------------------------------------ *)
(* E4: strategy comparison across instance/query complexity.           *)

let e4 ?(seeds = 8) () =
  section "E4"
    "Section 3 - local vs lookahead vs random across complexity";
  let grid = [ (4, 1); (4, 2); (5, 2); (6, 2); (6, 3); (7, 3); (8, 4) ] in
  let strategies =
    [
      Strategy.random;
      Strategy.local_lex;
      Strategy.local_specific;
      Strategy.lookahead_maximin;
      Strategy.lookahead_entropy;
      Strategy.lookahead2 ();
    ]
  in
  let results =
    List.map
      (fun (n, rank) ->
        let totals = Array.make (List.length strategies) 0.0 in
        for seed = 1 to seeds do
          let inst =
            W.Synthetic.generate
              {
                W.Synthetic.n_attrs = n;
                n_tuples = 80;
                domain = max n 8;
                goal_rank = rank;
                seed;
              }
          in
          let oracle = Oracle.of_goal inst.W.Synthetic.goal in
          List.iteri
            (fun i strat ->
              let o =
                Session.run ~seed ~strategy:strat ~oracle
                  inst.W.Synthetic.relation
              in
              totals.(i) <- totals.(i) +. float_of_int o.Session.interactions)
            strategies
        done;
        let avg = Array.map (fun t -> t /. float_of_int seeds) totals in
        ((n, rank), avg))
      grid
  in
  table
    ("attrs/rank" :: List.map (fun s -> s.Strategy.name) strategies)
    (List.map
       (fun ((n, r), avg) ->
         Printf.sprintf "%d / %d" n r
         :: Array.to_list (Array.map fmt_f avg))
       results);
  print_newline ();
  (* The paper's claim: local better on simple instances, lookahead on
     complex ones.  Compare best-local to best-lookahead at the extremes. *)
  let avg_for (n, r) = List.assoc (n, r) results in
  let local_simple = min (avg_for (4, 1)).(1) (avg_for (4, 1)).(2) in
  let look_simple = min (avg_for (4, 1)).(3) (avg_for (4, 1)).(4) in
  let complex = (8, 4) in
  let local_complex = min (avg_for complex).(1) (avg_for complex).(2) in
  let look_complex = min (avg_for complex).(3) (avg_for complex).(4) in
  Printf.printf
    "  simple  (4 attrs, rank 1): best local %.1f vs best lookahead %.1f\n"
    local_simple look_simple;
  Printf.printf
    "  complex (8 attrs, rank 4): best local %.1f vs best lookahead %.1f\n"
    local_complex look_complex;
  ignore
    (check "local competitive on simple instances"
       (local_simple <= look_simple +. 0.5));
  ignore
    (check "lookahead wins on complex instances" (look_complex < local_complex));
  ignore
    (check "random is the worst overall"
       (let sum i =
          List.fold_left (fun acc (_, avg) -> acc +. avg.(i)) 0.0 results
        in
        sum 0 > sum 1 && sum 0 > sum 2 && sum 0 > sum 3 && sum 0 > sum 4))

(* Distance to the optimal policy on a tiny instance. *)
let e4b () =
  section "E4b" "Heuristics vs the exponential optimal policy (tiny instance)";
  let inst =
    W.Synthetic.generate
      {
        W.Synthetic.n_attrs = 4;
        n_tuples = 12;
        domain = 8;
        goal_rank = 2;
        seed = 3;
      }
  in
  let classes = Sigclass.classes inst.W.Synthetic.relation in
  let opt_depth =
    Optimal.worst_case_depth (State.create 4) classes
  in
  Printf.printf "  optimal worst-case questions: %d\n" opt_depth;
  let rows =
    List.map
      (fun strat ->
        (* Worst case over all possible goals? Approximate: worst over a
           sample of goal predicates. *)
        let goals =
          List.filter
            (fun g -> Partition.rank g <= 3)
            (Jim_partition.Penum.all 4)
        in
        let worst =
          List.fold_left
            (fun acc goal ->
              let o =
                Session.run ~strategy:strat ~oracle:(Oracle.of_goal goal)
                  inst.W.Synthetic.relation
              in
              max acc o.Session.interactions)
            0 goals
        in
        [ strat.Strategy.name; string_of_int worst ])
      Strategy.all
  in
  table [ "strategy"; "worst questions over all goals" ] rows;
  Printf.printf "  (optimal guarantee: %d)\n" opt_depth

(* ------------------------------------------------------------------ *)
(* E5: joining sets of pictures.                                       *)

let e5 () =
  section "E5" "Fig. 5 - joining sets of pictures (Set cards)";
  let instance = W.Setcards.pair_instance ~sample:400 ~seed:5 () in
  let goals =
    [
      ("same colour+shading", W.Setcards.same [ "colour"; "shading" ]);
      ("same symbol", W.Setcards.same [ "symbol" ]);
      ("same number+colour", W.Setcards.same [ "number"; "colour" ]);
      ("identical card", W.Setcards.same [ "number"; "symbol"; "shading"; "colour" ]);
    ]
  in
  let strategies =
    [ Strategy.random; Strategy.local_specific; Strategy.lookahead_entropy ]
  in
  table
    ("goal" :: List.map (fun s -> s.Strategy.name) strategies)
    (List.map
       (fun (name, goal) ->
         name
         :: List.map
              (fun strat ->
                fmt_f (avg_interactions ~strategy:strat ~goal instance))
              strategies)
       goals);
  Printf.printf "\n  (%d candidate pairs on screen; the user answers ~5-15)\n"
    (Relation.cardinality instance)

(* ------------------------------------------------------------------ *)
(* E2b: TPC-H-style crowd tasks (denormalised multi-relation joins).   *)

let e2b () =
  section "E2b" "Crowd joins over TPC-H-lite (multi-relation tasks)";
  let db = W.Tpch.generate ~seed:2 W.Tpch.small in
  let tasks =
    [
      ("customer-orders", W.Tpch.fk_customer_orders);
      ("orders-lineitem", W.Tpch.fk_orders_lineitem);
      ("customer-orders-lineitem", W.Tpch.fk_customer_orders_lineitem);
      ("region-nation-customer", W.Tpch.fk_nation_chain);
    ]
  in
  let strategies =
    [ Strategy.random; Strategy.local_specific; Strategy.lookahead_maximin ]
  in
  table
    ("task" :: List.map (fun s -> s.Strategy.name) strategies)
    (List.filter_map
       (fun (name, spec) ->
         match W.Denorm.task_of_names ~sample:400 ~seed:3 db spec with
         | Error e ->
           Printf.printf "  %s: %s\n" name e;
           None
         | Ok task ->
           Some
             (name
             :: List.map
                  (fun strat ->
                    fmt_f
                      (avg_interactions ~strategy:strat
                         ~goal:task.W.Denorm.goal task.W.Denorm.instance))
                  strategies))
       tasks)

(* ------------------------------------------------------------------ *)
(* E7: crowdsourcing ablation - worker error vs redundancy.            *)

let e7 ?(trials = 30) () =
  section "E7"
    "Crowd ablation - noisy workers, majority voting (accuracy vs cost)";
  let goal = F.q2 in
  let wanted = Jquery.make F.schema goal in
  let cell flip votes =
    let ok = ref 0 and paid = ref 0 in
    for seed = 1 to trials do
      let worker =
        Oracle.noisy ~seed ~flip_probability:flip (Oracle.of_goal goal)
      in
      let o =
        Crowd.run ~seed ~votes ~strategy:Strategy.local_lex ~worker F.instance
      in
      paid := !paid + o.Crowd.paid_labels;
      let inferred = Jquery.make F.schema o.Crowd.session.Session.query in
      if
        (not o.Crowd.session.Session.contradiction)
        && Jquery.equivalent_on inferred wanted F.instance
      then incr ok
    done;
    (100.0 *. float_of_int !ok /. float_of_int trials,
     float_of_int !paid /. float_of_int trials)
  in
  let flips = [ 0.0; 0.1; 0.2; 0.3 ] and vote_options = [ 1; 3; 5 ] in
  table
    ("worker error"
    :: List.concat_map
         (fun v -> [ Printf.sprintf "acc @%d vote(s)" v; "cost" ])
         vote_options)
    (List.map
       (fun flip ->
         Printf.sprintf "%.0f%%" (100.0 *. flip)
         :: List.concat_map
              (fun votes ->
                let acc, cost = cell flip votes in
                [ Printf.sprintf "%.0f%%" acc; fmt_f cost ])
              vote_options)
       flips);
  Printf.printf
    "\n  (accuracy = inferred query instance-equivalent to the goal;\n\
    \   cost = average worker answers bought per inference)\n"

(* ------------------------------------------------------------------ *)
(* E8: adaptive interaction vs omniscient teaching sets.               *)

let e8 ?(seeds = 10) () =
  section "E8"
    "Teaching ablation - interactive strategies vs the omniscient teacher";
  let rows =
    List.map
      (fun (n, rank) ->
        let greedy_total = ref 0.0
        and exact_total = ref 0.0
        and exact_known = ref 0
        and best_session_total = ref 0.0 in
        for seed = 1 to seeds do
          let inst =
            W.Synthetic.generate
              {
                W.Synthetic.n_attrs = n;
                n_tuples = 30;
                domain = max n 8;
                goal_rank = rank;
                seed;
              }
          in
          let classes = Sigclass.classes inst.W.Synthetic.relation in
          let goal = inst.W.Synthetic.goal in
          greedy_total :=
            !greedy_total
            +. float_of_int (List.length (Teaching.greedy ~goal classes));
          (match Teaching.exact_minimum ~max_size:5 ~goal classes with
          | Some m ->
            exact_total := !exact_total +. float_of_int (List.length m);
            incr exact_known
          | None -> ());
          let best =
            List.fold_left
              (fun acc strat ->
                let o =
                  Session.run ~seed ~strategy:strat
                    ~oracle:(Oracle.of_goal goal) inst.W.Synthetic.relation
                in
                min acc o.Session.interactions)
              max_int
              [ Strategy.local_specific; Strategy.lookahead_maximin ]
          in
          best_session_total := !best_session_total +. float_of_int best
        done;
        [
          Printf.sprintf "%d / %d" n rank;
          (if !exact_known = seeds then
             fmt_f (!exact_total /. float_of_int seeds)
           else "(>5)");
          fmt_f (!greedy_total /. float_of_int seeds);
          fmt_f (!best_session_total /. float_of_int seeds);
        ])
      [ (4, 1); (4, 2); (5, 2); (6, 3) ]
  in
  table
    [ "attrs/rank"; "exact minimum"; "greedy teacher"; "best strategy" ]
    rows;
  Printf.printf
    "\n  (the teacher knows the goal and only quotes labels; strategies must\n\
    \   discover them - the gap is the price of interaction)\n"

(* ------------------------------------------------------------------ *)
(* E9: the price of disjunction - unions vs single predicates.         *)

let e9 ?(seeds = 6) () =
  section "E9"
    "Disjunctive extension - unions of joins vs the conjunctive learner";
  (* On the flights instance: the union goal of the demo narrative. *)
  let union_goal =
    [
      Partition.of_pairs 5 [ (F.to_, F.city) ];
      Partition.of_pairs 5 [ (F.airline, F.discount) ];
    ]
  in
  let o =
    Disjunctive.run ~oracle:(Disjunctive.oracle_of_union union_goal) F.instance
  in
  Printf.printf "  flights, goal %s:\n    %d questions -> %s\n\n"
    (Disjunctive.to_where F.schema union_goal)
    o.Disjunctive.interactions
    (Disjunctive.to_where F.schema o.Disjunctive.union);
  (* Single-predicate goals: the disjunctive learner still works but pays
     for the larger hypothesis space. *)
  let rows =
    List.map
      (fun (n, rank) ->
        let conj_total = ref 0 and disj_total = ref 0 in
        for seed = 1 to seeds do
          let inst =
            W.Synthetic.generate
              {
                W.Synthetic.n_attrs = n;
                n_tuples = 50;
                domain = max n 8;
                goal_rank = rank;
                seed;
              }
          in
          let goal = inst.W.Synthetic.goal in
          let conj =
            Session.run ~seed ~strategy:Strategy.lookahead_maximin
              ~oracle:(Oracle.of_goal goal) inst.W.Synthetic.relation
          in
          let disj =
            Disjunctive.run ~seed
              ~oracle:(Disjunctive.oracle_of_union [ goal ])
              inst.W.Synthetic.relation
          in
          conj_total := !conj_total + conj.Session.interactions;
          disj_total := !disj_total + disj.Disjunctive.interactions
        done;
        [
          Printf.sprintf "%d / %d" n rank;
          fmt_f (float_of_int !conj_total /. float_of_int seeds);
          fmt_f (float_of_int !disj_total /. float_of_int seeds);
        ])
      [ (4, 2); (5, 2); (6, 3) ]
  in
  table
    [ "attrs/rank"; "conjunctive learner"; "disjunctive learner" ]
    rows;
  Printf.printf
    "\n  (same single-predicate goal, same oracle: the union space cannot\n\
    \   exploit meet-closure, so the monotone learner needs more labels)\n"

let run_all () =
  e1 ();
  e2 ();
  e2b ();
  e3 ();
  e4 ();
  e4b ();
  e5 ();
  e7 ();
  e8 ();
  e9 ()
