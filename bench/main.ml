(* The benchmark harness: one experiment per figure/claim of the paper
   (E1-E5, printed tables) and the E6 latency micro-benchmarks (bechamel,
   one Test.make per measured table).

   Run with: dune exec bench/main.exe
   Pass --skip-latency to run only the interaction-count experiments,
   --quick for the CI smoke run (the strategy-scorer compare harness
   only, which also writes BENCH_strategies.json). *)

module W = Jim_workloads
open Jim_core
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* E6: per-session and per-question latency vs instance size.          *)

let synthetic_instance n_tuples =
  W.Synthetic.generate
    {
      W.Synthetic.n_attrs = 6;
      n_tuples;
      domain = 8;
      goal_rank = 2;
      seed = 42;
    }

let session_test strategy =
  (* One Test.make (indexed by instance size) per strategy = per row of
     the latency table: full inference session, question selection
     included. *)
  Test.make_indexed
    ~name:("session/" ^ strategy.Strategy.name)
    ~args:[ 100; 400; 1600 ]
    (fun n_tuples ->
      let inst = synthetic_instance n_tuples in
      let oracle = Oracle.of_goal inst.W.Synthetic.goal in
      Staged.stage (fun () ->
          let o =
            Session.run ~strategy ~oracle inst.W.Synthetic.relation
          in
          assert (not o.Session.contradiction)))

let classes_test =
  (* Signature-class extraction: the preprocessing cost over raw tuples. *)
  Test.make_indexed ~name:"classes" ~args:[ 100; 1000; 10000 ]
    (fun n_tuples ->
      let inst = synthetic_instance n_tuples in
      Staged.stage (fun () ->
          ignore (Sigclass.classes inst.W.Synthetic.relation)))

let grouping_ablation_test =
  (* DESIGN.md calls signature-class grouping the key engineering trick:
     run the same session over grouped classes vs one-class-per-row. *)
  Test.make_indexed ~name:"session-grouping/lookahead-maximin"
    ~fmt:"%s:%d" ~args:[ 0; 1 ]
    (fun grouped ->
      let inst = synthetic_instance 800 in
      let oracle = Oracle.of_goal inst.W.Synthetic.goal in
      let classes =
        if grouped = 1 then Sigclass.classes inst.W.Synthetic.relation
        else Sigclass.singletons inst.W.Synthetic.relation
      in
      Staged.stage (fun () ->
          ignore
            (Session.run_classes ~strategy:Strategy.lookahead_maximin ~oracle
               ~n:6 classes)))

let question_test strategy =
  (* A single question selection from a half-informed state. *)
  Test.make_indexed
    ~name:("question/" ^ strategy.Strategy.name)
    ~args:[ 400; 1600 ]
    (fun n_tuples ->
      let inst = synthetic_instance n_tuples in
      let eng = Session.create inst.W.Synthetic.relation in
      let oracle = Oracle.of_goal inst.W.Synthetic.goal in
      let rng = Random.State.make [| 1 |] in
      (* Absorb two answers so the state is neither empty nor final. *)
      for _ = 1 to 2 do
        match Session.question eng Strategy.local_lex rng with
        | Some ci ->
          let sg = (Session.classes eng).(ci).Sigclass.sg in
          (match Session.answer eng ci (Oracle.label oracle sg) with
          | Ok () -> ()
          | Error _ -> assert false)
        | None -> ()
      done;
      Staged.stage (fun () -> ignore (Session.question eng strategy rng)))

let benchmark test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances test in
  Analyze.all ols Instance.monotonic_clock raw

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> e
        | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-40s %s\n" name pretty)
    rows

let e6 () =
  Harness.section "E6" "Latency: inference cost vs instance size (bechamel)";
  print_endline "  (monotonic-clock OLS estimates; lower is better)\n";
  let tests =
    [ classes_test; grouping_ablation_test ]
    @ List.map session_test
        [ Strategy.local_lex; Strategy.lookahead_maximin; Strategy.lookahead_entropy ]
    @ List.map question_test
        [ Strategy.local_lex; Strategy.lookahead_maximin; Strategy.lookahead_entropy ]
  in
  List.iter (fun t -> print_results (benchmark t)) tests

let () =
  let skip_latency = Array.mem "--skip-latency" Sys.argv in
  let quick = Array.mem "--quick" Sys.argv in
  if quick then ignore (Compare.run ~workload:(5, 80, 2, 2) ())
  else begin
    Experiments.run_all ();
    ignore (Compare.run ());
    if not skip_latency then e6 ()
  end;
  Harness.section "DONE" "all experiments executed";
  print_newline ()
