type t = int array

(* Invariant: r.(i) is the smallest element of i's block, hence
   r.(i) <= i and r.(r.(i)) = r.(i). *)

let bottom n =
  if n < 0 then invalid_arg "Partition.bottom";
  Array.init n (fun i -> i)

let top n =
  if n < 0 then invalid_arg "Partition.top";
  Array.make n 0

let size = Array.length

let rep p i = p.(i)

let same p i j = p.(i) = p.(j)

let of_dsu d = Dsu.canonical d

let of_rep_array a =
  let n = Array.length a in
  let d = Dsu.create n in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= n then invalid_arg "Partition.of_rep_array";
      ignore (Dsu.union d i r))
    a;
  of_dsu d

let of_blocks n blocks =
  let d = Dsu.create n in
  let seen = Array.make n false in
  let add_block block =
    match block with
    | [] -> ()
    | x :: rest ->
      let check e =
        if e < 0 || e >= n then invalid_arg "Partition.of_blocks: out of range";
        if seen.(e) then invalid_arg "Partition.of_blocks: duplicate element";
        seen.(e) <- true
      in
      check x;
      List.iter
        (fun e ->
          check e;
          ignore (Dsu.union d x e))
        rest
  in
  List.iter add_block blocks;
  of_dsu d

let of_pairs n pairs =
  let d = Dsu.create n in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Partition.of_pairs: out of range";
      ignore (Dsu.union d i j))
    pairs;
  of_dsu d

let block_count p =
  let c = ref 0 in
  Array.iteri (fun i r -> if r = i then incr c) p;
  !c

let rank p = size p - block_count p

let blocks p =
  let n = size p in
  (* Collect members per representative, scanning right to left so each
     accumulated list comes out sorted. *)
  let acc = Array.make n [] in
  for i = n - 1 downto 0 do
    acc.(p.(i)) <- i :: acc.(p.(i))
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if p.(i) = i then out := acc.(i) :: !out
  done;
  !out

let nontrivial_blocks p =
  List.filter (fun b -> List.length b >= 2) (blocks p)

let block_sizes p = List.map List.length (blocks p)

let pairs p =
  let n = size p in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if p.(i) = p.(j) then out := (i, j) :: !out
    done
  done;
  !out

let is_bottom p =
  let n = size p in
  let rec go i = i >= n || (p.(i) = i && go (i + 1)) in
  go 0

let is_top p =
  let n = size p in
  let rec go i = i >= n || (p.(i) = 0 && go (i + 1)) in
  n = 0 || go 0

let equal (p : t) (q : t) = p = q

let compare (p : t) (q : t) = Stdlib.compare p q

let hash (p : t) = Hashtbl.hash p

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let check_sizes name p q =
  if size p <> size q then invalid_arg ("Partition." ^ name ^ ": size mismatch")

(* p refines q iff each block of p lies inside a block of q, which holds
   iff every element shares q-block with its p-representative. *)
let refines p q =
  check_sizes "refines" p q;
  let n = size p in
  let rec go i = i >= n || (q.(i) = q.(p.(i)) && go (i + 1)) in
  go 0

let strictly_refines p q = refines p q && not (equal p q)

let comparable p q = refines p q || refines q p

let meet p q =
  check_sizes "meet" p q;
  let n = size p in
  let tbl = Hashtbl.create (2 * n) in
  Array.init n (fun i ->
      let key = (p.(i), q.(i)) in
      match Hashtbl.find_opt tbl key with
      | Some r -> r
      | None ->
        Hashtbl.add tbl key i;
        i)

let join p q =
  check_sizes "join" p q;
  let n = size p in
  let d = Dsu.create n in
  for i = 0 to n - 1 do
    ignore (Dsu.union d i p.(i));
    ignore (Dsu.union d i q.(i))
  done;
  of_dsu d

let restrict p ~allowed =
  let n = size p in
  let d = Dsu.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if p.(i) = p.(j) && allowed (i, j) then ignore (Dsu.union d i j)
    done
  done;
  of_dsu d

let to_rgs p =
  let n = size p in
  let idx = Array.make n (-1) in
  let next = ref 0 in
  Array.map
    (fun r ->
      if idx.(r) < 0 then begin
        idx.(r) <- !next;
        incr next
      end;
      idx.(r))
    p

let of_rgs rgs =
  let n = Array.length rgs in
  let first = Hashtbl.create (2 * n) in
  Array.init n (fun i ->
      match Hashtbl.find_opt first rgs.(i) with
      | Some r -> r
      | None ->
        Hashtbl.add first rgs.(i) i;
        i)

let to_string_gen name p =
  let buf = Buffer.create 32 in
  List.iter
    (fun block ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k e ->
          if k > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (name e))
        block;
      Buffer.add_char buf '}')
    (blocks p);
  Buffer.contents buf

let to_string p = to_string_gen string_of_int p

let of_string s =
  let exception Bad of string in
  try
    let blocks = ref [] and i = ref 0 in
    let n = String.length s in
    while !i < n do
      if s.[!i] <> '{' then raise (Bad "expected '{'");
      incr i;
      let close =
        match String.index_from_opt s !i '}' with
        | Some j -> j
        | None -> raise (Bad "unterminated block")
      in
      let body = String.sub s !i (close - !i) in
      let elems =
        List.map
          (fun e ->
            match int_of_string_opt (String.trim e) with
            | Some v -> v
            | None -> raise (Bad ("bad element " ^ e)))
          (if body = "" then raise (Bad "empty block")
           else String.split_on_char ',' body)
      in
      blocks := elems :: !blocks;
      i := close + 1
    done;
    let elems = List.concat !blocks in
    let size = List.length elems in
    if List.sort_uniq Stdlib.compare elems <> List.init size (fun k -> k) then
      raise (Bad "elements must cover 0..n-1 exactly once");
    Ok (of_blocks size !blocks)
  with
  | Bad msg -> Error ("Partition.of_string: " ^ msg)
  | Invalid_argument msg -> Error msg

let to_string_names names p =
  if Array.length names <> size p then
    invalid_arg "Partition.to_string_names: size mismatch";
  to_string_gen (fun i -> names.(i)) p

let pp fmt p = Format.pp_print_string fmt (to_string p)
