(** Canonical partitions of [{0 .. n-1}], ordered by refinement.

    A partition represents an equi-join predicate over the attributes of a
    (denormalised) relation: attributes in the same block are required to be
    pairwise equal.  The set of all partitions of [n] attributes forms the
    partition lattice [Π_n]; the refinement order [p ⊑ q] ("[p] refines
    [q]", [p] is finer) holds when every block of [p] is contained in a
    block of [q], i.e. the equalities demanded by [p] are a subset of those
    demanded by [q].

    Orientation used throughout JIM:
    - {!bottom} (all singletons) is the {e empty} predicate — most general,
      selects every tuple;
    - {!top} (one block) demands all attributes equal — most specific;
    - a tuple [t] satisfies predicate [θ] iff [refines θ (signature t)]. *)

type t
(** Canonical representation: an array [r] with [r.(i)] the smallest
    element of [i]'s block; invariants [r.(i) <= i] and
    [r.(r.(i)) = r.(i)] hold for all [i].  Values of this type are
    immutable by convention: no function in this interface mutates its
    arguments or shares its result with an argument. *)

(** {1 Construction} *)

val bottom : int -> t
(** All-singletons partition of size [n] (the empty join predicate). *)

val top : int -> t
(** One-block partition of size [n] (all attributes equated). *)

val of_rep_array : int array -> t
(** Canonicalise an arbitrary "representative" array: elements [i], [j] end
    in the same block iff chasing [a.(i)] and [a.(j)] reaches a common
    element.  Raises [Invalid_argument] if an entry is out of bounds. *)

val of_blocks : int -> int list list -> t
(** [of_blocks n blocks] builds the partition whose non-singleton structure
    is given by [blocks]; elements not mentioned become singletons.
    Raises [Invalid_argument] on out-of-range or duplicate elements. *)

val of_pairs : int -> (int * int) list -> t
(** Transitive-reflexive-symmetric closure of a set of equality atoms. *)

val of_dsu : Dsu.t -> t

(** {1 Basic observations} *)

val size : t -> int
(** Number of elements [n]. *)

val rep : t -> int -> int
(** Canonical (smallest) member of the block of [i]. *)

val same : t -> int -> int -> bool
(** Do [i] and [j] lie in the same block? *)

val block_count : t -> int

val rank : t -> int
(** [size p - block_count p]: the number of independent equality atoms;
    0 for {!bottom}, [n-1] for {!top}.  Monotone w.r.t. refinement. *)

val blocks : t -> int list list
(** Blocks as sorted lists, ordered by their smallest element; includes
    singletons. *)

val nontrivial_blocks : t -> int list list
(** Blocks of size [>= 2] only. *)

val block_sizes : t -> int list
(** Sizes of all blocks, in block order. *)

val pairs : t -> (int * int) list
(** All equated pairs [(i, j)] with [i < j], lexicographically sorted.
    [List.length (pairs p)] is the number of equality atoms [p] demands
    (the transitive closure, not a spanning set). *)

val is_bottom : t -> bool
val is_top : t -> bool

(** {1 Order and lattice operations} *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order (lexicographic on the canonical arrays), suitable for
    [Set]/[Map]; unrelated to refinement. *)

val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by partitions (memoisation of per-signature work). *)

val refines : t -> t -> bool
(** [refines p q] iff [p ⊑ q]: every equality demanded by [p] is demanded
    by [q].  Reflexive.  Raises [Invalid_argument] on size mismatch. *)

val strictly_refines : t -> t -> bool

val comparable : t -> t -> bool
(** [refines p q || refines q p]. *)

val meet : t -> t -> t
(** Coarsest common refinement: equates exactly the pairs equated by both
    arguments.  Greatest lower bound for {!refines}. *)

val join : t -> t -> t
(** Finest common coarsening: transitive closure of the union of the two
    equality relations.  Least upper bound for {!refines}. *)

val restrict : t -> allowed:(int * int -> bool) -> t
(** [restrict p ~allowed] keeps only the equalities of [p] whose pair
    [(i, j)], [i < j], satisfies [allowed], then closes transitively.
    Used to confine inferred predicates to cross-relation atoms. *)

(** {1 Conversions} *)

val to_rgs : t -> int array
(** Restricted-growth-string encoding: [rgs.(i)] is the index of [i]'s
    block when blocks are numbered by first occurrence; [rgs.(0) = 0] and
    [rgs.(i+1) <= 1 + max rgs.(0..i)]. *)

val of_rgs : int array -> t

val to_string : t -> string
(** E.g. ["{0,2}{1}{3,4}"]. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format.  Every element [0 .. n-1] must appear
    exactly once (with [n] inferred from the input); blocks may be listed
    in any order. *)

val to_string_names : string array -> t -> string
(** Same, with attribute names; e.g. ["{To,City}{From}"]. *)

val pp : Format.formatter -> t -> unit
