(** Wire plumbing for the sharded tier: pooled connections from the
    router to its shards, upstream construction from addresses, the
    standby serve node, and the wire-side replication target a primary
    streams through.

    All pools default to binary framing ([JIMBIN 1]) — the replication
    stream ships raw JREC record bytes, which only binary frames carry
    — and dial lazily with retries, so process start order does not
    matter. *)

type pool

val pool :
  ?framing:Jim_server.Wire.framing ->
  ?retries:int ->
  Jim_server.Wire.address ->
  pool
(** A lazy connection pool (idle connections capped; a transport error
    discards the connection rather than returning it). *)

val pool_call : pool -> string -> (string, string) result
val pool_close : pool -> unit

val wire_upstream :
  name:string ->
  primary:Jim_server.Wire.address ->
  ?standby:Jim_server.Wire.address ->
  unit ->
  Router.upstream
(** A router upstream forwarding to [primary] through a pool.  With
    [standby], the upstream carries a promote closure: dial the
    standby, send [Promote] (idempotent on the standby side), and
    return a pooled call path to it — the router swaps this in on
    failover. *)

(** {1 The standby serve node} *)

type standby_node

val standby_node : ?snapshot_every:int -> Standby.t -> standby_node
(** Wrap a {!Standby} for serving.  [snapshot_every] is passed to the
    store opened at promotion. *)

val handle_line : standby_node -> string -> string * bool
(** The node's request handler for [Jim_server.Wire.serve_handler]:
    raw JREC bytes (detected by the record magic) are applied to the
    standby; [Repl_install]/[Repl_rotate]/[Repl_status] drive the
    stream; [Promote] recovers the accumulated directory into a
    serving {!Jim_server.Service} (idempotent — a retrying router gets
    the same reply); anything else answers [Shard_unavailable] until
    promoted, and is served normally after. *)

val sweep : standby_node -> int
(** Idle-session sweep once promoted; 0 before. *)

val service : standby_node -> Jim_server.Service.t option
(** The serving service, once promoted. *)

(** {1 Wire replication target} *)

val wire_target :
  name:string -> Jim_server.Wire.address -> Repl.target
(** The sending half against a remote standby: install/rotate/status as
    protocol messages, records as raw binary frames, all on one pooled
    binary connection.  Plug into {!Repl.attach}. *)
