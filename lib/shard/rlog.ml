module Json = Jim_api.Json

type entry =
  | Member_added of string
  | Member_removed of string
  | Placed of { session : int; shard : string }
  | Released of { session : int }
  | Failed_over of { shard : string }

let to_string e =
  let obj fields = Json.to_string (Json.Obj fields) in
  match e with
  | Member_added shard ->
    obj [ ("rl", Json.String "add"); ("shard", Json.String shard) ]
  | Member_removed shard ->
    obj [ ("rl", Json.String "remove"); ("shard", Json.String shard) ]
  | Placed { session; shard } ->
    obj
      [
        ("rl", Json.String "place");
        ("session", Json.Int session);
        ("shard", Json.String shard);
      ]
  | Released { session } ->
    obj [ ("rl", Json.String "release"); ("session", Json.Int session) ]
  | Failed_over { shard } ->
    obj [ ("rl", Json.String "failover"); ("shard", Json.String shard) ]

let ( let* ) = Result.bind

let of_string s =
  let* v = Json.of_string s in
  let str k =
    match Json.member k v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "router log entry missing string %S" k)
  in
  let int k =
    match Json.member k v with
    | Some f -> Json.as_int f
    | None -> Error (Printf.sprintf "router log entry missing int %S" k)
  in
  let* tag = str "rl" in
  match tag with
  | "add" ->
    let* shard = str "shard" in
    Ok (Member_added shard)
  | "remove" ->
    let* shard = str "shard" in
    Ok (Member_removed shard)
  | "place" ->
    let* session = int "session" in
    let* shard = str "shard" in
    Ok (Placed { session; shard })
  | "release" ->
    let* session = int "session" in
    Ok (Released { session })
  | "failover" ->
    let* shard = str "shard" in
    Ok (Failed_over { shard })
  | t -> Error (Printf.sprintf "unknown router log entry %S" t)
