(** The sharded tier's front process: speaks the ordinary v1 protocol
    to clients and places every session on one of N shard upstreams
    via the consistent-hash {!Ring}.

    Placement: [Start_session] allocates a router-wide session id and
    pins it to the shard owning {!Ring.session_key} — or
    {!Ring.fingerprint_key} for [Catalog] sources, so every session on
    a cataloged instance (and every [Register_instance]) lands on the
    one shard holding that catalog entry.  The start is forwarded as
    the shard-internal [Start_pinned] so the shard adopts the router's
    id; every later request routes by its pinned placement.

    Durability: placements, ring membership and promotions are
    journaled (JREC records of {!Rlog} lines in [DIR/router.wal]), and
    a placement is journaled {e before} the start is forwarded — so
    routing survives a router restart with at worst a dead placement,
    never an unroutable live session.

    Failover: a transport failure promotes the upstream's standby (its
    [promote] closure) and journals it; non-mutating requests then
    retry transparently, mutating ones answer
    [{!Jim_api.Protocol.Shard_unavailable}] (at-most-once — the dead
    primary may have acked them), and [Start_session] retries once
    with a fresh id. *)

type upstream = {
  name : string;
  mutable call : string -> (string, string) result;
      (** one request line in, one reply line out; [Error] means the
          transport failed (connect/read/write), not a protocol-level
          [Failed] reply *)
  promote : (unit -> ((string -> (string, string) result), string) result) option;
      (** promote this shard's standby and return the replacement call
          path; [None] when the shard has no standby *)
  mutable promoted : bool;
  ulock : Mutex.t;
}

val upstream :
  name:string ->
  ?promote:(unit -> ((string -> (string, string) result), string) result) ->
  (string -> (string, string) result) ->
  upstream

type t

val create :
  ?io:Jim_store.Io.t ->
  ?dir:string ->
  ?vnodes:int ->
  shards:upstream list ->
  unit ->
  (t, string) result
(** A router over the given upstreams.  With [dir], the router log is
    replayed (rebuilding placements, membership and promotions — a
    journaled promotion re-points that upstream at its standby before
    serving) and kept appended; without it, routing state is
    in-memory only.  Membership changes between restarts are
    reconciled into the log as add/remove deltas. *)

val handle_line : t -> string -> string * bool
(** The router's request handler — same [(reply, parsed)] contract as
    [Jim_server.Service.handle_line_status], pluggable into
    [Jim_server.Wire.serve_handler]. *)

val placement : t -> int -> string option
(** Which shard a session id is pinned to (the determinism tests
    compare these across a restart). *)

val session_count : t -> int
val close : t -> unit
