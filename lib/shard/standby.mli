(** The receiving half of journal-streaming replication: a warm standby
    that builds a byte-compatible copy of the primary's data directory
    from the stream and can be promoted through ordinary recovery.

    Protocol (driven by {!Repl} on the primary, directly in-process or
    over the wire via the standby serve loop):

    + [install ~gen ~snapshot] — the attach-time baseline: the
      primary's current snapshot text (or [None] for a fresh store).
      Wipes whatever the standby held before.
    + [apply record] — one JREC record (the exact bytes the primary
      appended).  The standby appends it to its own journal —
      group-committed before the call returns, so an acknowledged
      record is durable here — and folds the event through its shadow.
    + [rotate ~gen] — the primary checkpointed: the standby writes its
      {e own} generation-[gen] snapshot from the shadow (deterministic,
      so byte-identical to the primary's), rotates its journal and
      drops the old generation.
    + [promote] — stop replicating and recover: runs
      {!Jim_store.Store.open_dir} over the accumulated directory, the
      same bit-identical replay path a restarted primary uses.

    Thread-safe: each operation takes the standby's lock. *)

type t

val create : ?io:Jim_store.Io.t -> ?fsync:bool -> dir:string -> unit -> t
(** A standby writing under [dir] (created if needed).  Nothing is
    written until the first {!install}. *)

val install :
  t -> gen:int -> snapshot:string option -> (unit, string) result

val apply : t -> string -> (int * int, string) result
(** [apply t record] validates, persists and folds one streamed record;
    returns the [(generation, durable record count)] position the ack
    carries.  Errors: a malformed record, no installed generation, or a
    local append failure — the primary treats any of these as a broken
    stream (the in-flight event is {e not} acknowledged upstream). *)

val apply_batch : t -> string list -> (int * int, string) result
(** [apply_batch t records] lands one group-commit batch atomically:
    every record is decoded and validated first (a malformed record
    rejects the whole batch with no side effects), then all payloads
    are appended as one combined journal write under a single fsync
    barrier and folded through the shadow.  Returns the batch's
    high-water [(generation, durable record count)] — the position a
    {!Jim_api.Protocol.Repl_batch} ack carries.  [apply_batch t [r]]
    is equivalent to [apply t r]; the empty batch is a durable no-op. *)

val rotate : t -> gen:int -> (unit, string) result
(** Idempotent: rotating to the current generation is a no-op. *)

val position : t -> int * int
(** Current [(generation, records applied this generation)];
    [(-1, 0)] before the first install. *)

val durable_prefix : t -> int -> int option
(** [durable_prefix t gen] — how many records of generation [gen] are
    durable here; [None] if that generation was never installed.  The
    per-generation durable-prefix map the acceptance criteria name. *)

val session_count : t -> int

val promote :
  ?fsync:bool ->
  ?snapshot_every:int ->
  t ->
  (Jim_store.Store.t * Jim_store.Recovery.t, string) result
(** Close the replication stream and recover the accumulated directory
    into a serving store ([fsync] defaults to the standby's own
    setting).  The returned {!Jim_store.Recovery.t} feeds
    {!Jim_server.Service.restore} for bit-identical session replay. *)

val close : t -> unit
