(** The consistent-hash ring the router places sessions with.

    Each member (shard name) contributes [vnodes] pseudo-random points
    on a 2^32 ring (CRC-32 of ["<name>#<i>"]); a key is owned by the
    first point clockwise from the key's own hash.  Properties the
    tests pin:

    - {e determinism}: the ring is a pure function of the membership
      set (and [vnodes]) — same members, same placement, across
      processes and restarts;
    - {e stability}: removing a member only moves the keys it owned;
      adding one only moves the keys it now owns — about [1/(n+1)] of
      them — and every moved key moves {e to} the new member. *)

type t

val create : ?vnodes:int -> string list -> t
(** A ring over the given member names (duplicates ignored).  [vnodes]
    (default 64) trades placement smoothness against ring size.
    Raises [Invalid_argument] if [vnodes < 1]. *)

val members : t -> string list
(** Sorted, distinct. *)

val vnodes : t -> int
val is_empty : t -> bool

val add : t -> string -> t
val remove : t -> string -> t

val place : t -> string -> string option
(** The member owning this key; [None] iff the ring is empty. *)

val session_key : int -> string
(** The routing key for a session id (non-catalog sources place by
    session). *)

val fingerprint_key : string -> string
(** The routing key for an instance fingerprint ([Catalog] sources and
    registrations place by fingerprint, so each catalog entry lives on
    exactly one shard). *)
