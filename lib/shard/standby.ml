(* A warm standby: the receiving half of journal-streaming replication.

   The primary ships its baseline (current snapshot text, if any) at
   attach time via [install], then every journal record — the exact
   JREC bytes it appended locally — via [apply].  The standby appends
   each record to its own journal (group-committed before it
   acknowledges, so "acked by the standby" means "durable on the
   standby") and folds the decoded event through a {!Jim_store.Shadow},
   so on a primary checkpoint ([rotate]) it can write its own snapshot
   — deterministic, hence byte-identical to the one the primary wrote
   from the same event prefix.

   Promotion closes the replication journal and runs the ordinary
   {!Jim_store.Store.open_dir} recovery over the directory the standby
   has been building, so a promoted standby replays sessions through
   exactly the code path a restarted primary would. *)

module Journal = Jim_store.Journal
module Snapshot = Jim_store.Snapshot
module Recovery = Jim_store.Recovery
module Shadow = Jim_store.Shadow
module Event = Jim_store.Event
module Io = Jim_store.Io

type t = {
  io : Io.t;
  dir : string;
  fsync : bool;
  lock : Mutex.t;
  mutable gen : int;  (* -1 until the first install *)
  mutable journal : Journal.t option;
  mutable records : int;  (* records applied in the current generation *)
  shadow : Shadow.t;
  durable : (int, int) Hashtbl.t;  (* generation -> durable record count *)
}

let create ?(io = Io.real) ?(fsync = true) ~dir () =
  io.Io.mkdir_p dir;
  {
    io;
    dir;
    fsync;
    lock = Mutex.create ();
    gen = -1;
    journal = None;
    records = 0;
    shadow = Shadow.create ();
    durable = Hashtbl.create 7;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let position t = locked t (fun () -> (t.gen, t.records))
let session_count t = locked t (fun () -> Shadow.session_count t.shadow)

let durable_prefix t gen =
  locked t (fun () -> Hashtbl.find_opt t.durable gen)

let ( let* ) = Result.bind

(* Remove every store file in the directory — an install replaces the
   standby's world with the primary's current baseline. *)
let wipe t =
  Array.iter
    (fun name ->
      if
        String.length name >= 8
        && (String.sub name 0 8 = "snapshot"
           || String.sub name 0 7 = "journal")
      then t.io.Io.remove (Filename.concat t.dir name))
    (t.io.Io.readdir t.dir)

let write_file t path text =
  match
    let file = t.io.Io.create path in
    let buf = Bytes.of_string text in
    let len = Bytes.length buf in
    let pos = ref 0 in
    while !pos < len do
      let n = file.Io.write buf !pos (len - !pos) in
      if n <= 0 then failwith "short write";
      pos := !pos + n
    done;
    if t.fsync then file.Io.fsync ();
    file.Io.close ()
  with
  | () -> Ok ()
  | exception e -> Error (Printexc.to_string e)

let install t ~gen ~snapshot =
  locked t (fun () ->
      Option.iter Journal.close t.journal;
      t.journal <- None;
      wipe t;
      let* () =
        match snapshot with
        | None ->
          Shadow.seed t.shadow ~next_id:1 [];
          Ok ()
        | Some text ->
          let path = Recovery.snapshot_path t.dir gen in
          let* () = write_file t path text in
          let* snap = Snapshot.of_string text in
          Shadow.seed t.shadow ~next_id:snap.Snapshot.next_id
            snap.Snapshot.sessions;
          Ok ()
      in
      let j =
        Journal.create ~fsync:t.fsync ~io:t.io
          (Recovery.journal_path t.dir gen)
      in
      t.journal <- Some j;
      t.gen <- gen;
      t.records <- 0;
      Hashtbl.reset t.durable;
      Hashtbl.replace t.durable gen 0;
      Ok ())

let apply t record =
  let* payload = Journal.decode_record record in
  let* ev = Event.of_string payload in
  locked t (fun () ->
      match t.journal with
      | None -> Error "standby: no generation installed"
      | Some j -> (
        match Journal.append j payload with
        | () ->
          Shadow.apply t.shadow ev;
          t.records <- t.records + 1;
          Hashtbl.replace t.durable t.gen t.records;
          Ok (t.gen, t.records)
        | exception e ->
          Error ("standby append failed: " ^ Printexc.to_string e)))

(* A whole group-commit batch at once.  Decode every record before
   touching anything — a malformed record rejects the batch with no
   side effects — then land all payloads as one combined journal append
   under a single fsync barrier and fold them through the shadow.  The
   returned position is the batch's high-water mark: every record in it
   is durable when the ack leaves. *)
let apply_batch t records =
  let* decoded =
    List.fold_left
      (fun acc record ->
        let* rev = acc in
        let* payload = Journal.decode_record record in
        let* ev = Event.of_string payload in
        Ok ((payload, ev) :: rev))
      (Ok []) records
    |> Result.map List.rev
  in
  locked t (fun () ->
      match t.journal with
      | None -> Error "standby: no generation installed"
      | Some j -> (
        match Journal.append_many j (List.map fst decoded) with
        | () ->
          List.iter (fun (_, ev) -> Shadow.apply t.shadow ev) decoded;
          t.records <- t.records + List.length decoded;
          Hashtbl.replace t.durable t.gen t.records;
          Ok (t.gen, t.records)
        | exception e ->
          Error ("standby batch append failed: " ^ Printexc.to_string e)))

(* The primary checkpointed: write our own snapshot for the new
   generation from the shadow (byte-identical to the primary's — both
   are Snapshot.to_string of the same folded state), start a fresh
   journal, and drop the old generation's files. *)
let rotate t ~gen =
  locked t (fun () ->
      if gen = t.gen then Ok ()  (* idempotent: already there *)
      else begin
        let old_gen = t.gen in
        let* () =
          Snapshot.write ~io:t.io
            (Recovery.snapshot_path t.dir gen)
            (Shadow.snapshot t.shadow)
        in
        Option.iter Journal.close t.journal;
        let j =
          Journal.create ~fsync:t.fsync ~io:t.io
            (Recovery.journal_path t.dir gen)
        in
        t.journal <- Some j;
        if old_gen >= 0 then begin
          t.io.Io.remove (Recovery.journal_path t.dir old_gen);
          t.io.Io.remove (Recovery.snapshot_path t.dir old_gen)
        end;
        t.gen <- gen;
        t.records <- 0;
        Hashtbl.replace t.durable gen 0;
        Ok ()
      end)

let promote ?fsync ?snapshot_every t =
  locked t (fun () ->
      Option.iter Journal.close t.journal;
      t.journal <- None);
  let fsync = Option.value fsync ~default:t.fsync in
  Jim_store.Store.open_dir ~fsync ?snapshot_every ~io:t.io t.dir

let close t =
  locked t (fun () ->
      Option.iter Journal.close t.journal;
      t.journal <- None)
