(* Wire plumbing for the sharded tier: the connection pools a router
   forwards through, the [Router.upstream] built from shard/standby
   addresses, and the standby serve node — the handler a warm standby
   runs so a primary can stream to it and the router can promote it
   over the wire. *)

module Wire = Jim_server.Wire
module Service = Jim_server.Service
module P = Jim_api.Protocol
module Journal = Jim_store.Journal
module Store = Jim_store.Store

(* ------------------------------------------------------------------ *)
(* Connection pool                                                     *)

type pool = {
  addr : Wire.address;
  framing : Wire.framing;
  retries : int;
  plock : Mutex.t;
  mutable idle : Wire.client list;
  mutable closed : bool;
}

let max_idle = 16

let pool ?(framing = Wire.Binary) ?(retries = 5) addr =
  { addr; framing; retries; plock = Mutex.create (); idle = []; closed = false }

let pool_take p =
  Mutex.lock p.plock;
  let reused =
    match p.idle with
    | c :: rest ->
      p.idle <- rest;
      Some c
    | [] -> None
  in
  Mutex.unlock p.plock;
  match reused with
  | Some c -> Ok c
  | None -> Wire.connect ~retries:p.retries ~framing:p.framing p.addr

let pool_give p c =
  Mutex.lock p.plock;
  let keep = (not p.closed) && List.length p.idle < max_idle in
  if keep then p.idle <- c :: p.idle;
  Mutex.unlock p.plock;
  if not keep then Wire.close c

(* One request/reply on a pooled connection.  A transport error closes
   the connection instead of returning it — the next call dials
   fresh — so one dead socket never poisons the pool. *)
let pool_call p payload =
  match pool_take p with
  | Error e -> Error e
  | Ok c -> (
    match Wire.call_line c payload with
    | Ok resp ->
      pool_give p c;
      Ok resp
    | Error e ->
      Wire.close c;
      Error e)

let pool_close p =
  Mutex.lock p.plock;
  let idle = p.idle in
  p.idle <- [];
  p.closed <- true;
  Mutex.unlock p.plock;
  List.iter Wire.close idle

(* ------------------------------------------------------------------ *)
(* Router upstreams over the wire                                      *)

(* Promotion over the wire: dial the standby fresh, tell it to promote
   (it recovers its accumulated directory and starts serving), and
   hand the router a pooled call path to it. *)
let promote_standby ~name addr () =
  match Wire.connect ~retries:5 addr with
  | Error e -> Error (Printf.sprintf "standby %s: %s" name e)
  | Ok c ->
    let result =
      match Wire.call c P.Promote with
      | Ok (P.Promoted _) -> Ok ()
      | Ok (P.Failed e) ->
        Error (Printf.sprintf "standby %s refused: %s" name (P.error_to_string e))
      | Ok _ -> Error (Printf.sprintf "standby %s: unexpected promote reply" name)
      | Error e -> Error (Printf.sprintf "standby %s: %s" name e)
    in
    Wire.close c;
    (match result with
    | Ok () -> Ok (pool_call (pool addr))
    | Error _ as e -> e)

let wire_upstream ~name ~primary ?standby () =
  let primary_pool = pool primary in
  let promote =
    Option.map
      (fun addr () ->
        let r = promote_standby ~name addr () in
        if Result.is_ok r then pool_close primary_pool;
        r)
      standby
  in
  Router.upstream ~name ?promote (pool_call primary_pool)

(* ------------------------------------------------------------------ *)
(* The standby serve node                                              *)

type standby_node = {
  nlock : Mutex.t;
  stb : Standby.t;
  snapshot_every : int option;
  mutable service : Service.t option;
  mutable promoted_reply : P.response option;
}

let standby_node ?snapshot_every stb =
  {
    nlock = Mutex.create ();
    stb;
    snapshot_every;
    service = None;
    promoted_reply = None;
  }

let reply r = P.response_to_string r
let fail e = reply (P.Failed e)

let repl_ok node =
  let gen, records = Standby.position node.stb in
  reply (P.Repl_ok { gen; records })

let do_promote node =
  match node.promoted_reply with
  | Some r -> Ok r  (* idempotent: a retrying router gets the same answer *)
  | None -> (
    match Standby.promote ?snapshot_every:node.snapshot_every node.stb with
    | Error e -> Error ("promote: " ^ e)
    | Ok (store, recovered) -> (
      let svc = Service.create ~persist:(Store.record store) () in
      match Service.restore svc recovered with
      | Error e -> Error ("promote: restore: " ^ e)
      | Ok sessions ->
        let r =
          P.Promoted { sessions; generation = Store.generation store }
        in
        node.service <- Some svc;
        node.promoted_reply <- Some r;
        Ok r))

(* The standby's request handler, for [Wire.serve_handler].  Streamed
   journal records arrive as raw JREC bytes (the record magic is how
   they are told apart from JSON); everything else is the protocol,
   answered by the replication surface until [Promote] flips the node
   into an ordinary serving shard. *)
let handle_line node payload =
  let magic = Journal.record_magic in
  let mlen = String.length magic in
  if String.length payload >= mlen && String.sub payload 0 mlen = magic then (
    match Standby.apply node.stb payload with
    | Ok (gen, records) -> (reply (P.Repl_ok { gen; records }), true)
    | Error msg -> (fail (P.Bad_request msg), true))
  else
    match P.request_of_string payload with
    | Error e -> (fail e, false)
    | Ok req -> (
      Mutex.lock node.nlock;
      let service = node.service in
      let result =
        match (service, req) with
        | Some _, P.Promote -> (
          match do_promote node with
          | Ok r -> (reply r, true)
          | Error msg -> (fail (P.Bad_request msg), true))
        | Some svc, _ ->
          Mutex.unlock node.nlock;
          let r = Service.handle_line_status svc payload in
          Mutex.lock node.nlock;
          r
        | None, P.Repl_install { gen; snapshot } -> (
          match Standby.install node.stb ~gen ~snapshot with
          | Ok () -> (repl_ok node, true)
          | Error msg -> (fail (P.Bad_request msg), true))
        | None, P.Repl_rotate { gen } -> (
          match Standby.rotate node.stb ~gen with
          | Ok () -> (repl_ok node, true)
          | Error msg -> (fail (P.Bad_request msg), true))
        | None, P.Repl_batch { records } -> (
          match Standby.apply_batch node.stb records with
          | Ok (gen, records) -> (reply (P.Repl_ok { gen; records }), true)
          | Error msg -> (fail (P.Bad_request msg), true))
        | None, P.Repl_status -> (repl_ok node, true)
        | None, P.Promote -> (
          match do_promote node with
          | Ok r -> (reply r, true)
          | Error msg -> (fail (P.Bad_request msg), true))
        | None, _ ->
          (fail (P.Shard_unavailable "standby: not serving (promote first)"), true)
      in
      Mutex.unlock node.nlock;
      result)

let sweep node =
  Mutex.lock node.nlock;
  let svc = node.service in
  Mutex.unlock node.nlock;
  match svc with Some s -> Service.sweep s | None -> 0

let service node =
  Mutex.lock node.nlock;
  let svc = node.service in
  Mutex.unlock node.nlock;
  svc

(* ------------------------------------------------------------------ *)
(* Wire replication target                                             *)

(* The sending half a primary uses against a remote standby: the same
   [Repl.target] closures, carried by protocol messages over one pooled
   connection.  Group-commit batches travel as a single [Repl_batch]
   message — one round-trip per batch, acked at the batch's high-water
   mark. *)
let wire_target ~name addr =
  let p = pool addr in
  let request req =
    match pool_call p (P.request_to_string req) with
    | Error e -> Error e
    | Ok resp -> (
      match P.response_of_string resp with
      | Ok (P.Repl_ok { gen; records }) -> Ok (gen, records)
      | Ok (P.Failed e) -> Error (P.error_to_string e)
      | Ok _ -> Error "unexpected replication reply"
      | Error e -> Error ("unparseable replication reply: " ^ P.error_to_string e))
  in
  {
    Repl.describe = Printf.sprintf "standby %s at %s" name (Wire.address_to_string addr);
    position = (fun () -> request P.Repl_status);
    install =
      (fun ~gen ~snapshot ->
        Result.map (fun _ -> ()) (request (P.Repl_install { gen; snapshot })));
    rotate =
      (fun ~gen -> Result.map (fun _ -> ()) (request (P.Repl_rotate { gen })));
    append_batch = (fun records -> request (P.Repl_batch { records }));
    close = (fun () -> pool_close p);
  }
