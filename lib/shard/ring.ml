(* Consistent hashing over CRC-32: each member contributes [vnodes]
   points on a 2^32 ring; a key belongs to the first point clockwise
   from its own hash.  Membership changes therefore move only the keys
   whose owning arc changed — about 1/(n+1) of them when a member joins
   an n-member ring — instead of rehashing everything, which is what
   lets a shard join or die without disturbing the sessions pinned
   elsewhere. *)

type t = {
  vnodes : int;
  members : string list;  (* sorted, distinct *)
  points : (int * string) array;  (* (hash, member), sorted *)
}

let hash s =
  Int32.to_int (Jim_store.Crc32.digest_string s) land 0xffffffff

let build vnodes members =
  let members = List.sort_uniq compare members in
  let points =
    List.concat_map
      (fun m ->
        List.init vnodes (fun i -> (hash (Printf.sprintf "%s#%d" m i), m)))
      members
    |> Array.of_list
  in
  (* Ties (two vnodes hashing identically) break by member name, so the
     ring is a pure function of the membership set. *)
  Array.sort compare points;
  { vnodes; members; points }

let create ?(vnodes = 64) members =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be positive";
  build vnodes members

let members t = t.members
let vnodes t = t.vnodes
let is_empty t = t.members = []
let add t m = build t.vnodes (m :: t.members)
let remove t m = build t.vnodes (List.filter (fun x -> x <> m) t.members)

let place t key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let h = hash key in
    (* First point with hash >= h; wrap to points.(0) past the end. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    let i = if !lo = n then 0 else !lo in
    Some (snd t.points.(i))
  end

let session_key id = "s:" ^ string_of_int id
let fingerprint_key fp = "fp:" ^ fp
