(* The front process of the sharded serve tier.

   The router speaks the ordinary v1 protocol to clients and places
   every session on one of N shard upstreams via the consistent-hash
   {!Ring}: [Start_session] pins a placement (keyed by session id, or
   by instance fingerprint for [Catalog] sources so each catalog entry
   lives on exactly one shard) and every later request for that id
   follows the pin.  Placements and ring membership are journaled
   (JREC records of {!Rlog} lines) so routing survives a router
   restart.

   Failover: when a shard's transport dies mid-request the router
   promotes its standby (the upstream's [promote] closure — see
   {!Front.wire_upstream}), swaps the call path, journals the
   promotion, and then applies at-most-once discipline: non-mutating
   requests are retried transparently against the promoted standby;
   mutating requests ([Answer]/[Undo]/[End_session]) answer
   [Shard_unavailable] and let the client decide, because the dead
   primary may or may not have acked them.  [Start_session] is retried
   with a {e fresh} id — the old pin is released, so a half-started
   session on the promoted standby is an orphan the TTL sweep
   collects, never a correctness hazard. *)

module P = Jim_api.Protocol
module Journal = Jim_store.Journal
module Io = Jim_store.Io

type upstream = {
  name : string;
  mutable call : string -> (string, string) result;
      (** one request line in, one reply line out; [Error] is a
          transport failure (connect/read/write), not a protocol
          [Failed] *)
  promote : (unit -> ((string -> (string, string) result), string) result) option;
  mutable promoted : bool;
  ulock : Mutex.t;
}

let upstream ~name ?promote call =
  { name; call; promote; promoted = false; ulock = Mutex.create () }

type t = {
  lock : Mutex.t;
  ring : Ring.t;
  shards : (string, upstream) Hashtbl.t;
  placements : (int, string) Hashtbl.t;
  mutable next_id : int;
  journal : Journal.t option;
  fps : (string, string) Hashtbl.t;
      (* encoded concrete source -> fingerprint, memoized so repeat
         registrations don't re-derive the relation *)
}

let ( let* ) = Result.bind

let rlog_path dir = Filename.concat dir "router.wal"

(* Rebuild membership / placements / next_id from the journaled log. *)
let replay records =
  let members = Hashtbl.create 7 in
  let placements = Hashtbl.create 64 in
  let failed_over = Hashtbl.create 7 in
  let next_id = ref 1 in
  let* () =
    List.fold_left
      (fun acc (_off, payload) ->
        let* () = acc in
        let* e = Rlog.of_string payload in
        (match e with
        | Rlog.Member_added m -> Hashtbl.replace members m ()
        | Rlog.Member_removed m ->
          Hashtbl.remove members m;
          Hashtbl.remove failed_over m
        | Rlog.Placed { session; shard } ->
          Hashtbl.replace placements session shard;
          if session >= !next_id then next_id := session + 1
        | Rlog.Released { session } -> Hashtbl.remove placements session
        | Rlog.Failed_over { shard } -> Hashtbl.replace failed_over shard ());
        Ok ())
      (Ok ()) records
  in
  Ok (members, placements, failed_over, !next_id)

let journal_entry t e =
  match t.journal with
  | None -> ()
  | Some j -> Journal.append j (Rlog.to_string e)

(* Promote [up]'s standby if that has not happened yet.  Ok () means
   the upstream is promoted now (by us or a racing thread); the
   promotion is journaled exactly when we performed it. *)
let ensure_promoted t up =
  Mutex.lock up.ulock;
  let result =
    if up.promoted then Ok `Already
    else
      match up.promote with
      | None -> Error "no standby configured"
      | Some f -> (
        match f () with
        | Ok call ->
          up.call <- call;
          up.promoted <- true;
          Ok `Promoted
        | Error e -> Error ("standby promotion failed: " ^ e))
  in
  Mutex.unlock up.ulock;
  match result with
  | Ok `Promoted ->
    Mutex.lock t.lock;
    journal_entry t (Rlog.Failed_over { shard = up.name });
    Mutex.unlock t.lock;
    Ok ()
  | Ok `Already -> Ok ()
  | Error e -> Error e

let create ?(io = Io.real) ?dir ?vnodes ~shards () =
  let tbl = Hashtbl.create 7 in
  List.iter (fun up -> Hashtbl.replace tbl up.name up) shards;
  let configured = List.map (fun up -> up.name) shards in
  let* journal, journaled_members, placements, failed_over, next_id =
    match dir with
    | None -> Ok (None, Hashtbl.create 1, Hashtbl.create 64, Hashtbl.create 1, 1)
    | Some dir ->
      io.Io.mkdir_p dir;
      let path = rlog_path dir in
      if io.Io.exists path then begin
        let* records, tail =
          match Journal.scan ~io path with
          | Ok v -> Ok v
          | Error (`Corrupt (off, why)) ->
            Error (Printf.sprintf "router log corrupt at byte %d: %s" off why)
        in
        let* () =
          match tail with
          | Journal.Complete -> Ok ()
          | Journal.Truncated { offset; _ } -> Journal.truncate ~io path offset
        in
        let* members, placements, failed_over, next_id = replay records in
        let* j = Journal.open_append ~io path in
        Ok (Some j, members, placements, failed_over, next_id)
      end
      else
        Ok
          ( Some (Journal.create ~io path),
            Hashtbl.create 1,
            Hashtbl.create 64,
            Hashtbl.create 1,
            1 )
  in
  let t =
    {
      lock = Mutex.create ();
      ring = Ring.create ?vnodes configured;
      shards = tbl;
      placements;
      next_id;
      journal;
      fps = Hashtbl.create 16;
    }
  in
  (* Reconcile configured membership against the journaled set, so the
     log always describes the ring a restarted router will build. *)
  List.iter
    (fun m ->
      if not (Hashtbl.mem journaled_members m) then
        journal_entry t (Rlog.Member_added m))
    configured;
  Hashtbl.iter
    (fun m () ->
      if not (List.mem m configured) then
        journal_entry t (Rlog.Member_removed m))
    journaled_members;
  (* A journaled promotion means the primary is gone: re-point those
     upstreams at their standbys before serving (best effort — a
     failed attempt is retried by the ordinary failover path). *)
  Hashtbl.iter
    (fun m () ->
      match Hashtbl.find_opt tbl m with
      | Some up -> ignore (ensure_promoted t up)
      | None -> ())
    failed_over;
  Ok t

let placement t id =
  Mutex.lock t.lock;
  let p = Hashtbl.find_opt t.placements id in
  Mutex.unlock t.lock;
  p

let session_count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.placements in
  Mutex.unlock t.lock;
  n

let close t =
  Mutex.lock t.lock;
  Option.iter Journal.close t.journal;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let fail e = P.response_to_string (P.Failed e)
let unavailable msg = fail (P.Shard_unavailable msg)

let call_of up =
  Mutex.lock up.ulock;
  let c = up.call and p = up.promoted in
  Mutex.unlock up.ulock;
  (c, p)

(* Forward one line; on transport failure promote the standby and —
   only for [retryable] (non-mutating) requests — retry once. *)
let forward t up ~retryable line =
  let c, was_promoted = call_of up in
  match c line with
  | Ok resp -> Ok resp
  | Error err ->
    if was_promoted then
      Error (Printf.sprintf "shard %s unreachable after failover: %s" up.name err)
    else (
      match ensure_promoted t up with
      | Error e ->
        Error (Printf.sprintf "shard %s down (%s); %s" up.name err e)
      | Ok () ->
        if retryable then (
          let c, _ = call_of up in
          match c line with
          | Ok resp -> Ok resp
          | Error e2 ->
            Error
              (Printf.sprintf "shard %s standby unreachable: %s" up.name e2))
        else
          Error
            (Printf.sprintf
               "shard %s failed over mid-request; not retried (at-most-once)"
               up.name))

let upstream_for t shard_name =
  match Hashtbl.find_opt t.shards shard_name with
  | Some up -> Ok up
  | None -> Error (Printf.sprintf "shard %s is not configured" shard_name)

let release t id =
  Mutex.lock t.lock;
  if Hashtbl.mem t.placements id then begin
    Hashtbl.remove t.placements id;
    journal_entry t (Rlog.Released { session = id })
  end;
  Mutex.unlock t.lock

(* Place a new session: allocate the id, pick the shard, and journal
   the placement BEFORE the start is forwarded — a crash in between
   leaves a dead placement (the shard answers [Unknown_session]),
   never an unroutable live session. *)
let place_new t ~key_of_id =
  Mutex.lock t.lock;
  let id = t.next_id in
  t.next_id <- id + 1;
  let shard = Ring.place t.ring (key_of_id id) in
  (match shard with
  | Some shard ->
    journal_entry t (Rlog.Placed { session = id; shard });
    Hashtbl.replace t.placements id shard
  | None -> ());
  Mutex.unlock t.lock;
  (id, shard)

let handle_start t source strategy seed =
  let key_of_id =
    match source with
    | P.Catalog fp -> fun _ -> Ring.fingerprint_key fp
    | _ -> fun id -> Ring.session_key id
  in
  let start_once () =
    let id, shard = place_new t ~key_of_id in
    match shard with
    | None -> Error (`Final (unavailable "no shards in the ring"))
    | Some shard_name -> (
      match upstream_for t shard_name with
      | Error msg ->
        release t id;
        Error (`Final (unavailable msg))
      | Ok up -> (
        let line =
          P.request_to_string
            (P.Start_pinned { session = id; source; strategy; seed })
        in
        let c, was_promoted = call_of up in
        match c line with
        | Ok resp ->
          (match P.response_of_string resp with
          | Ok (P.Failed _) | Error _ -> release t id
          | Ok _ -> ());
          Ok resp
        | Error err ->
          release t id;
          if was_promoted then
            Error
              (`Final
                (unavailable
                   (Printf.sprintf "shard %s unreachable after failover: %s"
                      shard_name err)))
          else (
            match ensure_promoted t up with
            | Ok () -> Error `Retry
            | Error e ->
              Error
                (`Final
                  (unavailable
                     (Printf.sprintf "shard %s down (%s); %s" shard_name err
                        e))))))
  in
  (* A start that died in transit is retried once with a FRESH id
     against the promoted standby: the old pin is released, and if the
     dead primary did persist the start, the standby holds an orphan
     session the idle sweep collects. *)
  match start_once () with
  | Ok resp -> resp
  | Error (`Final resp) -> resp
  | Error `Retry -> (
    match start_once () with
    | Ok resp -> resp
    | Error (`Final resp) -> resp
    | Error `Retry -> unavailable "shard failed over twice during start")

let handle_session t id ~retryable ~ended_releases line =
  match placement t id with
  | None -> fail (P.Unknown_session id)
  | Some shard_name -> (
    match upstream_for t shard_name with
    | Error msg -> unavailable msg
    | Ok up -> (
      match forward t up ~retryable line with
      | Error msg -> unavailable msg
      | Ok resp ->
        (match P.response_of_string resp with
        | Ok P.Ended when ended_releases -> release t id
        | Ok (P.Failed (P.Unknown_session _)) ->
          (* evicted or never started on the shard: drop the stale pin *)
          release t id
        | _ -> ());
        resp))

let handle_register t source line =
  let fp =
    match source with
    | P.Catalog fp -> Ok fp
    | _ -> (
      let enc = Jim_api.Json.to_string (P.source_to_json source) in
      Mutex.lock t.lock;
      let memo = Hashtbl.find_opt t.fps enc in
      Mutex.unlock t.lock;
      match memo with
      | Some fp -> Ok fp
      | None -> (
        match Jim_catalog.Catalog.relation_of source with
        | Error e -> Error e
        | Ok (rel, _schema) ->
          let fp = Jim_store.Store.fingerprint rel in
          Mutex.lock t.lock;
          Hashtbl.replace t.fps enc fp;
          Mutex.unlock t.lock;
          Ok fp))
  in
  match fp with
  | Error e -> fail e
  | Ok fp -> (
    Mutex.lock t.lock;
    let shard = Ring.place t.ring (Ring.fingerprint_key fp) in
    Mutex.unlock t.lock;
    match shard with
    | None -> unavailable "no shards in the ring"
    | Some shard_name -> (
      match upstream_for t shard_name with
      | Error msg -> unavailable msg
      | Ok up -> (
        match forward t up ~retryable:true line with
        | Ok resp -> resp
        | Error msg -> unavailable msg)))

let add_stats (a : P.catalog_stats) (b : P.catalog_stats) : P.catalog_stats =
  {
    entries = a.entries + b.entries;
    bytes = a.bytes + b.bytes;
    pinned = a.pinned + b.pinned;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    fingerprints = a.fingerprints + b.fingerprints;
    derivations = a.derivations + b.derivations;
  }

let zero_stats : P.catalog_stats =
  {
    entries = 0;
    bytes = 0;
    pinned = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    fingerprints = 0;
    derivations = 0;
  }

(* Catalog counters live per shard; the router-level answer is the sum
   over every reachable shard. *)
let handle_catalog_stats t line =
  let ups = Hashtbl.fold (fun _ up acc -> up :: acc) t.shards [] in
  if ups = [] then unavailable "no shards configured"
  else begin
    let total = ref zero_stats and reached = ref 0 in
    List.iter
      (fun up ->
        match forward t up ~retryable:true line with
        | Ok resp -> (
          match P.response_of_string resp with
          | Ok (P.Catalog_info cs) ->
            total := add_stats !total cs;
            incr reached
          | _ -> ())
        | Error _ -> ())
      ups;
    if !reached = 0 then unavailable "no shard reachable for catalog stats"
    else P.response_to_string (P.Catalog_info !total)
  end

let handle_ring_status t =
  Mutex.lock t.lock;
  let sessions = Hashtbl.length t.placements in
  let members = Ring.members t.ring in
  Mutex.unlock t.lock;
  let status_line = P.request_to_string P.Repl_status in
  let shards =
    List.map
      (fun m ->
        let up = Hashtbl.find_opt t.shards m in
        let promoted =
          match up with
          | Some up ->
            Mutex.lock up.ulock;
            let p = up.promoted in
            Mutex.unlock up.ulock;
            p
          | None -> false
        in
        (* Replication lag is best-effort observability: a shard with an
           attached standby answers [Repl_status] with [Repl_lag]; one
           without (or an unreachable one) contributes no lag fields.
           Plain [call_of], not [forward]: a failed status probe must
           never promote a standby. *)
        let lag =
          match up with
          | None -> None
          | Some up -> (
            let c, _ = call_of up in
            match c status_line with
            | Ok resp -> (
              match P.response_of_string resp with
              | Ok (P.Repl_lag { records; bytes }) -> Some (records, bytes)
              | _ -> None)
            | Error _ -> None)
        in
        { P.shard = m; promoted; lag })
      members
  in
  P.response_to_string (P.Ring_info { shards; sessions })

let route t line = function
  | P.Start_session { source; strategy; seed } ->
    handle_start t source strategy seed
  | P.Start_pinned _ ->
    fail (P.Bad_request "start_pinned is shard-internal (use start_session)")
  | P.Register_instance { source } -> handle_register t source line
  | P.Catalog_stats -> handle_catalog_stats t line
  | P.Ring_status -> handle_ring_status t
  | P.Repl_install _ | P.Repl_rotate _ | P.Repl_batch _ | P.Repl_status
  | P.Promote ->
    fail (P.Bad_request "replication control messages bypass the router")
  | P.Get_question { session }
  | P.Top_questions { session; _ }
  | P.Explain { session; _ }
  | P.Result { session }
  | P.Stats { session }
  | P.Get_transcript { session } ->
    handle_session t session ~retryable:true ~ended_releases:false line
  | P.Answer { session; _ } | P.Undo { session } ->
    handle_session t session ~retryable:false ~ended_releases:false line
  (* Crowd messages route by session like any other.  Attach allocates a
     labeler id and poll/vote can close a round (absorbing an answer), so
     none of them may be transparently retried after a failover. *)
  | P.Labeler_attach { session }
  | P.Labeler_poll { session; _ }
  | P.Vote { session; _ } ->
    handle_session t session ~retryable:false ~ended_releases:false line
  | P.Crowd_stats { session } ->
    handle_session t session ~retryable:true ~ended_releases:false line
  | P.End_session { session } ->
    handle_session t session ~retryable:false ~ended_releases:true line

(* The router's [Wire.serve_handler] handler: same (reply, parsed)
   contract as [Service.handle_line_status]. *)
let handle_line t line =
  match P.request_of_string line with
  | Error e -> (fail e, false)
  | Ok req -> (
    match route t line req with
    | resp -> (resp, true)
    | exception e ->
      (fail (P.Bad_request ("internal error: " ^ Printexc.to_string e)), true))
