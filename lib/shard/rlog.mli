(** Router log entries: the one-line JSON payloads the router journals
    (through {!Jim_store.Journal}, same JREC format as the session WAL)
    so ring membership and session placement survive a router restart.

    [Placed] is journaled {e before} the start is forwarded to the
    shard: a crash between the two leaves a dead placement (the shard
    never started the session — requests to it answer
    [Unknown_session]), never an unroutable live session. *)

type entry =
  | Member_added of string
  | Member_removed of string
  | Placed of { session : int; shard : string }
  | Released of { session : int }
  | Failed_over of { shard : string }

val to_string : entry -> string
val of_string : string -> (entry, string) result
