(* The sending half of journal-streaming replication.

   A primary attaches one replication target (a warm standby — directly
   in-process for tests, or behind a connection pool via {!Front}) and
   then calls [send] from its persist hook *after* {!Jim_store.Store.record}
   has made the event locally durable.  [send] returns only once the
   standby has acknowledged — and the standby acknowledges only after
   its own group commit — so an event the client sees acked is durable
   in two places.  A failed send raises {!Replication_failed}, which the
   wire layer turns into an error reply: the client is never told "ok"
   for an event the standby missed (semi-synchronous replication with a
   hard ack gate, not async shipping). *)

module Journal = Jim_store.Journal
module Recovery = Jim_store.Recovery
module Store = Jim_store.Store
module Event = Jim_store.Event
module Io = Jim_store.Io

type target = {
  describe : string;
  position : unit -> (int * int, string) result;
  install : gen:int -> snapshot:string option -> (unit, string) result;
  rotate : gen:int -> (unit, string) result;
  append : string -> (int * int, string) result;
  close : unit -> unit;
}

let of_standby stb =
  {
    describe = "in-process standby";
    position = (fun () -> Ok (Standby.position stb));
    install = (fun ~gen ~snapshot -> Standby.install stb ~gen ~snapshot);
    rotate = (fun ~gen -> Standby.rotate stb ~gen);
    append = (fun record -> Standby.apply stb record);
    close = (fun () -> Standby.close stb);
  }

exception Replication_failed of string

let () =
  Printexc.register_printer (function
    | Replication_failed msg -> Some ("Replication_failed: " ^ msg)
    | _ -> None)

type t = {
  store : Store.t;
  target : target;
  lock : Mutex.t;
  mutable gen_sent : int;
  mutable acked : int;  (* records acked by the target this generation *)
}

let ( let* ) = Result.bind

(* Ship the baseline: the store's current snapshot (if its generation
   has one) plus every record already in the live journal, so the
   standby starts from exactly the primary's durable state. *)
let attach store target =
  let io = Store.io store in
  let dir = Store.dir store in
  let gen = Store.generation store in
  let snapshot =
    let path = Recovery.snapshot_path dir gen in
    if io.Io.exists path then
      match io.Io.read_file path with Ok text -> Some text | Error _ -> None
    else None
  in
  let* () = target.install ~gen ~snapshot in
  let jpath = Recovery.journal_path dir gen in
  let* acked =
    if not (io.Io.exists jpath) then Ok 0
    else
      let* records, _end_off = Journal.tail ~io jpath ~from_offset:0 in
      List.fold_left
        (fun acc (_off, payload) ->
          let* _ = acc in
          let* _pos = target.append (Journal.encode_record payload) in
          Ok ())
        (Ok ()) records
      |> Result.map (fun () -> List.length records)
  in
  Ok { store; target; lock = Mutex.create (); gen_sent = gen; acked }

let position t =
  Mutex.lock t.lock;
  let p = (t.gen_sent, t.acked) in
  Mutex.unlock t.lock;
  p

let describe t = t.target.describe

(* Called from the persist hook, after Store.record: the event is
   already locally durable and — if the store just checkpointed — the
   store's generation may have advanced past [gen_sent], in which case
   the standby rotates first (writing its own snapshot from its shadow)
   so both sides agree on the generation the record lands in. *)
let send t ev =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let result =
        let gen = Store.generation t.store in
        let* () =
          if gen <> t.gen_sent then begin
            let* () = t.target.rotate ~gen in
            t.gen_sent <- gen;
            t.acked <- 0;
            Ok ()
          end
          else Ok ()
        in
        let record = Journal.encode_record (Event.to_string ev) in
        let* _gen, acked = t.target.append record in
        t.acked <- acked;
        Ok ()
      in
      match result with
      | Ok () -> ()
      | Error msg ->
        raise (Replication_failed (t.target.describe ^ ": " ^ msg)))

let close t = t.target.close ()
