(* The sending half of journal-streaming replication.

   A primary attaches one replication target (a warm standby — directly
   in-process for tests, or behind a connection pool via {!Front}) and
   then calls [send] from its persist hook *after* {!Jim_store.Store.record}
   has made the event locally durable.  [send] returns only once the
   standby has acknowledged — and the standby acknowledges only after
   its own group commit — so an event the client sees acked is durable
   in two places.  A failed send raises {!Replication_failed}, which the
   wire layer turns into an error reply: the client is never told "ok"
   for an event the standby missed (semi-synchronous replication with a
   hard ack gate, not async shipping).

   Batching: concurrent senders do not each pay a standby round-trip.
   The first sender to arrive becomes the shipping leader; everyone who
   queues behind it while the leader's round-trip is in flight has their
   records drained into the next batch and shipped as one [Repl_batch]
   message, acknowledged by the standby's high-water mark after a single
   combined group commit.  The ack gate is unchanged — every waiter
   blocks until the batch holding its record is durably acked — but a
   batch of [n] records costs one round-trip instead of [n]. *)

module Journal = Jim_store.Journal
module Recovery = Jim_store.Recovery
module Store = Jim_store.Store
module Event = Jim_store.Event
module Io = Jim_store.Io

type target = {
  describe : string;
  position : unit -> (int * int, string) result;
  install : gen:int -> snapshot:string option -> (unit, string) result;
  rotate : gen:int -> (unit, string) result;
  append_batch : string list -> (int * int, string) result;
  close : unit -> unit;
}

let of_standby stb =
  {
    describe = "in-process standby";
    position = (fun () -> Ok (Standby.position stb));
    install = (fun ~gen ~snapshot -> Standby.install stb ~gen ~snapshot);
    rotate = (fun ~gen -> Standby.rotate stb ~gen);
    append_batch = (fun records -> Standby.apply_batch stb records);
    close = (fun () -> Standby.close stb);
  }

exception Replication_failed of string

let () =
  Printexc.register_printer (function
    | Replication_failed msg -> Some ("Replication_failed: " ^ msg)
    | _ -> None)

type waiter = {
  record : string;  (* encoded JREC bytes *)
  mutable outcome : (unit, string) result option;
}

type t = {
  store : Store.t;
  target : target;
  lock : Mutex.t;
  cond : Condition.t;
  queue : waiter Queue.t;
  mutable sending : bool;  (* a leader's round-trip is in flight *)
  mutable gen_sent : int;
  mutable acked : int;  (* records acked by the target this generation *)
  mutable pending_records : int;  (* queued or in flight, not yet acked *)
  mutable pending_bytes : int;
}

let ( let* ) = Result.bind

let rec take n = function
  | [] -> ([], [])
  | rest when n = 0 -> ([], rest)
  | x :: rest ->
    let chunk, tail = take (n - 1) rest in
    (x :: chunk, tail)

(* Ship the baseline: the store's current snapshot (if its generation
   has one) plus every record already in the live journal — in chunked
   batches, so a long history costs a handful of round-trips — so the
   standby starts from exactly the primary's durable state. *)
let attach store target =
  let io = Store.io store in
  let dir = Store.dir store in
  let gen = Store.generation store in
  let snapshot =
    let path = Recovery.snapshot_path dir gen in
    if io.Io.exists path then
      match io.Io.read_file path with Ok text -> Some text | Error _ -> None
    else None
  in
  let* () = target.install ~gen ~snapshot in
  let jpath = Recovery.journal_path dir gen in
  let* acked =
    if not (io.Io.exists jpath) then Ok 0
    else
      let* records, _end_off = Journal.tail ~io jpath ~from_offset:0 in
      let encoded =
        List.map (fun (_off, payload) -> Journal.encode_record payload) records
      in
      let rec ship acked = function
        | [] -> Ok acked
        | rest ->
          let chunk, tail = take 64 rest in
          let* _gen, acked = target.append_batch chunk in
          ship acked tail
      in
      ship 0 encoded
  in
  Ok
    {
      store;
      target;
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      sending = false;
      gen_sent = gen;
      acked;
      pending_records = 0;
      pending_bytes = 0;
    }

let position t =
  Mutex.lock t.lock;
  let p = (t.gen_sent, t.acked) in
  Mutex.unlock t.lock;
  p

let lag t =
  Mutex.lock t.lock;
  let l = (t.pending_records, t.pending_bytes) in
  Mutex.unlock t.lock;
  l

let describe t = t.target.describe

(* Leader loop: called with the lock held and [t.sending] set.  Drains
   everything queued so far into one batch, ships it unlocked (rotating
   first if the store checkpointed since the last batch), then resolves
   every drained waiter under the lock and loops — records that queued
   during the round-trip form the next batch. *)
let rec drain t =
  if not (Queue.is_empty t.queue) then begin
    let batch = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    let gen = Store.generation t.store in
    let rotate_needed = gen <> t.gen_sent in
    Mutex.unlock t.lock;
    let result =
      try
        let* () = if rotate_needed then t.target.rotate ~gen else Ok () in
        t.target.append_batch (List.map (fun w -> w.record) batch)
      with e -> Error (Printexc.to_string e)
    in
    Mutex.lock t.lock;
    (match result with
    | Ok (_gen, acked) ->
      t.gen_sent <- gen;
      t.acked <- acked;
      List.iter (fun w -> w.outcome <- Some (Ok ())) batch
    | Error msg -> List.iter (fun w -> w.outcome <- Some (Error msg)) batch);
    List.iter
      (fun w ->
        t.pending_records <- t.pending_records - 1;
        t.pending_bytes <- t.pending_bytes - String.length w.record)
      batch;
    Condition.broadcast t.cond;
    drain t
  end

(* Called from the persist hook, after Store.record: the event is
   already locally durable and — if the store just checkpointed — the
   store's generation may have advanced past [gen_sent], in which case
   the standby rotates first (writing its own snapshot from its shadow)
   so both sides agree on the generation the batch lands in. *)
let send t ev =
  let record = Journal.encode_record (Event.to_string ev) in
  Mutex.lock t.lock;
  let w = { record; outcome = None } in
  Queue.push w t.queue;
  t.pending_records <- t.pending_records + 1;
  t.pending_bytes <- t.pending_bytes + String.length record;
  if t.sending then
    (* A leader's round-trip is in flight; it will drain us into the
       next batch.  Wait for our outcome. *)
    while w.outcome = None do
      Condition.wait t.cond t.lock
    done
  else begin
    t.sending <- true;
    Fun.protect
      ~finally:(fun () ->
        t.sending <- false;
        Condition.broadcast t.cond)
      (fun () -> drain t)
  end;
  let outcome = w.outcome in
  Mutex.unlock t.lock;
  match outcome with
  | Some (Ok ()) -> ()
  | Some (Error msg) ->
    raise (Replication_failed (t.target.describe ^ ": " ^ msg))
  | None ->
    (* unreachable: the leader resolves every drained waiter *)
    raise (Replication_failed (t.target.describe ^ ": record never shipped"))

let close t = t.target.close ()
