(** The sending half of journal-streaming replication: a primary's
    attachment to one warm {!Standby}, called from its persist hook.

    Ack discipline (the semi-synchronous contract the failover sweep
    asserts): {!send} is called {e after} {!Jim_store.Store.record} has
    group-committed the event locally, and returns only once the
    standby has acknowledged — which it does only after its own group
    commit.  A send failure raises {!Replication_failed}, which the
    wire layer converts into an error reply, so the client is never
    acked an event the standby does not durably hold.

    Batching: concurrent {!send}s coalesce.  The first sender becomes
    the shipping leader; records queued behind it while its round-trip
    is in flight are drained into the next batch and shipped as one
    {!Jim_api.Protocol.Repl_batch} message, which the standby lands
    atomically (one combined append, one fsync) and acks with its
    high-water mark.  Every waiter still blocks until its record's
    batch is acked — the durability contract is unchanged; only the
    number of round-trips shrinks. *)

type target = {
  describe : string;
  position : unit -> (int * int, string) result;
  install : gen:int -> snapshot:string option -> (unit, string) result;
  rotate : gen:int -> (unit, string) result;
  append_batch : string list -> (int * int, string) result;
      (** land one batch of encoded JREC records atomically; the
          returned position is the batch's high-water mark *)
  close : unit -> unit;
}
(** How the sender talks to a standby — a record of closures so the
    same sender drives an in-process {!Standby} (tests, the fault
    sweep) or a remote one behind {!Front}'s connection pool. *)

val of_standby : Standby.t -> target

exception Replication_failed of string

type t

val attach : Jim_store.Store.t -> target -> (t, string) result
(** Ship the baseline and connect: installs the store's current
    snapshot (if any) on the target, streams every record already in
    the live journal in chunked batches, and returns the handle whose
    {!send} keeps the stream current.  Call before the service starts
    accepting requests, with the store quiescent. *)

val send : t -> Jim_store.Event.t -> unit
(** Stream one just-recorded event; returns once the standby has
    durably acked the batch holding it.  Rotates the standby first if
    the store checkpointed since the last batch.  Raises
    {!Replication_failed} on any stream error.  Thread-safe: concurrent
    sends batch behind a single shipping leader, in record order. *)

val position : t -> int * int
(** Last acked [(generation, record count)]. *)

val lag : t -> int * int
(** Current replication lag as [(records, bytes)]: records accepted
    into the stream (queued or in a batch in flight) that the standby
    has not yet acknowledged.  [(0, 0)] when the stream is idle — the
    semi-synchronous ack gate keeps the lag bounded by the in-flight
    batch.  This is what a primary reports in its
    {!Jim_api.Protocol.Repl_lag} reply. *)

val describe : t -> string
val close : t -> unit
