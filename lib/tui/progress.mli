(** The statistics panel the demo keeps on screen: labelled /
    auto-determined percentages and the shrinking version space. *)

val line : Jim_core.Stats.t -> string
(** One-line summary for the status bar. *)

val scorer_line : Jim_core.Metrics.snapshot -> string
(** One-line scorer perf summary (pick latency, cache hit rate). *)

val panel : Jim_core.Stats.t -> string
(** Multi-line panel with a proportion bar; includes the scorer line
    once at least one question has been picked. *)
