module Stats = Jim_core.Stats
module Metrics = Jim_core.Metrics

let line (s : Stats.t) =
  Printf.sprintf "labeled %d (%.0f%%) | auto %d (%.0f%%) | open %d | VS %.0f"
    s.Stats.labeled s.Stats.labeled_pct s.Stats.auto_determined
    s.Stats.auto_pct s.Stats.still_informative s.Stats.version_space

let scorer_line (m : Metrics.snapshot) =
  Printf.sprintf
    "scorer  last pick %.2f ms | avg %.2f ms | cache hit %.0f%% | meets %d"
    (float_of_int m.Metrics.last_pick_ns /. 1e6)
    (Metrics.avg_pick_ns m /. 1e6)
    (100.0 *. Metrics.hit_rate m)
    m.Metrics.meets

let panel (s : Stats.t) =
  let width = 40 in
  let seg count =
    if s.Stats.total = 0 then 0
    else count * width / s.Stats.total
  in
  let labeled = seg s.Stats.labeled in
  let auto = seg s.Stats.auto_determined in
  let open_ = max 0 (width - labeled - auto) in
  String.concat "\n"
    ([
       Printf.sprintf "  progress [%s%s%s]"
         (Ansi.style [ Ansi.Fg_green ] (String.make labeled '#'))
         (Ansi.style [ Ansi.Dim ] (String.make auto '+'))
         (String.make open_ '.');
       "  " ^ line s;
     ]
    @
    if s.Stats.scoring.Metrics.picks = 0 then []
    else [ "  " ^ Ansi.style [ Ansi.Dim ] (scorer_line s.Stats.scoring) ])
  ^ "\n"
