(** Minimal RFC-4180-style CSV reader/writer: quoted fields, escaped quotes
    ([""]) and embedded separators/newlines are supported.  Used to load
    external instances into the inference engine and to dump experiment
    results. *)

val parse_string : ?sep:char -> string -> string list list
(** Rows of raw fields.  A trailing newline does not produce an empty row.
    Raises [Failure] on an unterminated quoted field. *)

val print_string : ?sep:char -> string list list -> string
(** Quotes a field iff it contains the separator, a quote or a newline. *)

val load : ?sep:char -> ?name:string -> Schema.t -> string -> (Relation.t, string) result
(** [load schema path]: reads the file, checks the header row against the
    schema's column names (header is required) and parses each field at
    its column type.  Returns a descriptive error on the first bad cell. *)

val load_string : ?sep:char -> ?name:string -> string -> (Relation.t, string) result
(** {!load_auto} on in-memory CSV text (header row, column types
    inferred); what the wire protocol's inline-CSV instance source uses. *)

val load_auto : ?sep:char -> ?name:string -> string -> (Relation.t, string) result
(** Like {!load} but infers each column's type from the data (int ⊂ float
    ⊂ string; bool and date recognised when every non-empty cell parses). *)

val save : ?sep:char -> Relation.t -> string -> unit
