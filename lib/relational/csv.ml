let parse_string ?(sep = ',') s =
  let n = String.length s in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 32 in
  (* A quoted empty field leaves the buffer empty, so the end-of-input
     flush below cannot tell it from "no field at all" — this flag can. *)
  let started = ref false in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf;
    started := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= n then ()
    else
      match s.[i] with
      | c when c = sep ->
        flush_field ();
        plain (i + 1)
      | '\r' when i + 1 < n && s.[i + 1] = '\n' ->
        flush_row ();
        plain (i + 2)
      | '\n' | '\r' ->
        flush_row ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 ->
        (* A quote at field start opens a quoted field; elsewhere it is a
           literal character. *)
        started := true;
        quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv: unterminated quoted field"
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  (* Emit the last row unless the input ended with a newline (or was
     empty). *)
  if Buffer.length buf > 0 || !fields <> [] || !started then flush_row ();
  List.rev !rows

let needs_quoting sep f =
  String.exists (fun c -> c = sep || c = '"' || c = '\n' || c = '\r') f

let quote f =
  let buf = Buffer.create (String.length f + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    f;
  Buffer.add_char buf '"';
  Buffer.contents buf

let print_string ?(sep = ',') rows =
  let field f = if needs_quoting sep f then quote f else f in
  String.concat ""
    (List.map
       (fun row -> String.concat (String.make 1 sep) (List.map field row) ^ "\n")
       rows)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_rows schema name rows =
  match rows with
  | [] -> Error "empty CSV file"
  | header :: data ->
    let expected = Array.to_list (Schema.names schema) in
    if header <> expected then
      Error
        (Printf.sprintf "header mismatch: expected [%s], got [%s]"
           (String.concat "; " expected)
           (String.concat "; " header))
    else begin
      let exception Bad of string in
      try
        let parse_row rownum fields =
          if List.length fields <> Schema.arity schema then
            raise
              (Bad (Printf.sprintf "row %d: expected %d fields, got %d" rownum
                      (Schema.arity schema) (List.length fields)));
          Tuple0.make
            (List.mapi
               (fun i f ->
                 match Value.parse (Schema.column schema i).Schema.cty f with
                 | Ok v -> v
                 | Error e -> raise (Bad (Printf.sprintf "row %d: %s" rownum e)))
               fields)
        in
        Ok (Relation.make ~name schema (List.mapi (fun k -> parse_row (k + 2)) data))
      with
      | Bad msg -> Error msg
      | Invalid_argument msg -> Error msg
    end

let load ?sep ?name schema path =
  let name = Option.value name ~default:(Filename.remove_extension (Filename.basename path)) in
  match parse_string ?sep (read_file path) with
  | rows -> parse_rows schema name rows
  | exception Failure msg -> Error msg
  | exception Sys_error msg -> Error msg

let infer_column_ty cells =
  let non_empty = List.filter (fun c -> c <> "") cells in
  let all parser = non_empty <> [] && List.for_all parser non_empty in
  if all (fun c -> int_of_string_opt c <> None) then Value.Tint
  else if all (fun c -> float_of_string_opt c <> None) then Value.Tfloat
  else if
    all (fun c ->
        match String.lowercase_ascii c with
        | "true" | "false" -> true
        | _ -> false)
  then Value.Tbool
  else if all (fun c -> match Value.parse Value.Tdate c with Ok _ -> true | Error _ -> false)
  then Value.Tdate
  else Value.Tstring

let load_string ?sep ?(name = "csv") text =
  match parse_string ?sep text with
  | exception Failure msg -> Error msg
  | [] -> Error "empty CSV file"
  | header :: data ->
    let columns =
      List.mapi
        (fun i cname ->
          let cells = List.filter_map (fun row -> List.nth_opt row i) data in
          { Schema.cname; cty = infer_column_ty cells })
        header
    in
    (try parse_rows (Schema.make columns) name (header :: data)
     with Invalid_argument msg -> Error msg)

let load_auto ?sep ?name path =
  let name = Option.value name ~default:(Filename.remove_extension (Filename.basename path)) in
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> load_string ?sep ~name text

let save ?sep r path =
  let header = Array.to_list (Schema.names (Relation.schema r)) in
  let rows =
    List.map
      (fun t -> List.map Value.to_string (Array.to_list t))
      (Relation.tuples r)
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (print_string ?sep (header :: rows)))
