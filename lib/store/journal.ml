let file_magic = "JIMWAL01"
let header_size = String.length file_magic
let record_magic = "JREC"
let record_version = '\001'
let record_header_size = 4 + 1 + 4 + 4

type t = {
  fd : Unix.file_descr;
  fsync : bool;
  lock : Mutex.t;
  cond : Condition.t;
  mutable written : int;  (* bytes handed to [write] so far *)
  mutable synced : int;  (* bytes known covered by an fsync *)
  mutable syncing : bool;  (* a leader's fsync is in flight *)
  mutable closed : bool;
}

let put_le32 buf off v =
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_le32 buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then go (off + Unix.write fd buf off (len - off))
  in
  go 0

let of_fd ~fsync ~written fd =
  {
    fd;
    fsync;
    lock = Mutex.create ();
    cond = Condition.create ();
    written;
    synced = written;
    syncing = false;
    closed = false;
  }

let create ?(fsync = true) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  write_all fd (Bytes.of_string file_magic);
  if fsync then Unix.fsync fd;
  of_fd ~fsync ~written:header_size fd

let open_append ?(fsync = true) path =
  match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd ->
    let size = (Unix.fstat fd).Unix.st_size in
    if size < header_size then begin
      Unix.close fd;
      Error (Printf.sprintf "%s: too short for a journal file header" path)
    end
    else begin
      let hdr = Bytes.create header_size in
      ignore (Unix.read fd hdr 0 header_size);
      if Bytes.to_string hdr <> file_magic then begin
        Unix.close fd;
        Error (Printf.sprintf "%s: bad journal file magic" path)
      end
      else begin
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        Ok (of_fd ~fsync ~written:size fd)
      end
    end

let record payload =
  let plen = String.length payload in
  let buf = Bytes.create (record_header_size + plen) in
  Bytes.blit_string record_magic 0 buf 0 4;
  Bytes.set buf 4 record_version;
  put_le32 buf 5 plen;
  put_le32 buf 9
    (Int32.to_int
       (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
    land 0xffffffff);
  Bytes.blit_string payload 0 buf record_header_size plen;
  buf

(* Group commit: write under the lock, then wait until some leader's
   fsync barrier covers our bytes.  The first waiter whose bytes are not
   yet durable becomes the leader, releases the lock for the (slow)
   fsync, and broadcasts the new high-water mark; appenders that wrote
   while the leader was syncing ride the next round. *)
let append t payload =
  let buf = record payload in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Journal.append: closed"
  end;
  write_all t.fd buf;
  t.written <- t.written + Bytes.length buf;
  let ticket = t.written in
  if not t.fsync then Mutex.unlock t.lock
  else begin
    while t.synced < ticket do
      if t.syncing then Condition.wait t.cond t.lock
      else begin
        t.syncing <- true;
        let barrier = t.written in
        Mutex.unlock t.lock;
        let result = try Ok (Unix.fsync t.fd) with exn -> Error exn in
        Mutex.lock t.lock;
        (* Reset + broadcast even on failure, or every waiting appender
           blocks forever on a leader that will never report back; they
           retake the leader role and surface their own error. *)
        t.syncing <- false;
        (match result with
        | Ok () -> t.synced <- max t.synced barrier
        | Error _ -> ());
        Condition.broadcast t.cond;
        match result with
        | Ok () -> ()
        | Error exn ->
          Mutex.unlock t.lock;
          raise exn
      end
    done;
    Mutex.unlock t.lock
  end

let sync t =
  Mutex.lock t.lock;
  if not t.closed then begin
    let barrier = t.written in
    if t.synced < barrier then begin
      Unix.fsync t.fd;
      t.synced <- max t.synced barrier
    end
  end;
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    if t.fsync then Unix.fsync t.fd;
    Unix.close t.fd
  end;
  Mutex.unlock t.lock

type tail = Complete | Truncated of { offset : int; bytes : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Is there a complete, CRC-valid record starting at [q]?  Used to tell
   a torn tail from a corrupted length field: a torn append is by
   construction the final write, so any valid record *after* the suspect
   one proves the log was damaged in place, not truncated. *)
let valid_record_at data size q =
  q + record_header_size <= size
  && String.sub data q 4 = record_magic
  && data.[q + 4] = record_version
  &&
  let buf = Bytes.unsafe_of_string data in
  let plen = get_le32 buf (q + 5) in
  let crc = get_le32 buf (q + 9) in
  plen >= 0
  && q + record_header_size + plen <= size
  && Int32.to_int (Int32.logand (Crc32.digest_string (String.sub data (q + record_header_size) plen)) 0xffffffffl)
     land 0xffffffff
     = crc

let record_follows data size pos =
  let rec go q =
    q + record_header_size <= size
    && (valid_record_at data size q || go (q + 1))
  in
  go (pos + 1)

let scan path =
  match read_file path with
  | exception Sys_error msg -> Error (`Corrupt (0, msg))
  | data ->
    let size = String.length data in
    if size < header_size then
      (* A crash during [create] can leave a partial file header: torn,
         and necessarily empty of acknowledged records. *)
      Ok ([], Truncated { offset = 0; bytes = size })
    else if String.sub data 0 header_size <> file_magic then
      Error (`Corrupt (0, "bad or missing journal file magic"))
    else begin
      let buf = Bytes.unsafe_of_string data in
      let rec go pos acc =
        if pos = size then Ok (List.rev acc, Complete)
        else if size - pos < record_header_size then
          Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
        else if
          String.sub data pos 4 <> record_magic
          || data.[pos + 4] <> record_version
        then
          Error
            (`Corrupt
               (pos, "bad record magic/version (file overwritten or shifted?)"))
        else begin
          let plen = get_le32 buf (pos + 5) in
          let crc = get_le32 buf (pos + 9) in
          if plen < 0 || pos + record_header_size + plen > size then
            (* The length field points past EOF: a torn payload — unless
               a valid record follows, in which case the length itself is
               corrupt and cutting here would drop acknowledged history. *)
            if record_follows data size pos then
              Error
                (`Corrupt
                   ( pos,
                     Printf.sprintf
                       "record length %d runs past EOF but valid records follow — corrupt length field, refusing to drop %d bytes"
                       plen (size - pos) ))
            else Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
          else begin
            let payload = String.sub data (pos + record_header_size) plen in
            let actual =
              Int32.to_int
                (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
              land 0xffffffff
            in
            let next = pos + record_header_size + plen in
            if actual <> crc then
              if next = size then
                (* Full-length final record with a bad CRC: the header
                   block hit the disk but the payload did not — torn. *)
                Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
              else
                Error
                  (`Corrupt
                     ( pos,
                       Printf.sprintf "payload CRC mismatch (stored %08x, computed %08x)"
                         crc actual ))
            else go next ((pos, payload) :: acc)
          end
        end
      in
      go header_size []
    end

let truncate path offset =
  match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match
          Unix.ftruncate fd offset;
          Unix.fsync fd
        with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
