let file_magic = "JIMWAL01"
let header_size = String.length file_magic
let record_magic = "JREC"
let record_version = '\001'
let record_header_size = 4 + 1 + 4 + 4

type batch_stats = {
  batches : int;
  records : int;
  max_batch : int;
  by_size : int array;
}

type t = {
  file : Io.file;
  fsync : bool;
  window : float;
      (* commit-window dally, seconds; [> 0] switches appends to the
         staged (combined-write) group commit below *)
  window_bytes : int;  (* byte budget: stop dallying once staged past it *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable written : int;  (* bytes handed to [write] so far *)
  mutable synced : int;  (* bytes known covered by an fsync *)
  mutable staged : int;  (* logical end: [written] plus pending bytes *)
  pending : Buffer.t;
      (* records staged but not yet written (windowed mode only); the
         leader drains the whole buffer as one combined [write] *)
  mutable pending_records : int;  (* records inside [pending] *)
  mutable waiters : int;  (* appenders parked on the fsync barrier *)
  mutable syncing : bool;  (* a leader's write+fsync is in flight *)
  mutable failed : bool;  (* poisoned by a write/fsync failure *)
  mutable closed : bool;
  mutable scratch : Bytes.t;
      (* record assembly buffer, reused across appends; only touched
         under [lock] and only before the bytes reach [write] or
         [pending], so a leader releasing the lock for its fsync cannot
         race it *)
  mutable batches : int;  (* combined appends drained *)
  mutable batched_records : int;  (* records those batches carried *)
  mutable max_batch : int;  (* largest batch, in records *)
  by_size : int array;
      (* batch size histogram: bucket [i] counts batches of
         [2^i .. 2^(i+1) - 1] records, last bucket open-ended *)
}

exception Poisoned

let () =
  Printexc.register_printer (function
    | Poisoned ->
      Some
        "Jim_store.Journal.Poisoned (appends refused after an earlier \
         write/fsync failure)"
    | _ -> None)

let put_le32 buf off v =
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_le32 buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let write_all (file : Io.file) buf off len =
  let stop = off + len in
  let rec go off = if off < stop then go (off + file.Io.write buf off (stop - off)) in
  go off

let of_file ~fsync ~window ~window_bytes ~written file =
  {
    file;
    fsync;
    window;
    window_bytes;
    lock = Mutex.create ();
    cond = Condition.create ();
    written;
    synced = written;
    staged = written;
    pending = Buffer.create 4096;
    pending_records = 0;
    waiters = 0;
    syncing = false;
    failed = false;
    closed = false;
    scratch = Bytes.create 512;
    batches = 0;
    batched_records = 0;
    max_batch = 0;
    by_size = Array.make 8 0;
  }

(* Staged (combined-write) appends only make sense when a durability
   barrier exists to amortise: without fsync there is nothing to wait
   for, so records go straight to [write] as before. *)
let windowed t = t.fsync && t.window > 0.

let create ?(fsync = true) ?(window = 0.) ?(window_bytes = 256 * 1024)
    ?(io = Io.real) path =
  let file = io.Io.create path in
  write_all file (Bytes.of_string file_magic) 0 header_size;
  if fsync then file.Io.fsync ();
  of_file ~fsync ~window ~window_bytes ~written:header_size file

let open_append ?(fsync = true) ?(window = 0.) ?(window_bytes = 256 * 1024)
    ?(io = Io.real) path =
  (* Validate the header before taking an append handle; [Recovery.load]
     has normally just scanned the file, so this re-read is cheap and
     only happens at startup. *)
  match io.Io.read_file path with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok data ->
    if String.length data < header_size then
      Error (Printf.sprintf "%s: too short for a journal file header" path)
    else if String.sub data 0 header_size <> file_magic then
      Error (Printf.sprintf "%s: bad journal file magic" path)
    else (
      match io.Io.open_append path with
      | Error m -> Error (Printf.sprintf "%s: %s" path m)
      | Ok (file, size) -> Ok (of_file ~fsync ~window ~window_bytes ~written:size file))

(* Assemble the record into [t.scratch] (growing it if the payload needs
   more room); returns the record's total length.  Caller holds the
   lock. *)
let record_into t payload =
  let plen = String.length payload in
  let total = record_header_size + plen in
  if Bytes.length t.scratch < total then
    t.scratch <- Bytes.create (max total (2 * Bytes.length t.scratch));
  let buf = t.scratch in
  Bytes.blit_string record_magic 0 buf 0 4;
  Bytes.set buf 4 record_version;
  put_le32 buf 5 plen;
  put_le32 buf 9
    (Int32.to_int
       (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
    land 0xffffffff);
  Bytes.blit_string payload 0 buf record_header_size plen;
  total

let note_batch t n =
  t.batches <- t.batches + 1;
  t.batched_records <- t.batched_records + n;
  if n > t.max_batch then t.max_batch <- n;
  let last = Array.length t.by_size - 1 in
  let rec bucket i n = if n <= 1 || i >= last then i else bucket (i + 1) (n / 2) in
  let b = bucket 0 n in
  t.by_size.(b) <- t.by_size.(b) + 1

let batch_stats t =
  Mutex.lock t.lock;
  let s : batch_stats =
    {
      batches = t.batches;
      records = t.batched_records;
      max_batch = t.max_batch;
      by_size = Array.copy t.by_size;
    }
  in
  Mutex.unlock t.lock;
  s

(* Group commit, immediate-write flavour: the record is already on file;
   wait until some leader's fsync barrier covers [ticket].  The first
   waiter whose bytes are not yet durable becomes the leader, releases
   the lock for the (slow) fsync, and broadcasts the new high-water
   mark; appenders that wrote while the leader was syncing ride the next
   round.  Caller holds the lock; returns with it held (released on
   raise).

   Poisoning: a failed or short write can leave a partial record
   mid-file, and a failed fsync leaves the kernel free to have dropped
   dirty pages we can no longer re-sync (the PostgreSQL "fsyncgate"
   lesson: retrying fsync after a failure is not safe).  Either way the
   only safe continuation is none at all — the journal flips to [failed]
   and every later append raises {!Poisoned}, so the damage stays
   confined to the (unacknowledged) tail where recovery can cut it,
   instead of becoming mid-log corruption under acknowledged records. *)
let rec await_immediate t ticket =
  if t.synced < ticket then begin
    if t.failed then begin
      Mutex.unlock t.lock;
      raise Poisoned
    end;
    if t.syncing then begin
      Condition.wait t.cond t.lock;
      await_immediate t ticket
    end
    else begin
      t.syncing <- true;
      let barrier = t.written in
      Mutex.unlock t.lock;
      let result = try Ok (t.file.Io.fsync ()) with exn -> Error exn in
      Mutex.lock t.lock;
      (* Reset + broadcast even on failure, or every waiting appender
         blocks forever on a leader that will never report back. *)
      t.syncing <- false;
      (match result with
      | Ok () -> t.synced <- max t.synced barrier
      | Error _ -> t.failed <- true);
      Condition.broadcast t.cond;
      match result with
      | Ok () -> await_immediate t ticket
      | Error exn ->
        Mutex.unlock t.lock;
        raise exn
    end
  end

(* Group commit, staged (commit-window) flavour: records accumulate in
   [t.pending] and the leader drains the whole buffer as one combined
   [write] followed by one fsync — a crash can tear only the tail of
   that single write, so recovery still sees a clean prefix of whole
   records plus at most one partial batch, all of it unacknowledged.

   The adaptive part: a leader that sees other appenders in flight
   dallies for the commit window before draining, letting their records
   join its batch; an uncontended leader (or one already past the byte
   budget) drains immediately, so a single client never pays the window
   as latency.  Caller holds the lock with [t.waiters] counting it;
   returns with the lock held and the count dropped (ditto on raise). *)
let rec await_windowed t ticket =
  if t.synced >= ticket then t.waiters <- t.waiters - 1
  else if t.failed then begin
    t.waiters <- t.waiters - 1;
    Mutex.unlock t.lock;
    raise Poisoned
  end
  else if t.syncing then begin
    Condition.wait t.cond t.lock;
    await_windowed t ticket
  end
  else begin
    t.syncing <- true;
    if t.waiters > 1 && Buffer.length t.pending < t.window_bytes then begin
      Mutex.unlock t.lock;
      Thread.delay t.window;
      Mutex.lock t.lock
    end;
    let batch = Buffer.to_bytes t.pending in
    let nrec = t.pending_records in
    Buffer.clear t.pending;
    t.pending_records <- 0;
    let barrier = t.staged in
    Mutex.unlock t.lock;
    let result =
      try
        write_all t.file batch 0 (Bytes.length batch);
        t.file.Io.fsync ();
        Ok ()
      with exn -> Error exn
    in
    Mutex.lock t.lock;
    t.syncing <- false;
    (match result with
    | Ok () ->
      t.written <- barrier;
      t.synced <- max t.synced barrier;
      if nrec > 0 then note_batch t nrec
    | Error _ -> t.failed <- true);
    Condition.broadcast t.cond;
    match result with
    | Ok () -> await_windowed t ticket
    | Error exn ->
      t.waiters <- t.waiters - 1;
      Mutex.unlock t.lock;
      raise exn
  end

(* Caller holds the lock.  Stage one record into [t.pending]. *)
let stage t payload =
  let total = record_into t payload in
  Buffer.add_subbytes t.pending t.scratch 0 total;
  t.staged <- t.staged + total;
  t.pending_records <- t.pending_records + 1

(* Caller holds the lock.  Write one record straight to the file,
   poisoning on failure (the lock is released before re-raising). *)
let write_immediate t payload =
  let total = record_into t payload in
  (match write_all t.file t.scratch 0 total with
  | () -> ()
  | exception exn ->
    t.failed <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    raise exn);
  t.written <- t.written + total;
  t.staged <- t.written

let check_open t ~op =
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg (op ^ ": closed")
  end;
  if t.failed then begin
    Mutex.unlock t.lock;
    raise Poisoned
  end

let append t payload =
  Mutex.lock t.lock;
  check_open t ~op:"Journal.append";
  if windowed t then begin
    stage t payload;
    let ticket = t.staged in
    t.waiters <- t.waiters + 1;
    await_windowed t ticket;
    Mutex.unlock t.lock
  end
  else begin
    write_immediate t payload;
    let ticket = t.written in
    if t.fsync then await_immediate t ticket;
    Mutex.unlock t.lock
  end

(* Append a batch under one barrier: all records become durable together
   and the call returns after a single fsync covers the lot.  Even
   without a commit window the records go down as one combined [write],
   so the torn-tail story is the same as a windowed batch — this is what
   a replication standby uses to apply a [Repl_batch] atomically. *)
let append_many t payloads =
  match payloads with
  | [] -> ()
  | payloads ->
    Mutex.lock t.lock;
    check_open t ~op:"Journal.append_many";
    if windowed t then begin
      List.iter (stage t) payloads;
      let ticket = t.staged in
      t.waiters <- t.waiters + 1;
      await_windowed t ticket;
      Mutex.unlock t.lock
    end
    else begin
      let buf = Buffer.create 1024 in
      List.iter
        (fun p ->
          let total = record_into t p in
          Buffer.add_subbytes buf t.scratch 0 total)
        payloads;
      let batch = Buffer.to_bytes buf in
      (match write_all t.file batch 0 (Bytes.length batch) with
      | () -> ()
      | exception exn ->
        t.failed <- true;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        raise exn);
      t.written <- t.written + Bytes.length batch;
      t.staged <- t.written;
      note_batch t (List.length payloads);
      if t.fsync then await_immediate t t.written;
      Mutex.unlock t.lock
    end

(* Caller holds the lock with no leader in flight.  Push any staged
   records to the file (one combined write); poisons on failure. *)
let flush_pending_locked t =
  if Buffer.length t.pending > 0 then begin
    let batch = Buffer.to_bytes t.pending in
    let nrec = t.pending_records in
    Buffer.clear t.pending;
    t.pending_records <- 0;
    match write_all t.file batch 0 (Bytes.length batch) with
    | () ->
      t.written <- t.written + Bytes.length batch;
      if nrec > 0 then note_batch t nrec
    | exception exn ->
      t.failed <- true;
      Condition.broadcast t.cond;
      raise exn
  end

let sync t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      while t.syncing do
        Condition.wait t.cond t.lock
      done;
      if t.failed then raise Poisoned;
      if not t.closed then begin
        flush_pending_locked t;
        let barrier = t.written in
        if t.synced < barrier then begin
          (match t.file.Io.fsync () with
          | () -> ()
          | exception exn ->
            t.failed <- true;
            raise exn);
          t.synced <- max t.synced barrier
        end
      end)

let failed t =
  Mutex.lock t.lock;
  let f = t.failed in
  Mutex.unlock t.lock;
  f

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    while t.syncing do
      Condition.wait t.cond t.lock
    done;
    t.closed <- true;
    if not t.failed then
      (try flush_pending_locked t with _ -> t.failed <- true);
    if t.fsync && not t.failed then
      (try t.file.Io.fsync () with _ -> t.failed <- true);
    (try t.file.Io.close () with _ -> ())
  end;
  Mutex.unlock t.lock

type tail = Complete | Truncated of { offset : int; bytes : int }

(* Is there a complete, CRC-valid record starting at [q]?  Used to tell
   a torn tail from a corrupted length field: a torn append is by
   construction the final write, so any valid record *after* the suspect
   one proves the log was damaged in place, not truncated. *)
let valid_record_at data size q =
  q + record_header_size <= size
  && String.sub data q 4 = record_magic
  && data.[q + 4] = record_version
  &&
  let buf = Bytes.unsafe_of_string data in
  let plen = get_le32 buf (q + 5) in
  let crc = get_le32 buf (q + 9) in
  plen >= 0
  && q + record_header_size + plen <= size
  && Int32.to_int (Int32.logand (Crc32.digest_string (String.sub data (q + record_header_size) plen)) 0xffffffffl)
     land 0xffffffff
     = crc

let record_follows data size pos =
  let rec go q =
    q + record_header_size <= size
    && (valid_record_at data size q || go (q + 1))
  in
  go (pos + 1)

let scan ?(io = Io.real) path =
  match io.Io.read_file path with
  | Error msg -> Error (`Corrupt (0, msg))
  | Ok data ->
    let size = String.length data in
    if size < header_size then
      (* A crash during [create] can leave a partial file header: torn,
         and necessarily empty of acknowledged records. *)
      Ok ([], Truncated { offset = 0; bytes = size })
    else if String.sub data 0 header_size <> file_magic then
      Error (`Corrupt (0, "bad or missing journal file magic"))
    else begin
      let buf = Bytes.unsafe_of_string data in
      let rec go pos acc =
        if pos = size then Ok (List.rev acc, Complete)
        else if size - pos < record_header_size then
          Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
        else if
          String.sub data pos 4 <> record_magic
          || data.[pos + 4] <> record_version
        then
          Error
            (`Corrupt
               (pos, "bad record magic/version (file overwritten or shifted?)"))
        else begin
          let plen = get_le32 buf (pos + 5) in
          let crc = get_le32 buf (pos + 9) in
          if plen < 0 || pos + record_header_size + plen > size then
            (* The length field points past EOF: a torn payload — unless
               a valid record follows, in which case the length itself is
               corrupt and cutting here would drop acknowledged history. *)
            if record_follows data size pos then
              Error
                (`Corrupt
                   ( pos,
                     Printf.sprintf
                       "record length %d runs past EOF but valid records follow — corrupt length field, refusing to drop %d bytes"
                       plen (size - pos) ))
            else Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
          else begin
            let payload = String.sub data (pos + record_header_size) plen in
            let actual =
              Int32.to_int
                (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
              land 0xffffffff
            in
            let next = pos + record_header_size + plen in
            if actual <> crc then
              if next = size && not (record_follows data size pos) then
                (* Full-length final record with a bad CRC: the header
                   block hit the disk but the payload did not — torn.
                   The [record_follows] guard catches the one alias: a
                   mid-log length field mutated to swallow every later
                   record exactly up to EOF would otherwise masquerade
                   as a torn tail and silently drop acknowledged
                   history. *)
                Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
              else
                Error
                  (`Corrupt
                     ( pos,
                       Printf.sprintf "payload CRC mismatch (stored %08x, computed %08x)"
                         crc actual ))
            else go next ((pos, payload) :: acc)
          end
        end
      in
      go header_size []
    end

let truncate ?(io = Io.real) path offset = io.Io.truncate path offset

(* ------------------------------------------------------------------ *)
(* Stand-alone record codec + tailing — the replication stream ships
   journal records as the exact bytes the format defines, so a standby
   can append what it receives and end up with a byte-compatible
   journal. *)

let crc_of payload =
  Int32.to_int (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
  land 0xffffffff

let encode_record payload =
  let plen = String.length payload in
  let buf = Bytes.create (record_header_size + plen) in
  Bytes.blit_string record_magic 0 buf 0 4;
  Bytes.set buf 4 record_version;
  put_le32 buf 5 plen;
  put_le32 buf 9 (crc_of payload);
  Bytes.blit_string payload 0 buf record_header_size plen;
  Bytes.unsafe_to_string buf

let decode_record s =
  let size = String.length s in
  if size < record_header_size then Error "short record"
  else if String.sub s 0 4 <> record_magic then Error "bad record magic"
  else if s.[4] <> record_version then Error "bad record version"
  else
    let buf = Bytes.unsafe_of_string s in
    let plen = get_le32 buf 5 in
    let crc = get_le32 buf 9 in
    if plen < 0 || record_header_size + plen <> size then
      Error
        (Printf.sprintf "record length %d does not match %d payload bytes" plen
           (size - record_header_size))
    else
      let payload = String.sub s record_header_size plen in
      if crc_of payload <> crc then Error "payload CRC mismatch"
      else Ok payload

let tail ?(io = Io.real) path ~from_offset =
  match scan ~io path with
  | Error (`Corrupt (off, reason)) ->
    Error (Printf.sprintf "corrupt journal at byte %d: %s" off reason)
  | Ok (records, _torn) ->
    (* A torn tail is simply the end of the durable prefix: the next
       [tail] call from the same offset will pick up whatever a repaired
       append adds. *)
    let keep = List.filter (fun (off, _) -> off >= from_offset) records in
    let end_offset =
      List.fold_left
        (fun acc (off, payload) ->
          max acc (off + record_header_size + String.length payload))
        (max from_offset header_size)
        records
    in
    Ok (keep, end_offset)
