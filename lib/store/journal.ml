let file_magic = "JIMWAL01"
let header_size = String.length file_magic
let record_magic = "JREC"
let record_version = '\001'
let record_header_size = 4 + 1 + 4 + 4

type t = {
  file : Io.file;
  fsync : bool;
  lock : Mutex.t;
  cond : Condition.t;
  mutable written : int;  (* bytes handed to [write] so far *)
  mutable synced : int;  (* bytes known covered by an fsync *)
  mutable syncing : bool;  (* a leader's fsync is in flight *)
  mutable failed : bool;  (* poisoned by a write/fsync failure *)
  mutable closed : bool;
  mutable scratch : Bytes.t;
      (* record assembly buffer, reused across appends; only touched
         under [lock] and only before the bytes reach [write], so a
         leader releasing the lock for its fsync cannot race it *)
}

exception Poisoned

let () =
  Printexc.register_printer (function
    | Poisoned ->
      Some
        "Jim_store.Journal.Poisoned (appends refused after an earlier \
         write/fsync failure)"
    | _ -> None)

let put_le32 buf off v =
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_le32 buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let write_all (file : Io.file) buf off len =
  let stop = off + len in
  let rec go off = if off < stop then go (off + file.Io.write buf off (stop - off)) in
  go off

let of_file ~fsync ~written file =
  {
    file;
    fsync;
    lock = Mutex.create ();
    cond = Condition.create ();
    written;
    synced = written;
    syncing = false;
    failed = false;
    closed = false;
    scratch = Bytes.create 512;
  }

let create ?(fsync = true) ?(io = Io.real) path =
  let file = io.Io.create path in
  write_all file (Bytes.of_string file_magic) 0 header_size;
  if fsync then file.Io.fsync ();
  of_file ~fsync ~written:header_size file

let open_append ?(fsync = true) ?(io = Io.real) path =
  (* Validate the header before taking an append handle; [Recovery.load]
     has normally just scanned the file, so this re-read is cheap and
     only happens at startup. *)
  match io.Io.read_file path with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok data ->
    if String.length data < header_size then
      Error (Printf.sprintf "%s: too short for a journal file header" path)
    else if String.sub data 0 header_size <> file_magic then
      Error (Printf.sprintf "%s: bad journal file magic" path)
    else (
      match io.Io.open_append path with
      | Error m -> Error (Printf.sprintf "%s: %s" path m)
      | Ok (file, size) -> Ok (of_file ~fsync ~written:size file))

(* Assemble the record into [t.scratch] (growing it if the payload needs
   more room); returns the record's total length.  Caller holds the
   lock. *)
let record_into t payload =
  let plen = String.length payload in
  let total = record_header_size + plen in
  if Bytes.length t.scratch < total then
    t.scratch <- Bytes.create (max total (2 * Bytes.length t.scratch));
  let buf = t.scratch in
  Bytes.blit_string record_magic 0 buf 0 4;
  Bytes.set buf 4 record_version;
  put_le32 buf 5 plen;
  put_le32 buf 9
    (Int32.to_int
       (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
    land 0xffffffff);
  Bytes.blit_string payload 0 buf record_header_size plen;
  total

(* Group commit: write under the lock, then wait until some leader's
   fsync barrier covers our bytes.  The first waiter whose bytes are not
   yet durable becomes the leader, releases the lock for the (slow)
   fsync, and broadcasts the new high-water mark; appenders that wrote
   while the leader was syncing ride the next round.

   Poisoning: a failed or short write can leave a partial record
   mid-file, and a failed fsync leaves the kernel free to have dropped
   dirty pages we can no longer re-sync (the PostgreSQL "fsyncgate"
   lesson: retrying fsync after a failure is not safe).  Either way the
   only safe continuation is none at all — the journal flips to [failed]
   and every later append raises {!Poisoned}, so the damage stays
   confined to the (unacknowledged) tail where recovery can cut it,
   instead of becoming mid-log corruption under acknowledged records. *)
let append t payload =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Journal.append: closed"
  end;
  if t.failed then begin
    Mutex.unlock t.lock;
    raise Poisoned
  end;
  let total = record_into t payload in
  (match write_all t.file t.scratch 0 total with
  | () -> ()
  | exception exn ->
    t.failed <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    raise exn);
  t.written <- t.written + total;
  let ticket = t.written in
  if not t.fsync then Mutex.unlock t.lock
  else begin
    while t.synced < ticket do
      if t.failed then begin
        Mutex.unlock t.lock;
        raise Poisoned
      end;
      if t.syncing then Condition.wait t.cond t.lock
      else begin
        t.syncing <- true;
        let barrier = t.written in
        Mutex.unlock t.lock;
        let result = try Ok (t.file.Io.fsync ()) with exn -> Error exn in
        Mutex.lock t.lock;
        (* Reset + broadcast even on failure, or every waiting appender
           blocks forever on a leader that will never report back. *)
        t.syncing <- false;
        (match result with
        | Ok () -> t.synced <- max t.synced barrier
        | Error _ -> t.failed <- true);
        Condition.broadcast t.cond;
        match result with
        | Ok () -> ()
        | Error exn ->
          Mutex.unlock t.lock;
          raise exn
      end
    done;
    Mutex.unlock t.lock
  end

let sync t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.failed then raise Poisoned;
      if not t.closed then begin
        let barrier = t.written in
        if t.synced < barrier then begin
          (match t.file.Io.fsync () with
          | () -> ()
          | exception exn ->
            t.failed <- true;
            raise exn);
          t.synced <- max t.synced barrier
        end
      end)

let failed t =
  Mutex.lock t.lock;
  let f = t.failed in
  Mutex.unlock t.lock;
  f

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    if t.fsync && not t.failed then
      (try t.file.Io.fsync () with _ -> t.failed <- true);
    (try t.file.Io.close () with _ -> ())
  end;
  Mutex.unlock t.lock

type tail = Complete | Truncated of { offset : int; bytes : int }

(* Is there a complete, CRC-valid record starting at [q]?  Used to tell
   a torn tail from a corrupted length field: a torn append is by
   construction the final write, so any valid record *after* the suspect
   one proves the log was damaged in place, not truncated. *)
let valid_record_at data size q =
  q + record_header_size <= size
  && String.sub data q 4 = record_magic
  && data.[q + 4] = record_version
  &&
  let buf = Bytes.unsafe_of_string data in
  let plen = get_le32 buf (q + 5) in
  let crc = get_le32 buf (q + 9) in
  plen >= 0
  && q + record_header_size + plen <= size
  && Int32.to_int (Int32.logand (Crc32.digest_string (String.sub data (q + record_header_size) plen)) 0xffffffffl)
     land 0xffffffff
     = crc

let record_follows data size pos =
  let rec go q =
    q + record_header_size <= size
    && (valid_record_at data size q || go (q + 1))
  in
  go (pos + 1)

let scan ?(io = Io.real) path =
  match io.Io.read_file path with
  | Error msg -> Error (`Corrupt (0, msg))
  | Ok data ->
    let size = String.length data in
    if size < header_size then
      (* A crash during [create] can leave a partial file header: torn,
         and necessarily empty of acknowledged records. *)
      Ok ([], Truncated { offset = 0; bytes = size })
    else if String.sub data 0 header_size <> file_magic then
      Error (`Corrupt (0, "bad or missing journal file magic"))
    else begin
      let buf = Bytes.unsafe_of_string data in
      let rec go pos acc =
        if pos = size then Ok (List.rev acc, Complete)
        else if size - pos < record_header_size then
          Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
        else if
          String.sub data pos 4 <> record_magic
          || data.[pos + 4] <> record_version
        then
          Error
            (`Corrupt
               (pos, "bad record magic/version (file overwritten or shifted?)"))
        else begin
          let plen = get_le32 buf (pos + 5) in
          let crc = get_le32 buf (pos + 9) in
          if plen < 0 || pos + record_header_size + plen > size then
            (* The length field points past EOF: a torn payload — unless
               a valid record follows, in which case the length itself is
               corrupt and cutting here would drop acknowledged history. *)
            if record_follows data size pos then
              Error
                (`Corrupt
                   ( pos,
                     Printf.sprintf
                       "record length %d runs past EOF but valid records follow — corrupt length field, refusing to drop %d bytes"
                       plen (size - pos) ))
            else Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
          else begin
            let payload = String.sub data (pos + record_header_size) plen in
            let actual =
              Int32.to_int
                (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
              land 0xffffffff
            in
            let next = pos + record_header_size + plen in
            if actual <> crc then
              if next = size && not (record_follows data size pos) then
                (* Full-length final record with a bad CRC: the header
                   block hit the disk but the payload did not — torn.
                   The [record_follows] guard catches the one alias: a
                   mid-log length field mutated to swallow every later
                   record exactly up to EOF would otherwise masquerade
                   as a torn tail and silently drop acknowledged
                   history. *)
                Ok (List.rev acc, Truncated { offset = pos; bytes = size - pos })
              else
                Error
                  (`Corrupt
                     ( pos,
                       Printf.sprintf "payload CRC mismatch (stored %08x, computed %08x)"
                         crc actual ))
            else go next ((pos, payload) :: acc)
          end
        end
      in
      go header_size []
    end

let truncate ?(io = Io.real) path offset = io.Io.truncate path offset

(* ------------------------------------------------------------------ *)
(* Stand-alone record codec + tailing — the replication stream ships
   journal records as the exact bytes the format defines, so a standby
   can append what it receives and end up with a byte-compatible
   journal. *)

let crc_of payload =
  Int32.to_int (Int32.logand (Crc32.digest_string payload) 0xffffffffl)
  land 0xffffffff

let encode_record payload =
  let plen = String.length payload in
  let buf = Bytes.create (record_header_size + plen) in
  Bytes.blit_string record_magic 0 buf 0 4;
  Bytes.set buf 4 record_version;
  put_le32 buf 5 plen;
  put_le32 buf 9 (crc_of payload);
  Bytes.blit_string payload 0 buf record_header_size plen;
  Bytes.unsafe_to_string buf

let decode_record s =
  let size = String.length s in
  if size < record_header_size then Error "short record"
  else if String.sub s 0 4 <> record_magic then Error "bad record magic"
  else if s.[4] <> record_version then Error "bad record version"
  else
    let buf = Bytes.unsafe_of_string s in
    let plen = get_le32 buf 5 in
    let crc = get_le32 buf 9 in
    if plen < 0 || record_header_size + plen <> size then
      Error
        (Printf.sprintf "record length %d does not match %d payload bytes" plen
           (size - record_header_size))
    else
      let payload = String.sub s record_header_size plen in
      if crc_of payload <> crc then Error "payload CRC mismatch"
      else Ok payload

let tail ?(io = Io.real) path ~from_offset =
  match scan ~io path with
  | Error (`Corrupt (off, reason)) ->
    Error (Printf.sprintf "corrupt journal at byte %d: %s" off reason)
  | Ok (records, _torn) ->
    (* A torn tail is simply the end of the durable prefix: the next
       [tail] call from the same offset will pick up whatever a repaired
       append adds. *)
    let keep = List.filter (fun (off, _) -> off >= from_offset) records in
    let end_offset =
      List.fold_left
        (fun acc (off, payload) ->
          max acc (off + record_header_size + String.length payload))
        (max from_offset header_size)
        records
    in
    Ok (keep, end_offset)
