(** The durable session store: the runtime handle a server threads its
    {!Event}s through.

    The store keeps a lightweight {e shadow} of every live session
    (source, strategy, seed, surviving labels) rebuilt from the same
    events it journals, so checkpoints never need to consult the engine:
    every [snapshot_every] records it compacts the shadow into a
    {!Snapshot}, starts a fresh journal generation and deletes the old
    files.

    Concurrency: {!record} is thread-safe.  Shadow updates take a short
    store lock; the journal append itself runs outside it and
    group-commits (see {!Journal}), so concurrent sessions share fsync
    barriers.  A checkpoint briefly quiesces appends (records arriving
    mid-checkpoint wait; they are covered by the snapshot being written
    either way). *)

type t

val open_dir :
  ?fsync:bool ->
  ?commit_window:float ->
  ?snapshot_every:int ->
  ?io:Io.t ->
  string ->
  (t * Recovery.t, string) result
(** Open (creating the directory if needed) and recover: load the latest
    snapshot generation, scan the journal tail — cutting a torn final
    record, halting on mid-log corruption — sweep stale generations, and
    reopen the journal for appending.  Returns the handle plus the
    recovered state for {!Jim_server.Service.restore}.

    [fsync] (default [true]): turn off the durability barrier (benchmarks
    and tests only — acknowledged answers can then be lost to a crash).
    [commit_window] (seconds, default [0.]): adaptive group-commit
    window — a journal fsync leader under contention dallies up to this
    long so queued records join its combined append (see
    {!Journal.create}); [0.] keeps per-record writes.  Raises
    [Invalid_argument] if negative.  [snapshot_every] (default 1024):
    journal records between automatic checkpoints.  [io] (default
    {!Io.real}): the filesystem the store runs against — a fault
    filesystem in tests. *)

val record : t -> Event.t -> unit
(** Journal one event; returns once it is durable.  May raise
    [Unix.Unix_error] if the disk fails — the caller's reply turns into a
    typed internal error, and the in-memory session is then ahead of the
    log (documented, unrecovered). *)

val checkpoint : t -> unit
(** Force a snapshot + journal rotation now (tests, graceful shutdown). *)

val close : t -> unit

val dir : t -> string

val io : t -> Io.t
(** The I/O seam the store runs against — the replication sender reads
    the current snapshot/journal files through it when a standby
    attaches. *)

val generation : t -> int

val record_count : t -> int
(** Records appended to the current journal generation (resets on
    checkpoint). *)

val commit_stats : t -> Journal.batch_stats
(** Group-commit batch distribution of the current journal generation
    (see {!Journal.batch_stats}); resets when a checkpoint rotates the
    journal. *)

val canonical_csv : Jim_relational.Relation.t -> string
(** The instance's canonical CSV rendering — schema header (names then
    type names) plus every tuple, order-sensitive.  The catalog keys
    entries by its fingerprint and accounts their size in its bytes. *)

val fingerprint_of_csv : string -> string
(** CRC-32 (hex) of an already-rendered canonical CSV — lets a caller
    that needs both the rendering and the fingerprint (the catalog)
    render once. *)

val fingerprint : Jim_relational.Relation.t -> string
(** [fingerprint_of_csv (canonical_csv rel)].  Journaled at session
    start; {!Jim_server.Service.restore} resolves the journaled source
    through the catalog and refuses to replay onto a drifted instance.
    Also the key of the server-wide instance catalog ([Jim_catalog]). *)
