type file = {
  write : bytes -> int -> int -> int;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  create : string -> file;
  open_append : string -> (file * int, string) result;
  read_file : string -> (string, string) result;
  truncate : string -> int -> (unit, string) result;
  rename : string -> string -> unit;
  exists : string -> bool;
  readdir : string -> string array;
  remove : string -> unit;
  mkdir_p : string -> unit;
  fsync_dir : string -> unit;
}

let of_fd fd =
  {
    write = (fun buf off len -> Unix.write fd buf off len);
    fsync = (fun () -> Unix.fsync fd);
    close = (fun () -> Unix.close fd);
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* best effort; not all FSes allow it *)
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let real =
  {
    create =
      (fun path ->
        of_fd (Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644));
    open_append =
      (fun path ->
        match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
        | fd ->
          let size = (Unix.fstat fd).Unix.st_size in
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          Ok (of_fd fd, size));
    read_file =
      (fun path ->
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | data -> Ok data
        | exception Sys_error msg -> Error msg);
    truncate =
      (fun path offset ->
        match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
        | fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match
                Unix.ftruncate fd offset;
                Unix.fsync fd
              with
              | () -> Ok ()
              | exception Unix.Unix_error (e, _, _) ->
                Error
                  (Printf.sprintf "%s: %s" path (Unix.error_message e))));
    rename = Unix.rename;
    exists = Sys.file_exists;
    readdir =
      (fun dir ->
        match Sys.readdir dir with
        | entries -> entries
        | exception Sys_error _ -> [||]);
    remove = (fun path -> try Sys.remove path with Sys_error _ -> ());
    mkdir_p;
    fsync_dir;
  }
