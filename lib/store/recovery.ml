module P = Jim_api.Protocol
module Transcript = Jim_core.Transcript

type step =
  | Label of {
      cls : int option;
      sg : Jim_partition.Partition.t;
      label : Jim_core.State.label;
    }
  | Undo

type session = {
  id : int;
  arity : int;
  source : P.instance_source;
  strategy : string;
  seed : int;
  fingerprint : string;
  steps : step list;
}

type t = {
  generation : int;
  next_id : int;
  sessions : session list;
  journal_path : string;
  journal_records : int;
  torn : (int * int) option;
}

(* The session's surviving labels as a snapshot entry: fold the steps
   (labels push, undos pop), exactly how the live shadow maintains its
   transcript. *)
let snapshot_session (s : session) =
  let entries_rev =
    List.fold_left
      (fun acc step ->
        match step with
        | Label { sg; label; _ } -> { Transcript.sg; label } :: acc
        | Undo -> ( match acc with [] -> [] | _ :: tl -> tl))
      [] s.steps
  in
  {
    Snapshot.id = s.id;
    source = s.source;
    strategy = s.strategy;
    seed = s.seed;
    fingerprint = s.fingerprint;
    transcript =
      {
        Transcript.arity = s.arity;
        entries = List.rev entries_rev;
        result = None;
      };
  }

let snapshot_path dir g = Filename.concat dir (Printf.sprintf "snapshot.%d" g)

let journal_path dir g =
  Filename.concat dir (Printf.sprintf "journal.%d.wal" g)

(* Parse "snapshot.<g>" / "journal.<g>.wal" names; anything else in the
   directory is not ours and is left alone. *)
let generations ?(io = Io.real) dir =
  let snaps = ref [] and journals = ref [] in
  Array.iter
    (fun name ->
      match String.split_on_char '.' name with
      | [ "snapshot"; g ] ->
        Option.iter (fun g -> snaps := g :: !snaps) (int_of_string_opt g)
      | [ "journal"; g; "wal" ] ->
        Option.iter (fun g -> journals := g :: !journals) (int_of_string_opt g)
      | _ -> ())
    (io.Io.readdir dir);
  (List.sort compare !snaps, List.sort compare !journals)

let ( let* ) = Result.bind

(* Chronological mutable builder for the fold over the journal tail. *)
type building = {
  b_id : int;
  b_arity : int;
  b_source : P.instance_source;
  b_strategy : string;
  b_seed : int;
  b_fingerprint : string;
  mutable b_steps_rev : step list;
}

let apply_events base_sessions ~next_id ~file events =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.b_id b) base_sessions;
  (* Sessions removed by an Ended event.  A racy writer can journal an
     answer/undo (or a second Ended) after Ended for the same session;
     Store.apply_shadow drops such events, so replay must too — only
     events for sessions that were *never* known are integrity errors. *)
  let ended = Hashtbl.create 8 in
  let next_id = ref next_id in
  let err offset fmt =
    Printf.ksprintf
      (fun m ->
        Error
          (Printf.sprintf "%s: inconsistent event at byte offset %d: %s" file
             offset m))
      fmt
  in
  let rec go = function
    | [] -> Ok ()
    | (offset, ev) :: rest -> (
      match ev with
      | Event.Started { session; arity; source; strategy; seed; fingerprint }
        ->
        if Hashtbl.mem tbl session then
          err offset "session %d started twice" session
        else begin
          Hashtbl.replace tbl session
            {
              b_id = session;
              b_arity = arity;
              b_source = source;
              b_strategy = strategy;
              b_seed = seed;
              b_fingerprint = fingerprint;
              b_steps_rev = [];
            };
          next_id := max !next_id (session + 1);
          go rest
        end
      | Event.Answered { session; cls; sg; label } -> (
        match Hashtbl.find_opt tbl session with
        | None ->
          if Hashtbl.mem ended session then go rest
          else err offset "answer for unknown session %d" session
        | Some b ->
          b.b_steps_rev <- Label { cls = Some cls; sg; label } :: b.b_steps_rev;
          go rest)
      | Event.Undone { session } -> (
        match Hashtbl.find_opt tbl session with
        | None ->
          if Hashtbl.mem ended session then go rest
          else err offset "undo for unknown session %d" session
        | Some b ->
          b.b_steps_rev <- Undo :: b.b_steps_rev;
          go rest)
      | Event.Ended { session } ->
        if Hashtbl.mem tbl session then begin
          Hashtbl.remove tbl session;
          Hashtbl.replace ended session ();
          go rest
        end
        else if Hashtbl.mem ended session then go rest
        else err offset "end for unknown session %d" session)
  in
  let* () = go events in
  let sessions =
    Hashtbl.fold
      (fun _ b acc ->
        {
          id = b.b_id;
          arity = b.b_arity;
          source = b.b_source;
          strategy = b.b_strategy;
          seed = b.b_seed;
          fingerprint = b.b_fingerprint;
          steps = List.rev b.b_steps_rev;
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  Ok (sessions, !next_id)

let load ?(io = Io.real) dir =
  let snaps, journals = generations ~io dir in
  let generation =
    match (List.rev snaps, journals) with
    | g :: _, _ -> g  (* highest complete snapshot wins *)
    | [], g :: _ ->
      (* No snapshot anywhere: only the *lowest* journal can be a live
         baseline.  A journal above it without its snapshot is the
         orphan of a checkpoint that failed between creating the new
         journal and removing it again — anchoring there would discard
         (and then sweep) every acknowledged record below. *)
      g
    | [], [] -> 0
  in
  let* base, next_id =
    if List.mem generation snaps then
      let* snap = Snapshot.load ~io (snapshot_path dir generation) in
      Ok
        ( List.map
            (fun (s : Snapshot.session) ->
              {
                b_id = s.Snapshot.id;
                b_arity = s.transcript.Transcript.arity;
                b_source = s.source;
                b_strategy = s.strategy;
                b_seed = s.seed;
                b_fingerprint = s.fingerprint;
                b_steps_rev =
                  List.rev_map
                    (fun (e : Transcript.entry) ->
                      Label { cls = None; sg = e.sg; label = e.label })
                    s.transcript.Transcript.entries;
              })
            snap.Snapshot.sessions,
          snap.Snapshot.next_id )
    else Ok ([], 1)
  in
  let jpath = journal_path dir generation in
  let* records, torn =
    if io.Io.exists jpath then
      match Journal.scan ~io jpath with
      | Ok (records, Journal.Complete) -> Ok (records, None)
      | Ok (records, Journal.Truncated { offset; bytes }) ->
        Ok (records, Some (offset, bytes))
      | Error (`Corrupt (offset, reason)) ->
        Error
          (Printf.sprintf "%s: corrupt record at byte offset %d: %s" jpath
             offset reason)
    else Ok ([], None)
  in
  let* events =
    List.fold_left
      (fun acc (offset, payload) ->
        let* acc = acc in
        match Event.of_string payload with
        | Ok ev -> Ok ((offset, ev) :: acc)
        | Error m ->
          Error
            (Printf.sprintf "%s: undecodable event at byte offset %d: %s" jpath
               offset m))
      (Ok []) records
  in
  let events = List.rev events in
  let* sessions, next_id =
    apply_events base ~next_id ~file:jpath events
  in
  Ok
    {
      generation;
      next_id;
      sessions;
      journal_path = jpath;
      journal_records = List.length records;
      torn;
    }
