(** The store's pluggable I/O seam.

    Every byte {!Journal}, {!Snapshot}, {!Store} and {!Recovery} move to
    or from disk goes through a record of closures, so tests can swap the
    real filesystem for a deterministic in-memory one (see [Jim_fault])
    that injects short writes, failed fsyncs, ENOSPC and power cuts at
    exact write boundaries.  Production code never notices: every entry
    point defaults to {!real}, which is a thin passthrough to [Unix].

    Error convention: injected and real failures alike surface as
    [Unix.Unix_error] (or the documented [result]), so the store's
    existing error handling works unchanged against a fault filesystem. *)

type file = {
  write : bytes -> int -> int -> int;
      (** [write buf off len] appends up to [len] bytes at the handle's
          position and returns how many were accepted — callers must
          loop, which is exactly what makes short writes injectable. *)
  fsync : unit -> unit;
  close : unit -> unit;
}
(** An open, append-positioned file handle. *)

type t = {
  create : string -> file;  (** open for write, truncating; may raise *)
  open_append : string -> (file * int, string) result;
      (** open an existing file positioned at EOF; returns its size *)
  read_file : string -> (string, string) result;
      (** whole-file read (journal scans, snapshot loads) *)
  truncate : string -> int -> (unit, string) result;
      (** cut the file at a byte offset and fsync it *)
  rename : string -> string -> unit;  (** atomic replace; may raise *)
  exists : string -> bool;
  readdir : string -> string array;  (** [||] if unreadable *)
  remove : string -> unit;  (** best effort *)
  mkdir_p : string -> unit;
  fsync_dir : string -> unit;  (** best effort *)
}
(** The filesystem surface the store consumes. *)

val real : t
(** The passthrough implementation backed by [Unix] — the default for
    every [?io] parameter in this library. *)
