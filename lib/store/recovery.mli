(** Crash recovery: turn a data directory back into replayable session
    state.

    {1 Directory layout}

    {v
    DIR/snapshot.<g>        generation-g snapshot (absent for g = 0)
    DIR/journal.<g>.wal     the journal whose baseline is snapshot g
    v}

    The store checkpoints by writing [snapshot.(g+1)] atomically, then
    creating a fresh [journal.(g+1).wal], then deleting the generation-g
    files — so after a crash the directory holds the highest generation
    with a complete snapshot plus at most some stale lower-generation
    files (which {!Store.open_dir} sweeps).

    {!load} is read-only (it reports a torn tail but does not cut it):
    it backs [jim journal inspect]/[verify] as well as {!Store.open_dir},
    which is the one caller that truncates. *)

type step =
  | Label of {
      cls : int option;
          (** class index when the event came from the journal; [None]
              for snapshot entries (recovery re-derives it from [sg]) *)
      sg : Jim_partition.Partition.t;
      label : Jim_core.State.label;
    }
  | Undo

type session = {
  id : int;
  arity : int;
  source : Jim_api.Protocol.instance_source;
  strategy : string;
  seed : int;
  fingerprint : string;
  steps : step list;  (** chronological: snapshot labels, then the tail *)
}

type t = {
  generation : int;
  next_id : int;  (** strictly greater than every id ever issued *)
  sessions : session list;  (** ascending id; ended sessions are gone *)
  journal_path : string;  (** the live journal (may not exist on disk) *)
  journal_records : int;  (** complete records replayed from the tail *)
  torn : (int * int) option;
      (** [(offset, bytes)] of a torn final record to cut, if any *)
}

val snapshot_session : session -> Snapshot.session
(** The session's surviving labels (steps folded: labels push, undos
    pop) as a snapshot entry — how {!Store.open_dir} seeds its
    {!Shadow} from recovered state. *)

val snapshot_path : string -> int -> string
(** [snapshot_path dir g] is [DIR/snapshot.<g>]. *)

val journal_path : string -> int -> string
(** [journal_path dir g] is [DIR/journal.<g>.wal]. *)

val load : ?io:Io.t -> string -> (t, string) result
(** Read-only recovery of [dir].  A missing directory or an empty one is
    a valid fresh store (generation 0, no sessions).  Errors: a corrupt
    snapshot, a mid-log CRC/framing failure (the message names the file
    and byte offset), or a journal event that contradicts the state built
    so far.  All reads go through [io] (default {!Io.real}). *)
