module P = Jim_api.Protocol
module Transcript = Jim_core.Transcript

type entry = {
  e_arity : int;
  e_source : P.instance_source;
  e_strategy : string;
  e_seed : int;
  e_fingerprint : string;
  mutable e_entries_rev : Transcript.entry list;
}

type t = { sessions : (int, entry) Hashtbl.t; mutable next_id : int }

let create () = { sessions = Hashtbl.create 16; next_id = 1 }
let next_id t = t.next_id
let session_count t = Hashtbl.length t.sessions

let apply t = function
  | Event.Started { session; arity; source; strategy; seed; fingerprint } ->
    Hashtbl.replace t.sessions session
      {
        e_arity = arity;
        e_source = source;
        e_strategy = strategy;
        e_seed = seed;
        e_fingerprint = fingerprint;
        e_entries_rev = [];
      };
    t.next_id <- max t.next_id (session + 1)
  | Event.Answered { session; sg; label; _ } -> (
    match Hashtbl.find_opt t.sessions session with
    | None -> ()
    | Some s -> s.e_entries_rev <- { Transcript.sg; label } :: s.e_entries_rev)
  | Event.Undone { session } -> (
    match Hashtbl.find_opt t.sessions session with
    | None -> ()
    | Some s -> (
      match s.e_entries_rev with
      | [] -> ()
      | _ :: tl -> s.e_entries_rev <- tl))
  | Event.Ended { session } -> Hashtbl.remove t.sessions session

let seed t ~next_id sessions =
  Hashtbl.reset t.sessions;
  t.next_id <- next_id;
  List.iter
    (fun (s : Snapshot.session) ->
      Hashtbl.replace t.sessions s.Snapshot.id
        {
          e_arity = s.transcript.Transcript.arity;
          e_source = s.source;
          e_strategy = s.strategy;
          e_seed = s.seed;
          e_fingerprint = s.fingerprint;
          e_entries_rev = List.rev s.transcript.Transcript.entries;
        };
      t.next_id <- max t.next_id (s.Snapshot.id + 1))
    sessions

let snapshot t =
  let sessions =
    Hashtbl.fold
      (fun id s acc ->
        {
          Snapshot.id;
          source = s.e_source;
          strategy = s.e_strategy;
          seed = s.e_seed;
          fingerprint = s.e_fingerprint;
          transcript =
            {
              Transcript.arity = s.e_arity;
              entries = List.rev s.e_entries_rev;
              result = None;
            };
        }
        :: acc)
      t.sessions []
    |> List.sort (fun a b -> compare a.Snapshot.id b.Snapshot.id)
  in
  { Snapshot.next_id = t.next_id; sessions }
