(** The write-ahead journal: an append-only, length-prefixed,
    CRC-checked binary log of {!Event} payloads.  Every state-mutating
    protocol event is appended — and fsynced — before the server
    acknowledges it, so a SIGKILL at any instant loses at most the
    unacknowledged suffix.

    {1 On-disk format}

    A journal file is a fixed 8-byte file header followed by zero or more
    records, nothing else:

    {v
    file header   8 bytes   the ASCII magic "JIMWAL01" (name + format
                            version; a future format bumps the trailing
                            digits)

    record        13-byte record header + payload:
      magic       4 bytes   ASCII "JREC"
      version     1 byte    0x01
      length      4 bytes   payload byte count, little-endian unsigned
      crc         4 bytes   CRC-32 (IEEE) of the payload, little-endian
      payload     [length] bytes (one Event.to_string line, no newline)
    v}

    Each record is assembled in memory and appended with a single
    [write] — either alone, or as part of one {e combined append} when a
    commit window is set or {!append_many} batches records (the batch is
    concatenated in memory and handed to [write] once).  Either way a
    crash leaves a clean prefix of whole records plus at most one
    partial write at the tail, and everything a torn write can damage is
    by construction unacknowledged — no {!append} in the batch had
    returned.  {!scan} distinguishes the two failure shapes the
    acceptance criteria name:

    - a {e torn tail} — the file ends inside a record header or payload,
      or the final full-length record fails its CRC (out-of-order block
      writes) — is reported as [Truncated] and safe to cut at the
      reported offset;
    - a {e mid-log corruption} — bad magic/version, a CRC mismatch on a
      record that is {e not} the last, or a length field running past EOF
      while a CRC-valid record still follows it (a torn append is by
      construction the final write, so trailing valid records prove
      in-place damage) — is a hard [`Corrupt] error naming the byte
      offset, because silently dropping acknowledged history is exactly
      what the store exists to prevent.

    {1 Group commit}

    {!append} returns only once the record is durable ([fsync] has
    covered it), but concurrent appenders share fsyncs: the first thread
    to need one becomes the leader and syncs every byte written so far;
    the rest wait on a condition variable and piggyback on the leader's
    barrier.  Under [n] concurrent sessions the hot path pays ~1/n of an
    fsync each.

    With a commit window ([window > 0]), appends are {e staged}: records
    accumulate in memory and the fsync leader drains everything staged —
    including records queued while the previous sync ran — as one
    combined [write] followed by a single fsync.  The window is
    adaptive: a leader that sees other appenders in flight dallies up to
    [window] seconds (or until [window_bytes] are staged) so their
    records join its batch; an uncontended leader drains immediately, so
    a lone client never pays the window as latency.  The durability
    contract is unchanged — {!append} still returns only after the fsync
    that covers its record — and {!batch_stats} reports the batch size
    distribution actually achieved.  Ordering is append order in both
    modes: records reach the file in the order their appends staged
    them, never reordered across a batch boundary.

    {1 Failure poisoning}

    A failed or short [write] can leave a partial record mid-file, and a
    failed [fsync] means dirty pages may already be gone (retrying fsync
    after a failure is unsafe — the PostgreSQL "fsyncgate" lesson).
    Either way the journal flips to a permanent failed state and every
    later {!append}/{!sync} raises {!Poisoned}: the damage stays
    confined to an unacknowledged tail that {!scan} classifies as torn,
    instead of becoming mid-log corruption underneath acknowledged
    records.  The owning store must be reopened (recovering from disk)
    to resume.

    All functions take the I/O through an {!Io.t} ([?io], default
    {!Io.real}), so a fault filesystem can inject every failure above
    deterministically. *)

type t

exception Poisoned
(** Raised by {!append}/{!sync} after an earlier write or fsync failure
    has poisoned the journal. *)

val create :
  ?fsync:bool -> ?window:float -> ?window_bytes:int -> ?io:Io.t -> string -> t
(** Create (or truncate) a journal file and write the file header.
    [fsync false] (default [true]) turns the durability barrier off —
    for benchmarks and tests only.  [window] (seconds, default [0.])
    enables staged group commit with an adaptive commit window;
    [window_bytes] (default 256 KiB) is the byte budget past which a
    leader stops dallying.  [window] is ignored when [fsync] is off. *)

val open_append :
  ?fsync:bool ->
  ?window:float ->
  ?window_bytes:int ->
  ?io:Io.t ->
  string ->
  (t, string) result
(** Open an existing journal for appending — after {!scan} has validated
    it and any torn tail has been cut with {!truncate}. *)

val append : t -> string -> unit
(** Append one payload as a record; returns after the record is fsynced
    (group-committed).  Thread-safe.  Raises the underlying I/O error on
    failure (poisoning the journal), or {!Poisoned} if a previous append
    already failed. *)

val append_many : t -> string list -> unit
(** Append a batch of payloads as one combined write under a single
    fsync barrier: all records become durable together and the call
    returns only after that fsync.  Exception behaviour as {!append}.
    This is how a replication standby applies a batch atomically —
    either the whole batch is acknowledged or none of it was. *)

val sync : t -> unit
(** Flush any staged records and force an fsync barrier over everything
    appended so far. *)

type batch_stats = {
  batches : int;  (** combined appends drained *)
  records : int;  (** records those batches carried *)
  max_batch : int;  (** largest batch, in records *)
  by_size : int array;
      (** histogram: bucket [i] counts batches of [2{^i} .. 2{^i+1} - 1]
          records; the last bucket is open-ended *)
}

val batch_stats : t -> batch_stats
(** Batch size distribution of combined appends so far (windowed drains
    and {!append_many} calls; immediate single-record appends are not
    counted). *)

val failed : t -> bool
(** Has this journal been poisoned by a write/fsync failure? *)

val close : t -> unit

(** {1 Reading} *)

type tail =
  | Complete  (** the file ends exactly on a record boundary *)
  | Truncated of { offset : int; bytes : int }
      (** a torn final record: [bytes] trailing bytes starting at
          [offset] are not a whole record and should be cut *)

val scan :
  ?io:Io.t ->
  string ->
  ((int * string) list * tail, [ `Corrupt of int * string ]) result
(** [scan path] reads every complete record, returning
    [(byte offset, payload)] pairs in file order plus the tail status.
    [`Corrupt (offset, reason)] is a mid-log integrity failure at the
    given byte offset (also used for a garbled file header, at offset 0).
    A file shorter than the file header — a crash during {!create} — is
    [Truncated] at offset 0, not corrupt. *)

val truncate : ?io:Io.t -> string -> int -> (unit, string) result
(** Cut the file at the given byte offset (recovery's response to a
    [Truncated] tail) and fsync it. *)

val header_size : int
(** Size of the file header, bytes (= 8): the offset of the first
    record. *)

(** {1 Record codec and tailing}

    The replication stream (lib/shard) ships journal records over the
    wire as the exact record bytes defined above — header, CRC and
    payload — so a standby can append what it receives and end up with a
    byte-compatible journal it can run ordinary recovery over. *)

val encode_record : string -> string
(** [encode_record payload] is the full on-disk record for [payload]:
    magic, version, little-endian length, CRC-32, payload. *)

val decode_record : string -> (string, string) result
(** Inverse of {!encode_record}: validate magic, version, length and CRC
    of exactly one record and return its payload. *)

val record_magic : string
(** The 4-byte ASCII record magic ["JREC"] — how a frame handler tells a
    streamed record from a JSON control message. *)

val tail :
  ?io:Io.t ->
  string ->
  from_offset:int ->
  ((int * string) list * int, string) result
(** [tail path ~from_offset] reads the records whose byte offset is
    [>= from_offset], returning them (offset, payload) in file order
    together with the end offset of the last complete record in the file
    — the [from_offset] a later call should resume from.  A torn tail is
    treated as the end of the durable prefix (not an error); mid-log
    corruption is an error.  This is the streaming iterator a primary
    uses to ship its existing journal to a freshly attached standby. *)
