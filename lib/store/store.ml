type t = {
  dir : string;
  io : Io.t;
  fsync : bool;
  commit_window : float;
  snapshot_every : int;
  lock : Mutex.t;
  idle : Condition.t;
  shadow : Shadow.t;
  mutable gen : int;
  mutable journal : Journal.t;
  mutable since_snapshot : int;
  mutable inflight : int;  (* appends between handle-grab and completion *)
  mutable checkpointing : bool;
  mutable closed : bool;
}

let dir t = t.dir
let io t = t.io
let generation t = t.gen
let record_count t = t.since_snapshot

let commit_stats t =
  Mutex.lock t.lock;
  let j = t.journal in
  Mutex.unlock t.lock;
  Journal.batch_stats j

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)

let canonical_csv rel =
  let module Relation = Jim_relational.Relation in
  let module Schema = Jim_relational.Schema in
  let header =
    Array.to_list (Schema.names (Relation.schema rel))
    @ List.map Jim_relational.Value.ty_name
        (Array.to_list (Schema.types (Relation.schema rel)))
  in
  let rows =
    List.map
      (fun tup ->
        List.map Jim_relational.Value.to_string (Array.to_list tup))
      (Relation.tuples rel)
  in
  Jim_relational.Csv.print_string (header :: rows)

let fingerprint_of_csv csv = Crc32.to_hex (Crc32.digest_string csv)
let fingerprint rel = fingerprint_of_csv (canonical_csv rel)

(* ------------------------------------------------------------------ *)
(* Checkpoint: snapshot the shadow, rotate the journal, sweep.         *)

(* Caller holds [t.lock] and has quiesced appends ([t.inflight = 0]).

   Failure discipline: if the snapshot write fails, nothing changed —
   the old generation stays live and the caller's exception leaves the
   store usable (the checkpoint retries at the next due record).  If
   the *new journal* creation fails after the snapshot landed, the
   orphan snapshot must not survive: recovery picks the highest
   complete snapshot, and generation g+1 with no journal would shadow
   every event still being appended to generation g's journal.  *)
let checkpoint_locked t =
  let g' = t.gen + 1 in
  (match
     Snapshot.write ~io:t.io (Recovery.snapshot_path t.dir g')
       (Shadow.snapshot t.shadow)
   with
  | Ok () -> ()
  | Error m -> failwith m);
  let journal' =
    try
      Journal.create ~fsync:t.fsync ~window:t.commit_window ~io:t.io
        (Recovery.journal_path t.dir g')
    with exn ->
      (* Unwind in the order that keeps every intermediate crash state
         recoverable: the partial journal first (snapshot g' alone is a
         complete baseline), then the snapshot.  The reverse order has a
         window where journal g' exists without snapshot g' — an orphan
         generation recovery must refuse to anchor on. *)
      (try t.io.Io.remove (Recovery.journal_path t.dir g') with _ -> ());
      (try t.io.Io.remove (Recovery.snapshot_path t.dir g') with _ -> ());
      raise exn
  in
  Journal.close t.journal;
  (* Everything up to here is durable in snapshot g'; the old generation
     is now redundant. *)
  t.io.Io.remove (Recovery.journal_path t.dir t.gen);
  t.io.Io.remove (Recovery.snapshot_path t.dir t.gen);
  t.journal <- journal';
  t.gen <- g';
  t.since_snapshot <- 0

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)

let ( let* ) = Result.bind

let open_dir ?(fsync = true) ?(commit_window = 0.) ?(snapshot_every = 1024)
    ?(io = Io.real) dir =
  if snapshot_every < 1 then invalid_arg "Store.open_dir: snapshot_every";
  if commit_window < 0. then invalid_arg "Store.open_dir: commit_window";
  match
    io.Io.mkdir_p dir;
    Recovery.load ~io dir
  with
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, op, arg) ->
    Error (Printf.sprintf "%s %s: %s" op arg (Unix.error_message e))
  | Error _ as e -> e
  | Ok recovered -> (
    (* Cut the torn tail (the one write path that modifies the log) and
       reopen for append; sweep generations the checkpoint protocol made
       redundant. *)
    let* () =
      match recovered.Recovery.torn with
      | None | Some (0, _) -> Ok ()  (* 0: partial file header, recreate *)
      | Some (offset, _) ->
        Journal.truncate ~io recovered.Recovery.journal_path offset
    in
    let journal =
      match recovered.Recovery.torn with
      | Some (0, _) ->
        Ok
          (Journal.create ~fsync ~window:commit_window ~io
             recovered.Recovery.journal_path)
      | _ ->
        if io.Io.exists recovered.Recovery.journal_path then
          Journal.open_append ~fsync ~window:commit_window ~io
            recovered.Recovery.journal_path
        else
          Ok
            (Journal.create ~fsync ~window:commit_window ~io
               recovered.Recovery.journal_path)
    in
    match journal with
    | Error _ as e -> e
    | Ok journal ->
      let t =
        {
          dir;
          io;
          fsync;
          commit_window;
          snapshot_every;
          lock = Mutex.create ();
          idle = Condition.create ();
          shadow = Shadow.create ();
          gen = recovered.Recovery.generation;
          journal;
          since_snapshot = recovered.Recovery.journal_records;
          inflight = 0;
          checkpointing = false;
          closed = false;
        }
      in
      Shadow.seed t.shadow ~next_id:recovered.Recovery.next_id
        (List.map Recovery.snapshot_session recovered.Recovery.sessions);
      (* Stale lower generations (crash between rotate and sweep). *)
      for g = 0 to t.gen - 1 do
        io.Io.remove (Recovery.journal_path dir g);
        io.Io.remove (Recovery.snapshot_path dir g)
      done;
      Ok (t, recovered))

(* ------------------------------------------------------------------ *)
(* The hot path                                                        *)

let record t ev =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Store.record: closed"
  end;
  while t.checkpointing do
    Condition.wait t.idle t.lock
  done;
  let journal = t.journal in
  t.inflight <- t.inflight + 1;
  Mutex.unlock t.lock;
  (* Journal first, shadow second: if the append fails the caller
     reports Failed, and the event must not survive into the next
     snapshot via the shadow — recovery would resurrect state the
     client was told did not happen.  Our inflight ticket keeps the
     checkpointer out until the shadow catches up. *)
  let finish applied =
    Mutex.lock t.lock;
    if applied then begin
      Shadow.apply t.shadow ev;
      t.since_snapshot <- t.since_snapshot + 1
    end;
    t.inflight <- t.inflight - 1;
    if t.inflight = 0 then Condition.broadcast t.idle;
    let due = applied && t.since_snapshot >= t.snapshot_every in
    Mutex.unlock t.lock;
    due
  in
  (try Journal.append journal (Event.to_string ev)
   with exn ->
     ignore (finish false);
     raise exn);
  let due = finish true in
  if due then begin
    Mutex.lock t.lock;
    if t.since_snapshot >= t.snapshot_every && not t.checkpointing then begin
      t.checkpointing <- true;
      while t.inflight > 0 do
        Condition.wait t.idle t.lock
      done;
      Fun.protect
        ~finally:(fun () ->
          t.checkpointing <- false;
          Condition.broadcast t.idle)
        (fun () -> checkpoint_locked t)
    end;
    Mutex.unlock t.lock
  end

let checkpoint t =
  Mutex.lock t.lock;
  if not t.closed && not t.checkpointing then begin
    t.checkpointing <- true;
    while t.inflight > 0 do
      Condition.wait t.idle t.lock
    done;
    Fun.protect
      ~finally:(fun () ->
        t.checkpointing <- false;
        Condition.broadcast t.idle)
      (fun () -> checkpoint_locked t)
  end;
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    while t.checkpointing do
      Condition.wait t.idle t.lock
    done;
    while t.inflight > 0 do
      Condition.wait t.idle t.lock
    done;
    t.closed <- true;
    Journal.close t.journal
  end;
  Mutex.unlock t.lock
