module Json = Jim_api.Json
module P = Jim_api.Protocol
module Transcript = Jim_core.Transcript

type session = {
  id : int;
  source : P.instance_source;
  strategy : string;
  seed : int;
  fingerprint : string;
  transcript : Transcript.t;
}

type t = { next_id : int; sessions : session list }

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "jim-snapshot 1\n";
  Buffer.add_string buf (Printf.sprintf "next-id %d\n" t.next_id);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "session %d %s %d %s\n" s.id s.strategy s.seed
           s.fingerprint);
      Buffer.add_string buf
        ("source " ^ Json.to_string (P.source_to_json s.source) ^ "\n");
      Buffer.add_string buf (Transcript.to_string s.transcript);
      Buffer.add_string buf "end\n")
    t.sessions;
  let body = Buffer.contents buf in
  body ^ "checksum " ^ Crc32.to_hex (Crc32.digest_string body) ^ "\n"

let ( let* ) = Result.bind

let of_string text =
  (* Peel and verify the checksum trailer first: everything after this is
     parsing known-good bytes. *)
  let* body =
    let len = String.length text in
    if len = 0 || text.[len - 1] <> '\n' then
      Error "snapshot: missing checksum trailer"
    else
      match String.rindex_from_opt text (len - 2) '\n' with
      | None -> Error "snapshot: missing checksum trailer"
      | Some i -> (
        let body = String.sub text 0 (i + 1) in
        let trailer = String.sub text (i + 1) (len - i - 2) in
        match String.split_on_char ' ' trailer with
        | [ "checksum"; hex ] ->
          let actual = Crc32.to_hex (Crc32.digest_string body) in
          if String.lowercase_ascii hex = actual then Ok body
          else
            Error
              (Printf.sprintf "snapshot: checksum mismatch (stored %s, computed %s)"
                 hex actual)
        | _ -> Error "snapshot: missing checksum trailer")
  in
  let lines = String.split_on_char '\n' body in
  let* rest =
    match lines with
    | "jim-snapshot 1" :: rest -> Ok rest
    | _ -> Error "snapshot: unknown header"
  in
  let* next_id, rest =
    match rest with
    | first :: more -> (
      match String.split_on_char ' ' first with
      | [ "next-id"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (n, more)
        | _ -> Error "snapshot: bad next-id")
      | _ -> Error "snapshot: expected a next-id line")
    | [] -> Error "snapshot: missing next-id line"
  in
  let rec sessions acc = function
    | [] | [ "" ] -> Ok (List.rev acc)
    | line :: rest -> (
      match String.split_on_char ' ' line with
      | [ "session"; id; strategy; seed; fingerprint ] -> (
        let* id =
          Option.to_result ~none:"snapshot: bad session id"
            (int_of_string_opt id)
        in
        let* seed =
          Option.to_result ~none:"snapshot: bad session seed"
            (int_of_string_opt seed)
        in
        match rest with
        | src :: rest
          when String.length src > 7 && String.sub src 0 7 = "source " ->
          let* source =
            Result.bind
              (Json.of_string (String.sub src 7 (String.length src - 7)))
              P.source_of_json
          in
          (* The transcript block runs until the "end" sentinel. *)
          let rec split_block acc = function
            | "end" :: rest -> Ok (List.rev acc, rest)
            | l :: rest -> split_block (l :: acc) rest
            | [] -> Error "snapshot: unterminated transcript block"
          in
          let* block, rest = split_block [] rest in
          let* transcript = Transcript.of_string (String.concat "\n" block) in
          sessions
            ({ id; source; strategy; seed; fingerprint; transcript } :: acc)
            rest
        | _ -> Error "snapshot: expected a source line")
      | _ -> Error ("snapshot: bad line: " ^ line))
  in
  let* sessions = sessions [] rest in
  Ok { next_id; sessions }

(* Write-tmp / fsync / rename / fsync-dir, all through the pluggable
   [Io.t] so a fault filesystem can cut power at any byte of the
   snapshot protocol.  An injected power cut (a non-[Unix_error]
   exception) propagates raw: it models the process dying, not an error
   the checkpoint could handle. *)
let write ?(io = Io.real) path t =
  let tmp = path ^ ".tmp" in
  match
    let file = io.Io.create tmp in
    Fun.protect
      ~finally:(fun () -> try file.Io.close () with Unix.Unix_error _ -> ())
      (fun () ->
        let data = Bytes.of_string (to_string t) in
        let len = Bytes.length data in
        let rec go off =
          if off < len then go (off + file.Io.write data off (len - off))
        in
        go 0;
        file.Io.fsync ());
    io.Io.rename tmp path;
    io.Io.fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, op, _) ->
    io.Io.remove tmp;
    Error (Printf.sprintf "snapshot %s: %s: %s" path op (Unix.error_message e))

let load ?(io = Io.real) path =
  match io.Io.read_file path with
  | Error msg -> Error msg
  | Ok text -> (
    match of_string text with
    | Ok t -> Ok t
    | Error e -> Error (path ^ ": " ^ e))
