(** The state-mutating protocol events a durable server journals: exactly
    the operations that change what a later {!Recovery} must rebuild.
    Read-only requests (questions, explanations, stats) never reach the
    log.

    Payload encoding is one compact JSON object (reusing the wire
    protocol's stable sub-encodings for sources, partitions and labels),
    so [jim journal inspect] output is also valid protocol-style JSON. *)

type t =
  | Started of {
      session : int;
      arity : int;  (** attribute count (the transcript arity) *)
      source : Jim_api.Protocol.instance_source;
      strategy : string;  (** canonical {!Jim_core.Strategy} name *)
      seed : int;  (** the session RNG seed — replay re-derives the RNG *)
      fingerprint : string;
          (** {!Store.fingerprint} of the resolved instance, checked on
              recovery so a drifted builtin/synthetic source fails loudly *)
    }
  | Answered of {
      session : int;
      cls : int;  (** class index answered *)
      sg : Jim_partition.Partition.t;
          (** the class signature — lets snapshots compact to the
              transcript format without rebuilding the instance *)
      label : Jim_core.State.label;
    }
  | Undone of { session : int }
  | Ended of { session : int }
      (** explicit [End_session] or idle-TTL eviction *)

val session : t -> int

val to_string : t -> string
(** One line of compact JSON (never contains a newline). *)

val of_string : string -> (t, string) result
