(** Periodic compaction of the journal: the full durable state of the
    server — every live session's surviving labels — serialised so the
    journal can be truncated and restarted.

    {1 Format}

    A snapshot is a line-based text file (human-auditable, like the
    transcripts it embeds), CRC-sealed by a trailer line:

    {v
    jim-snapshot 1
    next-id 17
    session 12 lookahead-entropy 42 9a3c21e0     # id strategy seed fingerprint
    source {"kind":"builtin","name":"flights"}
    jim-transcript 1                             # Jim_core.Transcript text,
    arity 5                                      # verbatim
    label {0,1}{2}{3}{4} +
    end
    ...more sessions...
    checksum 0f3a99c1                            # CRC-32 of all bytes above
    v}

    Each session's labels are the {e surviving} history (undone rounds
    are compacted away, exactly like {!Jim_core.Transcript.of_engine}),
    so recovery replays them as if the user had answered that sequence
    directly.

    Snapshots are written atomically — temp file, fsync, [rename],
    directory fsync — so a crash mid-write leaves the previous
    generation untouched and a present snapshot file is always complete
    (a failing checksum therefore means real corruption, not a torn
    write, and {!load} refuses it). *)

type session = {
  id : int;
  source : Jim_api.Protocol.instance_source;
  strategy : string;
  seed : int;
  fingerprint : string;
  transcript : Jim_core.Transcript.t;
      (** arity + surviving labels; [result] is always [None] (a finished
          session still accepts [Result]/[Get_transcript] calls, and the
          result is recomputed on replay) *)
}

type t = {
  next_id : int;  (** the session-id counter to resume from *)
  sessions : session list;  (** ascending id *)
}

val to_string : t -> string
val of_string : string -> (t, string) result

val write : ?io:Io.t -> string -> t -> (unit, string) result
(** [write path t]: atomic create-and-rename with the fsync dance above,
    through [io] (default {!Io.real}). *)

val load : ?io:Io.t -> string -> (t, string) result
