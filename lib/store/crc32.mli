(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), the checksum guarding
    every journal record and snapshot file.  Hand-rolled table-driven
    implementation — the container ships no zlib binding, and the store
    needs only this much. *)

val digest : ?crc:int32 -> bytes -> int -> int -> int32
(** [digest ?crc buf off len] extends [crc] (default: the empty-message
    CRC) over [len] bytes of [buf] starting at [off].  Feeding a message
    in chunks yields the same result as one call over the whole. *)

val digest_string : string -> int32

val to_hex : int32 -> string
(** Lower-case, zero-padded 8-digit hex — the rendering used in
    fingerprints, snapshot trailers and corruption diagnostics. *)
