let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let digest ?(crc = 0l) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Crc32.digest";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xffl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let digest_string s =
  digest (Bytes.unsafe_of_string s) 0 (String.length s)

let to_hex c = Printf.sprintf "%08lx" (Int32.logand c 0xffffffffl)
