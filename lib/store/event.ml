module Json = Jim_api.Json
module P = Jim_api.Protocol

type t =
  | Started of {
      session : int;
      arity : int;
      source : P.instance_source;
      strategy : string;
      seed : int;
      fingerprint : string;
    }
  | Answered of {
      session : int;
      cls : int;
      sg : Jim_partition.Partition.t;
      label : Jim_core.State.label;
    }
  | Undone of { session : int }
  | Ended of { session : int }

let session = function
  | Started { session; _ }
  | Answered { session; _ }
  | Undone { session }
  | Ended { session } ->
    session

let to_json = function
  | Started { session; arity; source; strategy; seed; fingerprint } ->
    Json.Obj
      [
        ("ev", Json.String "start");
        ("session", Json.Int session);
        ("arity", Json.Int arity);
        ("source", P.source_to_json source);
        ("strategy", Json.String strategy);
        ("seed", Json.Int seed);
        ("fp", Json.String fingerprint);
      ]
  | Answered { session; cls; sg; label } ->
    Json.Obj
      [
        ("ev", Json.String "answer");
        ("session", Json.Int session);
        ("cls", Json.Int cls);
        ("sg", P.partition_to_json sg);
        ("label", P.label_to_json label);
      ]
  | Undone { session } ->
    Json.Obj [ ("ev", Json.String "undo"); ("session", Json.Int session) ]
  | Ended { session } ->
    Json.Obj [ ("ev", Json.String "end"); ("session", Json.Int session) ]

let ( let* ) = Result.bind

let int_field k v =
  let* f = Json.field k v in
  Json.as_int f

let of_json v =
  let* tag = Result.bind (Json.field "ev" v) Json.as_string in
  let* session = int_field "session" v in
  match tag with
  | "start" ->
    let* arity = int_field "arity" v in
    let* source = Result.bind (Json.field "source" v) P.source_of_json in
    let* strategy = Result.bind (Json.field "strategy" v) Json.as_string in
    let* seed = int_field "seed" v in
    let* fingerprint = Result.bind (Json.field "fp" v) Json.as_string in
    Ok (Started { session; arity; source; strategy; seed; fingerprint })
  | "answer" ->
    let* cls = int_field "cls" v in
    let* sg = Result.bind (Json.field "sg" v) P.partition_of_json in
    let* label = Result.bind (Json.field "label" v) P.label_of_json in
    Ok (Answered { session; cls; sg; label })
  | "undo" -> Ok (Undone { session })
  | "end" -> Ok (Ended { session })
  | tag -> Error (Printf.sprintf "unknown journal event %S" tag)

let to_string e = Json.to_string (to_json e)

let of_string s =
  match Json.of_string s with
  | Error m -> Error m
  | Ok v -> of_json v
