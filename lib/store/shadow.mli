(** The store's in-memory mirror of durable session state: enough of
    each live session (source, strategy, seed, fingerprint, transcript)
    to write the next snapshot without consulting the engine.

    One instance lives inside every {!Store.t} (folded forward on each
    recorded event so checkpoints are O(live state), not O(journal));
    a second lives inside every replication standby (lib/shard), which
    applies the streamed journal records through it and, on a rotate,
    writes its {e own} snapshot — deterministic, so byte-identical to
    the snapshot the primary wrote from the same event prefix.

    Not thread-safe: callers serialise access (the store under its lock,
    the standby under its). *)

type t

val create : unit -> t
(** Empty shadow: no sessions, [next_id] 1. *)

val apply : t -> Event.t -> unit
(** Fold one event forward: [Started] registers the session (and bumps
    [next_id] past its id), [Answered]/[Undone] grow/shrink its
    transcript, [Ended] drops it.  Events for unknown sessions are
    ignored — the journal's write order already tolerates a racy
    answer/undo after [Ended] (see {!Recovery.load}). *)

val seed : t -> next_id:int -> Snapshot.session list -> unit
(** Reset to exactly a snapshot's contents.  [next_id] is still bumped
    past every seeded session id. *)

val snapshot : t -> Snapshot.t
(** The current state as a snapshot (sessions in ascending id order —
    the deterministic form {!Snapshot.write} persists). *)

val next_id : t -> int
val session_count : t -> int
