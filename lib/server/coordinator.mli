(** Per-session vote coordinator: fan a session's pending question out to
    the crowd, collect [+]/[−] ballots, and decide the aggregate label.

    The coordinator is a pure in-memory state machine.  The {!Service}
    drives it under the session lock and owns every effect: when
    {!expire} or {!vote} returns [Aggregate l], the service absorbs [l]
    through the normal answer path — journaling it as the session's only
    event for the round — and reports back with {!absorbed} (engine took
    it) or {!rejected} (engine refused it as contradictory; the round is
    re-asked).  Nothing here is journaled: after a crash or failover the
    coordinator comes back empty and labelers re-attach, while the
    absorbed aggregates replay from the journal like any other answers.

    Aggregation is {!Jim_core.Votes}: exact majority, or accuracy-weighted
    majority (Laplace-smoothed running per-labeler accuracy) when
    [weighted] — with fresh labelers the two are bit-identical.

    Time is injected (absolute [now] floats, matching the service's
    injectable clock) and the straggler deadline is only checked when
    {!expire} is called — on each poll and vote — so there is no timer
    thread and tests are deterministic. *)

type config = {
  votes : int;  (** quorum size [K]; must be odd and positive *)
  timeout : float;  (** straggler deadline per round, seconds; > 0 *)
  weighted : bool;  (** weight ballots by estimated labeler accuracy *)
}

type t

type decision =
  | Wait  (** round still open — keep polling *)
  | Aggregate of Jim_core.State.label
      (** quorum or decisive-at-deadline: absorb this label, then call
          {!absorbed} (or {!rejected} if the engine refuses it) *)

val create : now:float -> config -> t
(** Round 1 opens immediately with its deadline at [now + timeout].
    Raises [Invalid_argument] on even/non-positive [votes] or a
    non-positive [timeout]. *)

val quorum : t -> int
val round : t -> int
(** The current round number, starting at 1.  Bumped every time a round
    closes or is re-asked, which is what invalidates stale ballots. *)

val attach : t -> int
(** Register a labeler; returns its id (unique within the session). *)

val known : t -> int -> bool

val accuracy : t -> int -> int * int
(** [(agreed, voted)] for a labeler — the running accuracy evidence.
    Raises [Invalid_argument] for an unknown id. *)

val expire : now:float -> t -> decision
(** Check the straggler deadline.  Before it: [Wait].  At or past it:
    with no ballots the deadline is silently reset ([Wait]); with a
    decisive tally the round closes short ([timeouts] counter,
    [Aggregate]); with a tied tally the round is re-asked ([re_asks]
    counter, ballots discarded, [Wait]). *)

val vote :
  now:float ->
  t ->
  labeler:int ->
  round:int ->
  label:Jim_core.State.label ->
  [ `Unknown | `Stale | `Counted of decision ]
(** Cast a ballot.  [`Unknown]: unregistered labeler.  [`Stale]: the
    ballot named a round that already closed, or this labeler already
    voted this round — not counted, no state change.  [`Counted]: the
    ballot entered the tally; [Aggregate] exactly when it completed the
    quorum.  (A quorum that ties — possible only under weighted
    aggregation — re-asks the round and counts as [Wait].)  Call
    {!expire} first so an overdue round is settled before new ballots
    are judged against it. *)

val absorbed : now:float -> t -> Jim_core.State.label -> unit
(** The service absorbed and journaled the aggregate: credit each ballot
    against it in the accuracy estimator, bump [rounds]/[paid_labels]
    (and [majority_flips] if anyone dissented), and open the next
    round. *)

val rejected : now:float -> t -> unit
(** The engine refused the aggregate (contradiction): discard the
    ballots and re-ask the same question as a new round. *)

val stats : t -> Jim_api.Protocol.crowd_stats
