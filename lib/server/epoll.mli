(** Readiness polling for the event loop: epoll(7) on Linux, a
    select-based fallback with identical semantics elsewhere (so the
    loop's code is platform-independent and the fallback keeps CI honest
    on other systems — at select's fd limits).

    Level-triggered on both backends: a ready fd is reported on every
    {!wait} until it is drained.  Hang-ups and socket errors surface as
    readability — the next read returns EOF or the pending error. *)

type t

val create : unit -> t
(** Prefers epoll; falls back to select where the stub raises
    [ENOSYS]. *)

val backed_by_epoll : t -> bool

val add : t -> Unix.file_descr -> readable:bool -> writable:bool -> unit
val modify : t -> Unix.file_descr -> readable:bool -> writable:bool -> unit

val remove : t -> Unix.file_descr -> unit
(** Forget the fd.  Call before closing it; removing an fd that is
    already gone is benign. *)

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

val wait : t -> timeout_ms:int -> event list
(** Block up to [timeout_ms] for readiness; [[]] on timeout or EINTR. *)

val close : t -> unit
