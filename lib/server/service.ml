module P = Jim_api.Protocol
module Catalog = Jim_catalog.Catalog
open Jim_core

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

type session = {
  id : int;
  strategy : Strategy.t;
  strategy_name : string;
  eng : Session.t;
  entry : Catalog.entry;
      (* the catalog entry the engine was warm-started from; holds this
         session's pin — released when the session ends or is swept *)
  schema : Jim_relational.Schema.t;
  rng : Random.State.t;
  lock : Mutex.t;
  mutable pending : int option option;
      (* memoised next question: [Some q] until an answer or undo
         invalidates it, so repeated Get_questions advance the RNG exactly
         once per round — the determinism the smoke test pins. *)
  mutable events_rev : Session.event list;
  mutable contradiction : bool;
  mutable metrics : Metrics.snapshot;
  mutable last_used : float;
  mutable ended : bool;
      (* set under [lock] when the session is ended/swept, *before* the
         Ended event is journalled.  Handlers check it under the same
         lock, so nothing can journal an Answered/Undone after Ended —
         recovery replays the log in order and would otherwise see
         events for a session it already discarded. *)
  crowd : Coordinator.t option;
      (* Some iff the service was created with crowd labeling enabled:
         answers then arrive only as vote aggregates.  In-memory only —
         a restored session gets a fresh coordinator (labelers
         re-attach) while its absorbed aggregates replay from the
         journal as ordinary answers. *)
}

type t = {
  lock : Mutex.t;  (* guards [sessions] and [next_id] *)
  sessions : (int, session) Hashtbl.t;
  mutable next_id : int;
  max_sessions : int;
  idle_ttl : float;
  now : unit -> float;
  catalog : Catalog.t;
      (* instance catalog every session of this service resolves through
         (shareable across services — the fault sweeps do) *)
  persist_hook : (Jim_store.Event.t -> unit) option;
      (* called with every state-mutating event *before* its reply is
         built; [None] in the default in-memory mode *)
  crowd : Coordinator.config option;
      (* when Some, every session gets a vote coordinator and direct
         Answer/Undo are refused *)
}

let create ?(max_sessions = 64) ?(idle_ttl = 600.) ?(now = Unix.gettimeofday)
    ?catalog ?persist ?crowd () =
  (* Validate eagerly, not at first session start. *)
  (match crowd with
  | Some cfg -> ignore (Coordinator.create ~now:0. cfg)
  | None -> ());
  {
    lock = Mutex.create ();
    sessions = Hashtbl.create 16;
    next_id = 1;
    max_sessions;
    idle_ttl;
    now;
    catalog = (match catalog with Some c -> c | None -> Catalog.create ());
    persist_hook = persist;
    crowd;
  }

let catalog t = t.catalog

let persist t ev =
  match t.persist_hook with None -> () | Some f -> f ev

let session_count t = with_lock t.lock (fun () -> Hashtbl.length t.sessions)
let max_sessions t = t.max_sessions
let idle_ttl t = t.idle_ttl

let sweep t =
  let now = t.now () in
  let stale =
    with_lock t.lock (fun () ->
        let stale =
          Hashtbl.fold
            (fun _ s acc ->
              if now -. s.last_used > t.idle_ttl then s :: acc else acc)
            t.sessions []
        in
        List.iter (fun s -> Hashtbl.remove t.sessions s.id) stale;
        stale)
  in
  (* Journal Ended under each session's own lock: an in-flight handler
     that looked the session up before removal either journals before us
     (we wait for its lock) or sees [ended] and refuses. *)
  List.iter
    (fun (s : session) ->
      with_lock s.lock (fun () ->
          s.ended <- true;
          persist t (Jim_store.Event.Ended { session = s.id }));
      Catalog.release t.catalog s.entry)
    stale;
  List.length stale

(* ------------------------------------------------------------------ *)
(* Per-session helpers                                                 *)

(* Scorer counters are process-global (see Metrics); we attribute each
   engine-touching request's delta to the session that caused it.  Under
   concurrent load deltas can interleave across sessions — the totals
   stay exact, the attribution is best-effort, which is all the Stats
   reply promises. *)
let measured s f =
  let before = Metrics.snapshot () in
  let r = f () in
  s.metrics <- Metrics.add s.metrics (Metrics.diff (Metrics.snapshot ()) before);
  r

let decided_totals eng =
  let classes = Session.classes eng in
  let cd = ref 0 and td = ref 0 in
  Array.iteri
    (fun i c ->
      if Session.status eng i <> State.Informative then begin
        incr cd;
        td := !td + c.Sigclass.card
      end)
    classes;
  (!cd, !td)

let question_of_cls eng c =
  let cls = (Session.classes eng).(c) in
  { P.cls = c; row = Sigclass.representative cls; sg = cls.Sigclass.sg }

let pending_question s =
  match s.pending with
  | Some q -> q
  | None ->
    let q = measured s (fun () -> Session.question s.eng s.strategy s.rng) in
    s.pending <- Some q;
    q

let check_cls s c =
  let n = Array.length (Session.classes s.eng) in
  if c < 0 || c >= n then
    Error
      (P.Bad_request (Printf.sprintf "class index %d out of range 0..%d" c (n - 1)))
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)

let start_session ?id:pinned t source strategy_name seed =
  ignore (sweep t);
  match Catalog.resolve t.catalog source with
  | Error e -> P.Failed e
  | Ok entry -> (
    match Strategy.of_string strategy_name with
    | Error msg ->
      Catalog.release t.catalog entry;
      P.Failed (P.Unknown_strategy msg)
    | Ok strategy ->
      (* Warm-start the engine off the catalog entry outside the table
         lock.  Cold derivation happened (once) inside the catalog;
         this is an array copy. *)
      let eng = Catalog.engine entry in
      let reply =
        with_lock t.lock (fun () ->
            let active = Hashtbl.length t.sessions in
            if active >= t.max_sessions then
              P.Failed (P.Server_busy { active; max = t.max_sessions })
            else if
              match pinned with
              | Some id -> Hashtbl.mem t.sessions id
              | None -> false
            then
              P.Failed
                (P.Bad_request
                   (Printf.sprintf "session id %d already in use"
                      (Option.get pinned)))
            else begin
              (* A pinned id comes from the router's global allocator;
                 bump ours past it so a locally-started session can
                 never collide with a routed one. *)
              let id = match pinned with Some id -> id | None -> t.next_id in
              t.next_id <- max t.next_id (id + 1);
              let s =
                {
                  id;
                  strategy;
                  strategy_name = Strategy.to_string strategy;
                  eng;
                  entry;
                  schema = entry.Catalog.schema;
                  rng = Random.State.make [| seed |];
                  lock = Mutex.create ();
                  pending = None;
                  events_rev = [];
                  contradiction = false;
                  metrics = Metrics.zero;
                  last_used = t.now ();
                  ended = false;
                  crowd =
                    Option.map
                      (fun cfg -> Coordinator.create ~now:(t.now ()) cfg)
                      t.crowd;
                }
              in
              Hashtbl.replace t.sessions id s;
              (* Journal the start while still holding the table lock so
                 no later event of this (or any newer) session can
                 precede it in the log.  The journaled source is the
                 entry's concrete origin, never [Catalog fp]: after a
                 restart the catalog is empty, and recovery must be able
                 to re-resolve from the journal alone. *)
              persist t
                (Jim_store.Event.Started
                   {
                     session = id;
                     arity = entry.Catalog.arity;
                     source = entry.Catalog.origin;
                     strategy = s.strategy_name;
                     seed;
                     fingerprint = entry.Catalog.fingerprint;
                   });
              P.Started
                {
                  session = id;
                  arity = entry.Catalog.arity;
                  classes = Array.length entry.Catalog.classes;
                  tuples = entry.Catalog.tuples;
                  strategy = s.strategy_name;
                }
            end)
      in
      (match reply with
      | P.Failed _ -> Catalog.release t.catalog entry
      | _ -> ());
      reply)

let with_session t id f =
  let found =
    with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.sessions id with
        | None -> None
        | Some s ->
          s.last_used <- t.now ();
          Some s)
  in
  match found with
  | None -> P.Failed (P.Unknown_session id)
  | Some s ->
    with_lock s.lock (fun () ->
        if s.ended then P.Failed (P.Unknown_session id) else f s)

let get_question s = P.Question (Option.map (question_of_cls s.eng) (pending_question s))

let top_questions s k =
  if k < 0 then P.Failed (P.Bad_request "k must be non-negative")
  else
    let cs =
      measured s (fun () -> Session.top_questions s.eng s.strategy s.rng k)
    in
    P.Questions (List.map (question_of_cls s.eng) cs)

(* The engine-mutating core, shared by live requests and crash-recovery
   replay (which must not re-journal what it replays). *)
let apply_answer s c label =
  match check_cls s c with
  | Error e -> P.Failed e
  | Ok () -> (
    (* Advance the round's question first so the RNG consumption matches
       [Session.run] even if the client answers without asking. *)
    ignore (pending_question s);
    match measured s (fun () -> Session.answer s.eng c label) with
    | Error e ->
      if e = Session.Contradiction then s.contradiction <- true;
      P.Failed (P.Engine e)
    | Ok () ->
      s.pending <- None;
      let cls = (Session.classes s.eng).(c) in
      let decided, tuples = decided_totals s.eng in
      let ev =
        {
          Session.step = Session.asked s.eng;
          cls = c;
          row = Sigclass.representative cls;
          sg = cls.Sigclass.sg;
          label;
          decided_after = decided;
          tuples_decided_after = tuples;
          vs_after = Version_space.count (Session.state s.eng);
        }
      in
      s.events_rev <- ev :: s.events_rev;
      P.Answered
        {
          finished = Session.finished s.eng;
          asked = Session.asked s.eng;
          decided_classes = decided;
          decided_tuples = tuples;
        })

let apply_undo s =
  match measured s (fun () -> Session.undo s.eng) with
  | Error e -> P.Failed (P.Engine e)
  | Ok () ->
    s.pending <- None;
    (match s.events_rev with [] -> () | _ :: tl -> s.events_rev <- tl);
    P.Undone { asked = Session.asked s.eng }

let do_answer t s c label =
  match apply_answer s c label with
  | P.Answered _ as r ->
    let sg = (Session.classes s.eng).(c).Sigclass.sg in
    persist t (Jim_store.Event.Answered { session = s.id; cls = c; sg; label });
    r
  | r -> r

let do_undo t s =
  match apply_undo s with
  | P.Undone _ as r ->
    persist t (Jim_store.Event.Undone { session = s.id });
    r
  | r -> r

let do_explain s c =
  match check_cls s c with
  | Error e -> P.Failed e
  | Ok () ->
    let why = Session.explain_class s.eng c in
    P.Explanation
      {
        cls = c;
        status = Session.status s.eng c;
        text = Explain.to_string s.schema why;
      }

let do_result s =
  P.Outcome
    {
      Session.query = Session.result s.eng;
      events = List.rev s.events_rev;
      interactions = Session.asked s.eng;
      contradiction = s.contradiction;
    }

let do_stats s =
  let classes = Session.classes s.eng in
  let _, decided_tuples = decided_totals s.eng in
  let total = Sigclass.total_rows classes in
  let labeled = Session.asked s.eng in
  P.Session_stats
    {
      P.labeled;
      auto_determined = max 0 (decided_tuples - labeled);
      still_informative = total - decided_tuples;
      total;
      version_space = Version_space.count (Session.state s.eng);
      scoring = s.metrics;
    }

let do_transcript s =
  P.Transcript_text { text = Transcript.to_string (Transcript.of_engine s.eng) }

let end_session t id =
  let found =
    with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.sessions id with
        | None -> None
        | Some s ->
          Hashtbl.remove t.sessions id;
          Some s)
  in
  match found with
  | None -> P.Failed (P.Unknown_session id)
  | Some s ->
    (* Same discipline as [sweep]: mark + journal under the session lock
       so Ended is totally ordered after every journalled answer/undo of
       this session. *)
    with_lock s.lock (fun () ->
        s.ended <- true;
        persist t (Jim_store.Event.Ended { session = id }));
    Catalog.release t.catalog s.entry;
    P.Ended

(* ------------------------------------------------------------------ *)
(* Crowd labeling                                                      *)

let crowd_disabled = "crowd labeling disabled (start the server with --votes)"
let crowd_answer_guard = "session is crowd-labeled: answers arrive by vote"
let crowd_undo_guard = "session is crowd-labeled: undo is disabled"

let with_crowd (s : session) f =
  match s.crowd with
  | None -> P.Failed (P.Bad_request crowd_disabled)
  | Some co -> f co

(* Absorb an aggregate through the normal answer path — [do_answer]
   journals it as a plain Answered event, so recovery, replication and
   bit-identity need no crowd-specific handling at all.  An aggregate the
   engine refuses as contradictory (possible under noise) is dropped and
   the round re-asked: fresh ballots draw fresh noisy labels. *)
let close_round t s co label =
  match pending_question s with
  | None -> None
  | Some c -> (
    match do_answer t s c label with
    | P.Answered _ ->
      Coordinator.absorbed ~now:(t.now ()) co label;
      Some label
    | _ ->
      Coordinator.rejected ~now:(t.now ()) co;
      None)

(* Settle an overdue round before building any crowd reply; polls and
   votes are the coordinator's only clock. *)
let crowd_expire t s co =
  if pending_question s <> None then
    match Coordinator.expire ~now:(t.now ()) co with
    | Coordinator.Wait -> ()
    | Coordinator.Aggregate label -> ignore (close_round t s co label)

let do_labeler_attach s =
  with_crowd s (fun co ->
      P.Labeler_attached { labeler = Coordinator.attach co; votes = Coordinator.quorum co })

let do_labeler_poll t s labeler =
  with_crowd s (fun co ->
      if not (Coordinator.known co labeler) then
        P.Failed (P.Unknown_labeler labeler)
      else begin
        crowd_expire t s co;
        P.Crowd_question
          {
            round = Coordinator.round co;
            question = Option.map (question_of_cls s.eng) (pending_question s);
          }
      end)

let do_vote t s labeler round label =
  with_crowd s (fun co ->
      if not (Coordinator.known co labeler) then
        P.Failed (P.Unknown_labeler labeler)
      else begin
        crowd_expire t s co;
        let stale () =
          P.Vote_ok { round = Coordinator.round co; counted = false; outcome = None }
        in
        match pending_question s with
        | None -> stale () (* finished: no round is open *)
        | Some _ -> (
          match Coordinator.vote ~now:(t.now ()) co ~labeler ~round ~label with
          | `Unknown -> P.Failed (P.Unknown_labeler labeler)
          | `Stale -> stale ()
          | `Counted Coordinator.Wait ->
            P.Vote_ok
              { round = Coordinator.round co; counted = true; outcome = None }
          | `Counted (Coordinator.Aggregate l) ->
            let outcome = close_round t s co l in
            P.Vote_ok
              { round = Coordinator.round co; counted = true; outcome })
      end)

let do_crowd_stats s =
  with_crowd s (fun co -> P.Crowd_info (Coordinator.stats co))

let register_instance t source =
  match Catalog.resolve t.catalog source with
  | Error e -> P.Failed e
  | Ok entry ->
    (* Registration pins nothing: the entry stays warm in the catalog
       until the LRU cap wants the slot back. *)
    Catalog.release t.catalog entry;
    P.Registered
      {
        fingerprint = entry.Catalog.fingerprint;
        arity = entry.Catalog.arity;
        classes = Array.length entry.Catalog.classes;
        tuples = entry.Catalog.tuples;
      }

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)

let ( let* ) = Result.bind

(* Rebuild one recovered session by re-resolving its source and replaying
   its surviving labels through the exact live-request code path
   ([pending_question] before every answer), so engine state, RNG state,
   the cached question and the event log all land bit-identical to an
   uninterrupted run. *)
let restore_session t (rs : Jim_store.Recovery.session) =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "session %d: %s" rs.id m)) fmt
  in
  (* Resolve through the catalog: restored sessions on one instance share
     (and warm) the same entry live sessions will use.  The journaled
     source is always concrete (see [start_session]), and its entry's
     fingerprint was computed once at interning — compare it against the
     journaled one to refuse drifted instances, exactly as before. *)
  let* entry =
    match Catalog.resolve t.catalog rs.source with
    | Ok e -> Ok e
    | Error e -> fail "cannot re-resolve source: %s" (P.error_to_string e)
  in
  let abort r =
    Catalog.release t.catalog entry;
    r
  in
  if entry.Catalog.fingerprint <> rs.fingerprint then
    abort
      (fail
         "instance drifted since the journal was written (fingerprint %s, \
          expected %s)"
         entry.Catalog.fingerprint rs.fingerprint)
  else
    let strategy_or_err =
      match Strategy.of_string rs.strategy with
      | Ok s -> Ok s
      | Error m -> fail "%s" m
    in
    match strategy_or_err with
    | Error e -> abort (Error e)
    | Ok strategy -> (
    let eng = Catalog.engine entry in
    let s =
      {
        id = rs.id;
        strategy;
        strategy_name = Strategy.to_string strategy;
        eng;
        entry;
        schema = entry.Catalog.schema;
        rng = Random.State.make [| rs.seed |];
        lock = Mutex.create ();
        pending = None;
        events_rev = [];
        contradiction = false;
        metrics = Metrics.zero;
        last_used = t.now ();
        ended = false;
        crowd =
          Option.map (fun cfg -> Coordinator.create ~now:(t.now ()) cfg) t.crowd;
      }
    in
    let classes = Session.classes eng in
    let cls_of_sg sg =
      let n = Array.length classes in
      let rec go i =
        if i >= n then fail "snapshot signature matches no class"
        else if Jim_partition.Partition.equal classes.(i).Sigclass.sg sg then
          Ok i
        else go (i + 1)
      in
      go 0
    in
    let replay =
      List.fold_left
        (fun acc step ->
          let* () = acc in
          match (step : Jim_store.Recovery.step) with
          | Label { cls; sg; label } -> (
            let* c = match cls with Some c -> Ok c | None -> cls_of_sg sg in
            match apply_answer s c label with
            | P.Answered _ -> Ok ()
            | P.Failed e -> fail "replay: %s" (P.error_to_string e)
            | _ -> fail "replay: unexpected reply")
          | Undo -> (
            match apply_undo s with
            | P.Undone _ -> Ok ()
            | P.Failed e -> fail "replay undo: %s" (P.error_to_string e)
            | _ -> fail "replay undo: unexpected reply"))
        (Ok ()) rs.steps
    in
    match replay with Error e -> abort (Error e) | Ok () -> Ok s)

let restore t (r : Jim_store.Recovery.t) =
  let rec go acc = function
    | [] -> Ok acc
    | rs :: rest -> (
      match restore_session t rs with
      | Ok s -> go (s :: acc) rest
      | Error e ->
        (* All-or-nothing: drop the pins the already-restored sessions
           took before this failure aborted the restore. *)
        List.iter (fun s -> Catalog.release t.catalog s.entry) acc;
        Error e)
  in
  let* restored = go [] r.sessions in
  with_lock t.lock (fun () ->
      List.iter (fun s -> Hashtbl.replace t.sessions s.id s) restored;
      t.next_id <- max t.next_id r.next_id);
  Ok (List.length restored)

let handle t req =
  match req with
  | P.Start_session { source; strategy; seed } ->
    start_session t source strategy seed
  | P.Get_question { session } -> with_session t session get_question
  | P.Top_questions { session; k } ->
    with_session t session (fun s -> top_questions s k)
  | P.Answer { session; cls; label } ->
    with_session t session (fun s ->
        match s.crowd with
        | Some _ -> P.Failed (P.Bad_request crowd_answer_guard)
        | None -> do_answer t s cls label)
  | P.Undo { session } ->
    with_session t session (fun s ->
        match s.crowd with
        | Some _ -> P.Failed (P.Bad_request crowd_undo_guard)
        | None -> do_undo t s)
  | P.Explain { session; cls } ->
    with_session t session (fun s -> do_explain s cls)
  | P.Result { session } -> with_session t session do_result
  | P.Stats { session } -> with_session t session do_stats
  | P.Get_transcript { session } -> with_session t session do_transcript
  | P.End_session { session } -> end_session t session
  | P.Register_instance { source } -> register_instance t source
  | P.Catalog_stats -> P.Catalog_info (Catalog.stats t.catalog)
  | P.Start_pinned { session; source; strategy; seed } ->
    start_session ~id:session t source strategy seed
  | P.Repl_install _ | P.Repl_rotate _ | P.Repl_batch _ | P.Repl_status ->
    P.Failed
      (P.Bad_request "replication control message sent to a serving node")
  | P.Promote ->
    P.Failed (P.Bad_request "this node is already serving (not a standby)")
  | P.Ring_status ->
    P.Failed (P.Bad_request "ring_status is answered by the router")
  | P.Labeler_attach { session } -> with_session t session do_labeler_attach
  | P.Labeler_poll { session; labeler } ->
    with_session t session (fun s -> do_labeler_poll t s labeler)
  | P.Vote { session; labeler; round; label } ->
    with_session t session (fun s -> do_vote t s labeler round label)
  | P.Crowd_stats { session } -> with_session t session do_crowd_stats

let handle_line_status t line =
  match P.request_of_string line with
  | Error e -> (P.response_to_string (P.Failed e), false)
  | Ok req ->
    let resp =
      try handle t req
      with exn ->
        P.Failed (P.Bad_request ("internal error: " ^ Printexc.to_string exn))
    in
    (P.response_to_string resp, true)

let handle_line t line = fst (handle_line_status t line)
