module P = Jim_api.Protocol
open Jim_core

type client_report = {
  seed : int;
  strategy : string;
  questions : int;
  ok : bool;
  dropped : bool;
  detail : string;
}

(* Failures carry their class from the call site that observed them:
   [transport] failures (refused connect, clean EOF, reset) are what a
   chaos proxy manufactures on purpose; everything else is the server
   getting the protocol or the inference wrong. *)
type fail = { transport : bool; msg : string }

let diverged fmt = Printf.ksprintf (fun msg -> { transport = false; msg }) fmt

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

(* [Wire.call_line] errors are transport by construction; an unparsable
   reply line is not — the bytes arrived, the server spoke garbage. *)
let call conn req =
  match Wire.call_line conn (P.request_to_string req) with
  | Error msg -> Error { transport = true; msg }
  | Ok line -> (
    match P.response_of_string line with
    | Ok resp -> Ok resp
    | Error e ->
      Error (diverged "bad reply: %s" (P.error_to_string e)))

let report ~seed ~strategy ~questions = function
  | Ok () -> { seed; strategy; questions; ok = true; dropped = false; detail = "" }
  | Error { transport; msg } ->
      { seed; strategy; questions; ok = false; dropped = transport; detail = msg }

(* Small instances keep 32 concurrent lookahead sessions fast while still
   exercising multi-step inference. *)
let synthetic_params seed =
  { Jim_workloads.Synthetic.n_attrs = 5; n_tuples = 40; domain = 8;
    goal_rank = 2; seed }

let params = synthetic_params

let event_equal (a : Session.event) (b : Session.event) =
  a.step = b.step && a.cls = b.cls && a.row = b.row
  && Jim_partition.Partition.equal a.sg b.sg
  && a.label = b.label
  && a.decided_after = b.decided_after
  && a.tuples_decided_after = b.tuples_decided_after
  && Float.equal a.vs_after b.vs_after

let outcome_equal (a : Session.outcome) (b : Session.outcome) =
  Jim_partition.Partition.equal a.query b.query
  && a.interactions = b.interactions
  && a.contradiction = b.contradiction
  && List.length a.events = List.length b.events
  && List.for_all2 event_equal a.events b.events

let unexpected what resp =
  Error
    (diverged "unexpected reply to %s: %s" what (P.response_to_string resp))

let synthetic_source (p : Jim_workloads.Synthetic.params) =
  P.Synthetic
    {
      n_attrs = p.Jim_workloads.Synthetic.n_attrs;
      n_tuples = p.Jim_workloads.Synthetic.n_tuples;
      domain = p.Jim_workloads.Synthetic.domain;
      goal_rank = p.Jim_workloads.Synthetic.goal_rank;
      seed = p.Jim_workloads.Synthetic.seed;
    }

(* Drive one wire session over [source] to completion and hold it to the
   in-process reference: the instance (and its oracle) is the synthetic
   one seeded [instance_seed] — which the caller must know [source]
   resolves to — while [seed] seeds the session's strategy RNG.  The two
   seeds are decoupled so many sessions (distinct RNG streams) can share
   one instance, as catalog clients do. *)
let drive_session conn ~source ~instance_seed ~seed ~strategy =
  let inst = Jim_workloads.Synthetic.generate (params instance_seed) in
  let oracle = Oracle.of_goal inst.Jim_workloads.Synthetic.goal in
  let strat =
    match Strategy.of_string strategy with
    | Ok s -> s
    | Error msg -> invalid_arg msg
  in
  let expected =
    Session.run ~seed ~strategy:strat ~oracle
      inst.Jim_workloads.Synthetic.relation
  in
  let* resp = call conn (P.Start_session { source; strategy; seed }) in
  let* session =
    match resp with
    | P.Started { session; _ } -> Ok session
    | P.Failed e -> Error (diverged "%s" (P.error_to_string e))
    | other -> unexpected "Start_session" other
  in
  let rec loop asked =
    let* q = call conn (P.Get_question { session }) in
    match q with
    | P.Question None ->
      let* r = call conn (P.Result { session }) in
      (match r with
      | P.Outcome o ->
        let* _ = call conn (P.End_session { session }) in
        Ok (asked, o)
      | other -> unexpected "Result" other)
    | P.Question (Some { P.cls; sg; _ }) ->
      let label = Oracle.label oracle sg in
      let* a = call conn (P.Answer { session; cls; label }) in
      (match a with
      | P.Answered _ -> loop (asked + 1)
      | other -> unexpected "Answer" other)
    | other -> unexpected "Get_question" other
  in
  let* asked, got = loop 0 in
  if outcome_equal expected got then Ok asked
  else
    Error
      (diverged "outcome differs from local Session.run: wire %s/%d, local %s/%d"
         (Jim_partition.Partition.to_string got.Session.query)
         got.Session.interactions
         (Jim_partition.Partition.to_string expected.Session.query)
         expected.Session.interactions)

let drive_over conn ~seed ~strategy =
  drive_session conn
    ~source:(synthetic_source (params seed))
    ~instance_seed:seed ~seed ~strategy

(* Every driver caps how long it will wait on one reply: a server (or
   chaos proxy) that stalls instead of answering must classify as a
   transport drop, never hang the drill.  30 s is far above any honest
   reply; chaos tests shrink it to provoke the timeout on purpose. *)
let default_receive_timeout = 30.

let drive_one ?(framing = Wire.Line)
    ?(receive_timeout = default_receive_timeout) ?instance ~address ~seed
    ~strategy () =
  match Wire.connect ~retries:50 ~framing address with
  | Error msg ->
    report ~seed ~strategy ~questions:0
      (Error { transport = true; msg = "connect: " ^ msg })
  | Ok conn ->
    Wire.set_timeout conn receive_timeout;
    let questions, outcome =
      match
        match instance with
        | None -> drive_over conn ~seed ~strategy
        | Some instance_seed ->
          drive_session conn
            ~source:(synthetic_source (params instance_seed))
            ~instance_seed ~seed ~strategy
      with
      | Ok asked -> (asked, Ok ())
      | Error e -> (0, Error e)
      | exception exn -> (0, Error (diverged "%s" (Printexc.to_string exn)))
    in
    Wire.close conn;
    report ~seed ~strategy ~questions outcome

let strategy_for i = if i mod 2 = 0 then "lookahead-entropy" else "random"

let run ?(clients = 32) ?(framing = Wire.Line)
    ?(receive_timeout = default_receive_timeout) ?instance ~address () =
  let reports = ref [] in
  let lock = Mutex.create () in
  let spawn i =
    Thread.create
      (fun () ->
        let seed = 100 + i in
        let strategy = strategy_for i in
        let r =
          drive_one ~framing ~receive_timeout ?instance ~address ~seed
            ~strategy ()
        in
        Mutex.lock lock;
        reports := r :: !reports;
        Mutex.unlock lock)
      ()
  in
  let threads = List.init clients spawn in
  List.iter Thread.join threads;
  List.sort (fun a b -> compare a.seed b.seed) !reports

(* ------------------------------------------------------------------ *)
(* Pipelined drill: one connection carries [pipeline] interleaved
   sessions, each a little state machine holding at most one in-flight
   request (a session's next request depends on the previous reply, so
   per-session ordering is trivially safe) — the connection as a whole
   keeps up to [pipeline] requests in flight.  The server returns
   replies in request order, so a FIFO of session indices in send order
   routes each reply back to its machine.  Every session is held to the
   same bit-identity bar as [run]. *)

type pipeline_phase =
  | Awaiting_start
  | Awaiting_question
  | Awaiting_answer
  | Awaiting_result
  | Awaiting_end

type pipeline_slot = {
  pseed : int;
  pstrategy : string;
  oracle : Oracle.t;
  expected : Session.outcome;
  mutable session : int;
  mutable asked : int;
  mutable phase : pipeline_phase;
  mutable outcome : (unit, fail) result option;  (* [None] = still running *)
}

type pipeline_step =
  | Next of P.request  (* send this, stay in flight *)
  | Finished
  | Failed of fail

let pipeline_slot ~seed ~strategy =
  let inst = Jim_workloads.Synthetic.generate (params seed) in
  let oracle = Oracle.of_goal inst.Jim_workloads.Synthetic.goal in
  let strat =
    match Strategy.of_string strategy with
    | Ok s -> s
    | Error msg -> invalid_arg msg
  in
  let expected =
    Session.run ~seed ~strategy:strat ~oracle
      inst.Jim_workloads.Synthetic.relation
  in
  {
    pseed = seed;
    pstrategy = strategy;
    oracle;
    expected;
    session = -1;
    asked = 0;
    phase = Awaiting_start;
    outcome = None;
  }

let pipeline_step slot line =
  match P.response_of_string line with
  | Error e -> Failed (diverged "bad reply: %s" (P.error_to_string e))
  | Ok (P.Failed e) -> Failed (diverged "%s" (P.error_to_string e))
  | Ok resp -> (
    match (slot.phase, resp) with
    | Awaiting_start, P.Started { session; _ } ->
      slot.session <- session;
      slot.phase <- Awaiting_question;
      Next (P.Get_question { session })
    | Awaiting_question, P.Question (Some { P.cls; sg; _ }) ->
      let label = Oracle.label slot.oracle sg in
      slot.phase <- Awaiting_answer;
      Next (P.Answer { session = slot.session; cls; label })
    | Awaiting_question, P.Question None ->
      slot.phase <- Awaiting_result;
      Next (P.Result { session = slot.session })
    | Awaiting_answer, P.Answered _ ->
      slot.asked <- slot.asked + 1;
      slot.phase <- Awaiting_question;
      Next (P.Get_question { session = slot.session })
    | Awaiting_result, P.Outcome got ->
      if outcome_equal slot.expected got then begin
        slot.phase <- Awaiting_end;
        Next (P.End_session { session = slot.session })
      end
      else
        Failed
          (diverged
             "outcome differs from local Session.run: wire %s/%d, local %s/%d"
             (Jim_partition.Partition.to_string got.Session.query)
             got.Session.interactions
             (Jim_partition.Partition.to_string slot.expected.Session.query)
             slot.expected.Session.interactions)
    | Awaiting_end, P.Ended -> Finished
    | _, other -> (
      match
        unexpected
          (match slot.phase with
          | Awaiting_start -> "Start_session"
          | Awaiting_question -> "Get_question"
          | Awaiting_answer -> "Answer"
          | Awaiting_result -> "Result"
          | Awaiting_end -> "End_session")
          other
      with
      | Error e -> Failed e
      | Ok _ -> assert false))

let drive_pipelined conn slots =
  let fifo = Queue.create () in
  let send idx req =
    match Wire.send_line ~flush:false conn (P.request_to_string req) with
    | Ok () -> Queue.push idx fifo
    | Error msg ->
      slots.(idx).outcome <- Some (Error { transport = true; msg })
  in
  Array.iteri
    (fun i s ->
      send i
        (P.Start_session
           {
             source = synthetic_source (params s.pseed);
             strategy = s.pstrategy;
             seed = s.pseed;
           }))
    slots;
  let rec loop () =
    if not (Queue.is_empty fifo) then begin
      match Wire.recv_line conn with
      | Error msg ->
        (* transport death takes every in-flight session with it *)
        Queue.iter
          (fun i ->
            if slots.(i).outcome = None then
              slots.(i).outcome <- Some (Error { transport = true; msg }))
          fifo;
        Queue.clear fifo
      | Ok line ->
        let i = Queue.pop fifo in
        let s = slots.(i) in
        (match pipeline_step s line with
        | Next req -> send i req
        | Finished -> s.outcome <- Some (Ok ())
        | Failed e -> s.outcome <- Some (Error e));
        loop ()
    end
  in
  loop ()

let run_pipelined ?(clients = 4) ?(pipeline = 8) ?(framing = Wire.Line)
    ?(receive_timeout = default_receive_timeout) ~address () =
  let reports = ref [] in
  let lock = Mutex.create () in
  let one ci =
    let slots =
      Array.init pipeline (fun k ->
          let seed = 700 + (ci * pipeline) + k in
          pipeline_slot ~seed ~strategy:(strategy_for k))
    in
    (match Wire.connect ~retries:50 ~framing address with
    | Error msg ->
      Array.iter
        (fun s ->
          s.outcome <- Some (Error { transport = true; msg = "connect: " ^ msg }))
        slots
    | Ok conn ->
      Wire.set_timeout conn receive_timeout;
      (try drive_pipelined conn slots
       with exn ->
         Array.iter
           (fun s ->
             if s.outcome = None then
               s.outcome <- Some (Error (diverged "%s" (Printexc.to_string exn))))
           slots);
      Wire.close conn);
    Array.to_list
      (Array.map
         (fun s ->
           report ~seed:s.pseed ~strategy:s.pstrategy ~questions:s.asked
             (Option.value s.outcome
                ~default:(Error (diverged "session never completed"))))
         slots)
  in
  let spawn ci =
    Thread.create
      (fun () ->
        let rs = one ci in
        Mutex.lock lock;
        reports := rs @ !reports;
        Mutex.unlock lock)
      ()
  in
  let threads = List.init clients spawn in
  List.iter Thread.join threads;
  List.sort (fun a b -> compare a.seed b.seed) !reports

(* ------------------------------------------------------------------ *)
(* Catalog drill: register once, start every client by fingerprint, and
   hold each session to the same bit-identity bar as [run] — plus the
   server's catalog counters for the caller to assert on (hits > 0,
   exactly one derivation). *)

let catalog_smoke ?(clients = 2) ?(instance = 7) ?(framing = Wire.Line)
    ?(receive_timeout = default_receive_timeout) ~address () =
  match Wire.connect ~retries:50 ~framing address with
  | Error msg -> Error ("connect: " ^ msg)
  | Ok conn -> (
    Wire.set_timeout conn receive_timeout;
    let fp =
      match
        call conn
          (P.Register_instance { source = synthetic_source (params instance) })
      with
      | Ok (P.Registered { fingerprint; _ }) -> Ok fingerprint
      | Ok other ->
        Error
          ("unexpected reply to Register_instance: "
          ^ P.response_to_string other)
      | Error { msg; _ } -> Error msg
    in
    match fp with
    | Error e ->
      Wire.close conn;
      Error e
    | Ok fp -> (
      let reports = ref [] in
      let lock = Mutex.create () in
      let spawn i =
        Thread.create
          (fun () ->
            let seed = 500 + i in
            let strategy = strategy_for i in
            let r =
              match Wire.connect ~retries:50 ~framing address with
              | Error msg ->
                report ~seed ~strategy ~questions:0
                  (Error { transport = true; msg = "connect: " ^ msg })
              | Ok c ->
                Wire.set_timeout c receive_timeout;
                let questions, outcome =
                  match
                    drive_session c ~source:(P.Catalog fp)
                      ~instance_seed:instance ~seed ~strategy
                  with
                  | Ok asked -> (asked, Ok ())
                  | Error e -> (0, Error e)
                  | exception exn ->
                    (0, Error (diverged "%s" (Printexc.to_string exn)))
                in
                Wire.close c;
                report ~seed ~strategy ~questions outcome
            in
            Mutex.lock lock;
            reports := r :: !reports;
            Mutex.unlock lock)
          ()
      in
      let threads = List.init clients spawn in
      List.iter Thread.join threads;
      let stats =
        match call conn P.Catalog_stats with
        | Ok (P.Catalog_info c) -> Ok c
        | Ok other ->
          Error
            ("unexpected reply to Catalog_stats: " ^ P.response_to_string other)
        | Error { msg; _ } -> Error msg
      in
      Wire.close conn;
      match stats with
      | Error e -> Error e
      | Ok stats ->
        Ok (List.sort (fun a b -> compare a.seed b.seed) !reports, stats)))

(* ------------------------------------------------------------------ *)
(* Crash drill: leave sessions half-answered, let the caller SIGKILL the
   server, then resume against the restarted one and hold it to the same
   bit-identical bar as an uninterrupted run. *)

let expected_outcome ~seed ~strategy =
  let inst = Jim_workloads.Synthetic.generate (params seed) in
  let oracle = Oracle.of_goal inst.Jim_workloads.Synthetic.goal in
  let strat =
    match Strategy.of_string strategy with
    | Ok s -> s
    | Error msg -> invalid_arg msg
  in
  ( oracle,
    Session.run ~seed ~strategy:strat ~oracle
      inst.Jim_workloads.Synthetic.relation )

let start_synthetic conn ~seed ~strategy =
  let p = params seed in
  let* resp =
    call conn
      (P.Start_session
         {
           source =
             P.Synthetic
               {
                 n_attrs = p.Jim_workloads.Synthetic.n_attrs;
                 n_tuples = p.Jim_workloads.Synthetic.n_tuples;
                 domain = p.Jim_workloads.Synthetic.domain;
                 goal_rank = p.Jim_workloads.Synthetic.goal_rank;
                 seed = p.Jim_workloads.Synthetic.seed;
               };
           strategy;
           seed;
         })
  in
  match resp with
  | P.Started { session; _ } -> Ok session
  | P.Failed e -> Error (diverged "%s" (P.error_to_string e))
  | other -> unexpected "Start_session" other

let answer_rounds conn ~session ~oracle ~rounds =
  (* [rounds < 0]: run to completion.  Returns how many were answered. *)
  let rec loop asked =
    if asked = rounds then Ok asked
    else
      let* q = call conn (P.Get_question { session }) in
      match q with
      | P.Question None -> Ok asked
      | P.Question (Some { P.cls; sg; _ }) -> (
        let label = Oracle.label oracle sg in
        let* a = call conn (P.Answer { session; cls; label }) in
        match a with
        | P.Answered _ -> loop (asked + 1)
        | other -> unexpected "Answer" other)
      | other -> unexpected "Get_question" other
  in
  loop 0

let crash_start ~address ~state_file ?(clients = 8)
    ?(receive_timeout = default_receive_timeout) () =
  let lock = Mutex.create () in
  let lines = ref [] and reports = ref [] in
  let one i =
    let seed = 100 + i in
    let strategy = strategy_for i in
    let outcome =
      match Wire.connect ~retries:50 address with
      | Error msg -> Error { transport = true; msg = "connect: " ^ msg }
      | Ok conn ->
        Wire.set_timeout conn receive_timeout;
        let r =
          match
            let oracle, expected = expected_outcome ~seed ~strategy in
            let* session = start_synthetic conn ~seed ~strategy in
            (* Half the reference run's interactions: enough history to make
               recovery non-trivial, with real work left for the resume. *)
            let rounds = max 1 (expected.Session.interactions / 2) in
            let* asked = answer_rounds conn ~session ~oracle ~rounds in
            Ok (Printf.sprintf "%d %s %d %d" seed strategy session asked, asked)
          with
          | r -> r
          | exception exn -> Error (diverged "%s" (Printexc.to_string exn))
        in
        Wire.close conn;
        r
    in
    Mutex.lock lock;
    (match outcome with
    | Ok (line, asked) ->
      lines := line :: !lines;
      reports :=
        report ~seed ~strategy ~questions:asked (Ok ()) :: !reports
    | Error e -> reports := report ~seed ~strategy ~questions:0 (Error e) :: !reports);
    Mutex.unlock lock
  in
  let threads = List.init clients (fun i -> Thread.create one i) in
  List.iter Thread.join threads;
  let oc = open_out state_file in
  List.iter (fun l -> output_string oc (l ^ "\n")) (List.sort compare !lines);
  close_out oc;
  List.sort (fun a b -> compare a.seed b.seed) !reports

let resume_one ~receive_timeout ~address ~seed ~strategy ~session ~already =
  match Wire.connect ~retries:50 address with
  | Error msg -> Error { transport = true; msg = "connect: " ^ msg }
  | Ok conn ->
    Wire.set_timeout conn receive_timeout;
    let r =
      match
        let oracle, expected = expected_outcome ~seed ~strategy in
        (* Every acknowledged answer must have survived the kill. *)
        let* st = call conn (P.Stats { session }) in
        let* () =
          match st with
          | P.Session_stats { labeled; _ } when labeled = already -> Ok ()
          | P.Session_stats { labeled; _ } ->
            Error
              (diverged
                 "recovered session holds %d answers, %d were acknowledged"
                 labeled already)
          | other -> (
            match unexpected "Stats" other with
            | Error _ as e -> e
            | Ok _ -> assert false)
        in
        let* _ = answer_rounds conn ~session ~oracle ~rounds:(-1) in
        let* r = call conn (P.Result { session }) in
        let* got =
          match r with
          | P.Outcome o -> Ok o
          | other -> unexpected "Result" other
        in
        let* _ = call conn (P.End_session { session }) in
        if outcome_equal expected got then Ok got.Session.interactions
        else
          Error
            (diverged
               "resumed outcome differs from uninterrupted run: wire %s/%d, local %s/%d"
               (Jim_partition.Partition.to_string got.Session.query)
               got.Session.interactions
               (Jim_partition.Partition.to_string expected.Session.query)
               expected.Session.interactions)
      with
      | r -> r
      | exception exn -> Error (diverged "%s" (Printexc.to_string exn))
    in
    Wire.close conn;
    r

let crash_resume ~address ~state_file
    ?(receive_timeout = default_receive_timeout) () =
  let ic = open_in state_file in
  let rec read acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> read (line :: acc)
  in
  let lines = read [] in
  close_in ic;
  List.map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ seed; strategy; session; asked ] -> (
        let seed = int_of_string seed
        and session = int_of_string session
        and asked = int_of_string asked in
        match
          resume_one ~receive_timeout ~address ~seed ~strategy ~session
            ~already:asked
        with
        | Ok questions -> report ~seed ~strategy ~questions (Ok ())
        | Error e -> report ~seed ~strategy ~questions:0 (Error e))
      | _ ->
        {
          seed = 0;
          strategy = "";
          questions = 0;
          ok = false;
          dropped = false;
          detail = "bad state line: " ^ line;
        })
    lines

let busy_check ?(receive_timeout = default_receive_timeout) ~address ~fill () =
  match Wire.connect ~retries:50 address with
  | Error msg -> Error ("connect: " ^ msg)
  | Ok conn ->
    (* A server that neither accepts nor refuses the overflow session —
       it just never replies — must fail the drill, not hang it. *)
    Wire.set_timeout conn receive_timeout;
    let start seed =
      call conn
        (P.Start_session
           { source = P.Builtin "flights"; strategy = "random"; seed })
    in
    let finish r =
      Wire.close conn;
      match r with Ok () -> Ok () | Error { msg; _ } -> Error msg
    in
    let rec open_all acc k =
      if k = 0 then Ok acc
      else
        let* resp = start k in
        match resp with
        | P.Started { session; _ } -> open_all (session :: acc) (k - 1)
        | other -> unexpected "Start_session (fill)" other
    in
    finish
      (let* sessions = open_all [] fill in
       let* overflow = start 0 in
       let verdict =
         match overflow with
         | P.Failed (P.Server_busy { active; max })
           when active >= fill && max = fill -> Ok ()
         | P.Failed (P.Server_busy { active; max }) ->
           Error
             (diverged "Server_busy with odd counters: active=%d max=%d"
                active max)
         | other ->
           (match unexpected "saturated Start_session" other with
           | Error _ as e -> e
           | Ok _ -> assert false)
       in
       List.iter
         (fun session -> ignore (call conn (P.End_session { session })))
         sessions;
       verdict)

(* ------------------------------------------------------------------ *)
(* Crowd drill: one controller session, [labelers] concurrent labeler
   clients each attaching, polling the voting round and casting a
   (possibly noise-flipped) ballot, until the session converges.  Each
   labeler draws exactly one label per round it sees — its noise stream
   is seeded, so which answers are wrong is deterministic per (labeler
   seed, round sequence), independent of scheduling.  The aggregate the
   server absorbs is the only event that reaches the journal. *)

type labeler_spec = {
  error_rate : float;
  labeler_seed : int;
  labeler_address : Wire.address option;
      (* connect here instead of the controller's address — e.g. through
         a chaos proxy to make this labeler slow or absent *)
}

let perfect_labeler seed = { error_rate = 0.; labeler_seed = seed; labeler_address = None }

type crowd_report = {
  creport : client_report;
  crowd : P.crowd_stats option;  (* server counters, when fetchable *)
  got : Session.outcome option;  (* the wire outcome, when reached *)
  reference : Session.outcome;  (* noiseless Session.run on the instance *)
}

(* One labeler client.  Returns how many ballots were cast and how many
   the server counted (stale ballots — rounds closed by quorum or
   deadline before ours landed — are the difference). *)
let labeler_loop ?(framing = Wire.Line)
    ?(receive_timeout = default_receive_timeout) ?(poll_interval = 0.002)
    ~address ~session ~oracle () =
  match Wire.connect ~retries:50 ~framing address with
  | Error msg -> Error { transport = true; msg = "connect: " ^ msg }
  | Ok conn ->
    Wire.set_timeout conn receive_timeout;
    let r =
      match
        let* resp = call conn (P.Labeler_attach { session }) in
        let* labeler =
          match resp with
          | P.Labeler_attached { labeler; _ } -> Ok labeler
          | P.Failed e -> Error (diverged "%s" (P.error_to_string e))
          | other -> unexpected "Labeler_attach" other
        in
        let rec loop last_round cast counted =
          let* q = call conn (P.Labeler_poll { session; labeler }) in
          match q with
          | P.Crowd_question { question = None; _ } -> Ok (cast, counted)
          | P.Crowd_question { round; question = Some { P.sg; _ } } ->
            if round = last_round then begin
              (* already voted this round; wait for the quorum *)
              Thread.delay poll_interval;
              loop last_round cast counted
            end
            else
              let label = Oracle.label oracle sg in
              let* v = call conn (P.Vote { session; labeler; round; label }) in
              (match v with
              | P.Vote_ok { counted = c; _ } ->
                loop round (cast + 1) (counted + if c then 1 else 0)
              | P.Failed e -> Error (diverged "%s" (P.error_to_string e))
              | other -> unexpected "Vote" other)
          | P.Failed (P.Unknown_session _) ->
            Ok (cast, counted) (* the controller gave up and ended it *)
          | P.Failed e -> Error (diverged "%s" (P.error_to_string e))
          | other -> unexpected "Labeler_poll" other
        in
        loop 0 0 0
      with
      | r -> r
      | exception exn -> Error (diverged "%s" (Printexc.to_string exn))
    in
    Wire.close conn;
    r

let run_labeler ?framing ?receive_timeout ?poll_interval ~address ~session
    ~oracle () =
  match
    labeler_loop ?framing ?receive_timeout ?poll_interval ~address ~session
      ~oracle ()
  with
  | Ok counts -> Ok counts
  | Error { msg; _ } -> Error msg

let crowd_run ?(framing = Wire.Line)
    ?(receive_timeout = default_receive_timeout) ?(poll_interval = 0.002)
    ?(deadline = 120.) ~address ~seed ~strategy ~labelers () =
  let inst = Jim_workloads.Synthetic.generate (params seed) in
  let goal_oracle = Oracle.of_goal inst.Jim_workloads.Synthetic.goal in
  let strat =
    match Strategy.of_string strategy with
    | Ok s -> s
    | Error msg -> invalid_arg msg
  in
  let reference =
    Session.run ~seed ~strategy:strat ~oracle:goal_oracle
      inst.Jim_workloads.Synthetic.relation
  in
  let fail e =
    { creport = report ~seed ~strategy ~questions:0 (Error e);
      crowd = None; got = None; reference }
  in
  match Wire.connect ~retries:50 ~framing address with
  | Error msg -> fail { transport = true; msg = "connect: " ^ msg }
  | Ok conn -> (
    Wire.set_timeout conn receive_timeout;
    let started =
      call conn
        (P.Start_session
           { source = synthetic_source (params seed); strategy; seed })
    in
    match started with
    | Error e ->
      Wire.close conn;
      fail e
    | Ok (P.Failed e) ->
      Wire.close conn;
      fail (diverged "%s" (P.error_to_string e))
    | Ok (P.Started { session; _ }) ->
      let fails = Array.make (List.length labelers) None in
      let threads =
        List.mapi
          (fun i spec ->
            Thread.create
              (fun () ->
                let oracle =
                  Oracle.noisy ~seed:spec.labeler_seed
                    ~flip_probability:spec.error_rate goal_oracle
                in
                let address =
                  Option.value spec.labeler_address ~default:address
                in
                match
                  labeler_loop ~framing ~receive_timeout ~poll_interval
                    ~address ~session ~oracle ()
                with
                | Ok _ -> ()
                | Error e -> fails.(i) <- Some e)
              ())
          labelers
      in
      let t0 = Unix.gettimeofday () in
      let rec wait_done () =
        if Unix.gettimeofday () -. t0 > deadline then Ok false
        else
          let* q = call conn (P.Get_question { session }) in
          match q with
          | P.Question None -> Ok true
          | P.Question (Some _) ->
            Thread.delay poll_interval;
            wait_done ()
          | P.Failed e -> Error (diverged "%s" (P.error_to_string e))
          | other -> unexpected "Get_question" other
      in
      let finished = try wait_done () with exn -> Error (diverged "%s" (Printexc.to_string exn)) in
      (* Harvest before ending: the coordinator's counters die with the
         session. *)
      let crowd =
        match call conn (P.Crowd_stats { session }) with
        | Ok (P.Crowd_info c) -> Some c
        | _ -> None
      in
      let got =
        match call conn (P.Result { session }) with
        | Ok (P.Outcome o) -> Some o
        | _ -> None
      in
      ignore (call conn (P.End_session { session }));
      List.iter Thread.join threads;
      Wire.close conn;
      let questions = match crowd with Some c -> c.P.rounds | None -> 0 in
      let labeler_fail =
        Array.fold_left
          (fun acc f ->
            match (acc, f) with
            | Some _, _ -> acc
            | None, Some e when not e.transport -> Some e
            | None, _ -> None)
          None fails
      in
      let outcome =
        match (finished, labeler_fail, got) with
        | Error e, _, _ -> Error e
        | _, Some e, _ -> Error e
        | Ok false, _, _ ->
          Error (diverged "no convergence within %.0f s deadline" deadline)
        | Ok true, None, None -> Error (diverged "no outcome after convergence")
        | Ok true, None, Some got ->
          if List.for_all (fun s -> s.error_rate = 0.) labelers then
            (* Perfect crowd: the whole transcript must be bit-identical
               to the noiseless in-process run. *)
            if outcome_equal reference got then Ok ()
            else
              Error
                (diverged
                   "crowd outcome differs from local Session.run: wire %s/%d, \
                    local %s/%d"
                   (Jim_partition.Partition.to_string got.Session.query)
                   got.Session.interactions
                   (Jim_partition.Partition.to_string reference.Session.query)
                   reference.Session.interactions)
          else Ok () (* noisy: the caller judges [got] against [reference] *)
      in
      { creport = report ~seed ~strategy ~questions outcome; crowd; got; reference }
    | Ok other ->
      Wire.close conn;
      (match unexpected "Start_session" other with
      | Error e -> fail e
      | Ok _ -> assert false))
