(** Process-wide wire-layer counters: connections accepted / active /
    failed, malformed requests, requests served, negotiated-binary
    connections, and bytes in / out of the serve loop.  The network-side
    sibling of {!Jim_core.Metrics} — atomic, updated by the event loop
    and the worker pool, read by [jim serve] stats reporting and the
    wire bench. *)

type snapshot = {
  accepted : int;  (** connections ever accepted *)
  active : int;    (** accepted - closed *)
  closed : int;
  failed : int;
      (** connections torn down by an I/O error or a framing violation,
          as opposed to a clean peer close *)
  malformed : int;
      (** request payloads the protocol layer could not parse, plus
          binary-framing violations *)
  requests : int;  (** request payloads dispatched to the service *)
  binary_conns : int;  (** connections that negotiated binary framing *)
  bytes_in : int;
  bytes_out : int;
}

val snapshot : unit -> snapshot
val reset : unit -> unit

val to_string : snapshot -> string
val to_json : snapshot -> string

(** {1 Recording (called by the wire loop)} *)

val record_accept : unit -> unit
val record_close : unit -> unit
val record_failure : unit -> unit
val record_malformed : unit -> unit
val record_read : int -> unit
val record_write : int -> unit
val record_binary : unit -> unit
val record_request : unit -> unit
