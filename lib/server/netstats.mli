(** Process-wide wire-layer counters: connections accepted / active /
    failed, malformed requests, requests served, negotiated-binary
    connections, and bytes in / out of the serve loop.  The network-side
    sibling of {!Jim_core.Metrics} — atomic, updated by the event loop
    and the worker pool, read by [jim serve] stats reporting and the
    wire bench. *)

type snapshot = {
  accepted : int;  (** connections ever accepted *)
  active : int;    (** accepted - closed *)
  closed : int;
  failed : int;
      (** connections torn down by an I/O error or a framing violation,
          as opposed to a clean peer close *)
  malformed : int;
      (** request payloads the protocol layer could not parse, plus
          binary-framing violations *)
  requests : int;  (** request payloads dispatched to the service *)
  binary_conns : int;  (** connections that negotiated binary framing *)
  bytes_in : int;
  bytes_out : int;
  writes_coalesced : int;
      (** responses that rode a flush an earlier response triggered —
          a flush carrying [n] responses counts [n - 1] here *)
  flushes : int;  (** response flush attempts (socket write rounds) *)
  pipelined_depth_max : int;
      (** high-water mark of concurrently in-flight requests on any one
          connection — 1 for strictly request/reply clients, up to the
          server's pipeline bound for pipelining ones *)
}

val snapshot : unit -> snapshot
val reset : unit -> unit

val to_string : snapshot -> string
val to_json : snapshot -> string

(** {1 Recording (called by the wire loop)} *)

val record_accept : unit -> unit
val record_close : unit -> unit
val record_failure : unit -> unit
val record_malformed : unit -> unit
val record_read : int -> unit
val record_write : int -> unit
val record_binary : unit -> unit
val record_request : unit -> unit
val record_flush : unit -> unit

val record_coalesced : int -> unit
(** [record_coalesced n] — [n] responses shared a flush with an earlier
    one ([n = responses in the flush - 1]; no-op for [n <= 0]). *)

val record_depth : int -> unit
(** Raise the pipelined-depth high-water mark to at least this value. *)
