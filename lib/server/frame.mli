(** Length-prefixed binary framing: the fast alternative to
    line-delimited JSON, negotiated per connection.

    Frame layout: 4-byte little-endian payload length, then the payload
    bytes — the same one-line JSON the line protocol carries, so
    {!Jim_api.Protocol} is unchanged and a session driven over frames is
    bit-identical to one driven over lines.

    Negotiation: a client that wants binary sends {!handshake_request}
    as its first {e line}; a binary-capable server replies with the
    {!handshake_ack} line and both sides switch to frames.  An old
    server replies with a JSON parse error instead, which the client can
    detect and fall back on — negotiation never breaks a line-only
    peer. *)

val version : int
val handshake_request : string
(** ["JIMBIN 1"] (sent as a line, newline-terminated on the wire). *)

val handshake_ack : string

val header_size : int
(** Bytes of length prefix per frame (4). *)

val max_payload : int
(** Upper bound on a payload; a length field beyond it decodes as
    {!Junk} rather than stalling the read waiting for impossible
    bytes. *)

val encode : Buffer.t -> string -> unit
(** Append one frame.  Raises [Invalid_argument] past {!max_payload}. *)

val to_string : string -> string
(** [to_string p] is one whole encoded frame. *)

type decoded =
  | Frame of string * int
      (** payload, total bytes consumed (header + payload) *)
  | Need_more  (** a prefix of a valid frame: read more, never an error *)
  | Junk of string  (** not a frame; the connection is unrecoverable *)

val decode : Bytes.t -> off:int -> len:int -> decoded
(** Incremental decode of the [len] bytes at [off].  Total: every input
    yields [Frame], [Need_more] or [Junk] — never an exception. *)

val decode_string : string -> off:int -> decoded
(** {!decode} over a string tail (tests, offline tooling). *)
