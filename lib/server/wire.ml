module P = Jim_api.Protocol

type address = Tcp of string * int | Unix_path of string

let address_to_string = function
  | Tcp (host, port) ->
    (* IPv6 literals go back out in the same bracket syntax
       [address_of_string] accepts, so the two stay inverses. *)
    if String.contains host ':' then Printf.sprintf "[%s]:%d" host port
    else Printf.sprintf "%s:%d" host port
  | Unix_path path -> "unix:" ^ path

let address_of_string s =
  let prefix = "unix:" in
  let plen = String.length prefix in
  let parse_port host port =
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "bad port %S" port)
  in
  if String.length s >= plen && String.sub s 0 plen = prefix then
    Ok (Unix_path (String.sub s plen (String.length s - plen)))
  else if String.length s > 0 && s.[0] = '[' then
    (* [v6-literal]:PORT — the only unambiguous way to write an IPv6
       host, which contains colons itself. *)
    match String.index_opt s ']' with
    | None -> Error (Printf.sprintf "bad address %S (unclosed '[')" s)
    | Some i ->
      let host = String.sub s 1 (i - 1) in
      if i + 1 >= String.length s || s.[i + 1] <> ':' then
        Error (Printf.sprintf "bad address %S (want [HOST]:PORT)" s)
      else if host = "" then Error (Printf.sprintf "bad address %S (empty host)" s)
      else parse_port host (String.sub s (i + 2) (String.length s - i - 2))
  else
    match String.rindex_opt s ':' with
    | Some i when String.index s ':' <> i ->
      (* Splitting a bare multi-colon spec on the last colon would
         silently misread ::1:9090 as host "::1" — or worse; refuse. *)
      Error
        (Printf.sprintf
           "ambiguous address %S: IPv6 literals need brackets, as in [::1]:9090"
           s)
    | Some i ->
      parse_port (String.sub s 0 i)
        (String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT or unix:PATH)" s)

let inet_addr host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (inet_addr host, port)

let socket_for addr =
  (* The socket family must match the resolved address: an AF_INET socket
     cannot bind or connect ::1. *)
  match sockaddr_of addr with
  | Unix.ADDR_UNIX _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | sa -> Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ()  (* not a POSIX platform *)

(* ------------------------------------------------------------------ *)
(* Server: an epoll event loop                                         *)

(* One event-loop thread owns every socket: non-blocking reads and
   writes, per-connection buffers, framing negotiation.  Parsed request
   payloads go to a worker pool (scoring is the expensive part and must
   not stall the loop); completed responses come back over a queue plus
   a wake pipe.  A thousand mostly-idle clients therefore cost a
   thousand fds in one epoll set, not a thousand blocked threads. *)

type framing = Line | Binary

(* A growable byte queue: the per-connection read and write buffer.
   Data lives in [buf.[off .. off+len-1]]; consumption slides [off],
   [reserve] compacts or grows.  Reused across every read and every
   response on the connection — no per-request allocation. *)
module Bq = struct
  type t = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

  let create n = { buf = Bytes.create (max 16 n); off = 0; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0

  let reserve t extra =
    if t.off + t.len + extra > Bytes.length t.buf then begin
      if t.off > 0 then begin
        Bytes.blit t.buf t.off t.buf 0 t.len;
        t.off <- 0
      end;
      if t.len + extra > Bytes.length t.buf then begin
        let cap = ref (max 64 (Bytes.length t.buf)) in
        while t.len + extra > !cap do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf 0 nb 0 t.len;
        t.buf <- nb
      end
    end

  let add_string t s =
    let n = String.length s in
    reserve t n;
    Bytes.blit_string s 0 t.buf (t.off + t.len) n;
    t.len <- t.len + n

  let add_frame t payload =
    let n = String.length payload in
    reserve t (Frame.header_size + n);
    let base = t.off + t.len in
    Bytes.set t.buf base (Char.chr (n land 0xff));
    Bytes.set t.buf (base + 1) (Char.chr ((n lsr 8) land 0xff));
    Bytes.set t.buf (base + 2) (Char.chr ((n lsr 16) land 0xff));
    Bytes.set t.buf (base + 3) (Char.chr ((n lsr 24) land 0xff));
    Bytes.blit_string payload 0 t.buf (base + Frame.header_size) n;
    t.len <- t.len + Frame.header_size + n

  let take_string t n =
    let s = Bytes.sub_string t.buf t.off n in
    t.off <- t.off + n;
    t.len <- t.len - n;
    if t.len = 0 then t.off <- 0;
    s

  let consume t n =
    t.off <- t.off + n;
    t.len <- t.len - n;
    if t.len = 0 then t.off <- 0

  let index_newline t =
    let rec go i =
      if i >= t.len then None
      else if Bytes.get t.buf (t.off + i) = '\n' then Some i
      else go (i + 1)
    in
    go 0
end

type config = {
  threads : int;
  backlog : int;
  drain_timeout : float;
  sweep_interval : float;
  max_pipeline : int;
}

let default_config =
  {
    threads = 16;
    backlog = 64;
    drain_timeout = 2.0;
    sweep_interval = 30.0;
    max_pipeline = 8;
  }

type conn = {
  fd : Unix.file_descr;
  token : int;
      (* completions address connections by token, never by fd: the
         kernel reuses fd numbers the moment one closes, a token is
         never reused — a late response can only be dropped, not
         delivered to the wrong peer *)
  mutable mode : framing;
  rbuf : Bq.t;
  wbuf : Bq.t;
  pending : string Queue.t;  (* parsed payloads not yet dispatched *)
  mutable in_flight : int;
      (* requests handed to workers whose replies have not been emitted
         yet — bounded by the server's pipeline depth *)
  mutable next_seq : int;  (* per-conn sequence stamped on dispatch *)
  mutable next_reply : int;  (* next sequence to emit (request order) *)
  replies : (int, string) Hashtbl.t;
      (* completed replies waiting for an earlier sequence to finish —
         the reorder buffer that keeps responses in request order even
         when workers finish out of order *)
  mutable rd_closed : bool;  (* peer EOF seen; flush replies, then close *)
  mutable want_out : bool;   (* registered for writability *)
  mutable dead : bool;
}

type server = {
  handler : string -> string * bool;
      (* one request payload in, one response payload out, plus whether
         the request parsed at all (malformed counting); usually
         [Service.handle_line_status], but the shard router and the
         replication standby plug their own in *)
  drain_timeout : float;
  max_pipeline : int;  (* in-flight requests allowed per connection *)
  listen_fd : Unix.file_descr;
  bound : address;
  jobs : (int * int * string) Queue.t;  (* token, seq, request payload *)
  jlock : Mutex.t;
  jcond : Condition.t;
  completions : (int * int * string) Queue.t;  (* token, seq, response *)
  clock : Mutex.t;
  mutable stopping : bool;
  mutable pool : Thread.t list;
      (* event loop + workers + sweeper; joined on shutdown *)
  wake_r : Unix.file_descr;
      (* self-pipe: workers wake the event loop out of epoll_wait when a
         completion lands (and shutdown wakes it to exit) *)
  wake_w : Unix.file_descr;
  stop_r : Unix.file_descr;
      (* self-pipe: the sweeper sleeps in [select] on this instead of
         [Thread.delay], so shutdown can wake it instantly and join it *)
  stop_w : Unix.file_descr;
}

let wake srv =
  (* Nonblocking: a full pipe already holds a pending wake. *)
  try ignore (Unix.write srv.wake_w (Bytes.of_string "w") 0 1)
  with Unix.Unix_error _ -> ()

let worker srv =
  let rec next () =
    Mutex.lock srv.jlock;
    while Queue.is_empty srv.jobs && not srv.stopping do
      Condition.wait srv.jcond srv.jlock
    done;
    let job =
      if Queue.is_empty srv.jobs then None else Some (Queue.pop srv.jobs)
    in
    Mutex.unlock srv.jlock;
    match job with
    | None -> ()
    | Some (token, seq, payload) ->
      let resp, parsed = srv.handler payload in
      if not parsed then Netstats.record_malformed ();
      Mutex.lock srv.clock;
      Queue.push (token, seq, resp) srv.completions;
      Mutex.unlock srv.clock;
      wake srv;
      next ()
  in
  next ()

let event_loop srv =
  let poller = Epoll.create () in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let by_fd : (Unix.file_descr, int) Hashtbl.t = Hashtbl.create 64 in
  let next_token = ref 0 in
  Epoll.add poller srv.listen_fd ~readable:true ~writable:false;
  Epoll.add poller srv.wake_r ~readable:true ~writable:false;

  let close_conn ?(failed = false) conn =
    if not conn.dead then begin
      conn.dead <- true;
      Hashtbl.remove conns conn.token;
      Hashtbl.remove by_fd conn.fd;
      Epoll.remove poller conn.fd;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      Netstats.record_close ();
      if failed then Netstats.record_failure ()
    end
  in
  let maybe_close conn =
    if
      (not conn.dead) && conn.rd_closed && conn.in_flight = 0
      && Queue.is_empty conn.pending
      && Bq.is_empty conn.wbuf
    then close_conn conn
  in
  let update_interest conn =
    let want = not (Bq.is_empty conn.wbuf) in
    if want <> conn.want_out then begin
      conn.want_out <- want;
      Epoll.modify poller conn.fd ~readable:true ~writable:want
    end
  in
  let rec try_write conn =
    if (not conn.dead) && not (Bq.is_empty conn.wbuf) then begin
      match Unix.write conn.fd conn.wbuf.Bq.buf conn.wbuf.Bq.off conn.wbuf.Bq.len with
      | n ->
        Netstats.record_write n;
        Bq.consume conn.wbuf n;
        if n > 0 then try_write conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_write conn
      | exception (Unix.Unix_error _ | Sys_error _) ->
        close_conn ~failed:true conn
    end;
    if not conn.dead then begin
      update_interest conn;
      maybe_close conn
    end
  in
  (* Hand up to [max_pipeline] parsed requests to the workers at once.
     Each carries the connection's sequence number, so replies can be
     reassembled into request order no matter which worker finishes
     first. *)
  let dispatch conn =
    let burst = ref 0 in
    while
      (not conn.dead)
      && conn.in_flight < srv.max_pipeline
      && not (Queue.is_empty conn.pending)
    do
      let payload = Queue.pop conn.pending in
      let seq = conn.next_seq in
      conn.next_seq <- seq + 1;
      conn.in_flight <- conn.in_flight + 1;
      Netstats.record_request ();
      Netstats.record_depth conn.in_flight;
      Mutex.lock srv.jlock;
      Queue.push (conn.token, seq, payload) srv.jobs;
      Mutex.unlock srv.jlock;
      incr burst
    done;
    if !burst > 0 then begin
      (* One signal per queued job, not a broadcast: a pipelined burst
         needs exactly [burst] workers, and waking the whole (possibly
         much larger) idle pool for every burst is a thundering herd
         that costs more than the requests themselves under load.  A
         signal landing on an already-running worker is harmless — any
         awake worker drains the queue before sleeping. *)
      Mutex.lock srv.jlock;
      for _ = 1 to !burst do
        Condition.signal srv.jcond
      done;
      Mutex.unlock srv.jlock
    end
  in
  (* Append a response to the connection's write buffer without
     flushing: completions are buffered per event-loop round and
     flushed once per touched connection, so replies that complete
     together leave in one write. *)
  let buffer_response conn payload =
    match conn.mode with
    | Line ->
      Bq.add_string conn.wbuf payload;
      Bq.add_string conn.wbuf "\n"
    | Binary -> Bq.add_frame conn.wbuf payload
  in
  (* Extract every complete request sitting in the read buffer.  The
     handshake line is only honoured before any request is in flight —
     so switching framings can never reorder or reframe an earlier
     reply. *)
  let parse_conn conn =
    let progress = ref true in
    while !progress && not conn.dead do
      progress := false;
      match conn.mode with
      | Line -> (
        match Bq.index_newline conn.rbuf with
        | Some i ->
          let raw = Bq.take_string conn.rbuf i in
          Bq.consume conn.rbuf 1;
          let line = String.trim raw in
          progress := true;
          if line = "" then ()
          else if
            line = Frame.handshake_request
            && conn.in_flight = 0
            && Queue.is_empty conn.pending
          then begin
            conn.mode <- Binary;
            Netstats.record_binary ();
            Bq.add_string conn.wbuf (Frame.handshake_ack ^ "\n");
            try_write conn
          end
          else Queue.push line conn.pending
        | None ->
          if Bq.length conn.rbuf > Frame.max_payload then begin
            (* an endless line is not a protocol we speak *)
            Netstats.record_malformed ();
            close_conn ~failed:true conn
          end
          else if conn.rd_closed && not (Bq.is_empty conn.rbuf) then begin
            (* final unterminated line before EOF: the old input_line
               loop served it, so keep doing that *)
            let raw = Bq.take_string conn.rbuf (Bq.length conn.rbuf) in
            let line = String.trim raw in
            if line <> "" then Queue.push line conn.pending
          end)
      | Binary -> (
        match
          Frame.decode conn.rbuf.Bq.buf ~off:conn.rbuf.Bq.off
            ~len:conn.rbuf.Bq.len
        with
        | Frame.Frame (payload, used) ->
          Bq.consume conn.rbuf used;
          Queue.push payload conn.pending;
          progress := true
        | Frame.Need_more -> ()
        | Frame.Junk _ ->
          Netstats.record_malformed ();
          close_conn ~failed:true conn)
    done;
    if not conn.dead then begin
      dispatch conn;
      maybe_close conn
    end
  in
  let read_conn conn =
    let rec go () =
      Bq.reserve conn.rbuf 65536;
      let room = Bytes.length conn.rbuf.Bq.buf - conn.rbuf.Bq.off - conn.rbuf.Bq.len in
      match
        Unix.read conn.fd conn.rbuf.Bq.buf (conn.rbuf.Bq.off + conn.rbuf.Bq.len) room
      with
      | 0 -> conn.rd_closed <- true
      | n ->
        Netstats.record_read n;
        conn.rbuf.Bq.len <- conn.rbuf.Bq.len + n
        (* level-triggered: anything left is reported on the next wait,
           so one read per event keeps connections fair *)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
        close_conn ~failed:true conn
    in
    go ();
    if not conn.dead then parse_conn conn
  in
  let rec accept_loop () =
    match Unix.accept srv.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      incr next_token;
      let conn =
        {
          fd;
          token = !next_token;
          mode = Line;
          rbuf = Bq.create 4096;
          wbuf = Bq.create 4096;
          pending = Queue.create ();
          in_flight = 0;
          next_seq = 0;
          next_reply = 0;
          replies = Hashtbl.create 4;
          rd_closed = false;
          want_out = false;
          dead = false;
        }
      in
      Hashtbl.replace conns conn.token conn;
      Hashtbl.replace by_fd fd conn.token;
      Epoll.add poller fd ~readable:true ~writable:false;
      Netstats.record_accept ();
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      accept_loop ()
    | exception Unix.Unix_error _ -> ()  (* listen fd closed: shutting down *)
  in
  let drain_wake () =
    let scratch = Bytes.create 256 in
    let rec go () =
      match Unix.read srv.wake_r scratch 0 256 with
      | 256 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  (* Drain the completion queue in one go: buffer every reply (in
     request order, via the per-conn reorder buffer), refill each
     connection's worker pipeline, then flush each touched connection
     once — replies that completed in the same round leave in one
     socket write. *)
  let handle_completions () =
    Mutex.lock srv.clock;
    let batch = Queue.create () in
    Queue.transfer srv.completions batch;
    Mutex.unlock srv.clock;
    let touched : (int, conn * int ref) Hashtbl.t = Hashtbl.create 8 in
    Queue.iter
      (fun (token, seq, resp) ->
        match Hashtbl.find_opt conns token with
        | None -> ()  (* connection died while the worker was busy *)
        | Some conn ->
          conn.in_flight <- conn.in_flight - 1;
          Hashtbl.replace conn.replies seq resp;
          let emitted =
            match Hashtbl.find_opt touched token with
            | Some (_, e) -> e
            | None ->
              let e = ref 0 in
              Hashtbl.replace touched token (conn, e);
              e
          in
          let rec emit () =
            match Hashtbl.find_opt conn.replies conn.next_reply with
            | None -> ()
            | Some r ->
              Hashtbl.remove conn.replies conn.next_reply;
              conn.next_reply <- conn.next_reply + 1;
              buffer_response conn r;
              incr emitted;
              emit ()
          in
          emit ();
          if not conn.dead then dispatch conn)
      batch;
    Hashtbl.iter
      (fun _ (conn, emitted) ->
        if (not conn.dead) && !emitted > 0 then begin
          Netstats.record_flush ();
          Netstats.record_coalesced (!emitted - 1);
          try_write conn
        end
        else if not conn.dead then maybe_close conn)
      touched
  in
  (* After [stopping] flips, linger briefly so replies already being
     computed still go out — the contract is that in-flight requests
     finish; idle connections are simply dropped. *)
  let draining () =
    Hashtbl.fold
      (fun _ c acc -> acc || c.in_flight > 0 || not (Bq.is_empty c.wbuf))
      conns false
  in
  let deadline = ref None in
  let rec run () =
    let stop =
      if not srv.stopping then false
      else begin
        (match !deadline with
        | None -> deadline := Some (Unix.gettimeofday () +. srv.drain_timeout)
        | Some _ -> ());
        (not (draining ()))
        || (match !deadline with
           | Some d -> Unix.gettimeofday () > d
           | None -> false)
      end
    in
    if not stop then begin
      let timeout_ms = if srv.stopping then 20 else 200 in
      let evs = Epoll.wait poller ~timeout_ms in
      List.iter
        (fun { Epoll.fd; readable; writable } ->
          if fd = srv.listen_fd then begin
            if readable && not srv.stopping then accept_loop ()
          end
          else if fd = srv.wake_r then begin
            if readable then drain_wake ()
          end
          else
            match Hashtbl.find_opt by_fd fd with
            | None -> ()
            | Some token -> (
              match Hashtbl.find_opt conns token with
              | None -> ()
              | Some conn ->
                if writable && not conn.dead then try_write conn;
                if readable && not conn.dead then read_conn conn))
        evs;
      handle_completions ();
      run ()
    end
  in
  run ();
  Hashtbl.iter
    (fun _ conn ->
      conn.dead <- true;
      try Unix.close conn.fd with Unix.Unix_error _ -> ())
    conns;
  Hashtbl.reset conns;
  Hashtbl.reset by_fd;
  Epoll.close poller

let sweeper srv interval sweep =
  let rec loop () =
    if not srv.stopping then begin
      (match Unix.select [ srv.stop_r ] [] [] interval with
      | [], _, _ -> ()  (* interval elapsed *)
      | _ -> ()  (* shutdown wrote the wake byte *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not srv.stopping then begin
        ignore (sweep ());
        loop ()
      end
    end
  in
  loop ()

let serve_handler ?(config = default_config) ?sweep handler addr =
  ignore_sigpipe ();
  let fd = socket_for addr in
  (match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of addr);
  Unix.listen fd config.backlog;
  Unix.set_nonblock fd;
  let bound =
    match addr with
    | Tcp (host, 0) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp (host, port)
      | _ -> addr)
    | a -> a
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let stop_r, stop_w = Unix.pipe () in
  let srv =
    {
      handler;
      drain_timeout = config.drain_timeout;
      max_pipeline = max 1 config.max_pipeline;
      listen_fd = fd;
      bound;
      jobs = Queue.create ();
      jlock = Mutex.create ();
      jcond = Condition.create ();
      completions = Queue.create ();
      clock = Mutex.create ();
      stopping = false;
      pool = [];
      wake_r;
      wake_w;
      stop_r;
      stop_w;
    }
  in
  let workers =
    List.init (max 1 config.threads) (fun _ -> Thread.create worker srv)
  in
  let loop = Thread.create event_loop srv in
  let housekeeping =
    match sweep with
    | None -> []
    | Some f ->
      [ Thread.create (fun () -> sweeper srv config.sweep_interval f) () ]
  in
  srv.pool <- housekeeping @ (loop :: workers);
  srv

let serve ?(threads = 16) ?(backlog = 64)
    ?(drain_timeout = default_config.drain_timeout) service addr =
  let sweep_interval =
    Float.min (Float.max 0.5 (Service.idle_ttl service /. 4.)) 30.
  in
  serve_handler
    ~config:
      {
        threads;
        backlog;
        drain_timeout;
        sweep_interval;
        max_pipeline = default_config.max_pipeline;
      }
    ~sweep:(fun () -> Service.sweep service)
    (Service.handle_line_status service)
    addr

let bound_address srv = srv.bound
let wait srv = List.iter Thread.join srv.pool

let shutdown srv =
  srv.stopping <- true;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (* Wake the event loop out of epoll_wait and the sweeper out of its
     select sleep. *)
  wake srv;
  (try ignore (Unix.write srv.stop_w (Bytes.of_string "x") 0 1)
   with Unix.Unix_error _ -> ());
  Mutex.lock srv.jlock;
  Condition.broadcast srv.jcond;
  Mutex.unlock srv.jlock;
  List.iter Thread.join srv.pool;
  (try Unix.close srv.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close srv.wake_w with Unix.Unix_error _ -> ());
  (try Unix.close srv.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close srv.stop_w with Unix.Unix_error _ -> ());
  Mutex.lock srv.jlock;
  Queue.clear srv.jobs;
  Mutex.unlock srv.jlock;
  Mutex.lock srv.clock;
  Queue.clear srv.completions;
  Mutex.unlock srv.clock;
  match srv.bound with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

type client = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  framing : framing;
}

let client_framing c = c.framing

let negotiate_binary fd ic oc =
  match
    output_string oc Frame.handshake_request;
    output_char oc '\n';
    flush oc;
    input_line ic
  with
  | ack when ack = Frame.handshake_ack -> Ok { fd; ic; oc; framing = Binary }
  | ack ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error ("server refused binary framing: " ^ ack)
  | exception End_of_file ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error "server closed the connection during framing negotiation"
  | exception Sys_error msg ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error msg
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

let connect ?(retries = 0) ?(framing = Line) addr =
  ignore_sigpipe ();
  let rec attempt k =
    let fd = socket_for addr in
    match Unix.connect fd (sockaddr_of addr) with
    | () -> (
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      match framing with
      | Line -> Ok { fd; ic; oc; framing = Line }
      | Binary -> negotiate_binary fd ic oc)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if k < retries then begin
        Thread.delay 0.1;
        attempt (k + 1)
      end
      else Error (Unix.error_message e)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  attempt 0

(* Sending and receiving are split so a pipelining client can keep
   several requests in flight on one connection: send K, then match the
   K in-order replies back.  [call_line] composes them for the classic
   one-at-a-time exchange. *)

let send_line ?(flush = true) c line =
  match c.framing with
  | Line -> (
    match
      output_string c.oc line;
      output_char c.oc '\n';
      if flush then Stdlib.flush c.oc
    with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  | Binary -> (
    match
      let n = String.length line in
      if n > Frame.max_payload then failwith "request too large to frame";
      output_char c.oc (Char.chr (n land 0xff));
      output_char c.oc (Char.chr ((n lsr 8) land 0xff));
      output_char c.oc (Char.chr ((n lsr 16) land 0xff));
      output_char c.oc (Char.chr ((n lsr 24) land 0xff));
      output_string c.oc line;
      if flush then Stdlib.flush c.oc
    with
    | () -> Ok ()
    | exception Failure msg -> Error msg
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let recv_line c =
  match c.framing with
  | Line -> (
    match
      flush c.oc;
      input_line c.ic
    with
    | reply -> Ok reply
    | exception End_of_file -> Error "server closed the connection"
    (* SO_RCVTIMEO ([set_timeout]) surfaces through the buffered channel
       as [Sys_blocked_io], not [Unix_error]: a stalled peer must come
       back as a transport error, never escape as an exception. *)
    | exception Sys_blocked_io -> Error "receive timed out"
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  | Binary -> (
    match
      flush c.oc;
      let hdr = really_input_string c.ic Frame.header_size in
      let len =
        Char.code hdr.[0]
        lor (Char.code hdr.[1] lsl 8)
        lor (Char.code hdr.[2] lsl 16)
        lor (Char.code hdr.[3] lsl 24)
      in
      if len < 0 || len > Frame.max_payload then
        failwith (Printf.sprintf "bad reply frame length %d" len);
      really_input_string c.ic len
    with
    | reply -> Ok reply
    | exception End_of_file -> Error "server closed the connection"
    | exception Sys_blocked_io -> Error "receive timed out"
    | exception Failure msg -> Error msg
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let call_line c line =
  match send_line c line with Error _ as e -> e | Ok () -> recv_line c

let call c req =
  match call_line c (P.request_to_string req) with
  | Error _ as e -> e
  | Ok line -> (
    match P.response_of_string line with
    | Ok resp -> Ok resp
    | Error e -> Error ("bad reply: " ^ P.error_to_string e))

let set_timeout c seconds =
  try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
