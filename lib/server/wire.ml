module P = Jim_api.Protocol

type address = Tcp of string * int | Unix_path of string

let address_to_string = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_path path -> "unix:" ^ path

let address_of_string s =
  let prefix = "unix:" in
  let plen = String.length prefix in
  if String.length s >= plen && String.sub s 0 plen = prefix then
    Ok (Unix_path (String.sub s plen (String.length s - plen)))
  else
    match String.rindex_opt s ':' with
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
        Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad port %S" port))
    | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT or unix:PATH)" s)

let inet_addr host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (inet_addr host, port)

let socket_for = function
  | Unix_path _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ()  (* not a POSIX platform *)

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

type server = {
  service : Service.t;
  listen_fd : Unix.file_descr;
  bound : address;
  queue : Unix.file_descr Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable pool : Thread.t list;
      (* workers + acceptor + sweeper; joined on shutdown *)
  stop_r : Unix.file_descr;
      (* self-pipe: the sweeper sleeps in [select] on this instead of
         [Thread.delay], so shutdown can wake it instantly and join it *)
  stop_w : Unix.file_descr;
}

let handle_conn service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         let line = String.trim line in
         if line <> "" then begin
           output_string oc (Service.handle_line service line);
           output_char oc '\n';
           flush oc
         end;
         loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  (* ic and oc share [fd]; close it once, ignoring the inevitable
     second-close complaints from channel finalisers. *)
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker srv =
  let rec next () =
    Mutex.lock srv.qlock;
    while Queue.is_empty srv.queue && not srv.stopping do
      Condition.wait srv.qcond srv.qlock
    done;
    let job =
      if Queue.is_empty srv.queue then None else Some (Queue.pop srv.queue)
    in
    Mutex.unlock srv.qlock;
    match job with
    | None -> ()
    | Some fd ->
      handle_conn srv.service fd;
      next ()
  in
  next ()

(* A blocked [accept] is NOT woken when another thread closes the listen
   fd (Linux leaves it sleeping), so the acceptor polls with [select] and
   re-checks [stopping] between waits — shutdown is then bounded by one
   poll interval instead of hanging the join. *)
let acceptor srv =
  let rec loop () =
    if srv.stopping then ()
    else
      match Unix.select [ srv.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept srv.listen_fd with
        | fd, _ ->
          Mutex.lock srv.qlock;
          Queue.push fd srv.queue;
          Condition.signal srv.qcond;
          Mutex.unlock srv.qlock;
          loop ()
        | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
          loop ()
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ ->
        (* listen fd closed by [shutdown] (or a fatal error: either way
           the accept loop is over) *)
        ()
  in
  loop ()

let sweeper srv interval =
  let rec loop () =
    if not srv.stopping then begin
      (match Unix.select [ srv.stop_r ] [] [] interval with
      | [], _, _ -> ()  (* interval elapsed *)
      | _ -> ()  (* shutdown wrote the wake byte *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not srv.stopping then begin
        ignore (Service.sweep srv.service);
        loop ()
      end
    end
  in
  loop ()

let serve ?(threads = 16) ?(backlog = 64) service addr =
  ignore_sigpipe ();
  let fd = socket_for addr in
  (match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of addr);
  Unix.listen fd backlog;
  let bound =
    match addr with
    | Tcp (host, 0) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp (host, port)
      | _ -> addr)
    | a -> a
  in
  let stop_r, stop_w = Unix.pipe () in
  let srv =
    {
      service;
      listen_fd = fd;
      bound;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      pool = [];
      stop_r;
      stop_w;
    }
  in
  let workers =
    List.init (max 1 threads) (fun _ -> Thread.create worker srv)
  in
  let acc = Thread.create acceptor srv in
  let interval = Float.max 0.5 (Service.idle_ttl service /. 4.) in
  let swp = Thread.create (fun () -> sweeper srv (Float.min interval 30.)) () in
  srv.pool <- swp :: acc :: workers;
  srv

let bound_address srv = srv.bound
let wait srv = List.iter Thread.join srv.pool

let shutdown srv =
  srv.stopping <- true;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (* Wake the sweeper out of its select sleep. *)
  (try ignore (Unix.write srv.stop_w (Bytes.of_string "x") 0 1)
   with Unix.Unix_error _ -> ());
  Mutex.lock srv.qlock;
  Condition.broadcast srv.qcond;
  Mutex.unlock srv.qlock;
  List.iter Thread.join srv.pool;
  (try Unix.close srv.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close srv.stop_w with Unix.Unix_error _ -> ());
  (* drain connections that were queued but never picked up *)
  Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) srv.queue;
  Queue.clear srv.queue;
  match srv.bound with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(retries = 0) addr =
  ignore_sigpipe ();
  let rec attempt k =
    let fd = socket_for addr in
    match Unix.connect fd (sockaddr_of addr) with
    | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if k < retries then begin
        Thread.delay 0.1;
        attempt (k + 1)
      end
      else Error (Unix.error_message e)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  attempt 0

let call_line c line =
  match
    output_string c.oc line;
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | reply -> Ok reply
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let call c req =
  match call_line c (P.request_to_string req) with
  | Error _ as e -> e
  | Ok line -> (
    match P.response_of_string line with
    | Ok resp -> Ok resp
    | Error e -> Error ("bad reply: " ^ P.error_to_string e))

let set_timeout c seconds =
  try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
