(* Length-prefixed binary framing for the wire protocol.

   A frame is a 4-byte little-endian payload length followed by the
   payload bytes — the payload is the same one-line JSON the line
   protocol carries, so the Protocol codec is untouched; only the
   delimiting changes (no newline scanning, no trim, payloads may
   contain any byte).

   Negotiation stays in line space so a binary-capable client degrades
   cleanly against anything: the client's first line is the handshake
   request; a binary-capable server switches the connection and answers
   with the ack line, an old server answers with a JSON parse error the
   client can detect. *)

let version = 1
let handshake_request = Printf.sprintf "JIMBIN %d" version
let handshake_ack = handshake_request
let header_size = 4

(* A length field larger than this is garbage, not a frame: refuse it
   instead of waiting forever for bytes that will never come (the
   largest legitimate payload is an inline-CSV request, well under). *)
let max_payload = 64 * 1024 * 1024

let encode buf payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg (Printf.sprintf "Frame.encode: payload of %d bytes exceeds max" n);
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_string buf payload

let to_string payload =
  let buf = Buffer.create (header_size + String.length payload) in
  encode buf payload;
  Buffer.contents buf

type decoded =
  | Frame of string * int
  | Need_more
  | Junk of string

let decode buf ~off ~len =
  if len < header_size then Need_more
  else begin
    let b i = Char.code (Bytes.get buf (off + i)) in
    let n = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    if n < 0 || n > max_payload then
      Junk
        (Printf.sprintf "frame length %d out of range (max %d) — not a frame"
           n max_payload)
    else if len < header_size + n then Need_more
    else Frame (Bytes.sub_string buf (off + header_size) n, header_size + n)
  end

let decode_string s ~off =
  let len = String.length s - off in
  if len < 0 then invalid_arg "Frame.decode_string: offset past the end"
  else decode (Bytes.unsafe_of_string s) ~off ~len
