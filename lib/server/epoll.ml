(* Readiness polling for the wire event loop: epoll where the kernel has
   it (Linux), a select fallback with the same interface elsewhere.

   Interest and readiness are tiny int masks so no EPOLL* constants
   cross the FFI; see epoll_stubs.c. *)

external ep_create : unit -> Unix.file_descr = "jim_epoll_create"

external ep_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "jim_epoll_ctl"

external ep_wait : Unix.file_descr -> int -> (Unix.file_descr * int) array
  = "jim_epoll_wait"

let in_bit = 1
let out_bit = 2

type t =
  | Ep of Unix.file_descr
  | Sel of (Unix.file_descr, int) Hashtbl.t
      (* interest table for the fallback; wait () selects over it *)

let create () =
  match ep_create () with
  | fd -> Ep fd
  | exception Unix.Unix_error ((Unix.ENOSYS | Unix.EINVAL), _, _) ->
    Sel (Hashtbl.create 64)

let backed_by_epoll = function Ep _ -> true | Sel _ -> false

let mask ~readable ~writable =
  (if readable then in_bit else 0) lor if writable then out_bit else 0

let add t fd ~readable ~writable =
  match t with
  | Ep ep -> ep_ctl ep 0 fd (mask ~readable ~writable)
  | Sel tbl -> Hashtbl.replace tbl fd (mask ~readable ~writable)

let modify t fd ~readable ~writable =
  match t with
  | Ep ep -> ep_ctl ep 1 fd (mask ~readable ~writable)
  | Sel tbl -> Hashtbl.replace tbl fd (mask ~readable ~writable)

let remove t fd =
  match t with
  | Ep ep -> (
    (* Closing an fd deregisters it from epoll on its own, but the event
       loop removes before closing; a second removal is benign. *)
    try ep_ctl ep 2 fd 0 with Unix.Unix_error ((Unix.ENOENT | Unix.EBADF), _, _) -> ())
  | Sel tbl -> Hashtbl.remove tbl fd

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

let wait t ~timeout_ms =
  match t with
  | Ep ep ->
    Array.to_list
      (Array.map
         (fun (fd, m) ->
           { fd; readable = m land in_bit <> 0; writable = m land out_bit <> 0 })
         (ep_wait ep timeout_ms))
  | Sel tbl ->
    let rs, ws =
      Hashtbl.fold
        (fun fd m (rs, ws) ->
          ( (if m land in_bit <> 0 then fd :: rs else rs),
            if m land out_bit <> 0 then fd :: ws else ws ))
        tbl ([], [])
    in
    let timeout = float_of_int (max 0 timeout_ms) /. 1000. in
    let rr, wr, _ =
      try Unix.select rs ws [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let acc = Hashtbl.create 16 in
    List.iter
      (fun fd ->
        Hashtbl.replace acc fd { fd; readable = true; writable = false })
      rr;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt acc fd with
        | Some e -> Hashtbl.replace acc fd { e with writable = true }
        | None -> Hashtbl.replace acc fd { fd; readable = false; writable = true })
      wr;
    Hashtbl.fold (fun _ e acc -> e :: acc) acc []

let close = function
  | Ep ep -> ( try Unix.close ep with Unix.Unix_error _ -> ())
  | Sel tbl -> Hashtbl.reset tbl
