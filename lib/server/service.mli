(** The concurrent session manager: many inference sessions, one process.

    Each {!Jim_api.Protocol.Start_session} builds an engine and registers
    it under a monotonically increasing id; every later request addresses
    the session by id.  The manager is thread-safe — a short global lock
    guards the session table, a per-session lock serialises engine work —
    so a pool of connection threads can call {!handle} freely.

    Capacity is bounded: when [max_sessions] sessions are live, further
    [Start_session]s get a typed [Server_busy] reply (backpressure, not a
    hang).  Sessions idle longer than [idle_ttl] seconds are evicted by
    {!sweep}, which runs on every [Start_session] and periodically from
    the wire loop's housekeeping thread.

    Determinism: the pending question is computed once per round and
    cached until an answer or undo invalidates it, so a session driven
    through this interface asks exactly the question sequence of the
    in-process {!Jim_core.Session.run} with the same seed and strategy
    (the server smoke test pins outcomes bit-identical). *)

type t

val create :
  ?max_sessions:int ->
  ?idle_ttl:float ->
  ?now:(unit -> float) ->
  ?catalog:Jim_catalog.Catalog.t ->
  ?persist:(Jim_store.Event.t -> unit) ->
  ?crowd:Coordinator.config ->
  unit ->
  t
(** Defaults: 64 sessions, 600 s TTL, [Unix.gettimeofday].  [now] is
    injectable so tests can drive the TTL clock by hand.

    [catalog] is the instance catalog sessions resolve their sources
    through (each session pins its entry for its lifetime; starts on an
    already-cataloged instance are warm: no re-derivation, shared scorer
    memo).  A fresh private catalog is made when omitted; pass one to
    share instances across services (e.g. across restarts in the fault
    sweeps).

    [persist] is the durability hook: it is called with every
    state-mutating event (session start, acknowledged answer, undo, end —
    including idle evictions) {e before} the reply is built, so wiring in
    {!Jim_store.Store.record} gives write-ahead semantics: an answer is
    never acknowledged before it is on disk.  When omitted the service is
    purely in-memory.  Session-start events journal the catalog entry's
    concrete origin source (never [Catalog fp] — a restart empties the
    catalog) plus its fingerprint, which the catalog computed exactly
    once per entry.

    [crowd] enables crowd labeling: every session gets a {!Coordinator}
    and its answers arrive only as vote aggregates
    ([Labeler_attach] / [Labeler_poll] / [Vote]).  Direct [Answer] and
    [Undo] on a crowd session are refused with the pinned
    [Bad_request] reasons ["session is crowd-labeled: answers arrive by
    vote"] and ["session is crowd-labeled: undo is disabled"]; on a
    service {e without} [crowd], the crowd messages are refused with
    ["crowd labeling disabled (start the server with --votes)"].  Only
    the absorbed aggregate reaches [persist] (as an ordinary Answered
    event), so durability, recovery, replication and bit-identity are
    untouched by voting.  Raises [Invalid_argument] for even or
    non-positive [votes] or a non-positive [timeout]. *)

val catalog : t -> Jim_catalog.Catalog.t
(** The catalog this service resolves through ([Catalog_stats] reads its
    {!Jim_catalog.Catalog.stats}). *)

val restore : t -> Jim_store.Recovery.t -> (int, string) result
(** Rebuild sessions from recovered state: re-resolve each source, verify
    its fingerprint, and replay the surviving labels through the same
    code path live requests use — so the resumed session's questions,
    RNG stream and result are bit-identical to an uninterrupted run.
    Returns how many sessions were restored; an error (drifted instance,
    unreplayable label) aborts the whole restore and registers nothing.
    Call once, before serving traffic: replay does not invoke [persist]
    (the journal already holds those events). *)

val handle : t -> Jim_api.Protocol.request -> Jim_api.Protocol.response
(** Serve one request.  Never raises: internal exceptions become a
    [Failed (Bad_request _)] reply. *)

val handle_line : t -> string -> string
(** The wire entry point: parse one request payload (version check
    included), {!handle}, print.  Always returns exactly one JSON
    payload (without any trailing newline) — the transport framing
    around it is the wire layer's business. *)

val handle_line_status : t -> string -> string * bool
(** Like {!handle_line}, also saying whether the request payload parsed
    at all ([false] = malformed / wrong version — the wire layer counts
    these in {!Netstats}-style metrics without re-parsing). *)

val sweep : t -> int
(** Evict sessions idle longer than the TTL; returns how many died. *)

val session_count : t -> int
val max_sessions : t -> int

val idle_ttl : t -> float
(** The eviction threshold, seconds. *)
