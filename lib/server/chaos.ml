type plan = {
  drop : int option;
  drop_lines : int;
  trickle : int option;
  partial : int option;
  stall : int option;
  delay_ms : int;
}

let plan_none =
  {
    drop = None;
    drop_lines = 2;
    trickle = None;
    partial = None;
    stall = None;
    delay_ms = 1;
  }

let plan_to_string p =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "drop=%d") p.drop;
        (if p.drop <> None && p.drop_lines <> plan_none.drop_lines then
           Some (Printf.sprintf "drop-lines=%d" p.drop_lines)
         else None);
        Option.map (Printf.sprintf "trickle=%d") p.trickle;
        Option.map (Printf.sprintf "partial=%d") p.partial;
        Option.map (Printf.sprintf "stall=%d") p.stall;
        (if p.delay_ms <> plan_none.delay_ms then
           Some (Printf.sprintf "delay-ms=%d" p.delay_ms)
         else None);
      ]
  in
  match parts with [] -> "none" | _ -> String.concat "," parts

let ( let* ) = Result.bind

let plan_of_string s =
  let s = String.trim s in
  let int_arg ~min key v =
    match int_of_string_opt (String.trim v) with
    | Some n when n >= min -> Ok n
    | _ -> Error (Printf.sprintf "%s wants an integer >= %d, got %S" key min v)
  in
  if s = "" || s = "none" then Ok plan_none
  else
    List.fold_left
      (fun acc tok ->
        let* p = acc in
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "bad chaos fault %S (want key=value)" tok)
        | Some i -> (
          let key = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          match key with
          | "drop" ->
            let* n = int_arg ~min:1 key v in
            Ok { p with drop = Some n }
          | "drop-lines" ->
            let* n = int_arg ~min:0 key v in
            Ok { p with drop_lines = n }
          | "trickle" ->
            let* n = int_arg ~min:1 key v in
            Ok { p with trickle = Some n }
          | "partial" ->
            let* n = int_arg ~min:1 key v in
            Ok { p with partial = Some n }
          | "stall" ->
            let* n = int_arg ~min:1 key v in
            Ok { p with stall = Some n }
          | "delay-ms" ->
            let* n = int_arg ~min:0 key v in
            Ok { p with delay_ms = n }
          | _ ->
            Error
              (Printf.sprintf
                 "unknown chaos fault %S (try drop, drop-lines, trickle, \
                  partial, stall, delay-ms)"
                 key)))
      (Ok plan_none)
      (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)

type stats = {
  connections : int;
  dropped : int;
  trickled : int;
  chopped : int;
  stalled : int;
}

type t = {
  plan : plan;
  log : string -> unit;
  listen_fd : Unix.file_descr;
  bound : Wire.address;
  upstream : Wire.address;
  lock : Mutex.t;
  mutable st : stats;
  mutable stopping : bool;
  mutable acceptor : Thread.t option;
  mutable conns : Thread.t list;
}

let bound t = t.bound

let stats t =
  Mutex.lock t.lock;
  let s = t.st in
  Mutex.unlock t.lock;
  s

let bump t f =
  Mutex.lock t.lock;
  t.st <- f t.st;
  Mutex.unlock t.lock

(* What this connection gets.  Drop beats the delivery faults: a cut
   connection exercises the client's EOF path, no point also slowing it. *)
type mode = Forward | Drop | Trickle | Partial | Stall

let hits n = function Some k -> n mod k = 0 | None -> false

let mode_of plan n =
  if hits n plan.drop then Drop
  else if hits n plan.trickle then Trickle
  else if hits n plan.partial then Partial
  else if hits n plan.stall then Stall
  else Forward

let pause ms = if ms > 0 then Thread.delay (float_of_int ms /. 1000.)

(* Deliver one complete reply's bytes downstream, per mode.  [data] is
   the exact wire bytes — line + newline in line framing, one whole
   binary frame (header + payload) otherwise — so the fault modes tear
   replies identically under both framings.  Every mode ultimately
   delivers everything; only [Drop] (handled by the caller) withholds
   data, and only at reply boundaries. *)
let deliver t mode oc index data =
  let whole () =
    output_string oc data;
    flush oc
  in
  match mode with
  | Forward | Drop -> whole ()
  | Stall ->
    pause (10 * t.plan.delay_ms);
    whole ()
  | Trickle ->
    String.iter
      (fun c ->
        output_char oc c;
        flush oc;
        pause t.plan.delay_ms)
      data
  | Partial ->
    (* Deterministic ragged chunks, 1..5 bytes, phase-shifted by the
       connection index so different connections tear differently. *)
    let n = String.length data in
    let pos = ref 0 in
    let k = ref index in
    while !pos < n do
      let len = min (n - !pos) (1 + ((!k * 7) mod 5)) in
      output_string oc (String.sub data !pos len);
      flush oc;
      pause t.plan.delay_ms;
      pos := !pos + len;
      incr k
    done

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let le32_of s =
  Char.code s.[0]
  lor (Char.code s.[1] lsl 8)
  lor (Char.code s.[2] lsl 16)
  lor (Char.code s.[3] lsl 24)

let handle_conn t index fd =
  let mode = mode_of t.plan index in
  (match mode with
  | Forward -> ()
  | Drop -> bump t (fun s -> { s with dropped = s.dropped + 1 })
  | Trickle -> bump t (fun s -> { s with trickled = s.trickled + 1 })
  | Partial -> bump t (fun s -> { s with chopped = s.chopped + 1 })
  | Stall -> bump t (fun s -> { s with stalled = s.stalled + 1 }));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let log_mode replies =
    match mode with
    | Trickle | Partial | Stall when replies = 0 ->
      t.log
        (Printf.sprintf "conn %d: %s delivery" index
           (match mode with
           | Trickle -> "trickled"
           | Partial -> "partial-line"
           | _ -> "stalled"))
    | _ -> ()
  in
  let log_drop replies =
    t.log (Printf.sprintf "conn %d: dropped after %d replies" index replies)
  in
  (* The first client line decides the framing: the binary handshake,
     or already a request.  Only then is the upstream dialed — with the
     same framing, so the relay below never re-frames payloads. *)
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> close_fd fd
  | first -> (
    let framing =
      if first = Frame.handshake_request then Wire.Binary else Wire.Line
    in
    match Wire.connect ~retries:5 ~framing t.upstream with
    | Error e ->
      t.log (Printf.sprintf "conn %d: upstream unreachable: %s" index e);
      close_fd fd
    | Ok up ->
      (* The protocol is lockstep (one reply per request), so a
         reply-level relay is a faithful proxy — and gives us the reply
         boundaries the fault modes are defined on. *)
      let rec line_loop replies request =
        if mode = Drop && replies >= t.plan.drop_lines then log_drop replies
        else
          match Wire.call_line up request with
          | Error _ -> ()  (* upstream died; EOF the client *)
          | Ok reply -> (
            log_mode replies;
            match deliver t mode oc index (reply ^ "\n") with
            | () -> (
              match input_line ic with
              | exception (End_of_file | Sys_error _) -> ()
              | next -> line_loop (replies + 1) next)
            | exception (Sys_error _ | Unix.Unix_error _) -> ())
      in
      (* Binary relay: the proxy acks the handshake itself (the
         upstream connection negotiated its own), then shuttles whole
         4-byte-LE frames.  Faults apply at frame granularity. *)
      let rec frame_loop replies =
        if mode = Drop && replies >= t.plan.drop_lines then log_drop replies
        else
          match really_input_string ic Frame.header_size with
          | exception (End_of_file | Sys_error _) -> ()
          | hdr -> (
            let len = le32_of hdr in
            if len < 0 || len > Frame.max_payload then
              t.log
                (Printf.sprintf "conn %d: bad frame length %d" index len)
            else
              match really_input_string ic len with
              | exception (End_of_file | Sys_error _) -> ()
              | payload -> (
                match Wire.call_line up payload with
                | Error _ -> ()
                | Ok reply -> (
                  log_mode replies;
                  match deliver t mode oc index (Frame.to_string reply) with
                  | () -> frame_loop (replies + 1)
                  | exception (Sys_error _ | Unix.Unix_error _) -> ())))
      in
      (try
         if framing = Wire.Binary then begin
           output_string oc (Frame.handshake_ack ^ "\n");
           flush oc;
           frame_loop 0
         end
         else line_loop 0 first
       with Sys_error _ | Unix.Unix_error _ -> ());
      Wire.close up;
      close_fd fd)

let acceptor t =
  let rec loop index =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop index
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
          bump t (fun s -> { s with connections = s.connections + 1 });
          let th = Thread.create (fun () -> handle_conn t index fd) () in
          Mutex.lock t.lock;
          t.conns <- th :: t.conns;
          Mutex.unlock t.lock;
          loop (index + 1)
        | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
          ->
          loop index
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop index
      | exception Unix.Unix_error _ -> ()
  in
  loop 1

let start ?(log = fun _ -> ()) ~plan ~listen ~upstream () =
  match
    let fd = Wire.socket_for listen in
    (match listen with
    | Wire.Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
    Unix.bind fd (Wire.sockaddr_of listen);
    Unix.listen fd 64;
    fd
  with
  | exception Unix.Unix_error (e, op, _) ->
    Error (Printf.sprintf "%s: %s" op (Unix.error_message e))
  | exception Failure m -> Error m
  | fd ->
    let bound =
      match listen with
      | Wire.Tcp (host, 0) -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Wire.Tcp (host, port)
        | _ -> listen)
      | a -> a
    in
    let t =
      {
        plan;
        log;
        listen_fd = fd;
        bound;
        upstream;
        lock = Mutex.create ();
        st =
          { connections = 0; dropped = 0; trickled = 0; chopped = 0; stalled = 0 };
        stopping = false;
        acceptor = None;
        conns = [];
      }
    in
    t.acceptor <- Some (Thread.create acceptor t);
    Ok t

let wait t = match t.acceptor with None -> () | Some th -> Thread.join th

let stop t =
  t.stopping <- true;
  close_fd t.listen_fd;
  (match t.acceptor with None -> () | Some th -> Thread.join th);
  Mutex.lock t.lock;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  List.iter Thread.join conns;
  (match t.bound with
  | Wire.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Wire.Tcp _ -> ());
  stats t
