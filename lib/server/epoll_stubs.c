/* Minimal epoll binding for the wire event loop.

   The OCaml Unix library stops at select/poll-era primitives; serving
   thousands of mostly-idle connections from one thread wants epoll's
   O(ready) wakeups.  Interest and readiness travel as small int masks
   (1 = in, 2 = out) so the OCaml side never sees EPOLL* constants.

   On non-Linux platforms every entry point raises ENOSYS and the OCaml
   side falls back to a select-based poller with the same interface. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>

#define JIM_POLL_IN 1
#define JIM_POLL_OUT 2

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value jim_epoll_create(value unit)
{
  int fd = epoll_create1(0);
  if (fd == -1) caml_uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

/* op: 0 = add, 1 = mod, 2 = del */
CAMLprim value jim_epoll_ctl(value vep, value vop, value vfd, value vmask)
{
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof ev);
  if (Int_val(vmask) & JIM_POLL_IN) ev.events |= EPOLLIN;
  if (Int_val(vmask) & JIM_POLL_OUT) ev.events |= EPOLLOUT;
  ev.events |= EPOLLRDHUP;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) == -1)
    caml_uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define JIM_EPOLL_MAX_EVENTS 512

CAMLprim value jim_epoll_wait(value vep, value vtimeout_ms)
{
  CAMLparam2(vep, vtimeout_ms);
  CAMLlocal2(arr, pair);
  struct epoll_event evs[JIM_EPOLL_MAX_EVENTS];
  int n, i;

  caml_release_runtime_system();
  n = epoll_wait(Int_val(vep), evs, JIM_EPOLL_MAX_EVENTS, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();

  if (n == -1) {
    if (errno == EINTR) n = 0;
    else caml_uerror("epoll_wait", Nothing);
  }
  arr = caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int m = 0;
    /* HUP/ERR surface as readability: the next read returns EOF or the
       pending error, which is how the event loop learns of them. */
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR))
      m |= JIM_POLL_IN;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR))
      m |= JIM_POLL_OUT;
    pair = caml_alloc_tuple(2);
    Store_field(pair, 0, Val_int(evs[i].data.fd));
    Store_field(pair, 1, Val_int(m));
    Store_field(arr, i, pair);
  }
  CAMLreturn(arr);
}

#else /* !__linux__ */

CAMLprim value jim_epoll_create(value unit)
{
  caml_unix_error(ENOSYS, "epoll_create1", Nothing);
  return Val_unit;
}

CAMLprim value jim_epoll_ctl(value vep, value vop, value vfd, value vmask)
{
  caml_unix_error(ENOSYS, "epoll_ctl", Nothing);
  return Val_unit;
}

CAMLprim value jim_epoll_wait(value vep, value vtimeout_ms)
{
  caml_unix_error(ENOSYS, "epoll_wait", Nothing);
  return Val_unit;
}

#endif
