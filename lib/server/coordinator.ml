(* Per-session vote coordinator: the state machine behind the crowd
   labeling wire messages.  Purely in-memory and single-threaded — the
   service drives it under the session lock and owns all engine and
   journal effects (two-phase: [expire]/[vote] return an [Aggregate]
   decision, the service absorbs it through the normal answer path and
   reports back with [absorbed]/[rejected]). *)

module P = Jim_api.Protocol
open Jim_core

type config = { votes : int; timeout : float; weighted : bool }

type decision = Wait | Aggregate of State.label

type t = {
  config : config;
  estimator : Votes.Estimator.t;
  mutable round : int;
  mutable ballots : (int * State.label) list;  (* (labeler, label), LIFO *)
  mutable deadline : float;  (* absolute; checked on poll/vote, no timer *)
  mutable rounds : int;
  mutable paid_labels : int;
  mutable majority_flips : int;
  mutable timeouts : int;
  mutable re_asks : int;
}

let check_config c =
  if c.votes <= 0 || c.votes mod 2 = 0 then
    invalid_arg "Coordinator: votes must be odd and positive";
  if not (c.timeout > 0.) then invalid_arg "Coordinator: timeout must be positive"

let create ~now config =
  check_config config;
  {
    config;
    estimator = Votes.Estimator.create ();
    round = 1;
    ballots = [];
    deadline = now +. config.timeout;
    rounds = 0;
    paid_labels = 0;
    majority_flips = 0;
    timeouts = 0;
    re_asks = 0;
  }

let quorum t = t.config.votes
let round t = t.round
let attach t = Votes.Estimator.add t.estimator
let known t id = Votes.Estimator.known t.estimator id
let accuracy t id = Votes.Estimator.counts t.estimator id

let reopen ~now t =
  t.round <- t.round + 1;
  t.ballots <- [];
  t.deadline <- now +. t.config.timeout

let re_ask ~now t =
  t.re_asks <- t.re_asks + 1;
  reopen ~now t

let tally t =
  let weight id =
    if t.config.weighted then Votes.Estimator.weight t.estimator id else 1.
  in
  (* rev_map: tally is order-independent, but keep arrival order anyway so
     traces read naturally. *)
  Votes.tally (List.rev_map (fun (id, l) -> (l, weight id)) t.ballots)

let expire ~now t =
  if now < t.deadline then Wait
  else if t.ballots = [] then begin
    (* Nobody voted at all — nothing to aggregate and nothing gained by
       burning a re-ask; just restart the clock. *)
    t.deadline <- now +. t.config.timeout;
    Wait
  end
  else
    match (tally t).Votes.label with
    | Some l ->
      t.timeouts <- t.timeouts + 1;
      Aggregate l
    | None -> re_ask ~now t; Wait

let vote ~now t ~labeler ~round ~label =
  if not (known t labeler) then `Unknown
  else if round <> t.round || List.mem_assoc labeler t.ballots then `Stale
  else begin
    t.ballots <- (labeler, label) :: t.ballots;
    if List.length t.ballots < t.config.votes then `Counted Wait
    else
      match (tally t).Votes.label with
      | Some l -> `Counted (Aggregate l)
      | None ->
        (* only reachable with weighted aggregation: an exact float tie
           across an odd ballot count *)
        re_ask ~now t;
        `Counted Wait
  end

let absorbed ~now t label =
  let saw l = List.exists (fun (_, l') -> l' = l) t.ballots in
  if saw State.Pos && saw State.Neg then
    t.majority_flips <- t.majority_flips + 1;
  List.iter
    (fun (id, l) -> Votes.Estimator.record t.estimator id ~agreed:(l = label))
    t.ballots;
  t.paid_labels <- t.paid_labels + List.length t.ballots;
  t.rounds <- t.rounds + 1;
  reopen ~now t

let rejected ~now t = re_ask ~now t

let stats t =
  {
    P.labelers = Votes.Estimator.count t.estimator;
    votes = t.config.votes;
    weighted = t.config.weighted;
    rounds = t.rounds;
    paid_labels = t.paid_labels;
    majority_flips = t.majority_flips;
    timeouts = t.timeouts;
    re_asks = t.re_asks;
  }
