(* Process-wide wire-layer counters, the network-side sibling of
   Jim_core.Metrics: every accept, close, failure, malformed request and
   byte through the serve loop.  Atomic, so the event loop and the
   worker pool update them without coordination. *)

let accepted = Atomic.make 0
let closed = Atomic.make 0
let failed = Atomic.make 0
let malformed = Atomic.make 0
let bytes_in = Atomic.make 0
let bytes_out = Atomic.make 0
let binary_conns = Atomic.make 0
let requests = Atomic.make 0
let writes_coalesced = Atomic.make 0
let flushes = Atomic.make 0
let pipelined_depth_max = Atomic.make 0

let record_accept () = Atomic.incr accepted
let record_close () = Atomic.incr closed
let record_failure () = Atomic.incr failed
let record_malformed () = Atomic.incr malformed
let record_read n = ignore (Atomic.fetch_and_add bytes_in n)
let record_write n = ignore (Atomic.fetch_and_add bytes_out n)
let record_binary () = Atomic.incr binary_conns
let record_request () = Atomic.incr requests
let record_flush () = Atomic.incr flushes
let record_coalesced n = if n > 0 then ignore (Atomic.fetch_and_add writes_coalesced n)

let rec record_depth d =
  let cur = Atomic.get pipelined_depth_max in
  if d > cur && not (Atomic.compare_and_set pipelined_depth_max cur d) then
    record_depth d

type snapshot = {
  accepted : int;
  active : int;
  closed : int;
  failed : int;
  malformed : int;
  requests : int;
  binary_conns : int;
  bytes_in : int;
  bytes_out : int;
  writes_coalesced : int;
  flushes : int;
  pipelined_depth_max : int;
}

let snapshot () =
  let accepted = Atomic.get accepted and closed = Atomic.get closed in
  {
    accepted;
    closed;
    active = max 0 (accepted - closed);
    failed = Atomic.get failed;
    malformed = Atomic.get malformed;
    requests = Atomic.get requests;
    binary_conns = Atomic.get binary_conns;
    bytes_in = Atomic.get bytes_in;
    bytes_out = Atomic.get bytes_out;
    writes_coalesced = Atomic.get writes_coalesced;
    flushes = Atomic.get flushes;
    pipelined_depth_max = Atomic.get pipelined_depth_max;
  }

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ accepted; closed; failed; malformed; bytes_in; bytes_out;
      binary_conns; requests; writes_coalesced; flushes;
      pipelined_depth_max ]

let to_string s =
  Printf.sprintf
    "conns %d accepted / %d active / %d failed · %d requests (%d binary \
     conns, %d malformed) · %d B in / %d B out · %d flushes (%d coalesced, \
     depth %d)"
    s.accepted s.active s.failed s.requests s.binary_conns s.malformed
    s.bytes_in s.bytes_out s.flushes s.writes_coalesced s.pipelined_depth_max

let to_json s =
  Printf.sprintf
    "{\"accepted\":%d,\"active\":%d,\"closed\":%d,\"failed\":%d,\
     \"malformed\":%d,\"requests\":%d,\"binary_conns\":%d,\
     \"bytes_in\":%d,\"bytes_out\":%d,\"writes_coalesced\":%d,\
     \"flushes\":%d,\"pipelined_depth_max\":%d}"
    s.accepted s.active s.closed s.failed s.malformed s.requests
    s.binary_conns s.bytes_in s.bytes_out s.writes_coalesced s.flushes
    s.pipelined_depth_max
