(** A wire chaos proxy: sits between a client and a [jim serve]
    upstream, forwarding the v1 protocol while injuring chosen
    connections — the transport-level counterpart of the store's fault
    filesystem.

    Both framings are relayed: a first line of [JIMBIN 1] is recognised
    as the binary handshake — the proxy acks it itself, dials the
    upstream in binary, and shuttles whole 4-byte-LE frames; any other
    first line starts the line relay.  Fault modes apply at reply
    granularity either way (a frame is torn into ragged chunks exactly
    like a JSON line).

    Faults are assigned {e deterministically} by connection index (the
    order connections are accepted), so a drill is reproducible: the same
    plan over the same client schedule injures the same sessions.  All
    damage respects one rule — a dropped connection dies at a {e reply
    boundary} — so a well-written client can always classify the failure
    (clean EOF = transport, never a half-parsed reply it must guess
    about).  Partial and trickled replies are delivered in full
    eventually; they stress buffering, not correctness.

    [jim chaos --socket L --upstream U --plan P] wraps {!start} as a
    standalone process for CI drills. *)

type plan = {
  drop : int option;
      (** every [n]th connection is cut after [drop_lines] replies,
          cleanly, at a line boundary *)
  drop_lines : int;  (** replies forwarded before the cut (default 2) *)
  trickle : int option;
      (** every [n]th connection gets its replies byte-at-a-time with
          [delay_ms] between bytes (slow-loris) *)
  partial : int option;
      (** every [n]th connection gets replies in small flushed chunks —
          partial JSON lines on the wire *)
  stall : int option;
      (** every [n]th connection sleeps [10 * delay_ms] before each
          reply, so other sessions' traffic overtakes it (reordered
          session streams at the server) *)
  delay_ms : int;  (** pacing for trickle/partial/stall (default 1) *)
}

val plan_none : plan

val plan_to_string : plan -> string

val plan_of_string : string -> (plan, string) result
(** Comma-separated [key=value]: [drop=N], [drop-lines=K], [trickle=N],
    [partial=N], [stall=N], [delay-ms=M]; [""]/["none"] is {!plan_none}. *)

type t

type stats = {
  connections : int;
  dropped : int;
  trickled : int;
  chopped : int;  (** connections given partial-line delivery *)
  stalled : int;
}

val start :
  ?log:(string -> unit) ->
  plan:plan ->
  listen:Wire.address ->
  upstream:Wire.address ->
  unit ->
  (t, string) result
(** Bind [listen] and serve until {!stop}.  Each accepted connection gets
    a thread and a fresh upstream connection ([upstream] need not be up
    until then).  [log] receives one line per injected fault. *)

val bound : t -> Wire.address
(** Like {!Wire.bound_address}: the actual address (port 0 resolved). *)

val stats : t -> stats
val wait : t -> unit
val stop : t -> stats
