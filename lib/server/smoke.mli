(** The oracle-driven load generator: many concurrent clients, each
    running a full inference session over the wire and checking the
    outcome bit-for-bit against the in-process {!Jim_core.Session.run}
    with the same instance, seed and strategy.  Shared by [jim client
    --smoke] and the server test suite. *)

type client_report = {
  seed : int;
  strategy : string;
  questions : int;
  ok : bool;
  dropped : bool;
      (** the failure was transport-level — connect refused, clean EOF,
          reset — rather than a protocol or outcome divergence.  Drops
          are expected under a chaos proxy ([jim chaos]) and can be
          tolerated; a divergence never is.  [false] when [ok]. *)
  detail : string;  (** empty when [ok]; the mismatch/failure otherwise *)
}

val drive_one :
  ?framing:Wire.framing ->
  ?instance:int ->
  address:Wire.address ->
  seed:int ->
  strategy:string ->
  unit ->
  client_report
(** One client, one session: start a synthetic instance (deterministic in
    its seed, so the goal — and hence the oracle — is reconstructed
    locally), loop question/answer to completion, fetch the outcome and
    compare with the local reference run.  [framing] (default [Line])
    selects the wire framing — the outcome bar is identical under both.
    [instance] decouples the instance seed from the session seed: when
    given, every client drives the synthetic instance seeded [instance]
    (so they all resolve to one catalog entry) while [seed] still seeds
    the strategy RNG; by default the instance seed is [seed]. *)

val run :
  ?clients:int ->
  ?framing:Wire.framing ->
  ?instance:int ->
  address:Wire.address ->
  unit ->
  client_report list
(** [clients] (default 32) threads, one {!drive_one} each, alternating
    strategies (lookahead-entropy / random) and distinct seeds.  Reports
    come back sorted by seed.  [instance] as in {!drive_one}: all
    clients share one instance (one catalog entry) instead of each
    generating their own. *)

val run_pipelined :
  ?clients:int ->
  ?pipeline:int ->
  ?framing:Wire.framing ->
  address:Wire.address ->
  unit ->
  client_report list
(** The pipelined drill behind [jim client --smoke --pipeline K]:
    [clients] (default 4) connections, each multiplexing [pipeline]
    (default 8) interleaved sessions — one in-flight request per
    session, so per-session ordering is trivially preserved, while the
    connection keeps up to [pipeline] requests in flight for the
    server's reorder-buffered pipeline to chew on.  Replies come back
    in request order; a FIFO of session indices routes each to its
    session's state machine.  Every session is held to the same
    bit-identity bar as {!run}.  Returns [clients * pipeline] reports,
    sorted by seed. *)

val catalog_smoke :
  ?clients:int ->
  ?instance:int ->
  ?framing:Wire.framing ->
  address:Wire.address ->
  unit ->
  (client_report list * Jim_api.Protocol.catalog_stats, string) result
(** The catalog drill: [Register_instance] the synthetic instance seeded
    [instance] (default 7) once, then [clients] (default 2) concurrent
    sessions each start by [Catalog fingerprint] — shipping no data —
    and are held to the usual bit-identity bar.  Returns the reports
    plus the server's catalog counters (callers assert [hits > 0] and
    [derivations = 1]).  [Error] only for the drill's own plumbing
    (connect/register/stats failures); per-client failures are in the
    reports. *)

val crash_start :
  address:Wire.address ->
  state_file:string ->
  ?clients:int ->
  unit ->
  client_report list
(** Phase one of the crash drill: [clients] (default 8) concurrent
    sessions each answer {e half} of their reference run's questions —
    every answer acknowledged by the server — then disconnect without
    ending the session.  What was acknowledged (seed, strategy, session
    id, answer count) is written to [state_file] for {!crash_resume}.
    The caller then SIGKILLs the server and restarts it over the same
    data directory. *)

val crash_resume :
  address:Wire.address -> state_file:string -> unit -> client_report list
(** Phase two: for each line of [state_file], check the restarted server
    still holds every acknowledged answer (via [Stats]), drive the
    session to completion, and require the outcome bit-identical to an
    uninterrupted local {!Jim_core.Session.run} — the durability
    invariant the store exists to provide. *)

val busy_check :
  address:Wire.address -> fill:int -> (unit, string) result
(** Open [fill] sessions without ending them, then check that one more
    [Start_session] is refused with [Server_busy] (the server must reply,
    not hang — a 30 s receive timeout turns a hang into an error).  Ends
    every session before returning.  Call against a server whose
    [max_sessions] equals [fill]. *)

val outcome_equal : Jim_core.Session.outcome -> Jim_core.Session.outcome -> bool
(** Structural equality, float fields compared exactly — both sides are
    computed by the same code path, so bit-identical is the bar. *)
