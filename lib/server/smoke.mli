(** The oracle-driven load generator: many concurrent clients, each
    running a full inference session over the wire and checking the
    outcome bit-for-bit against the in-process {!Jim_core.Session.run}
    with the same instance, seed and strategy.  Shared by [jim client
    --smoke] and the server test suite. *)

type client_report = {
  seed : int;
  strategy : string;
  questions : int;
  ok : bool;
  dropped : bool;
      (** the failure was transport-level — connect refused, clean EOF,
          reset — rather than a protocol or outcome divergence.  Drops
          are expected under a chaos proxy ([jim chaos]) and can be
          tolerated; a divergence never is.  [false] when [ok]. *)
  detail : string;  (** empty when [ok]; the mismatch/failure otherwise *)
}

val synthetic_params : int -> Jim_workloads.Synthetic.params
(** The smoke workload's instance shape (5 attributes, 40 tuples, domain
    8, rank-2 goal) seeded [seed] — exposed so out-of-process drivers
    ([jim labeler]) can regenerate the same instance, and with it the
    goal oracle, from the seed alone. *)

val drive_one :
  ?framing:Wire.framing ->
  ?receive_timeout:float ->
  ?instance:int ->
  address:Wire.address ->
  seed:int ->
  strategy:string ->
  unit ->
  client_report
(** One client, one session: start a synthetic instance (deterministic in
    its seed, so the goal — and hence the oracle — is reconstructed
    locally), loop question/answer to completion, fetch the outcome and
    compare with the local reference run.  [framing] (default [Line])
    selects the wire framing — the outcome bar is identical under both.
    [receive_timeout] (default 30 s, as on every driver here) caps the
    wait for any single reply: a server or proxy that stalls instead of
    answering classifies as a transport drop ([dropped = true]), never a
    divergence and never a hang.  [instance] decouples the instance seed
    from the session seed: when given, every client drives the synthetic
    instance seeded [instance] (so they all resolve to one catalog
    entry) while [seed] still seeds the strategy RNG; by default the
    instance seed is [seed]. *)

val run :
  ?clients:int ->
  ?framing:Wire.framing ->
  ?receive_timeout:float ->
  ?instance:int ->
  address:Wire.address ->
  unit ->
  client_report list
(** [clients] (default 32) threads, one {!drive_one} each, alternating
    strategies (lookahead-entropy / random) and distinct seeds.  Reports
    come back sorted by seed.  [instance] as in {!drive_one}: all
    clients share one instance (one catalog entry) instead of each
    generating their own. *)

val run_pipelined :
  ?clients:int ->
  ?pipeline:int ->
  ?framing:Wire.framing ->
  ?receive_timeout:float ->
  address:Wire.address ->
  unit ->
  client_report list
(** The pipelined drill behind [jim client --smoke --pipeline K]:
    [clients] (default 4) connections, each multiplexing [pipeline]
    (default 8) interleaved sessions — one in-flight request per
    session, so per-session ordering is trivially preserved, while the
    connection keeps up to [pipeline] requests in flight for the
    server's reorder-buffered pipeline to chew on.  Replies come back
    in request order; a FIFO of session indices routes each to its
    session's state machine.  Every session is held to the same
    bit-identity bar as {!run}.  Returns [clients * pipeline] reports,
    sorted by seed. *)

val catalog_smoke :
  ?clients:int ->
  ?instance:int ->
  ?framing:Wire.framing ->
  ?receive_timeout:float ->
  address:Wire.address ->
  unit ->
  (client_report list * Jim_api.Protocol.catalog_stats, string) result
(** The catalog drill: [Register_instance] the synthetic instance seeded
    [instance] (default 7) once, then [clients] (default 2) concurrent
    sessions each start by [Catalog fingerprint] — shipping no data —
    and are held to the usual bit-identity bar.  Returns the reports
    plus the server's catalog counters (callers assert [hits > 0] and
    [derivations = 1]).  [Error] only for the drill's own plumbing
    (connect/register/stats failures); per-client failures are in the
    reports. *)

val crash_start :
  address:Wire.address ->
  state_file:string ->
  ?clients:int ->
  ?receive_timeout:float ->
  unit ->
  client_report list
(** Phase one of the crash drill: [clients] (default 8) concurrent
    sessions each answer {e half} of their reference run's questions —
    every answer acknowledged by the server — then disconnect without
    ending the session.  What was acknowledged (seed, strategy, session
    id, answer count) is written to [state_file] for {!crash_resume}.
    The caller then SIGKILLs the server and restarts it over the same
    data directory. *)

val crash_resume :
  address:Wire.address ->
  state_file:string ->
  ?receive_timeout:float ->
  unit ->
  client_report list
(** Phase two: for each line of [state_file], check the restarted server
    still holds every acknowledged answer (via [Stats]), drive the
    session to completion, and require the outcome bit-identical to an
    uninterrupted local {!Jim_core.Session.run} — the durability
    invariant the store exists to provide. *)

val busy_check :
  ?receive_timeout:float ->
  address:Wire.address ->
  fill:int ->
  unit ->
  (unit, string) result
(** Open [fill] sessions without ending them, then check that one more
    [Start_session] is refused with [Server_busy] (the server must reply,
    not hang — the receive timeout turns a hang into an error).  Ends
    every session before returning.  Call against a server whose
    [max_sessions] equals [fill]. *)

(** {1 Crowd drill} *)

type labeler_spec = {
  error_rate : float;
      (** probability each of this labeler's answers is flipped *)
  labeler_seed : int;  (** seeds the noise stream — which answers are
                           wrong is deterministic, not schedule-dependent *)
  labeler_address : Wire.address option;
      (** connect here instead of the controller's address — e.g. through
          a [jim chaos] proxy to make this labeler slow or absent *)
}

val perfect_labeler : int -> labeler_spec
(** [error_rate = 0.] at the controller's address. *)

type crowd_report = {
  creport : client_report;
      (** [questions] is the count of closed voting rounds; for a
          perfect crowd (every [error_rate] zero) [ok] requires the
          outcome bit-identical to the noiseless in-process run, for a
          noisy crowd it only requires clean convergence — judge [got]
          against [reference] yourself *)
  crowd : Jim_api.Protocol.crowd_stats option;
      (** the server's vote counters, harvested just before ending the
          session *)
  got : Jim_core.Session.outcome option;  (** the wire outcome *)
  reference : Jim_core.Session.outcome;
      (** the noiseless local {!Jim_core.Session.run} — under noise the
          transcripts may differ while the inferred [query] still
          converges to it *)
}

val run_labeler :
  ?framing:Wire.framing ->
  ?receive_timeout:float ->
  ?poll_interval:float ->
  address:Wire.address ->
  session:int ->
  oracle:Jim_core.Oracle.t ->
  unit ->
  (int * int, string) result
(** One labeler client, driven to session completion: attach, then loop
    poll → (new round? draw one label from [oracle], vote) → repeat,
    sleeping [poll_interval] (default 2 ms) between polls of an
    already-voted round.  Exactly one oracle draw per round seen, so a
    seeded noisy oracle yields a deterministic error pattern.  Returns
    [(cast, counted)] — ballots sent vs. ballots the server counted
    (rounds can close by quorum or deadline before a slow ballot lands).
    Also the engine behind [jim labeler]. *)

val crowd_run :
  ?framing:Wire.framing ->
  ?receive_timeout:float ->
  ?poll_interval:float ->
  ?deadline:float ->
  address:Wire.address ->
  seed:int ->
  strategy:string ->
  labelers:labeler_spec list ->
  unit ->
  crowd_report
(** The full crowd drill against a server started with crowd labeling:
    start the synthetic session seeded [seed], spawn one {!run_labeler}
    thread per spec, wait for convergence (pending question gone) within
    [deadline] (default 120 s) and harvest outcome + vote counters.
    Divergence, a labeler's protocol failure, or missing the deadline
    all fail the report; labeler {e transport} failures are tolerated
    (that is what a chaos proxy manufactures) as long as the session
    still converges. *)

val outcome_equal : Jim_core.Session.outcome -> Jim_core.Session.outcome -> bool
(** Structural equality, float fields compared exactly — both sides are
    computed by the same code path, so bit-identical is the bar. *)
