(** The transport under {!Service}: JSON payloads over a socket, in
    either of two framings.

    Every connection starts in {e line} framing — one request payload
    per line in, one response payload per line out, byte-compatible with
    every earlier version of this protocol.  A client may send the
    handshake line [Frame.handshake_request] before its first request;
    the server acks with the same line and both sides switch to {e
    binary} framing — a 4-byte little-endian length prefix before each
    payload (see {!Frame}).  Old servers reply to the handshake with a
    JSON parse error, which a new client reports cleanly — negotiation
    never breaks a line-only peer.

    The serve loop is a single epoll event-loop thread owning every
    socket (non-blocking, per-connection reuseable read/write buffers)
    plus a worker pool that only runs {!Service.handle_line_status} —
    so thousands of mostly-idle connections cost file descriptors, not
    threads.  Falls back to a [select]-backed poller on systems without
    epoll (see {!Epoll}).  A housekeeping thread runs {!Service.sweep}
    periodically so idle sessions die even when no one is connecting.
    Wire-level counters (accepted / active / failed connections,
    malformed payloads, bytes in/out) are recorded in {!Netstats}. *)

type address =
  | Tcp of string * int  (** host, port (port 0 lets the kernel pick) *)
  | Unix_path of string

val address_to_string : address -> string
(** ["host:port"], ["[v6host]:port"] for hosts containing [':'], or
    ["unix:/path"]. *)

val address_of_string : string -> (address, string) result
(** Inverse of {!address_to_string}: ["unix:PATH"], ["HOST:PORT"] or
    ["[HOST]:PORT"].  IPv6 literals must be bracketed — a bare
    multi-colon spec like ["::1:9090"] is rejected as ambiguous rather
    than silently split at the last colon. *)

val sockaddr_of : address -> Unix.sockaddr
(** May raise [Failure] for an unresolvable host. *)

val socket_for : address -> Unix.file_descr
(** A fresh unconnected stream socket of the right family — for
    components (e.g. {!Chaos}) that listen on an [address] without being
    a {!server}. *)

(** {1 Framing} *)

type framing =
  | Line    (** newline-delimited JSON; the universal default *)
  | Binary  (** length-prefixed JSON, negotiated via {!Frame} handshake *)

(** {1 Server} *)

type server

type config = {
  threads : int;  (** worker pool size *)
  backlog : int;  (** listen backlog *)
  drain_timeout : float;
      (** seconds {!shutdown} lingers for in-flight replies to flush —
          also the bound a failing-over router waits for a dying shard's
          last replies *)
  sweep_interval : float;
      (** housekeeping thread period, seconds (only used when a sweep
          function is given) *)
  max_pipeline : int;
      (** requests a single connection may have in flight at once
          (clamped to at least 1).  Replies always leave in request
          order — workers may finish out of order, a per-connection
          reorder buffer fixes it — so a strictly request/reply client
          sees no change, while a pipelining client (see {!send_line} /
          {!recv_line}) overlaps up to this many requests.  Requests
          pipelined on one connection may {e execute} concurrently, so a
          client multiplexing sessions must keep at most one in-flight
          request per session (exactly what [jim client --pipeline]
          does). *)
}

val default_config : config
(** [{threads = 16; backlog = 64; drain_timeout = 2.0;
     sweep_interval = 30.0; max_pipeline = 8}] *)

val serve_handler :
  ?config:config -> ?sweep:(unit -> int) -> (string -> string * bool) ->
  address -> server
(** The generic serve loop: bind, listen and start the event loop plus
    worker pool around an arbitrary payload handler — one request
    payload in, one response payload out, plus whether the payload
    parsed (malformed counting).  Both framings (line + negotiated
    binary) work against any handler; {!Service}-backed serving, the
    shard router front and the replication standby all ride this one
    loop.  [sweep], when given, runs every [config.sweep_interval]
    seconds on a housekeeping thread.  The call returns immediately. *)

val serve :
  ?threads:int -> ?backlog:int -> ?drain_timeout:float -> Service.t ->
  address -> server
(** Bind, listen and start the event loop plus [threads] workers
    (default 16); the call returns immediately.  Equivalent to
    {!serve_handler} over [Service.handle_line_status] with the
    service's idle-TTL sweeping.  For [Tcp (_, 0)] the kernel-chosen
    port is reflected in {!bound_address}.  Raises [Unix.Unix_error] if
    the bind fails.  Ignores [SIGPIPE] process-wide (abandoned
    connections must not kill the server). *)

val bound_address : server -> address

val wait : server -> unit
(** Block until the server is shut down (joins the pool). *)

val shutdown : server -> unit
(** Stop accepting, wake the event loop and the idle-session sweeper
    (both sleep on self-pipes so they can be interrupted instantly),
    join every thread, and unlink a Unix-domain socket path.  Replies
    already being computed are flushed (bounded by a short drain
    deadline); idle connections are dropped.  No thread outlives this
    call. *)

(** {1 Client} *)

type client

val connect :
  ?retries:int -> ?framing:framing -> address -> (client, string) result
(** [retries] (default 0) extra attempts, 100 ms apart, while the server
    side is still coming up (connection refused / socket not yet bound).
    [framing = Binary] (default [Line]) performs the handshake right
    after connecting and fails with a clear error if the server does not
    speak it. *)

val client_framing : client -> framing

val set_timeout : client -> float -> unit
(** Receive timeout in seconds: a reply overdue past it makes the next
    {!call_line} fail instead of blocking forever.  Best-effort (ignored
    where the socket option is unsupported). *)

val call_line : client -> string -> (string, string) result
(** Send one request payload, read one response payload back — framed
    per the connection's negotiated framing.  Equivalent to {!send_line}
    followed by {!recv_line}. *)

val send_line : ?flush:bool -> client -> string -> (unit, string) result
(** Send one request payload without waiting for the reply — the
    sending half of a pipelined exchange.  [flush] (default [true])
    false buffers the payload so a burst of sends leaves in one
    segment; {!recv_line} flushes before reading, so a buffered send
    can never deadlock a waiting client. *)

val recv_line : client -> (string, string) result
(** Read the next response payload.  The server delivers replies in
    request order, so the [k]-th [recv_line] answers the [k]-th
    {!send_line}. *)

val call :
  client -> Jim_api.Protocol.request ->
  (Jim_api.Protocol.response, string) result

val close : client -> unit
