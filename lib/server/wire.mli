(** Line-delimited JSON over a socket: the transport under {!Service}.

    One request line in, one response line out, connections multiplexed
    over a fixed thread pool (a worker owns a connection until the peer
    closes it — size the pool for the expected concurrent clients).  A
    housekeeping thread runs {!Service.sweep} periodically so idle
    sessions die even when no one is connecting. *)

type address =
  | Tcp of string * int  (** host, port (port 0 lets the kernel pick) *)
  | Unix_path of string

val address_to_string : address -> string
(** ["host:port"] or ["unix:/path"]. *)

val address_of_string : string -> (address, string) result
(** Inverse of {!address_to_string}: ["unix:PATH"] or ["HOST:PORT"]. *)

val sockaddr_of : address -> Unix.sockaddr
(** May raise [Failure] for an unresolvable host. *)

val socket_for : address -> Unix.file_descr
(** A fresh unconnected stream socket of the right family — for
    components (e.g. {!Chaos}) that listen on an [address] without being
    a {!server}. *)

(** {1 Server} *)

type server

val serve : ?threads:int -> ?backlog:int -> Service.t -> address -> server
(** Bind, listen and start the pool ([threads] workers, default 16); the
    call returns immediately.  For [Tcp (_, 0)] the kernel-chosen port is
    reflected in {!bound_address}.  Raises [Unix.Unix_error] if the bind
    fails.  Ignores [SIGPIPE] process-wide (abandoned connections must
    not kill the server). *)

val bound_address : server -> address

val wait : server -> unit
(** Block until the server is shut down (joins the acceptor). *)

val shutdown : server -> unit
(** Stop accepting, wake the pool — including the idle-session sweeper,
    which sleeps on a self-pipe so it can be interrupted instantly — join
    every thread, and unlink a Unix-domain socket path.  Connections
    currently being served finish their in-flight line.  No thread
    outlives this call. *)

(** {1 Client} *)

type client

val connect : ?retries:int -> address -> (client, string) result
(** [retries] (default 0) extra attempts, 100 ms apart, while the server
    side is still coming up (connection refused / socket not yet bound). *)

val set_timeout : client -> float -> unit
(** Receive timeout in seconds: a reply overdue past it makes the next
    {!call_line} fail instead of blocking forever.  Best-effort (ignored
    where the socket option is unsupported). *)

val call_line : client -> string -> (string, string) result
(** Send one raw line, read one line back. *)

val call :
  client -> Jim_api.Protocol.request ->
  (Jim_api.Protocol.response, string) result

val close : client -> unit
