(** Server-wide, immutable, refcounted instance catalog.

    JIM's per-session cost is dominated by per-instance derivation —
    signature-class grouping, meet tables, scorer memoisation — yet all
    of it depends only on the instance, not the session.  The catalog
    interns one {!entry} per distinct instance, keyed by the canonical
    CSV fingerprint the durable store already journals for restore-drift
    detection, so a thousand sessions on the same dataset share one
    derivation and one scorer memo (whose reads are lock-free — see
    {!Jim_core.Scorer.cache} — and whose sharing provably never changes
    a pick).

    Entries are refcounted: {!resolve} pins, {!release} unpins, and a
    refcount-zero entry idles until the LRU cap ([max_entries]) evicts
    it.  Eviction only forgets the cache — re-resolving the concrete
    source re-derives, and a [Catalog fp] start answers
    [Unknown_instance] until someone re-registers. *)

type entry = {
  fingerprint : string;  (** canonical CSV fingerprint = the catalog key *)
  relation : Jim_relational.Relation.t;
  schema : Jim_relational.Schema.t;
  arity : int;
  tuples : int;
  bytes : int;  (** canonical CSV size, the unit of the bytes counter *)
  classes : Jim_core.Sigclass.cls array;
  row_class : int array;  (** row number → class index *)
  initial_statuses : Jim_core.State.status array;
      (** class statuses at round 0 (empty state) *)
  cache : Jim_core.Scorer.cache;  (** shared by every session on the entry *)
  origin : Jim_api.Protocol.instance_source;
      (** the concrete (never [Catalog]) source first seen for this data
          — what session-start events journal, so recovery after a
          restart can re-resolve without the (empty) catalog *)
}
(** Everything derivable from the instance alone.  Immutable after
    interning except [cache], which synchronises internally; safe to
    read from any thread without the catalog lock. *)

type t

val create : ?max_entries:int -> ?now:(unit -> float) -> unit -> t
(** [max_entries] (default 64, clamped to [>= 1]) bounds the cataloged
    instances; [now] injects a clock for eviction tests. *)

val max_entries : t -> int

val resolve :
  t ->
  Jim_api.Protocol.instance_source ->
  (entry, Jim_api.Protocol.error) result
(** Resolve a source to a pinned entry (the caller owes one {!release}).

    [Catalog fp] looks up the fingerprint and never derives;
    a miss is [Unknown_instance].  A concrete source is first looked up
    by its encoded form (a repeat source is a hit: no fingerprinting, no
    derivation); on a miss it is resolved and fingerprinted — exactly
    once per entry, counted by [fingerprints] — and either aliased to an
    existing entry carrying the same data or derived and interned
    (counted by [derivations]).  Bad concrete sources fail as before
    with [Bad_source].

    Derivation runs under the catalog lock: two racing sessions on a new
    instance serialise briefly rather than derive twice. *)

val release : t -> entry -> unit
(** Unpin one reference.  When the last reference drops the entry stays
    cataloged (warm) but becomes evictable, LRU by release time. *)

val engine : entry -> Jim_core.Session.t
(** A warm-started engine: shares the entry's classes, row map and
    scorer memo, copies the round-0 statuses, derives nothing. *)

val relation_of :
  Jim_api.Protocol.instance_source ->
  ( Jim_relational.Relation.t * Jim_relational.Schema.t,
    Jim_api.Protocol.error )
  result
(** Resolve a concrete source outside any catalog (the table the catalog
    itself uses; exposed for clients that regenerate instances locally).
    [Catalog fp] fails with [Unknown_instance]. *)

val stats : t -> Jim_api.Protocol.catalog_stats
(** Counter snapshot — the payload of the wire [Catalog_stats] reply.
    [fingerprints] and [derivations] are how tests assert the
    once-per-entry invariants. *)
