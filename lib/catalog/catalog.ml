module P = Jim_api.Protocol
module Relation = Jim_relational.Relation
open Jim_core

(* The server-wide instance catalog.

   Everything derivable from the instance alone — the relation, its
   signature-class grouping, the row → class map, the round-0 statuses
   and the scorer memo — is immutable once derived, so one copy can back
   every session on that instance.  An [entry] is that copy; the catalog
   interns entries under the canonical CSV fingerprint (the same one the
   durable store journals for restore-drift detection) and hands out
   refcounted references.

   Concurrency: all bookkeeping (both index tables, the counters, the
   refcounts) lives under one mutex.  Derivation also runs under it —
   cold misses briefly serialise, which is the price of deriving each
   instance exactly once; warm resolves only touch the tables.  The
   entry payload needs no lock at all: sessions read it freely, and the
   shared scorer memo synchronises internally (see {!Scorer.cache}). *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

type entry = {
  fingerprint : string;
  relation : Relation.t;
  schema : Jim_relational.Schema.t;
  arity : int;
  tuples : int;
  bytes : int;
  classes : Sigclass.cls array;
  row_class : int array;
  initial_statuses : State.status array;
  cache : Scorer.cache;
  origin : P.instance_source;
}

type slot = {
  entry : entry;
  mutable refs : int;
  mutable last_used : float;  (* only meaningful while [refs = 0] *)
  mutable source_keys : string list;
      (* every source-JSON key aliasing this entry, for eviction *)
}

type t = {
  lock : Mutex.t;
  by_fp : (string, slot) Hashtbl.t;
  by_source : (string, string) Hashtbl.t;  (* source JSON -> fingerprint *)
  max_entries : int;
  now : unit -> float;
  mutable bytes : int;
  mutable pinned : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable fingerprints : int;
  mutable derivations : int;
}

let create ?(max_entries = 64) ?(now = Unix.gettimeofday) () =
  {
    lock = Mutex.create ();
    by_fp = Hashtbl.create 16;
    by_source = Hashtbl.create 16;
    max_entries = max 1 max_entries;
    now;
    bytes = 0;
    pinned = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    fingerprints = 0;
    derivations = 0;
  }

let max_entries t = t.max_entries

(* ------------------------------------------------------------------ *)
(* Concrete sources (moved here from Service so recovery, the wire and
   the catalog all resolve through the same table).                     *)

let relation_of :
    P.instance_source ->
    (Relation.t * Jim_relational.Schema.t, P.error) result = function
  | P.Builtin name -> (
    match String.lowercase_ascii name with
    | "flights" ->
      Ok (Jim_workloads.Flights.instance, Jim_workloads.Flights.schema)
    | "setcards" ->
      Ok
        ( Jim_workloads.Setcards.pair_instance (),
          Jim_workloads.Setcards.pair_schema )
    | other ->
      Error
        (P.Bad_source
           (Printf.sprintf "unknown builtin %S (try: flights, setcards)" other)))
  | P.Synthetic { n_attrs; n_tuples; domain; goal_rank; seed } -> (
    let params =
      { Jim_workloads.Synthetic.n_attrs; n_tuples; domain; goal_rank; seed }
    in
    match Jim_workloads.Synthetic.generate params with
    | inst ->
      Ok
        ( inst.Jim_workloads.Synthetic.relation,
          inst.Jim_workloads.Synthetic.schema )
    | exception Invalid_argument msg -> Error (P.Bad_source msg))
  | P.Csv_inline text -> (
    match Jim_relational.Csv.load_string ~name:"inline" text with
    | Ok rel -> Ok (rel, Relation.schema rel)
    | Error msg -> Error (P.Bad_source msg))
  | P.Catalog fp ->
    (* Callers handle [Catalog] before asking for a relation. *)
    Error (P.Unknown_instance fp)

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)

let derive t origin rel schema ~csv ~fp =
  t.derivations <- t.derivations + 1;
  let n = Relation.arity rel in
  let classes = Sigclass.classes rel in
  let row_class = Array.make (Sigclass.total_rows classes) 0 in
  Array.iteri
    (fun ci (c : Sigclass.cls) ->
      List.iter (fun r -> row_class.(r) <- ci) c.Sigclass.rows)
    classes;
  let st0 = State.create n in
  let initial_statuses =
    Array.map (fun (c : Sigclass.cls) -> State.classify st0 c.Sigclass.sg) classes
  in
  {
    fingerprint = fp;
    relation = rel;
    schema;
    arity = n;
    tuples = Relation.cardinality rel;
    bytes = String.length csv;
    classes;
    row_class;
    initial_statuses;
    cache = Scorer.new_cache ();
    origin;
  }

let acquire t slot =
  slot.refs <- slot.refs + 1;
  t.pinned <- t.pinned + 1;
  slot.last_used <- t.now ();
  Ok slot.entry

(* Evict refcount-zero entries, least-recently-released first, until the
   cap holds.  Pinned entries are never evicted, so a fully-pinned
   catalog may transiently exceed the cap. *)
let evict_to_cap t =
  let evict_one () =
    let victim =
      Hashtbl.fold
        (fun _ s acc ->
          if s.refs > 0 then acc
          else
            match acc with
            | Some best when best.last_used <= s.last_used -> acc
            | _ -> Some s)
        t.by_fp None
    in
    match victim with
    | None -> false
    | Some s ->
      Hashtbl.remove t.by_fp s.entry.fingerprint;
      List.iter (Hashtbl.remove t.by_source) s.source_keys;
      t.bytes <- t.bytes - s.entry.bytes;
      t.evictions <- t.evictions + 1;
      true
  in
  while Hashtbl.length t.by_fp > t.max_entries && evict_one () do
    ()
  done

(* A miss on a concrete source: resolve it, fingerprint it — once; this
   is where the old per-session [Store.fingerprint] call moved — and
   either alias an existing entry (same data under a new source) or
   intern a fresh one. *)
let intern t key source =
  t.misses <- t.misses + 1;
  match relation_of source with
  | Error e -> Error e
  | Ok (rel, schema) -> (
    t.fingerprints <- t.fingerprints + 1;
    let csv = Jim_store.Store.canonical_csv rel in
    let fp = Jim_store.Store.fingerprint_of_csv csv in
    match Hashtbl.find_opt t.by_fp fp with
    | Some slot ->
      slot.source_keys <- key :: slot.source_keys;
      Hashtbl.replace t.by_source key fp;
      acquire t slot
    | None ->
      let entry = derive t source rel schema ~csv ~fp in
      let slot =
        { entry; refs = 0; last_used = t.now (); source_keys = [ key ] }
      in
      Hashtbl.replace t.by_fp entry.fingerprint slot;
      Hashtbl.replace t.by_source key entry.fingerprint;
      t.bytes <- t.bytes + entry.bytes;
      (* pin before trimming: the fresh slot must not be its own LRU
         victim *)
      let r = acquire t slot in
      evict_to_cap t;
      r)

let resolve t source =
  with_lock t.lock @@ fun () ->
  match source with
  | P.Catalog fp -> (
    match Hashtbl.find_opt t.by_fp fp with
    | Some slot ->
      t.hits <- t.hits + 1;
      acquire t slot
    | None ->
      t.misses <- t.misses + 1;
      Error (P.Unknown_instance fp))
  | concrete -> (
    let key = Jim_api.Json.to_string (P.source_to_json concrete) in
    match Hashtbl.find_opt t.by_source key with
    | Some fp -> (
      match Hashtbl.find_opt t.by_fp fp with
      | Some slot ->
        t.hits <- t.hits + 1;
        acquire t slot
      | None ->
        (* Defensive: eviction removes source keys, so this is dead in
           practice; self-heal if the indexes ever disagree. *)
        Hashtbl.remove t.by_source key;
        intern t key concrete)
    | None -> intern t key concrete)

let release t entry =
  with_lock t.lock @@ fun () ->
  match Hashtbl.find_opt t.by_fp entry.fingerprint with
  | None -> ()  (* already evicted: nothing to unpin *)
  | Some slot ->
    if slot.refs > 0 then begin
      slot.refs <- slot.refs - 1;
      t.pinned <- t.pinned - 1;
      if slot.refs = 0 then slot.last_used <- t.now ()
    end

let engine (e : entry) =
  Session.of_classes ~cache:e.cache ~statuses:e.initial_statuses
    ~row_class:e.row_class ~n:e.arity e.classes

let stats t =
  with_lock t.lock @@ fun () ->
  {
    P.entries = Hashtbl.length t.by_fp;
    bytes = t.bytes;
    pinned = t.pinned;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    fingerprints = t.fingerprints;
    derivations = t.derivations;
  }
