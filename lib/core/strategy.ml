module Partition = Jim_partition.Partition

type ctx = {
  state : State.t;
  classes : Sigclass.cls array;
  informative : int array;
  cache : Scorer.cache;
  rng : Random.State.t;
}

type t = {
  name : string;
  descr : string;
  kind : [ `Random | `Local | `Lookahead ];
  pick : ctx -> int option;
}

let scorer_of ctx =
  Scorer.create ~cache:ctx.cache ctx.state ctx.classes ctx.informative

let hypothetical = State.hypothetical

(* Unmemoised reference implementation, kept as the specification the
   scorer's memoised [decided_counts] is property-tested against. *)
let decided_counts st classes informative c =
  let sg = classes.(c).Sigclass.sg in
  let st_pos, st_neg = hypothetical st sg in
  let count = function
    | None -> List.length informative
    | Some st' ->
      List.fold_left
        (fun acc i ->
          if State.classify st' classes.(i).Sigclass.sg <> State.Informative then
            acc + 1
          else acc)
        0 informative
  in
  (count st_pos, count st_neg)

(* Same, but weighting each decided class by its tuple count — the measure
   shown to the user ("how many tuples got grayed out"). *)
let decided_cards st classes informative c =
  let sg = classes.(c).Sigclass.sg in
  let st_pos, st_neg = hypothetical st sg in
  let total =
    List.fold_left (fun acc i -> acc + classes.(i).Sigclass.card) 0 informative
  in
  let count = function
    | None -> total
    | Some st' ->
      List.fold_left
        (fun acc i ->
          if State.classify st' classes.(i).Sigclass.sg <> State.Informative then
            acc + classes.(i).Sigclass.card
          else acc)
        0 informative
  in
  (count st_pos, count st_neg)

let argmax_by score ctx = Scorer.best (scorer_of ctx) score

let random =
  {
    name = "random";
    descr = "uniformly random informative tuple (baseline)";
    kind = `Random;
    pick =
      (fun ctx ->
        match Array.length ctx.informative with
        | 0 -> None
        | k -> Some ctx.informative.(Random.State.int ctx.rng k));
  }

let local_specific =
  {
    name = "local-specific";
    descr = "local: maximise the equalities shared with the candidate s";
    kind = `Local;
    pick =
      (fun ctx ->
        argmax_by (fun sc i -> float_of_int (Scorer.meet_rank sc i)) ctx);
  }

let local_general =
  {
    name = "local-general";
    descr = "local: minimise the equalities shared with the candidate s";
    kind = `Local;
    pick =
      (fun ctx ->
        argmax_by (fun sc i -> -.float_of_int (Scorer.meet_rank sc i)) ctx);
  }

let local_lex =
  {
    name = "local-lex";
    descr = "local: first informative signature in lexicographic order";
    kind = `Local;
    pick =
      (fun ctx ->
        if Array.length ctx.informative = 0 then None
        else
          Some
            (Array.fold_left
               (fun b i ->
                 if
                   Partition.compare ctx.classes.(i).Sigclass.sg
                     ctx.classes.(b).Sigclass.sg
                   < 0
                 then i
                 else b)
               ctx.informative.(0) ctx.informative));
  }

let lookahead_maximin =
  {
    name = "lookahead-maximin";
    descr = "lookahead: maximise the guaranteed number of decided classes";
    kind = `Lookahead;
    pick =
      (fun ctx ->
        argmax_by
          (fun sc i ->
            let p, n = Scorer.decided_counts sc i in
            float_of_int (min p n))
          ctx);
  }

let lookahead_expected =
  {
    name = "lookahead-expected";
    descr = "lookahead: maximise the expected number of grayed-out tuples";
    kind = `Lookahead;
    pick =
      (fun ctx ->
        argmax_by
          (fun sc i ->
            let p, n = Scorer.decided_cards sc i in
            float_of_int (p + n) /. 2.0)
          ctx);
  }

let binary_entropy p =
  if p <= 0.0 || p >= 1.0 then 0.0
  else -.((p *. log p) +. ((1.0 -. p) *. log (1.0 -. p)))

let entropy_score sc i =
  let vp, vn = Scorer.vs_split sc i in
  let p, n = Scorer.decided_counts sc i in
  let maximin = float_of_int (min p n) in
  let total = vp +. vn in
  if not (Float.is_finite total) then
    (* Version-space counts saturate to [infinity] on wide instances;
       [vp /. total] would be NaN and poison the argmax (NaN beats
       nothing, so the first candidate would always win).  Fall back to
       the maximin pruning score. *)
    maximin
  else if total <= 0.0 then 0.0
  else
    (* Entropy first; pruning-count as an epsilon tie-break so
       equal splits prefer bigger immediate progress. *)
    binary_entropy (vp /. total) +. (1e-9 *. maximin)

let lookahead_entropy =
  {
    name = "lookahead-entropy";
    descr = "lookahead: maximise the entropy of the version-space split";
    kind = `Lookahead;
    pick = (fun ctx -> argmax_by entropy_score ctx);
  }

let all =
  [
    random;
    local_lex;
    local_specific;
    local_general;
    lookahead_maximin;
    lookahead_expected;
    lookahead_entropy;
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

(* The two strategies whose machinery lives outside this module join the
   catalogue here (their modules cannot depend on this one and also be
   depended on by it), so [of_string] below is the single canonical name
   table for the CLI, the bench harness and the wire protocol. *)

let lookahead2 ?beam () =
  {
    name = "lookahead-2";
    descr = "two-step maximin lookahead (beam-limited)";
    kind = `Lookahead;
    pick =
      (fun ctx ->
        Lookahead2.pick ?beam ~cache:ctx.cache ctx.state ctx.classes
          ctx.informative);
  }

let optimal ?max_states () =
  {
    name = "optimal";
    descr = "exact minimax policy (exponential; small instances only)";
    kind = `Lookahead;
    pick = (fun ctx -> Optimal.best_question ?max_states ctx.state ctx.classes);
  }

let names = List.map (fun s -> s.name) all @ [ "lookahead-2"; "optimal" ]

let to_string s = s.name

let of_string = function
  | "optimal" -> Ok (optimal ())
  | "lookahead-2" | "lookahead2" -> Ok (lookahead2 ())
  | name -> (
    match find name with
    | Some s -> Ok s
    | None ->
      Error
        (Printf.sprintf "unknown strategy %S (try: %s)" name
           (String.concat ", " names)))
