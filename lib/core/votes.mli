(** Vote aggregation shared by the in-process crowd simulation
    ({!Crowd}) and the server's wire-level vote coordinator — one
    implementation, so the two paths provably agree.

    A ballot is a labelled weight.  Aggregation is weighted majority:
    the heavier side wins, an exact weight tie elects nobody.  Exactness
    matters: with uniform weights the sums on each side are repeated
    additions of the {e same} positive float, so comparing them is
    exactly comparing ballot counts — weighted aggregation with uniform
    weights {e equals} unweighted majority, bit for bit (a property the
    test suite pins with qcheck). *)

type verdict = {
  label : State.label option;  (** the heavier side; [None] = exact tie *)
  dissent : bool;  (** both labels received at least one ballot *)
}

val tally : (State.label * float) list -> verdict
(** Weighted majority over the ballots.  Raises [Invalid_argument] on an
    empty ballot list or a non-positive weight. *)

val majority : State.label list -> verdict
(** [tally] with uniform weight 1.0 per ballot — an odd ballot count can
    never tie. *)

(** Running per-labeler accuracy, Laplace-smoothed: a labeler's weight
    is [(agreed + 1) / (voted + 2)] where [agreed] counts the closed
    rounds whose aggregate the labeler's ballot matched.  Every labeler
    starts at 0.5, so weighted aggregation over fresh labelers is
    uniform — identical to exact majority — and drifts toward accurate
    labelers only as evidence accumulates. *)
module Estimator : sig
  type t

  val create : unit -> t

  val add : t -> int
  (** Register a new labeler; returns its id (1, 2, ...). *)

  val known : t -> int -> bool
  val count : t -> int

  val weight : t -> int -> float
  (** Current accuracy estimate in (0, 1).  Raises [Invalid_argument]
      for an unregistered id. *)

  val record : t -> int -> agreed:bool -> unit
  (** Account one closed round: the labeler voted, and its ballot did or
      did not match the absorbed aggregate. *)

  val counts : t -> int -> int * int
  (** [(agreed, voted)] so far. *)
end
