(* Depth-2 maximin.  For candidate c:
     score2(c) = min over consistent answers a of
                   decided(c, a) + best one-step maximin in state(c, a)
   The follow-up term is 0 when the answer already finishes the session.

   All classification work runs through a round's Scorer, so the inner
   one-step sweeps share the memoised hypothetical classifications.

   This module knows nothing about {!Strategy} (the catalogue wraps
   {!pick} as [Strategy.lookahead2] — keeping the dependency one-way is
   what lets the catalogue own the canonical name table). *)

let one_step_maximin sc c =
  let p, n = Scorer.decided_counts sc c in
  min p n

let best_one_step cache st classes =
  let sc = Scorer.of_state ~cache st classes in
  Array.fold_left
    (fun acc c -> max acc (one_step_maximin sc c))
    0 (Scorer.informative sc)

let pick ?(beam = 8) ~cache st classes informative =
  if Array.length informative = 0 then None
  else begin
    let sc = Scorer.create ~cache st classes informative in
    (* Beam: keep the candidates with the best one-step maximin. *)
    let scored =
      List.map
        (fun c -> (c, one_step_maximin sc c))
        (Array.to_list informative)
    in
    let beam_set =
      List.sort (fun (_, a) (_, b) -> compare b a) scored
      |> List.filteri (fun i _ -> i < beam)
      |> List.map fst
    in
    let score2 c =
      let st_pos, st_neg = Scorer.hypothetical sc c in
      let arm label_state =
        match label_state with
        | None -> max_int (* impossible answer does not constrain the min *)
        | Some st' ->
          Scorer.decided_under sc st' + best_one_step cache st' classes
      in
      min (arm st_pos) (arm st_neg)
    in
    let best =
      List.fold_left
        (fun (bc, bs) c ->
          let s = score2 c in
          if s > bs then (c, s) else (bc, bs))
        (List.hd beam_set, score2 (List.hd beam_set))
        (List.tl beam_set)
    in
    Some (fst best)
  end
