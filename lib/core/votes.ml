type verdict = { label : State.label option; dissent : bool }

let tally ballots =
  if ballots = [] then invalid_arg "Votes.tally: no ballots";
  let pos = ref 0. and neg = ref 0. in
  let npos = ref 0 and nneg = ref 0 in
  List.iter
    (fun (label, weight) ->
      if not (weight > 0.) then invalid_arg "Votes.tally: weights must be positive";
      match label with
      | State.Pos ->
        pos := !pos +. weight;
        incr npos
      | State.Neg ->
        neg := !neg +. weight;
        incr nneg)
    ballots;
  let label =
    if !pos > !neg then Some State.Pos
    else if !neg > !pos then Some State.Neg
    else None
  in
  { label; dissent = !npos > 0 && !nneg > 0 }

let majority labels = tally (List.map (fun l -> (l, 1.)) labels)

module Estimator = struct
  type worker = { mutable voted : int; mutable agreed : int }

  type t = {
    mutable next : int;
    workers : (int, worker) Hashtbl.t;
  }

  let create () = { next = 1; workers = Hashtbl.create 8 }

  let add t =
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.replace t.workers id { voted = 0; agreed = 0 };
    id

  let known t id = Hashtbl.mem t.workers id
  let count t = Hashtbl.length t.workers

  let weight t id =
    match Hashtbl.find_opt t.workers id with
    | None -> invalid_arg (Printf.sprintf "Votes.Estimator.weight: unknown worker %d" id)
    | Some w -> float_of_int (w.agreed + 1) /. float_of_int (w.voted + 2)

  let record t id ~agreed =
    match Hashtbl.find_opt t.workers id with
    | None -> invalid_arg (Printf.sprintf "Votes.Estimator.record: unknown worker %d" id)
    | Some w ->
      w.voted <- w.voted + 1;
      if agreed then w.agreed <- w.agreed + 1

  let counts t id =
    match Hashtbl.find_opt t.workers id with
    | None -> invalid_arg (Printf.sprintf "Votes.Estimator.counts: unknown worker %d" id)
    | Some w -> (w.agreed, w.voted)
end
