(* Process-wide perf counters for the scoring engine.  Atomic so parallel
   scoring domains can bump them without synchronisation. *)

type snapshot = {
  meets : int;
  classify_calls : int;
  cache_hits : int;
  cache_misses : int;
  picks : int;
  pick_time_ns : int;
  last_pick_ns : int;
}

let meets = Atomic.make 0
let classify_calls = Atomic.make 0
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let picks = Atomic.make 0
let pick_time_ns = Atomic.make 0
let last_pick_ns = Atomic.make 0

let reset () =
  Atomic.set meets 0;
  Atomic.set classify_calls 0;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Atomic.set picks 0;
  Atomic.set pick_time_ns 0;
  Atomic.set last_pick_ns 0

let record_meet () = Atomic.incr meets
let record_classify () = Atomic.incr classify_calls
let record_hit () = Atomic.incr cache_hits
let record_miss () = Atomic.incr cache_misses

let record_pick ~ns =
  Atomic.incr picks;
  ignore (Atomic.fetch_and_add pick_time_ns ns);
  Atomic.set last_pick_ns ns

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time_pick f =
  let t0 = now_ns () in
  let r = f () in
  record_pick ~ns:(now_ns () - t0);
  r

let snapshot () =
  {
    meets = Atomic.get meets;
    classify_calls = Atomic.get classify_calls;
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses;
    picks = Atomic.get picks;
    pick_time_ns = Atomic.get pick_time_ns;
    last_pick_ns = Atomic.get last_pick_ns;
  }

let zero =
  {
    meets = 0;
    classify_calls = 0;
    cache_hits = 0;
    cache_misses = 0;
    picks = 0;
    pick_time_ns = 0;
    last_pick_ns = 0;
  }

let diff later earlier =
  {
    meets = later.meets - earlier.meets;
    classify_calls = later.classify_calls - earlier.classify_calls;
    cache_hits = later.cache_hits - earlier.cache_hits;
    cache_misses = later.cache_misses - earlier.cache_misses;
    picks = later.picks - earlier.picks;
    pick_time_ns = later.pick_time_ns - earlier.pick_time_ns;
    last_pick_ns = later.last_pick_ns;
  }

let add a b =
  {
    meets = a.meets + b.meets;
    classify_calls = a.classify_calls + b.classify_calls;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    picks = a.picks + b.picks;
    pick_time_ns = a.pick_time_ns + b.pick_time_ns;
    last_pick_ns = b.last_pick_ns;
  }

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

let avg_pick_ns s =
  if s.picks = 0 then 0.0
  else float_of_int s.pick_time_ns /. float_of_int s.picks

let to_string s =
  Printf.sprintf
    "picks %d (avg %.2f ms) | meets %d | classify %d | cache %d/%d (%.0f%% hit)"
    s.picks
    (avg_pick_ns s /. 1e6)
    s.meets s.classify_calls s.cache_hits
    (s.cache_hits + s.cache_misses)
    (100.0 *. hit_rate s)

let to_json s =
  Printf.sprintf
    "{\"picks\":%d,\"pick_time_ns\":%d,\"avg_pick_ms\":%.6f,\"meets\":%d,\
     \"classify_calls\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\
     \"cache_hit_rate\":%.6f}"
    s.picks s.pick_time_ns
    (avg_pick_ns s /. 1e6)
    s.meets s.classify_calls s.cache_hits s.cache_misses (hit_rate s)

let pp fmt s = Format.pp_print_string fmt (to_string s)
